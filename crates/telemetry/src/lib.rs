//! # Deterministic telemetry — spans, metrics and trace export
//!
//! Production observability for a reproduction pipeline has one unusual
//! requirement: the telemetry must be as deterministic as the artifacts it
//! describes, or it cannot be regression-gated. This crate provides that
//! layer for the whole workspace:
//!
//! * [`Tracer`] ([`tracer`]) — hierarchical spans (run → phase →
//!   oracle batch / observable query / campaign job / eval cell) clocked on
//!   **simulated time plus monotonic sequence numbers**. No wall clock ever
//!   enters the stream, so two same-seed runs export byte-identical traces
//!   and CI can `cmp` them.
//! * Exporters — Chrome trace-event JSON ([`Tracer::chrome_trace`],
//!   loadable in Perfetto), a JSONL event log ([`Tracer::jsonl_log`])
//!   sharing the campaign journal's codec ([`jsonl`]), and a text
//!   "hot-span" summary ([`Tracer::hot_span_summary`]) attributing
//!   self/total cost per span kind.
//! * [`Registry`] ([`metrics`]) — counters, gauges and fixed-bucket
//!   histograms (measurement pairs, conflict-cache hit rate, per-channel
//!   observable costs, pool queue depth, retry/dead-letter counts) with a
//!   stable, parseable text snapshot.
//!
//! The crate is dependency-free and knows nothing about DRAM: the engine,
//! campaign and bench crates adapt their own events onto it (see
//! `dramdig::trace::TelemetryObserver`, `campaign::pool::MeteredHooks` and
//! `dramdig_bench::eval`). Instrumentation is opt-in at every seam — when
//! no tracer is attached the pipeline takes no extra measurements, which
//! `bench_json`'s `telemetry` section gates.
//!
//! # Example
//!
//! ```
//! use telemetry::{Registry, SpanKind, Tracer};
//!
//! let mut tracer = Tracer::new();
//! let run = tracer.begin(SpanKind::Run, "uncover");
//! let phase = tracer.begin(SpanKind::Phase, "Calibration");
//! tracer.advance_ns(1_500); // simulated cost, never wall time
//! tracer.end(phase);
//! tracer.end(run);
//!
//! let mut metrics = Registry::new();
//! metrics.counter_add("measurements_total", 40);
//!
//! // Both exports are pure functions of the calls above.
//! assert_eq!(tracer.chrome_trace(), tracer.chrome_trace());
//! assert_eq!(metrics.snapshot(), "counter measurements_total 40\n");
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod jsonl;
pub mod metrics;
pub mod tracer;

pub use metrics::Registry;
pub use tracer::{SpanId, SpanKind, Tracer};
