//! The deterministic span tracer and its exporters.
//!
//! A [`Tracer`] records a flat stream of begin/end/instant events, each
//! stamped with **simulated time** (nanoseconds, advanced explicitly by the
//! instrumentation) and a **monotonic sequence number**. Wall clocks never
//! appear, so two runs with the same seed and configuration produce
//! byte-identical exports — the property the CI telemetry gate `cmp`s.
//!
//! Spans nest strictly (last opened, first closed), which matches the shape
//! of a pipeline run:
//!
//! ```text
//! run
//! ├── phase (Calibration … Validation)
//! │   └── oracle batch (instant: pairs / cached / measured)
//! ├── observable query (per ObservableKind)
//! ├── campaign job (post-hoc, per journal outcome)
//! └── eval cell (post-hoc, per scenario x tool)
//! ```
//!
//! Three exporters read the stream back out:
//!
//! * [`Tracer::chrome_trace`] — Chrome trace-event JSON in the streaming
//!   array form (one event per line, trailing commas), loadable directly in
//!   Perfetto / `chrome://tracing`. Timestamps are printed with integer
//!   math (`ns / 1000` microseconds with a 3-digit fraction) so no float
//!   formatting can perturb the bytes.
//! * [`Tracer::jsonl_log`] — one [`crate::jsonl`] object per event, for
//!   machine consumption alongside the campaign journal.
//! * [`Tracer::hot_span_summary`] — a text table of per-kind self/total
//!   cost, the "where did the budget go" view.

use std::fmt;

use crate::jsonl::{self, JsonValue};

/// The kind of work a span covers. Doubles as the Chrome trace category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A whole pipeline run (one `uncover`, one eval grid, one campaign).
    Run,
    /// One engine phase (Calibration through Validation).
    Phase,
    /// One batched conflict-oracle majority vote.
    OracleBatch,
    /// One observable-channel consultation.
    ObservableQuery,
    /// One campaign job (reassembled post-hoc from the journal).
    CampaignJob,
    /// One eval-grid cell (scenario x tool, reassembled post-hoc).
    EvalCell,
}

impl SpanKind {
    /// Every kind, in declaration order.
    pub const ALL: [SpanKind; 6] = [
        SpanKind::Run,
        SpanKind::Phase,
        SpanKind::OracleBatch,
        SpanKind::ObservableQuery,
        SpanKind::CampaignJob,
        SpanKind::EvalCell,
    ];

    /// Stable lower-snake name used in every exporter.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Phase => "phase",
            SpanKind::OracleBatch => "oracle_batch",
            SpanKind::ObservableQuery => "observable_query",
            SpanKind::CampaignJob => "campaign_job",
            SpanKind::EvalCell => "eval_cell",
        }
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Handle to an open span, returned by [`Tracer::begin`] and consumed by
/// [`Tracer::end`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mark {
    Begin,
    End,
    Instant,
}

#[derive(Debug, Clone, PartialEq)]
struct TraceEvent {
    seq: u64,
    ts_ns: u64,
    mark: Mark,
    kind: SpanKind,
    name: String,
    args: Vec<(&'static str, u64)>,
}

/// A deterministic span recorder.
///
/// The tracer owns a simulated clock (`now_ns`, advanced only via
/// [`Tracer::advance_ns`]) and a sequence counter. Events are appended in
/// call order and never reordered, so the exported bytes are a pure function
/// of the instrumentation calls — which in this workspace are themselves a
/// pure function of the run seed.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Tracer {
    events: Vec<TraceEvent>,
    stack: Vec<usize>,
    seq: u64,
    now_ns: u64,
}

impl Tracer {
    /// A fresh tracer at simulated time zero.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Advances the simulated clock. Saturates instead of wrapping.
    pub fn advance_ns(&mut self, delta: u64) {
        self.now_ns = self.now_ns.saturating_add(delta);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of spans currently open.
    pub fn open_spans(&self) -> usize {
        self.stack.len()
    }

    fn push(&mut self, mark: Mark, kind: SpanKind, name: &str, args: &[(&'static str, u64)]) {
        self.seq += 1;
        self.events.push(TraceEvent {
            seq: self.seq,
            ts_ns: self.now_ns,
            mark,
            kind,
            name: name.to_string(),
            args: args.to_vec(),
        });
    }

    /// Opens a span at the current simulated time.
    pub fn begin(&mut self, kind: SpanKind, name: &str) -> SpanId {
        self.begin_with(kind, name, &[])
    }

    /// Opens a span carrying extra numeric arguments.
    pub fn begin_with(
        &mut self,
        kind: SpanKind,
        name: &str,
        args: &[(&'static str, u64)],
    ) -> SpanId {
        self.push(Mark::Begin, kind, name, args);
        let id = self.events.len() - 1;
        self.stack.push(id);
        SpanId(id)
    }

    /// Closes a span at the current simulated time.
    ///
    /// # Panics
    ///
    /// Spans must close in LIFO order; panics if `id` is not the innermost
    /// open span. That strictness is what lets the Chrome exporter emit
    /// plain `B`/`E` events that any trace viewer can pair back up.
    pub fn end(&mut self, id: SpanId) {
        self.end_with(id, &[]);
    }

    /// Closes a span, attaching extra numeric arguments to the end event.
    ///
    /// # Panics
    ///
    /// Same LIFO requirement as [`Tracer::end`].
    pub fn end_with(&mut self, id: SpanId, args: &[(&'static str, u64)]) {
        let top = self.stack.pop().expect("end() with no span open");
        assert_eq!(top, id.0, "spans must close innermost-first");
        let (kind, name) = {
            let begin = &self.events[id.0];
            (begin.kind, begin.name.clone())
        };
        self.push(Mark::End, kind, &name, args);
    }

    /// Records a zero-duration instant event at the current simulated time.
    pub fn instant(&mut self, kind: SpanKind, name: &str, args: &[(&'static str, u64)]) {
        self.push(Mark::Instant, kind, name, args);
    }

    /// Exports the stream as Chrome trace-event JSON.
    ///
    /// Uses the streaming array form documented by the Trace Event Format:
    /// one event object per line, every line comma-terminated, closing `]`
    /// last. Perfetto and `chrome://tracing` both accept it, and the form
    /// makes an interrupted run's trace a literal byte prefix of the full
    /// run's trace (up to the interruption events).
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("[\n");
        for ev in &self.events {
            out.push_str("{\"name\":");
            jsonl::push_escaped(&mut out, &ev.name);
            out.push_str(",\"cat\":");
            jsonl::push_escaped(&mut out, ev.kind.as_str());
            let ph = match ev.mark {
                Mark::Begin => "B",
                Mark::End => "E",
                Mark::Instant => "i",
            };
            out.push_str(&format!(
                ",\"ph\":\"{ph}\",\"ts\":{}.{:03},\"pid\":1,\"tid\":1",
                ev.ts_ns / 1000,
                ev.ts_ns % 1000
            ));
            if ev.mark == Mark::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(&format!(",\"args\":{{\"seq\":{}", ev.seq));
            for (key, value) in &ev.args {
                out.push(',');
                jsonl::push_escaped(&mut out, key);
                out.push_str(&format!(":{value}"));
            }
            out.push_str("}},\n");
        }
        out.push_str("]\n");
        out
    }

    /// Exports the stream as one flat JSONL object per event, using the
    /// same codec as the campaign journal.
    pub fn jsonl_log(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            let mark = match ev.mark {
                Mark::Begin => "B",
                Mark::End => "E",
                Mark::Instant => "i",
            };
            let mut fields: Vec<(&str, JsonValue)> = vec![
                ("seq", JsonValue::Num(ev.seq)),
                ("ts_ns", JsonValue::Num(ev.ts_ns)),
                ("ev", JsonValue::Str(mark.into())),
                ("kind", JsonValue::Str(ev.kind.as_str().into())),
                ("name", JsonValue::Str(ev.name.clone())),
            ];
            for (key, value) in &ev.args {
                fields.push((key, JsonValue::Num(*value)));
            }
            out.push_str(&jsonl::encode_object(&fields));
            out.push('\n');
        }
        out
    }

    /// Renders the per-kind cost table: span count, total time (begin to
    /// end) and self time (total minus directly nested child spans).
    ///
    /// Rows are sorted by total time descending, then by kind name, so the
    /// hottest span kind reads first and the bytes stay deterministic.
    pub fn hot_span_summary(&self) -> String {
        #[derive(Default, Clone, Copy)]
        struct Agg {
            count: u64,
            total_ns: u64,
            self_ns: u64,
        }
        let mut agg = vec![Agg::default(); SpanKind::ALL.len()];
        let index_of = |kind: SpanKind| {
            SpanKind::ALL
                .iter()
                .position(|k| *k == kind)
                .expect("kind in ALL")
        };
        // Replay the stream with an explicit stack: (kind, begin ts, child ns).
        let mut stack: Vec<(SpanKind, u64, u64)> = Vec::new();
        for ev in &self.events {
            match ev.mark {
                Mark::Begin => stack.push((ev.kind, ev.ts_ns, 0)),
                Mark::End => {
                    let (kind, begin_ts, child_ns) =
                        stack.pop().expect("exporter sees balanced spans");
                    let total = ev.ts_ns.saturating_sub(begin_ts);
                    let slot = &mut agg[index_of(kind)];
                    slot.count += 1;
                    slot.total_ns += total;
                    slot.self_ns += total.saturating_sub(child_ns);
                    if let Some(parent) = stack.last_mut() {
                        parent.2 += total;
                    }
                }
                Mark::Instant => {}
            }
        }
        let mut rows: Vec<(SpanKind, Agg)> = SpanKind::ALL
            .iter()
            .map(|kind| (*kind, agg[index_of(*kind)]))
            .filter(|(_, a)| a.count > 0)
            .collect();
        rows.sort_by(|(ka, a), (kb, b)| {
            b.total_ns
                .cmp(&a.total_ns)
                .then_with(|| ka.as_str().cmp(kb.as_str()))
        });
        let mut out = String::from("hot spans (count / total ns / self ns):\n");
        for (kind, a) in rows {
            out.push_str(&format!(
                "  {:<16} {:>6} {:>16} {:>16}\n",
                kind.as_str(),
                a.count,
                a.total_ns,
                a.self_ns
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tracer {
        let mut t = Tracer::new();
        let run = t.begin(SpanKind::Run, "run");
        let phase = t.begin_with(SpanKind::Phase, "Calibration", &[("salt", 1)]);
        t.instant(
            SpanKind::OracleBatch,
            "batch",
            &[("pairs", 8), ("cached", 2)],
        );
        t.advance_ns(1_500);
        t.end_with(phase, &[("measurements", 40)]);
        let q = t.begin(SpanKind::ObservableQuery, "timing");
        t.advance_ns(250);
        t.end(q);
        t.end(run);
        t
    }

    #[test]
    fn spans_are_sequenced_and_clocked() {
        let t = sample();
        assert_eq!(t.len(), 7);
        assert_eq!(t.now_ns(), 1_750);
        assert_eq!(t.open_spans(), 0);
    }

    #[test]
    fn chrome_trace_is_deterministic_and_streaming() {
        let a = sample().chrome_trace();
        let b = sample().chrome_trace();
        assert_eq!(a, b);
        assert!(a.starts_with("[\n"));
        assert!(a.ends_with("},\n]\n"));
        assert!(a.contains("\"ph\":\"B\""));
        assert!(a.contains("\"ph\":\"E\""));
        assert!(a.contains("\"ts\":1.500"));
        assert!(a.contains("\"pairs\":8"));
        // Integer-math timestamps: 250 ns is 0.250 us, never "0.25".
        assert!(a.contains("\"ts\":0.250") || a.contains("\"ts\":1.750"));
    }

    #[test]
    fn jsonl_log_round_trips_through_the_codec() {
        let log = sample().jsonl_log();
        let mut seqs = Vec::new();
        for line in log.lines() {
            let fields = jsonl::parse_object(line).expect("log lines parse");
            seqs.push(jsonl::field(&fields, "seq").unwrap().as_u64().unwrap());
            assert!(jsonl::field(&fields, "kind").unwrap().as_str().is_some());
        }
        assert_eq!(seqs, (1..=7).collect::<Vec<_>>());
    }

    #[test]
    fn hot_span_summary_attributes_self_time() {
        let summary = sample().hot_span_summary();
        // run total = 1750, phase child total = 1500, query child = 250:
        // run self time must be zero.
        let run_row = summary
            .lines()
            .find(|l| l.trim_start().starts_with("run"))
            .expect("run row");
        let fields: Vec<&str> = run_row.split_whitespace().collect();
        assert_eq!(fields, vec!["run", "1", "1750", "0"]);
        let phase_row = summary
            .lines()
            .find(|l| l.trim_start().starts_with("phase"))
            .expect("phase row");
        assert!(phase_row.split_whitespace().any(|f| f == "1500"));
    }

    #[test]
    #[should_panic(expected = "innermost-first")]
    fn spans_must_close_in_lifo_order() {
        let mut t = Tracer::new();
        let outer = t.begin(SpanKind::Run, "run");
        let _inner = t.begin(SpanKind::Phase, "phase");
        t.end(outer);
    }

    #[test]
    fn prefix_property_holds_for_truncated_streams() {
        // A tracer that stops early produces a chrome trace whose event
        // lines are a byte prefix of the longer run's event lines.
        let full = sample().chrome_trace();
        let mut short = Tracer::new();
        let run = short.begin(SpanKind::Run, "run");
        let phase = short.begin_with(SpanKind::Phase, "Calibration", &[("salt", 1)]);
        short.instant(
            SpanKind::OracleBatch,
            "batch",
            &[("pairs", 8), ("cached", 2)],
        );
        short.advance_ns(1_500);
        short.end_with(phase, &[("measurements", 40)]);
        let _ = run; // left open: the run was interrupted
        let short_body = short.chrome_trace();
        let body = short_body.strip_suffix("]\n").unwrap();
        assert!(full.starts_with(body));
    }
}
