//! A hand-rolled, serde-free codec for flat JSONL records.
//!
//! Telemetry event logs and campaign journal lines are single-level JSON
//! objects whose values are strings or unsigned integers — nothing nested,
//! nothing floating. The build environment has no registry access, so
//! instead of pulling in a JSON dependency this module implements exactly
//! that subset: escaping-aware string encoding and a small
//! recursive-descent-free parser. Every line the encoder emits parses back
//! to the same fields, including strings holding newlines, quotes and
//! arbitrary control characters.
//!
//! The module started life inside `dramdig-campaign`; it lives here so the
//! [`crate::tracer`] JSONL exporter and the campaign write-ahead journal
//! share one codec (the campaign crate re-exports it as `campaign::jsonl`).

use std::fmt;

/// A value in a flat journal object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// A JSON string.
    Str(String),
    /// A non-negative JSON integer.
    Num(u64),
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            JsonValue::Num(_) => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Str(_) => None,
            JsonValue::Num(n) => Some(*n),
        }
    }
}

/// Error produced while parsing a journal line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the line where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub reason: String,
}

impl JsonError {
    fn new(at: usize, reason: impl Into<String>) -> Self {
        JsonError {
            at,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Appends the JSON string encoding of `s` (including the surrounding
/// quotes) to `out`.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Encodes a flat object as one JSON line (no trailing newline).
pub fn encode_object(fields: &[(&str, JsonValue)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(&mut out, key);
        out.push(':');
        match value {
            JsonValue::Str(s) => push_escaped(&mut out, s),
            JsonValue::Num(n) => out.push_str(&n.to_string()),
        }
    }
    out.push('}');
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(
                self.pos,
                format!("expected `{}`", byte as char),
            ))
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| JsonError::new(self.pos, "truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| {
                                JsonError::new(self.pos, format!("bad \\u escape `{hex}`"))
                            })?;
                            let c = char::from_u32(code).ok_or_else(|| {
                                JsonError::new(self.pos, format!("invalid code point {code:#x}"))
                            })?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(JsonError::new(
                                self.pos,
                                format!("unknown escape {other:?}"),
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged; find
                    // the char boundary via the str representation.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::new(self.pos, "invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<u64, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(JsonError::new(start, "expected a digit"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .parse()
            .map_err(|_| JsonError::new(start, "integer out of range"))
    }
}

/// Parses one JSON line written by [`encode_object`] back into its fields,
/// preserving field order.
///
/// # Errors
///
/// Returns [`JsonError`] on anything that is not a flat object of strings
/// and unsigned integers.
pub fn parse_object(line: &str) -> Result<Vec<(String, JsonValue)>, JsonError> {
    let mut cur = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    cur.skip_ws();
    cur.expect(b'{')?;
    let mut fields = Vec::new();
    cur.skip_ws();
    if cur.peek() == Some(b'}') {
        cur.pos += 1;
    } else {
        loop {
            cur.skip_ws();
            let key = cur.parse_string()?;
            cur.skip_ws();
            cur.expect(b':')?;
            cur.skip_ws();
            let value = match cur.peek() {
                Some(b'"') => JsonValue::Str(cur.parse_string()?),
                Some(b'0'..=b'9') => JsonValue::Num(cur.parse_number()?),
                _ => {
                    return Err(JsonError::new(
                        cur.pos,
                        "expected a string or integer value",
                    ))
                }
            };
            fields.push((key, value));
            cur.skip_ws();
            match cur.peek() {
                Some(b',') => cur.pos += 1,
                Some(b'}') => {
                    cur.pos += 1;
                    break;
                }
                _ => return Err(JsonError::new(cur.pos, "expected `,` or `}`")),
            }
        }
    }
    cur.skip_ws();
    if cur.pos != cur.bytes.len() {
        return Err(JsonError::new(cur.pos, "trailing garbage after object"));
    }
    Ok(fields)
}

/// Convenience: looks a field up by key.
pub fn field<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_plain_and_hostile_strings() {
        for s in [
            "plain",
            "",
            "with \"quotes\" and \\backslashes\\",
            "line\nbreaks\r\ttabs",
            "control \u{1} chars \u{1f}",
            "unicode: déjà vu ✓",
        ] {
            let line = encode_object(&[("k", JsonValue::Str(s.into())), ("n", JsonValue::Num(7))]);
            let parsed = parse_object(&line).unwrap();
            assert_eq!(field(&parsed, "k").unwrap().as_str(), Some(s));
            assert_eq!(field(&parsed, "n").unwrap().as_u64(), Some(7));
            assert!(!line.contains('\n'), "one record per line: {line:?}");
        }
    }

    #[test]
    fn parses_numbers_and_empty_objects() {
        assert_eq!(parse_object("{}").unwrap(), vec![]);
        let parsed = parse_object("{\"a\": 0, \"b\": 18446744073709551615}").unwrap();
        assert_eq!(field(&parsed, "a").unwrap().as_u64(), Some(0));
        assert_eq!(field(&parsed, "b").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(field(&parsed, "missing"), None);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":1} extra",
            "{\"a\":-1}",
            "{\"a\":1.5}",
            "{\"a\":\"unterminated}",
            "{\"a\":\"bad \\q escape\"}",
            "{\"a\":\"\\u12\"}",
            "[1,2]",
        ] {
            assert!(parse_object(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn value_accessors_are_typed() {
        assert_eq!(JsonValue::Num(3).as_str(), None);
        assert_eq!(JsonValue::Str("x".into()).as_u64(), None);
        let err = parse_object("{\"a\":*}").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }
}
