//! Deterministic counters, gauges and fixed-bucket histograms.
//!
//! A [`Registry`] maps metric names to values and renders them as a stable
//! text snapshot: one line per metric, names sorted, integers only. The
//! snapshot is a codec — [`Registry::parse_snapshot`] reads it back — so a
//! metrics file can be diffed, `cmp`-gated in CI and re-loaded by tooling.
//!
//! Everything is integer-valued on purpose. The workspace's costs are
//! counts (measurement pairs, cache hits, queue depths) and simulated
//! nanoseconds; floats would invite formatting drift into the byte-identity
//! gate for zero expressive gain.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Metric {
    Counter(u64),
    Gauge(i64),
    Histogram(Hist),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Hist {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<u64>,
    /// One count per finite bucket, plus a final overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Hist {
    fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Hist {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        let slot = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
    }
}

/// A named collection of metrics with a deterministic text snapshot.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Registry {
    entries: BTreeMap<String, Metric>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to a counter, creating it at zero first if needed.
    ///
    /// # Panics
    ///
    /// Panics if `name` already holds a gauge or histogram.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(v) => *v = v.saturating_add(delta),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Current value of a counter (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            Some(Metric::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Sets a gauge to `value`, creating it if needed.
    ///
    /// # Panics
    ///
    /// Panics if `name` already holds a counter or histogram.
    pub fn gauge_set(&mut self, name: &str, value: i64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert(Metric::Gauge(value))
        {
            Metric::Gauge(v) => *v = value,
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Raises a gauge to `value` if it is below it (peak tracking).
    ///
    /// # Panics
    ///
    /// Panics if `name` already holds a counter or histogram.
    pub fn gauge_max(&mut self, name: &str, value: i64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert(Metric::Gauge(value))
        {
            Metric::Gauge(v) => *v = (*v).max(value),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Current value of a gauge (zero when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        match self.entries.get(name) {
            Some(Metric::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Records `value` into a fixed-bucket histogram, creating it with
    /// `bounds` (inclusive upper bounds, strictly increasing) on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` exists with different bounds or a different type —
    /// bucket layouts are part of the snapshot contract and must not drift
    /// between call sites.
    pub fn observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Hist::new(bounds)))
        {
            Metric::Histogram(h) => {
                assert_eq!(h.bounds, bounds, "metric `{name}` bounds changed");
                h.observe(value);
            }
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Total observation count of a histogram (zero when absent).
    pub fn histogram_count(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            Some(Metric::Histogram(h)) => h.total,
            _ => 0,
        }
    }

    /// Folds `other` into `self`: counters add, gauges take the maximum,
    /// histograms with identical bounds add bucket-wise.
    ///
    /// The fold is commutative and associative, so registries filled by
    /// concurrent workers merge to the same snapshot regardless of order.
    ///
    /// # Panics
    ///
    /// Panics when a name holds different metric types (or histogram
    /// bounds) in the two registries.
    pub fn merge(&mut self, other: &Registry) {
        for (name, metric) in &other.entries {
            match self.entries.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(metric.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    match (slot.get_mut(), metric) {
                        (Metric::Counter(a), Metric::Counter(b)) => *a = a.saturating_add(*b),
                        (Metric::Gauge(a), Metric::Gauge(b)) => *a = (*a).max(*b),
                        (Metric::Histogram(a), Metric::Histogram(b)) => {
                            assert_eq!(a.bounds, b.bounds, "metric `{name}` bounds differ");
                            for (ca, cb) in a.counts.iter_mut().zip(&b.counts) {
                                *ca += cb;
                            }
                            a.total += b.total;
                            a.sum = a.sum.saturating_add(b.sum);
                        }
                        _ => panic!("metric `{name}` has mismatched types"),
                    }
                }
            }
        }
    }

    /// Renders the stable text snapshot: one line per metric, sorted by
    /// name. Counters read `counter <name> <value>`, gauges
    /// `gauge <name> <value>`, histograms
    /// `histogram <name> le<bound>=<count>.. inf=<count> count=<n> sum=<s>`.
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        for (name, metric) in &self.entries {
            match metric {
                Metric::Counter(v) => {
                    let _ = writeln!(out, "counter {name} {v}");
                }
                Metric::Gauge(v) => {
                    let _ = writeln!(out, "gauge {name} {v}");
                }
                Metric::Histogram(h) => {
                    let _ = write!(out, "histogram {name}");
                    for (bound, count) in h.bounds.iter().zip(&h.counts) {
                        let _ = write!(out, " le{bound}={count}");
                    }
                    let _ = writeln!(
                        out,
                        " inf={} count={} sum={}",
                        h.counts[h.bounds.len()],
                        h.total,
                        h.sum
                    );
                }
            }
        }
        out
    }

    /// Parses a snapshot produced by [`Registry::snapshot`] back into a
    /// registry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse_snapshot(text: &str) -> Result<Registry, String> {
        let mut reg = Registry::new();
        for (lineno, line) in text.lines().enumerate() {
            let bad = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
            let mut parts = line.split_whitespace();
            let family = parts.next().ok_or_else(|| bad("empty line"))?;
            let name = parts.next().ok_or_else(|| bad("missing name"))?;
            match family {
                "counter" => {
                    let v: u64 = parts
                        .next()
                        .and_then(|p| p.parse().ok())
                        .ok_or_else(|| bad("bad counter value"))?;
                    reg.entries.insert(name.to_string(), Metric::Counter(v));
                }
                "gauge" => {
                    let v: i64 = parts
                        .next()
                        .and_then(|p| p.parse().ok())
                        .ok_or_else(|| bad("bad gauge value"))?;
                    reg.entries.insert(name.to_string(), Metric::Gauge(v));
                }
                "histogram" => {
                    let mut bounds = Vec::new();
                    let mut counts = Vec::new();
                    let mut total = None;
                    let mut sum = None;
                    for part in parts {
                        let (key, value) = part
                            .split_once('=')
                            .ok_or_else(|| bad("bad histogram field"))?;
                        let value: u64 = value.parse().map_err(|_| bad("bad histogram count"))?;
                        if let Some(bound) = key.strip_prefix("le") {
                            bounds.push(bound.parse().map_err(|_| bad("bad bucket bound"))?);
                            counts.push(value);
                        } else if key == "inf" {
                            counts.push(value);
                        } else if key == "count" {
                            total = Some(value);
                        } else if key == "sum" {
                            sum = Some(value);
                        } else {
                            return Err(bad("unknown histogram field"));
                        }
                    }
                    if counts.len() != bounds.len() + 1 {
                        return Err(bad("missing inf bucket"));
                    }
                    reg.entries.insert(
                        name.to_string(),
                        Metric::Histogram(Hist {
                            bounds,
                            counts,
                            total: total.ok_or_else(|| bad("missing count"))?,
                            sum: sum.ok_or_else(|| bad("missing sum"))?,
                        }),
                    );
                }
                other => return Err(bad(&format!("unknown family `{other}`"))),
            }
        }
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.counter_add("measurements_total", 1936);
        r.counter_add("measurements_total", 64);
        r.gauge_set("pool_queue_depth", 32);
        r.gauge_max("pool_queue_depth", 8); // peak stays 32
        for pairs in [1, 3, 9, 40, 200] {
            r.observe("batch_pairs", &[4, 16, 64], pairs);
        }
        r
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let snap = sample().snapshot();
        assert_eq!(snap, sample().snapshot());
        let lines: Vec<&str> = snap.lines().collect();
        assert_eq!(
            lines,
            vec![
                "histogram batch_pairs le4=2 le16=1 le64=1 inf=1 count=5 sum=253",
                "counter measurements_total 2000",
                "gauge pool_queue_depth 32",
            ]
        );
    }

    #[test]
    fn snapshot_round_trips() {
        let reg = sample();
        let parsed = Registry::parse_snapshot(&reg.snapshot()).unwrap();
        assert_eq!(parsed, reg);
        assert_eq!(parsed.snapshot(), reg.snapshot());
    }

    #[test]
    fn accessors_default_to_zero() {
        let reg = sample();
        assert_eq!(reg.counter("missing"), 0);
        assert_eq!(reg.gauge("missing"), 0);
        assert_eq!(reg.histogram_count("missing"), 0);
        assert_eq!(reg.counter("measurements_total"), 2000);
        assert_eq!(reg.histogram_count("batch_pairs"), 5);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Registry::new();
        a.counter_add("jobs", 3);
        a.gauge_set("depth", 5);
        a.observe("h", &[10], 4);
        let mut b = Registry::new();
        b.counter_add("jobs", 2);
        b.counter_add("dead", 1);
        b.gauge_set("depth", 9);
        b.observe("h", &[10], 40);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.snapshot(), ba.snapshot());
        assert_eq!(ab.counter("jobs"), 5);
        assert_eq!(ab.gauge("depth"), 9);
        assert_eq!(ab.histogram_count("h"), 2);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "unknown x 1",
            "counter only_name",
            "counter name notanumber",
            "gauge name",
            "histogram h le4=1 count=1 sum=1", // missing inf
            "histogram h inf=0 count=0",       // missing sum
        ] {
            assert!(Registry::parse_snapshot(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let mut r = Registry::new();
        r.gauge_set("x", 1);
        r.counter_add("x", 1);
    }
}
