//! Baseline DRAM-mapping reverse-engineering tools.
//!
//! The DRAMDig paper compares against three earlier tools (its Table I):
//!
//! | Tool | Generic | Efficient | Deterministic |
//! |------|---------|-----------|---------------|
//! | Seaborn et al. ([`seaborn`]) | no | no (hours) | yes |
//! | Xiao et al. ([`xiao`]) | no | yes (minutes) | yes |
//! | DRAMA ([`drama`]) | yes | no (hours) | no |
//! | DRAMDig (the `dramdig` crate) | yes | yes | yes |
//!
//! Each baseline is re-implemented here from its published description so
//! the experiment harness can regenerate Table I, Figure 2 and Table III.
//! They observe the memory system through the same [`mem_probe::MemoryProbe`]
//! timing channel as DRAMDig, so all comparisons are apples-to-apples.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod drama;
pub mod outcome;
pub mod seaborn;
pub mod xiao;

pub use drama::{Drama, DramaConfig};
pub use outcome::{BaselineError, ToolOutcome};
pub use seaborn::Seaborn;
pub use xiao::{Xiao, XiaoConfig};
