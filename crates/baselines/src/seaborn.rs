//! Re-implementation of Seaborn & Dullien's approach (Black Hat 2015).
//!
//! Seaborn et al. did not have a timing tool at all: they ran a *blind*
//! rowhammer test (hammering random address pairs for hours), observed which
//! pairs induced bit flips, and combined those observations with an educated
//! guess about the memory controller of their specific Sandy Bridge machine.
//! The result is correct but neither generic nor efficient: the blind test
//! takes hours and must be redone whenever the machine setting changes
//! (Table I of the DRAMDig paper).
//!
//! The re-implementation keeps both ingredients: a blind hammering survey on
//! the simulated machine (which dominates the time cost) and the published
//! Sandy Bridge mapping guess, which is only returned when the machine really
//! is the Sandy Bridge setting the guess was made for.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dram_model::{MachineSetting, Microarch, PhysAddr};
use dram_sim::SimMachine;

use crate::outcome::{BaselineError, ToolOutcome};

/// Configuration of the blind rowhammer survey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeabornConfig {
    /// Number of random address pairs hammered during the blind survey.
    pub survey_pairs: usize,
    /// Hammer iterations per pair.
    pub iterations_per_pair: u32,
    /// RNG seed for pair selection.
    pub rng_seed: u64,
}

impl Default for SeabornConfig {
    fn default() -> Self {
        SeabornConfig {
            survey_pairs: 200,
            iterations_per_pair: 2_000,
            rng_seed: 0x5EAB,
        }
    }
}

/// The Seaborn et al. blind-rowhammer approach.
#[derive(Debug, Clone)]
pub struct Seaborn {
    config: SeabornConfig,
}

impl Seaborn {
    /// Creates an instance with the given survey configuration.
    pub fn new(config: SeabornConfig) -> Self {
        Seaborn { config }
    }

    /// Creates an instance with default configuration.
    pub fn with_defaults() -> Self {
        Seaborn::new(SeabornConfig::default())
    }

    /// Runs the blind survey on the simulated machine and, if the machine is
    /// the Sandy Bridge setting the published guess applies to, returns that
    /// mapping.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::NotApplicable`] for every non-Sandy-Bridge
    /// machine: the approach is machine-specific by construction.
    pub fn run(
        &mut self,
        machine: &mut SimMachine,
        microarch: Microarch,
    ) -> Result<ToolOutcome, BaselineError> {
        let mut outcome = ToolOutcome::new("Seaborn et al.");
        let mut rng = StdRng::seed_from_u64(self.config.rng_seed);
        let capacity = machine.ground_truth().capacity_bytes();
        let start_ns = machine.controller().elapsed_ns();

        // Blind survey: hammer random page pairs and count the flips — this
        // is the "blind rowhammer test" whose results Seaborn et al. analysed
        // by hand, and it is what makes the approach cost hours.
        let mut observed_flips = 0usize;
        let controller = machine.controller_mut();
        for _ in 0..self.config.survey_pairs {
            let a = PhysAddr::new(rng.gen_range(0..capacity) & !0xfff);
            let b = PhysAddr::new(rng.gen_range(0..capacity) & !0xfff);
            for _ in 0..self.config.iterations_per_pair {
                controller.access(a);
                controller.access(b);
            }
            controller.refresh();
            observed_flips += controller.take_flips().len();
        }
        outcome.elapsed_ns = machine.controller().elapsed_ns() - start_ns;
        outcome.measurements = self.config.survey_pairs as u64;
        outcome
            .notes
            .push(format!("blind survey observed {observed_flips} bit flips"));

        if microarch != Microarch::SandyBridge {
            return Err(BaselineError::NotApplicable {
                tool: "Seaborn et al.",
                reason: format!(
                    "the published educated guess only covers Sandy Bridge, not {microarch}"
                ),
            });
        }

        // The published Sandy Bridge guess (machine setting No.1).
        let guess = MachineSetting::no1_sandy_bridge_ddr3_8g();
        let mapping = guess.mapping().clone();
        outcome.functions = mapping.bank_funcs().to_vec();
        outcome.row_bits = mapping.row_bits().to_vec();
        outcome.column_bits = mapping.column_bits().to_vec();
        outcome.mapping = Some(mapping);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::SimConfig;

    fn small_survey() -> SeabornConfig {
        SeabornConfig {
            survey_pairs: 10,
            iterations_per_pair: 200,
            rng_seed: 1,
        }
    }

    #[test]
    fn returns_the_published_guess_on_sandy_bridge() {
        let setting = MachineSetting::no1_sandy_bridge_ddr3_8g();
        let mut machine = SimMachine::from_setting(&setting, SimConfig::fast_rowhammer());
        let outcome = Seaborn::new(small_survey())
            .run(&mut machine, setting.microarch)
            .unwrap();
        assert!(outcome.matches(setting.mapping()));
        assert!(outcome.elapsed_ns > 0);
    }

    #[test]
    fn refuses_other_microarchitectures() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let mut machine = SimMachine::from_setting(&setting, SimConfig::fast_rowhammer());
        let err = Seaborn::new(small_survey())
            .run(&mut machine, setting.microarch)
            .unwrap_err();
        assert!(matches!(err, BaselineError::NotApplicable { .. }));
    }

    #[test]
    fn survey_cost_scales_with_pairs() {
        let setting = MachineSetting::no1_sandy_bridge_ddr3_8g();
        let mut machine = SimMachine::from_setting(&setting, SimConfig::fast_rowhammer());
        let short = Seaborn::new(SeabornConfig {
            survey_pairs: 5,
            iterations_per_pair: 100,
            rng_seed: 1,
        })
        .run(&mut machine, setting.microarch)
        .unwrap();
        let mut machine = SimMachine::from_setting(&setting, SimConfig::fast_rowhammer());
        let long = Seaborn::new(SeabornConfig {
            survey_pairs: 50,
            iterations_per_pair: 100,
            rng_seed: 1,
        })
        .run(&mut machine, setting.microarch)
        .unwrap();
        assert!(long.elapsed_ns > short.elapsed_ns * 5);
    }
}
