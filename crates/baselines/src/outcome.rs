//! Common result and error types shared by all baseline tools.

use std::fmt;

use dram_model::{AddressMapping, XorFunc};

/// What a reverse-engineering run produced, in a shape that the experiment
/// harness can compare across tools.
#[derive(Debug, Clone)]
pub struct ToolOutcome {
    /// Name of the tool that produced the outcome.
    pub tool: &'static str,
    /// The recovered full mapping, if the tool produced one.
    pub mapping: Option<AddressMapping>,
    /// The recovered bank address functions (possibly incomplete or wrong).
    pub functions: Vec<XorFunc>,
    /// The physical-address bits the tool believes index rows (possibly
    /// incomplete — e.g. DRAMA never recovers row bits that are shared with
    /// bank functions).
    pub row_bits: Vec<u8>,
    /// The physical-address bits the tool believes index columns.
    pub column_bits: Vec<u8>,
    /// Number of pair-latency measurements issued.
    pub measurements: u64,
    /// Simulated nanoseconds spent.
    pub elapsed_ns: u64,
    /// Free-form notes (e.g. why the tool stopped early).
    pub notes: Vec<String>,
}

impl ToolOutcome {
    /// Creates an outcome shell for a tool.
    pub fn new(tool: &'static str) -> Self {
        ToolOutcome {
            tool,
            mapping: None,
            functions: Vec::new(),
            row_bits: Vec::new(),
            column_bits: Vec::new(),
            measurements: 0,
            elapsed_ns: 0,
            notes: Vec::new(),
        }
    }

    /// Elapsed simulated time in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_ns as f64 / 1e9
    }

    /// Returns `true` if the recovered mapping is functionally equivalent to
    /// `truth` (same bank partition and the same row/column bits).
    pub fn matches(&self, truth: &AddressMapping) -> bool {
        self.mapping
            .as_ref()
            .is_some_and(|m| m.equivalent_to(truth))
    }

    /// Returns `true` if the recovered bank functions induce the same bank
    /// partition as `truth`, ignoring rows and columns.
    pub fn bank_partition_matches(&self, truth: &AddressMapping) -> bool {
        if self.functions.len() != truth.bank_funcs().len() {
            return false;
        }
        let mine = dram_model::gf2::Gf2Matrix::from_funcs(&self.functions);
        let theirs = dram_model::gf2::Gf2Matrix::from_funcs(truth.bank_funcs());
        self.functions.iter().all(|f| theirs.spans(f.mask()))
            && truth.bank_funcs().iter().all(|f| mine.spans(f.mask()))
    }
}

impl fmt::Display for ToolOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} functions, {} measurements, {:.1} s",
            self.tool,
            self.functions.len(),
            self.measurements,
            self.elapsed_seconds()
        )?;
        if let Some(m) = &self.mapping {
            write!(f, "; mapping {m}")?;
        }
        Ok(())
    }
}

/// Errors reported by baseline tools.
#[derive(Debug)]
#[non_exhaustive]
pub enum BaselineError {
    /// The tool is not applicable to this machine (not generic).
    NotApplicable {
        /// The tool that refused to run.
        tool: &'static str,
        /// Why it cannot handle this machine.
        reason: String,
    },
    /// The tool got stuck and gave up after exhausting its budget, the
    /// failure mode the paper observed for Xiao et al. and DRAMA.
    Stuck {
        /// The tool that got stuck.
        tool: &'static str,
        /// What it was doing when it gave up.
        reason: String,
        /// Measurements spent before giving up.
        measurements: u64,
        /// Simulated nanoseconds spent before giving up.
        elapsed_ns: u64,
    },
    /// The timing channel could not be calibrated.
    Calibration(mem_probe::ProbeError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::NotApplicable { tool, reason } => {
                write!(f, "{tool} is not applicable to this machine: {reason}")
            }
            BaselineError::Stuck {
                tool,
                reason,
                measurements,
                ..
            } => write!(
                f,
                "{tool} got stuck after {measurements} measurements: {reason}"
            ),
            BaselineError::Calibration(e) => write!(f, "calibration failed: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Calibration(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mem_probe::ProbeError> for BaselineError {
    fn from(e: mem_probe::ProbeError) -> Self {
        BaselineError::Calibration(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::MachineSetting;

    #[test]
    fn matches_and_partition_matches() {
        let truth = MachineSetting::no4_haswell_ddr3_4g();
        let mut outcome = ToolOutcome::new("test");
        assert!(!outcome.matches(truth.mapping()));
        outcome.mapping = Some(truth.mapping().clone());
        outcome.functions = truth.mapping().bank_funcs().to_vec();
        assert!(outcome.matches(truth.mapping()));
        assert!(outcome.bank_partition_matches(truth.mapping()));
        // A wrong function count never matches.
        outcome.functions.pop();
        assert!(!outcome.bank_partition_matches(truth.mapping()));
    }

    #[test]
    fn display_mentions_tool_and_cost() {
        let mut o = ToolOutcome::new("drama");
        o.measurements = 10;
        o.elapsed_ns = 2_000_000_000;
        let s = o.to_string();
        assert!(s.contains("drama"));
        assert!(s.contains("2.0 s"));
    }

    #[test]
    fn errors_format() {
        let e = BaselineError::NotApplicable {
            tool: "xiao",
            reason: "DDR4".into(),
        };
        assert!(e.to_string().contains("xiao"));
        let e = BaselineError::Stuck {
            tool: "drama",
            reason: "budget".into(),
            measurements: 5,
            elapsed_ns: 1,
        };
        assert!(e.to_string().contains("stuck"));
    }
}
