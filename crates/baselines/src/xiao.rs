//! Re-implementation of the approach of Xiao et al.
//! (USENIX Security 2016, "One Bit Flips, One Cloud Flops").
//!
//! Xiao et al. also use the row-buffer timing channel, and they are fast —
//! but their search assumes every bank address function XORs **exactly two**
//! physical address bits (one low "bank" bit with one higher bit), which was
//! true for the Sandy Bridge / Ivy Bridge single-DIMM machines they studied.
//! On machines whose memory controller hashes many bits into one function
//! (the 6- and 7-bit channel/rank functions of Table II machines No.2, No.5,
//! No.6 and No.9) the search can never complete, which is exactly the
//! behaviour the DRAMDig authors observed when running the shared code
//! ("the running code was stuck after resolving (16, 20), (17, 21), (18, 22)
//! as 3 of 6 bank address functions").

use rand::rngs::StdRng;
use rand::SeedableRng;

use dram_model::{gf2, AddressMapping, DdrGeneration, PhysAddr, SystemInfo, XorFunc};
use mem_probe::{ConflictOracle, LatencyCalibration, MemoryProbe};

use crate::outcome::{BaselineError, ToolOutcome};

/// Tuning knobs of the Xiao et al. re-implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct XiaoConfig {
    /// Number of calibration samples.
    pub calibration_samples: usize,
    /// Measurement budget spent searching for the missing functions before
    /// the tool is considered stuck.
    pub stuck_budget: u64,
    /// Whether the tool refuses DDR4 machines (the original targeted DDR3
    /// cloud hosts; running it on DDR4 was not supported).
    pub ddr3_only: bool,
    /// RNG seed for base-address selection.
    pub rng_seed: u64,
}

impl Default for XiaoConfig {
    fn default() -> Self {
        XiaoConfig {
            calibration_samples: 300,
            stuck_budget: 20_000,
            ddr3_only: true,
            rng_seed: 0x1A0,
        }
    }
}

/// The Xiao et al. reverse-engineering tool.
#[derive(Debug, Clone)]
pub struct Xiao {
    config: XiaoConfig,
}

impl Xiao {
    /// Creates an instance with the given configuration.
    pub fn new(config: XiaoConfig) -> Self {
        Xiao { config }
    }

    /// Creates an instance with default configuration.
    pub fn with_defaults() -> Self {
        Xiao::new(XiaoConfig::default())
    }

    /// Runs the tool against a probe.
    ///
    /// # Errors
    ///
    /// * [`BaselineError::NotApplicable`] on DDR4 machines (when
    ///   `ddr3_only` is set, the default).
    /// * [`BaselineError::Stuck`] when two-bit functions cannot explain the
    ///   machine's bank hashing — the failure the DRAMDig paper reports for
    ///   machine settings No.2 and No.6–No.9.
    /// * [`BaselineError::Calibration`] if the timing channel cannot be
    ///   calibrated.
    pub fn run<P: MemoryProbe>(
        &mut self,
        probe: &mut P,
        system: &SystemInfo,
    ) -> Result<ToolOutcome, BaselineError> {
        if self.config.ddr3_only && system.generation == DdrGeneration::Ddr4 {
            return Err(BaselineError::NotApplicable {
                tool: "Xiao et al.",
                reason: "the tool targets DDR3 systems".into(),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.config.rng_seed);
        let mut outcome = ToolOutcome::new("Xiao et al.");
        let start = probe.stats();
        let address_bits = system.address_bits();

        let calibration = LatencyCalibration::calibrate(
            &mut *probe,
            self.config.calibration_samples,
            self.config.rng_seed,
        )?;
        let mut oracle = ConflictOracle::new(&mut *probe, calibration);
        let memory = oracle.probe().memory().clone();

        // Row bits via single-bit flips, exactly like DRAMDig's Step 1.
        let mut row_bits: Vec<u8> = Vec::new();
        for bit in 0..address_bits {
            if let Some((a, b)) = find_pair(&memory, 1u64 << bit, &mut rng) {
                if oracle.is_sbdr(a, b) {
                    row_bits.push(bit);
                }
            }
        }
        // Column bits via row-bit + candidate-bit double flips.
        let mut column_bits: Vec<u8> = Vec::new();
        if let Some(&row_ref) = row_bits.first() {
            for bit in 0..address_bits {
                if row_bits.contains(&bit) {
                    continue;
                }
                let mask = (1u64 << bit) | (1u64 << row_ref);
                if let Some((a, b)) = find_pair(&memory, mask, &mut rng) {
                    if oracle.is_sbdr(a, b) {
                        column_bits.push(bit);
                    }
                }
            }
        }
        let remaining: Vec<u8> = (0..address_bits)
            .filter(|b| !row_bits.contains(b) && !column_bits.contains(b))
            .collect();

        // Two-bit function search: pair each remaining low bit with a higher
        // bit such that flipping both keeps the latency high (same bank,
        // different row) — the structure Xiao et al. assume.
        let mut functions: Vec<XorFunc> = Vec::new();
        let expected = system.geometry.bank_bits() as usize;
        for &low in &remaining {
            let mut found = None;
            for &high in remaining.iter().filter(|&&h| h > low) {
                let candidate = XorFunc::from_bits(&[low, high]);
                if functions.iter().any(|f| f.contains_bit(high)) {
                    continue;
                }
                let Some((a, b)) = find_pair(&memory, candidate.mask(), &mut rng) else {
                    continue;
                };
                if oracle.is_sbdr(a, b) {
                    found = Some(candidate);
                    break;
                }
            }
            if let Some(f) = found {
                if !gf2::is_linear_combination(f, &functions) {
                    functions.push(f);
                }
            }
            if functions.len() == expected {
                break;
            }
        }

        let spent = oracle.stats();
        outcome.measurements = spent.measurements - start.measurements;
        outcome.elapsed_ns = spent.elapsed_ns - start.elapsed_ns;
        outcome.row_bits = row_bits.clone();
        outcome.column_bits = column_bits.clone();
        outcome.functions = functions.clone();

        if functions.len() < expected {
            // The remaining functions involve more than two bits: the
            // original tool loops forever here; we charge the configured
            // "stuck" budget and give up, as the DRAMDig authors had to.
            let extra_ns = self.config.stuck_budget * 400;
            return Err(BaselineError::Stuck {
                tool: "Xiao et al.",
                reason: format!(
                    "resolved only {} of {expected} bank address functions; the rest are not \
                     two-bit XORs",
                    functions.len()
                ),
                measurements: outcome.measurements + self.config.stuck_budget,
                elapsed_ns: outcome.elapsed_ns + extra_ns,
            });
        }

        // Shared row bits: the higher bit of each two-bit function.
        for f in &functions {
            let b = f.bits();
            if !row_bits.contains(&b[1]) {
                row_bits.push(b[1]);
            }
        }
        row_bits.sort_unstable();
        outcome.row_bits = row_bits.clone();
        match AddressMapping::new(functions, row_bits, column_bits) {
            Ok(mapping) => outcome.mapping = Some(mapping),
            Err(e) => outcome
                .notes
                .push(format!("could not assemble a bijective mapping: {e}")),
        }
        Ok(outcome)
    }
}

fn find_pair(
    memory: &dram_sim::PhysMemory,
    flip_mask: u64,
    rng: &mut StdRng,
) -> Option<(PhysAddr, PhysAddr)> {
    let page_mask = flip_mask >> dram_model::PAGE_SHIFT << dram_model::PAGE_SHIFT;
    for _ in 0..16 {
        let base = memory.random_page(rng)?;
        let buddy = base ^ flip_mask;
        if page_mask == 0 || memory.contains(buddy) {
            return Some((base, buddy));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::MachineSetting;
    use dram_sim::{PhysMemory, SimConfig, SimMachine};
    use mem_probe::SimProbe;

    fn run_on(number: u8) -> Result<ToolOutcome, BaselineError> {
        let setting = MachineSetting::by_number(number).unwrap();
        let machine = SimMachine::from_setting(&setting, SimConfig::default());
        let mut probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
        Xiao::with_defaults().run(&mut probe, &setting.system)
    }

    #[test]
    fn succeeds_on_single_dimm_ddr3_machines() {
        for number in [3u8, 4] {
            let setting = MachineSetting::by_number(number).unwrap();
            let outcome = run_on(number).unwrap();
            assert!(
                outcome.matches(setting.mapping()),
                "{}: functions {:?}",
                setting.label(),
                outcome.functions
            );
        }
    }

    #[test]
    fn gets_stuck_on_machines_with_wide_functions() {
        // Machines No.2 and No.5 have a 7-bit channel hash that two-bit
        // functions cannot express.
        for number in [2u8, 5] {
            let err = run_on(number).unwrap_err();
            assert!(
                matches!(err, BaselineError::Stuck { .. }),
                "machine {number}"
            );
        }
    }

    #[test]
    fn refuses_ddr4_machines() {
        for number in [6u8, 7, 8, 9] {
            let err = run_on(number).unwrap_err();
            assert!(
                matches!(err, BaselineError::NotApplicable { .. }),
                "machine {number}"
            );
        }
    }

    #[test]
    fn forced_ddr4_still_gets_stuck_on_column_bank_functions() {
        // Even when forced to run on DDR4, machine No.7's function (6, 13)
        // pairs a column bit with a bank bit, which never shows up as a
        // row-buffer conflict in a two-bit flip — the tool resolves the other
        // two functions and then hangs, matching the paper's observation that
        // the shared code was stuck on the No.6–No.9 settings.
        let setting = MachineSetting::no7_skylake_ddr4_4g();
        let machine = SimMachine::from_setting(&setting, SimConfig::default());
        let mut probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
        let config = XiaoConfig {
            ddr3_only: false,
            ..XiaoConfig::default()
        };
        let err = Xiao::new(config)
            .run(&mut probe, &setting.system)
            .unwrap_err();
        match err {
            BaselineError::Stuck { reason, .. } => assert!(reason.contains("2 of 3")),
            other => panic!("expected Stuck, got {other}"),
        }
    }
}
