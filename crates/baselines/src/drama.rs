//! Re-implementation of DRAMA's brute-force reverse engineering
//! (Pessl et al., USENIX Security 2016).
//!
//! DRAMA is generic (it works on any Intel machine) but *blind*: it samples a
//! random pool of addresses, collects same-bank sets through the timing
//! channel, and brute-forces XOR functions over **all** physical address bits
//! instead of a knowledge-narrowed candidate set. Consequences reproduced
//! here, mirroring Section IV of the DRAMDig paper:
//!
//! * **Slow** — the blind pool and repeated set collection cost far more
//!   measurements than DRAMDig's targeted selection (Figure 2).
//! * **Not deterministic / not always correct** — without the pile-size and
//!   numbering sanity checks, the reported function set depends on the random
//!   pool; functions wider than the brute-force budget (the 7-bit
//!   channel/rank hash of machines No.2/No.5) are never found, and row bits
//!   shared with bank functions are never recovered because DRAMA has no
//!   fine-grained Step 3.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use dram_model::{bits, gf2, AddressMapping, PhysAddr, XorFunc};
use mem_probe::{ConflictOracle, LatencyCalibration, MemoryProbe};

use crate::outcome::{BaselineError, ToolOutcome};

/// Tuning knobs of the DRAMA re-implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct DramaConfig {
    /// Number of random addresses in the blind pool.
    pub pool_size: usize,
    /// Upper bound on the number of same-bank sets collected.
    pub sets_to_collect: usize,
    /// Fraction of the blind pool that must be covered by collected sets
    /// before the brute force starts. Because base addresses are drawn
    /// blindly, machines with more banks need many more sets to reach the
    /// same coverage (a coupon-collector effect), which is what makes DRAMA
    /// slow on the larger Table-II settings.
    pub target_coverage: f64,
    /// Minimum set size for a collected set to be kept.
    pub min_set_size: usize,
    /// How many independent set-collection passes are run. DRAMA's output is
    /// not deterministic, so in practice the collection is repeated and the
    /// results cross-checked; every pass pays the full measurement cost.
    pub verification_passes: usize,
    /// Maximum number of bits per brute-forced XOR function.
    pub max_function_bits: usize,
    /// Fraction of collected sets a candidate mask must be constant on
    /// (DRAMA tolerates a few noisy sets instead of requiring all of them).
    pub set_agreement: f64,
    /// Lowest physical-address bit included in the brute force (bits below
    /// the cache-line size cannot be distinguished by the timing channel).
    pub lowest_bit: u8,
    /// Number of calibration samples.
    pub calibration_samples: usize,
    /// Hard cap on pair measurements before the tool declares itself stuck.
    pub measurement_budget: u64,
    /// Seed for the blind pool and base selection.
    pub rng_seed: u64,
}

impl Default for DramaConfig {
    fn default() -> Self {
        DramaConfig {
            pool_size: 6000,
            sets_to_collect: 512,
            target_coverage: 0.95,
            min_set_size: 12,
            verification_passes: 2,
            max_function_bits: 6,
            set_agreement: 0.9,
            lowest_bit: 6,
            calibration_samples: 400,
            measurement_budget: 3_000_000,
            rng_seed: 0x000D_2A3A,
        }
    }
}

impl DramaConfig {
    /// A configuration with a smaller measurement budget for tests.
    pub fn fast() -> Self {
        DramaConfig {
            pool_size: 1500,
            sets_to_collect: 192,
            target_coverage: 0.8,
            verification_passes: 1,
            calibration_samples: 200,
            ..DramaConfig::default()
        }
    }
}

/// The DRAMA reverse-engineering tool.
#[derive(Debug, Clone)]
pub struct Drama {
    config: DramaConfig,
}

impl Drama {
    /// Creates a DRAMA instance with the given configuration.
    pub fn new(config: DramaConfig) -> Self {
        Drama { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramaConfig {
        &self.config
    }

    /// Runs DRAMA against a probe.
    ///
    /// # Errors
    ///
    /// * [`BaselineError::Calibration`] if the threshold cannot be calibrated.
    /// * [`BaselineError::Stuck`] if the measurement budget is exhausted
    ///   before enough same-bank sets are collected.
    pub fn run<P: MemoryProbe>(
        &mut self,
        probe: &mut P,
        address_bits: u8,
    ) -> Result<ToolOutcome, BaselineError> {
        let mut rng = StdRng::seed_from_u64(self.config.rng_seed);
        let mut outcome = ToolOutcome::new("DRAMA");
        let start = probe.stats();

        let calibration = LatencyCalibration::calibrate(
            &mut *probe,
            self.config.calibration_samples,
            self.config.rng_seed ^ 0xD2,
        )?;
        let mut oracle = ConflictOracle::new(&mut *probe, calibration);

        // --- Blind address pool -------------------------------------------
        let memory = oracle.probe().memory().clone();
        let mut pool: Vec<PhysAddr> = Vec::with_capacity(self.config.pool_size);
        for _ in 0..self.config.pool_size {
            let Some(page) = memory.random_page(&mut rng) else {
                break;
            };
            // Random cache-line offset so sub-page bits are represented.
            let offset = u64::from(rng.gen_range(0u32..64)) * 64;
            pool.push(page + offset);
        }
        pool.sort_unstable();
        pool.dedup();

        // --- Same-bank set collection --------------------------------------
        // Base addresses are picked blindly, so the collection only stops
        // once the union of the sets covers most of the pool — on a 64-bank
        // machine that takes several times more sets (and therefore time)
        // than on an 8-bank one.
        let mut sets: Vec<Vec<PhysAddr>> = Vec::new();
        let coverage_goal = (self.config.target_coverage * pool.len() as f64) as usize;
        for _pass in 0..self.config.verification_passes.max(1) {
            let mut covered: std::collections::HashSet<PhysAddr> = std::collections::HashSet::new();
            let mut pass_sets = 0usize;
            while pass_sets < self.config.sets_to_collect && covered.len() < coverage_goal {
                if oracle.stats().measurements - start.measurements > self.config.measurement_budget
                {
                    let spent = oracle.stats();
                    return Err(BaselineError::Stuck {
                        tool: "DRAMA",
                        reason: format!(
                            "measurement budget exhausted after {} sets covering {}/{} pool addresses",
                            sets.len(),
                            covered.len(),
                            pool.len()
                        ),
                        measurements: spent.measurements - start.measurements,
                        elapsed_ns: spent.elapsed_ns - start.elapsed_ns,
                    });
                }
                let base = *pool.choose(&mut rng).expect("pool is non-empty");
                let mut set = vec![base];
                for &other in pool.iter().filter(|&&a| a != base) {
                    if oracle.is_sbdr(base, other) {
                        set.push(other);
                    }
                }
                if set.len() >= self.config.min_set_size {
                    covered.extend(set.iter().copied());
                    sets.push(set);
                    pass_sets += 1;
                }
            }
        }

        // --- Brute-force XOR functions over all address bits ----------------
        let candidate_bits: Vec<u8> = (self.config.lowest_bit..address_bits).collect();
        let max_bits = self.config.max_function_bits.min(candidate_bits.len());
        let required = (sets.len() as f64 * self.config.set_agreement).ceil() as usize;
        let consistent = brute_force_masks(&sets, &pool, &candidate_bits, max_bits, required);
        let functions = gf2::remove_redundant(&consistent);
        outcome.functions = functions.clone();

        // --- Row bits: single-bit flips only (no fine-grained step) --------
        let func_union: u64 = functions.iter().fold(0, |m, f| m | f.mask());
        let mut row_bits = Vec::new();
        for bit in 0..address_bits {
            if func_union >> bit & 1 == 1 {
                continue; // DRAMA cannot classify bits inside its functions
            }
            let Some((a, b)) = find_pair(&memory, 1u64 << bit, &mut rng) else {
                continue;
            };
            if oracle.is_sbdr(a, b) {
                row_bits.push(bit);
            }
        }
        let column_bits: Vec<u8> = (0..address_bits)
            .filter(|b| !row_bits.contains(b) && func_union >> b & 1 == 0)
            .collect();
        outcome.row_bits = row_bits.clone();
        outcome.column_bits = column_bits.clone();

        // --- Assemble a full mapping when the pieces happen to fit ----------
        match AddressMapping::new(functions, row_bits, column_bits) {
            Ok(mapping) => outcome.mapping = Some(mapping),
            Err(e) => outcome
                .notes
                .push(format!("could not assemble a bijective mapping: {e}")),
        }

        let spent = oracle.stats();
        outcome.measurements = spent.measurements - start.measurements;
        outcome.elapsed_ns = spent.elapsed_ns - start.elapsed_ns;
        outcome.notes.push(format!(
            "{} sets collected from a blind pool of {} addresses",
            sets.len(),
            pool.len()
        ));
        Ok(outcome)
    }
}

/// Orthogonal-complement dimension above which a set's agreeing masks are
/// no longer enumerated through the bitsliced span walk (2^dim Gray steps)
/// but counted against the candidate list instead.
const SPAN_DIM_LIMIT: usize = 18;

/// DRAMA's brute force: every XOR mask of up to `max_bits` candidate bits
/// that is constant on at least `required` of the collected sets and not
/// constant over the whole pool, in combination-enumeration order.
///
/// A mask is constant on a set exactly when it is orthogonal to the set's
/// member-difference space, so instead of testing every candidate mask
/// against every set (the scalar twin below), each set is collapsed to a
/// row-echelon difference basis over the candidate bits and its agreeing
/// masks are read off as the low-weight span of the basis's orthogonal
/// complement — a bitsliced Gray-code walk over 2^(n - rank) vectors, which
/// for a genuine same-bank set is a few dozen candidates rather than the
/// ~C(n, max_bits) combinations the scalar sweep grinds through.
fn brute_force_masks(
    sets: &[Vec<PhysAddr>],
    pool: &[PhysAddr],
    candidate_bits: &[u8],
    max_bits: usize,
    required: usize,
) -> Vec<XorFunc> {
    let n = candidate_bits.len();
    // Difference bases projected onto the candidate bits (bit i of a
    // projected value is candidate bit i), split by complement dimension.
    let mut enumerable: Vec<gf2::PileBasis> = Vec::new();
    let mut wide: Vec<gf2::PileBasis> = Vec::new();
    for set in sets {
        let basis = gf2::PileBasis::from_members(
            bits::gather_bits(set[0].raw(), candidate_bits),
            set[1..]
                .iter()
                .map(|a| bits::gather_bits(a.raw(), candidate_bits)),
        );
        if n - basis.rank() <= SPAN_DIM_LIMIT {
            enumerable.push(basis);
        } else {
            wide.push(basis);
        }
    }
    // Every qualifying mask agrees with at least `required` sets, so as long
    // as the wide sets alone cannot reach the quorum, it agrees with at
    // least one enumerable set and therefore appears in a span walk below.
    // Otherwise (including the no-sets case, where every mask qualifies
    // vacuously) fall back to the exhaustive sweep.
    if required == 0 || wide.len() >= required {
        return brute_force_masks_scalar(sets, pool, candidate_bits, max_bits, required);
    }
    let mut agreement: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for basis in &enumerable {
        let complement = gf2::nullspace_basis(basis.rows(), n);
        for mask in gf2::bitslice::span_survivors(&complement, max_bits) {
            *agreement.entry(mask).or_insert(0) += 1;
        }
    }
    for basis in &wide {
        for (mask, count) in agreement.iter_mut() {
            if basis.mask_constant(*mask) {
                *count += 1;
            }
        }
    }
    let mut masks: Vec<u64> = agreement
        .into_iter()
        .filter(|&(_, count)| count >= required)
        .map(|(mask, _)| bits::scatter_bits(mask, candidate_bits))
        .collect();
    masks.sort_unstable_by(|&a, &b| bits::cmp_masks_enumeration_order(a, b));
    // A useful function must not be constant over the whole pool (that
    // would carry no bank information).
    masks.retain(|&mask| {
        let first = pool[0].masked_parity(mask);
        !pool.iter().all(|a| a.masked_parity(mask) == first)
    });
    masks.into_iter().map(XorFunc::from_mask).collect()
}

/// The seed implementation of the brute force: tests every combination of
/// candidate bits against every set member. Kept as the reference the span
/// path is differentially tested against.
fn brute_force_masks_scalar(
    sets: &[Vec<PhysAddr>],
    pool: &[PhysAddr],
    candidate_bits: &[u8],
    max_bits: usize,
    required: usize,
) -> Vec<XorFunc> {
    let mut consistent: Vec<XorFunc> = Vec::new();
    for size in 1..=max_bits {
        for combo in bits::Combinations::new(candidate_bits, size) {
            let mask = bits::mask_of(&combo);
            let agreeing = sets
                .iter()
                .filter(|set| {
                    let expected = set[0].masked_parity(mask);
                    set.iter().all(|a| a.masked_parity(mask) == expected)
                })
                .count();
            if agreeing < required {
                continue;
            }
            let first = pool[0].masked_parity(mask);
            if pool.iter().all(|a| a.masked_parity(mask) == first) {
                continue;
            }
            consistent.push(XorFunc::from_mask(mask));
        }
    }
    consistent
}

fn find_pair(
    memory: &dram_sim::PhysMemory,
    flip_mask: u64,
    rng: &mut StdRng,
) -> Option<(PhysAddr, PhysAddr)> {
    let page_mask = flip_mask >> dram_model::PAGE_SHIFT << dram_model::PAGE_SHIFT;
    for _ in 0..16 {
        let base = memory.random_page(rng)?;
        let buddy = base ^ flip_mask;
        if page_mask == 0 || memory.contains(buddy) {
            return Some((base, buddy));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::MachineSetting;
    use dram_sim::{PhysMemory, SimConfig, SimMachine};
    use mem_probe::SimProbe;

    fn run_on(number: u8, config: DramaConfig) -> (ToolOutcome, MachineSetting) {
        let setting = MachineSetting::by_number(number).unwrap();
        let machine = SimMachine::from_setting(&setting, SimConfig::default());
        let mut probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
        let outcome = Drama::new(config)
            .run(&mut probe, setting.system.address_bits())
            .unwrap();
        (outcome, setting)
    }

    #[test]
    fn recovers_bank_partition_on_simple_ddr3_machine() {
        let (outcome, setting) = run_on(4, DramaConfig::fast());
        assert!(
            outcome.bank_partition_matches(setting.mapping()),
            "functions: {:?}",
            outcome.functions
        );
        // DRAMA misses the shared row bits 16..18 — only the coarse rows.
        assert!(!outcome.row_bits.contains(&16));
        assert!(outcome.row_bits.contains(&19));
        assert!(outcome.measurements > 0);
    }

    #[test]
    fn misses_the_seven_bit_function_on_ivy_bridge_dual_rank() {
        // Machine No.2 has a 7-bit channel hash; DRAMA's brute force stops at
        // 6 bits and therefore cannot recover the full bank partition.
        let (outcome, setting) = run_on(2, DramaConfig::fast());
        assert!(!outcome.bank_partition_matches(setting.mapping()));
        assert!(
            outcome.functions.len() < setting.mapping().bank_funcs().len()
                || outcome.mapping.is_none()
        );
    }

    #[test]
    fn costs_more_measurements_than_the_pool_size() {
        let (outcome, _) = run_on(7, DramaConfig::fast());
        let cfg = DramaConfig::fast();
        assert!(outcome.measurements as usize > cfg.pool_size);
        assert!(outcome.elapsed_seconds() > 0.0);
    }

    #[test]
    fn span_brute_force_matches_scalar_on_table_ii_sets() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Same-bank sets sampled from each Table-II ground truth, plus a
        // few corrupted sets (random members) so the agreement quorum and
        // the wide-complement fallback paths are exercised.
        for number in 1..=9u8 {
            let setting = MachineSetting::by_number(number).unwrap();
            let mapping = setting.mapping();
            let address_bits = setting.system.address_bits();
            let mut rng = StdRng::seed_from_u64(0xD2A3 ^ u64::from(number));
            let mut pool: Vec<PhysAddr> = (0..600)
                .map(|_| PhysAddr::new((rng.gen::<u64>() % (1u64 << address_bits)) & !63))
                .collect();
            pool.sort_unstable();
            pool.dedup();
            let mut sets: Vec<Vec<PhysAddr>> = Vec::new();
            for _ in 0..12 {
                let base = pool[rng.gen::<u64>() as usize % pool.len()];
                let bank = mapping.bank_of(base);
                let mut set = vec![base];
                set.extend(
                    pool.iter()
                        .filter(|&&a| a != base && mapping.bank_of(a) == bank),
                );
                if set.len() >= 4 {
                    sets.push(set);
                }
            }
            // Two noisy sets: random members, and a tiny set whose
            // complement is too wide for the span walk.
            for len in [40usize, 8] {
                let set: Vec<PhysAddr> = (0..len)
                    .map(|_| pool[rng.gen::<u64>() as usize % pool.len()])
                    .collect();
                sets.push(set);
            }
            let candidate_bits: Vec<u8> = (6..address_bits).collect();
            for agreement in [0.9f64, 0.5] {
                let required = (sets.len() as f64 * agreement).ceil() as usize;
                let fast = brute_force_masks(&sets, &pool, &candidate_bits, 6, required);
                let scalar = brute_force_masks_scalar(&sets, &pool, &candidate_bits, 6, required);
                assert_eq!(fast, scalar, "machine {number} agreement {agreement}");
            }
        }
    }

    #[test]
    fn span_brute_force_matches_scalar_with_no_sets() {
        let pool: Vec<PhysAddr> = (0..64).map(|i| PhysAddr::new(i * 64)).collect();
        let candidate_bits: Vec<u8> = (6..20).collect();
        let fast = brute_force_masks(&[], &pool, &candidate_bits, 3, 0);
        let scalar = brute_force_masks_scalar(&[], &pool, &candidate_bits, 3, 0);
        assert_eq!(fast, scalar);
    }

    #[test]
    fn stuck_when_budget_is_too_small() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let machine = SimMachine::from_setting(&setting, SimConfig::default());
        let mut probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
        let config = DramaConfig {
            measurement_budget: 500,
            ..DramaConfig::fast()
        };
        let err = Drama::new(config)
            .run(&mut probe, setting.system.address_bits())
            .unwrap_err();
        assert!(matches!(err, BaselineError::Stuck { .. }));
    }
}
