//! Charge-leakage model producing rowhammer bit flips.
//!
//! Real DRAM cells adjacent to frequently activated ("hammered") rows leak
//! charge and may flip before the next refresh. The model here tracks, for
//! every victim row, how many times each of its two neighbouring rows was
//! activated within the current refresh window. At the end of the window the
//! victim flips a pseudo-random number of bits whose expectation grows with
//! the aggressor pressure, is dramatically higher when *both* neighbours were
//! hammered (double-sided rowhammer) and is scaled by a per-row vulnerability
//! factor so that different victim rows behave differently, as on real chips.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::Rng;

use dram_model::DramAddress;

/// Parameters of the charge-leakage model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlipModelParams {
    /// Activations of a single neighbour within one refresh window needed
    /// before the victim can flip at all.
    pub single_sided_threshold: u32,
    /// Activations of *each* neighbour needed for the (much stronger)
    /// double-sided effect.
    pub double_sided_threshold: u32,
    /// Number of cells per row that the model samples for flips.
    pub cells_per_row: u32,
    /// Per-cell flip probability at exactly the single-sided threshold.
    pub base_flip_probability: f64,
    /// Multiplier applied to the per-cell probability under double-sided
    /// hammering.
    pub double_sided_factor: f64,
    /// Fraction of rows that are vulnerable at all (many real rows never
    /// flip).
    pub vulnerable_row_fraction: f64,
}

impl Default for FlipModelParams {
    fn default() -> Self {
        FlipModelParams {
            single_sided_threshold: 50_000,
            double_sided_threshold: 25_000,
            cells_per_row: 8192 * 8,
            base_flip_probability: 2e-6,
            double_sided_factor: 40.0,
            vulnerable_row_fraction: 0.4,
        }
    }
}

impl FlipModelParams {
    /// Scaled-down parameters for fast experiments (see
    /// [`crate::SimConfig::fast_rowhammer`]).
    pub fn fast() -> Self {
        FlipModelParams {
            single_sided_threshold: 2_200,
            double_sided_threshold: 1_200,
            cells_per_row: 8192 * 8,
            base_flip_probability: 2e-6,
            double_sided_factor: 40.0,
            vulnerable_row_fraction: 0.4,
        }
    }
}

/// A single observed bit flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitFlip {
    /// Bank containing the victim row.
    pub bank: u32,
    /// Victim row index.
    pub row: u32,
    /// Byte offset of the flipped cell within the row.
    pub byte: u32,
    /// Bit index (0–7) within the byte.
    pub bit: u8,
    /// `true` for a 1→0 flip, `false` for 0→1.
    pub one_to_zero: bool,
}

/// Per-victim aggressor pressure within the current refresh window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Pressure {
    from_below: u32,
    from_above: u32,
}

/// SplitMix64-style hasher for the pressure map's `(bank, row)` keys.
///
/// `record_activation` runs on *every* row activation — tens of millions of
/// times per eval grid — and SipHash dominates its cost. Keys are two small
/// integers with no adversarial source, so one multiply-xor round is plenty.
/// Map iteration order is never observable: [`FlipModel::refresh`] drains
/// into a sorted vector before touching the RNG.
#[derive(Debug, Clone, Copy, Default)]
struct PressureHasher(u64);

impl std::hash::Hasher for PressureHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0 ^ u64::from(n)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    }
}

type PressureMap = HashMap<(u32, u32), Pressure, std::hash::BuildHasherDefault<PressureHasher>>;

/// The rowhammer charge-leakage model.
///
/// Owned by the [`crate::MemoryController`], which reports every row
/// activation; flips are materialised when the controller refreshes.
#[derive(Debug, Clone)]
pub struct FlipModel {
    params: FlipModelParams,
    /// Aggressor pressure per victim (bank, row) in the current window.
    pressure: PressureMap,
    /// Flips accumulated since the last [`FlipModel::take_flips`].
    flips: Vec<BitFlip>,
    rows_per_bank: u32,
}

impl FlipModel {
    /// Creates a model for banks with `rows_per_bank` rows each.
    pub fn new(params: FlipModelParams, rows_per_bank: u32) -> Self {
        FlipModel {
            params,
            pressure: PressureMap::default(),
            flips: Vec::new(),
            rows_per_bank,
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &FlipModelParams {
        &self.params
    }

    /// Records one activation of `row` in `bank`, pressuring its neighbours.
    pub fn record_activation(&mut self, bank: u32, row: u32) {
        if row > 0 {
            self.pressure.entry((bank, row - 1)).or_default().from_above += 1;
        }
        if row + 1 < self.rows_per_bank {
            self.pressure.entry((bank, row + 1)).or_default().from_below += 1;
        }
    }

    /// Current aggressor pressure on a victim row (for tests and debugging).
    pub fn pressure_on(&self, bank: u32, row: u32) -> (u32, u32) {
        let p = self.pressure.get(&(bank, row)).copied().unwrap_or_default();
        (p.from_below, p.from_above)
    }

    /// Deterministic per-row vulnerability factor in `[0, 1]`.
    ///
    /// A fixed hash of (bank, row) decides whether the row is vulnerable at
    /// all and, if so, how strongly — mimicking the cell-level variation of
    /// real DIMMs while staying reproducible across runs.
    pub fn row_vulnerability(&self, bank: u32, row: u32) -> f64 {
        let h = split_mix64((u64::from(bank) << 32) ^ u64::from(row) ^ 0x9E37_79B9_7F4A_7C15);
        let uniform = (h >> 11) as f64 / (1u64 << 53) as f64;
        if uniform > self.params.vulnerable_row_fraction {
            0.0
        } else {
            // Rescale the vulnerable fraction to (0, 1]; more vulnerable rows
            // are rarer.
            let x = uniform / self.params.vulnerable_row_fraction;
            (1.0 - x).powi(2).max(0.05)
        }
    }

    /// Ends the current refresh window: every pressured victim row is
    /// refreshed, and flips are sampled for rows whose aggressor pressure
    /// exceeded the thresholds.
    pub fn refresh(&mut self, rng: &mut StdRng) {
        let params = self.params;
        let mut victims: Vec<((u32, u32), Pressure)> = self.pressure.drain().collect();
        // The map iterates in a per-instance random order; flips must be
        // sampled in a fixed order so the RNG stream — and therefore the
        // whole flip record — is a deterministic function of the access
        // sequence, exactly like the timing channel.
        victims.sort_unstable_by_key(|&(key, _)| key);
        for ((bank, row), p) in victims {
            let vulnerability = self.row_vulnerability(bank, row);
            if vulnerability == 0.0 {
                continue;
            }
            let double = p.from_below >= params.double_sided_threshold
                && p.from_above >= params.double_sided_threshold;
            let single = p.from_below.max(p.from_above) >= params.single_sided_threshold;
            if !double && !single {
                continue;
            }
            let pressure_total = f64::from(p.from_below + p.from_above);
            let threshold = if double {
                f64::from(params.double_sided_threshold * 2)
            } else {
                f64::from(params.single_sided_threshold)
            };
            let overdrive = (pressure_total / threshold).min(4.0);
            let mut prob = params.base_flip_probability * overdrive * vulnerability;
            if double {
                prob *= params.double_sided_factor;
            }
            let expected = prob * f64::from(params.cells_per_row);
            let count = sample_poisson(rng, expected);
            for _ in 0..count {
                self.flips.push(BitFlip {
                    bank,
                    row,
                    byte: rng.gen_range(0..params.cells_per_row / 8),
                    bit: rng.gen_range(0..8),
                    one_to_zero: rng.gen_bool(0.5),
                });
            }
        }
    }

    /// Returns and clears the flips accumulated so far.
    pub fn take_flips(&mut self) -> Vec<BitFlip> {
        std::mem::take(&mut self.flips)
    }

    /// Flips accumulated so far without clearing them.
    pub fn flips(&self) -> &[BitFlip] {
        &self.flips
    }

    /// Number of victim rows currently under pressure (for statistics).
    pub fn pressured_rows(&self) -> usize {
        self.pressure.len()
    }

    /// Discards the aggressor pressure accumulated in the current refresh
    /// window without evaluating it for flips (models an idle period long
    /// enough for a full refresh cycle to pass unobserved).
    pub fn clear_pressure(&mut self) {
        self.pressure.clear();
    }
}

/// Flips observed in DRAM coordinates convertible back to physical addresses
/// by the caller if needed.
impl BitFlip {
    /// DRAM coordinates (bank, row, byte column) of the flip.
    pub fn dram_address(&self) -> DramAddress {
        DramAddress::new(self.bank, self.row, self.byte)
    }
}

fn split_mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples a Poisson-distributed count with the given mean using inversion
/// for small means and a normal approximation for large means.
fn sample_poisson(rng: &mut StdRng, mean: f64) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut product: f64 = 1.0;
        let mut count = 0u32;
        loop {
            product *= rng.gen::<f64>();
            if product <= limit {
                return count;
            }
            count += 1;
            if count > 10_000 {
                return count;
            }
        }
    } else {
        // Normal approximation with continuity correction.
        let sample = mean + mean.sqrt() * sample_standard_normal(rng);
        sample.round().max(0.0) as u32
    }
}

/// Box–Muller standard normal sample.
pub(crate) fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn fast_model() -> FlipModel {
        FlipModel::new(FlipModelParams::fast(), 1 << 15)
    }

    #[test]
    fn activation_pressures_both_neighbours() {
        let mut m = fast_model();
        m.record_activation(3, 100);
        assert_eq!(m.pressure_on(3, 99), (0, 1));
        assert_eq!(m.pressure_on(3, 101), (1, 0));
        assert_eq!(m.pressure_on(3, 100), (0, 0));
        assert_eq!(m.pressure_on(2, 99), (0, 0));
    }

    #[test]
    fn edge_rows_have_single_neighbour() {
        let mut m = FlipModel::new(FlipModelParams::fast(), 8);
        m.record_activation(0, 0);
        m.record_activation(0, 7);
        assert_eq!(m.pressure_on(0, 1), (1, 0));
        assert_eq!(m.pressure_on(0, 6), (0, 1));
        // No pressure recorded outside the bank.
        assert_eq!(m.pressured_rows(), 2);
    }

    #[test]
    fn flip_sampling_is_deterministic_across_model_instances() {
        // Two freshly built models have hash maps with different random
        // states; pressuring several victims and refreshing with identical
        // RNGs must still produce identical flip records (the sort in
        // `refresh` pins the sampling order).
        let runs: Vec<Vec<BitFlip>> = (0..2)
            .map(|_| {
                let mut m = fast_model();
                let mut r = rng();
                for row in [100u32, 400, 900, 2_000, 5_000] {
                    for _ in 0..2_000 {
                        m.record_activation(0, row - 1);
                        m.record_activation(0, row + 1);
                    }
                }
                m.refresh(&mut r);
                m.take_flips()
            })
            .collect();
        assert!(!runs[0].is_empty());
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn no_flips_below_threshold() {
        let mut m = fast_model();
        let mut r = rng();
        for _ in 0..100 {
            m.record_activation(0, 500);
        }
        m.refresh(&mut r);
        assert!(m.flips().is_empty());
    }

    #[test]
    fn double_sided_hammering_flips_vulnerable_rows() {
        let mut m = fast_model();
        let mut r = rng();
        let params = *m.params();
        // Find a vulnerable victim row, then hammer both neighbours hard.
        let victim = (0..10_000u32)
            .find(|&row| m.row_vulnerability(0, row) > 0.3)
            .expect("some rows must be vulnerable");
        for _ in 0..params.double_sided_threshold * 4 {
            m.record_activation(0, victim - 1);
            m.record_activation(0, victim + 1);
        }
        m.refresh(&mut r);
        let flips = m.take_flips();
        assert!(
            !flips.is_empty(),
            "double-sided hammering of a vulnerable row must flip bits"
        );
        assert!(flips.iter().all(|f| f.row == victim && f.bank == 0));
    }

    #[test]
    fn double_sided_beats_single_sided() {
        let params = FlipModelParams::fast();
        let victim = {
            let probe = FlipModel::new(params, 1 << 15);
            (0..10_000u32)
                .find(|&row| probe.row_vulnerability(0, row) > 0.3)
                .unwrap()
        };
        let activations = params.single_sided_threshold * 4;

        let mut total_double = 0usize;
        let mut total_single = 0usize;
        for seed in 0..8u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let mut m = FlipModel::new(params, 1 << 15);
            for _ in 0..activations {
                m.record_activation(0, victim - 1);
                m.record_activation(0, victim + 1);
            }
            m.refresh(&mut r);
            total_double += m.take_flips().len();

            let mut r = StdRng::seed_from_u64(seed);
            let mut m = FlipModel::new(params, 1 << 15);
            for _ in 0..activations * 2 {
                m.record_activation(0, victim - 1);
            }
            m.refresh(&mut r);
            total_single += m.take_flips().len();
        }
        assert!(
            total_double > total_single * 3,
            "double-sided ({total_double}) should far exceed single-sided ({total_single})"
        );
    }

    #[test]
    fn refresh_clears_pressure() {
        let mut m = fast_model();
        let mut r = rng();
        m.record_activation(1, 10);
        assert_eq!(m.pressured_rows(), 2);
        m.refresh(&mut r);
        assert_eq!(m.pressured_rows(), 0);
    }

    #[test]
    fn vulnerability_is_deterministic_and_bounded() {
        let m = fast_model();
        let mut vulnerable = 0usize;
        for row in 0..2000u32 {
            let v1 = m.row_vulnerability(2, row);
            let v2 = m.row_vulnerability(2, row);
            assert_eq!(v1, v2);
            assert!((0.0..=1.0).contains(&v1));
            if v1 > 0.0 {
                vulnerable += 1;
            }
        }
        // Roughly the configured fraction of rows should be vulnerable.
        let frac = vulnerable as f64 / 2000.0;
        assert!(frac > 0.2 && frac < 0.6, "vulnerable fraction {frac}");
    }

    #[test]
    fn take_flips_drains() {
        let mut m = fast_model();
        let mut r = rng();
        let victim = (0..10_000u32)
            .find(|&row| m.row_vulnerability(0, row) > 0.3)
            .unwrap();
        for _ in 0..m.params().double_sided_threshold * 4 {
            m.record_activation(0, victim - 1);
            m.record_activation(0, victim + 1);
        }
        m.refresh(&mut r);
        let first = m.take_flips();
        assert!(!first.is_empty());
        assert!(m.take_flips().is_empty());
    }

    #[test]
    fn poisson_sampler_mean_is_reasonable() {
        let mut r = rng();
        for &mean in &[0.5f64, 3.0, 20.0, 100.0] {
            let n = 3000;
            let total: u64 = (0..n)
                .map(|_| u64::from(sample_poisson(&mut r, mean)))
                .sum();
            let observed = total as f64 / n as f64;
            assert!(
                (observed - mean).abs() < mean.max(1.0) * 0.15 + 0.2,
                "mean {mean}: observed {observed}"
            );
        }
    }

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
