//! Simulator configuration: DRAM timing, noise and rowhammer parameters.

use crate::rowhammer::FlipModelParams;

/// DRAM access latencies in simulated nanoseconds plus measurement noise.
///
/// The absolute numbers are loosely modelled on an uncached DDR3/DDR4 access
/// from an Intel client core; only their *ordering* (hit < closed < conflict)
/// matters for the reverse-engineering algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// Latency of an access that hits the open row in its bank.
    pub row_hit_ns: u64,
    /// Latency of an access to a bank with no open row (first touch after a
    /// refresh or precharge).
    pub row_closed_ns: u64,
    /// Latency of a row-buffer conflict: another row is open and must be
    /// precharged before the new row is activated.
    pub row_conflict_ns: u64,
    /// Standard deviation of the Gaussian noise added to every measurement.
    pub noise_sigma_ns: f64,
    /// Probability of an outlier measurement (system interference such as a
    /// refresh or an interrupt on real hardware).
    pub outlier_probability: f64,
    /// Extra latency added to an outlier measurement.
    pub outlier_extra_ns: u64,
    /// TRR-like periodic noise: every `trr_period` row activations in a
    /// bank, the in-DRAM sampler refreshes potential victims and the
    /// triggering access stalls for [`TimingParams::trr_spike_ns`] extra
    /// nanoseconds. `0` disables the sampler. Unlike the Gaussian noise this
    /// interference is *deterministic* in the access sequence, which is what
    /// makes it a distinct calibration hazard.
    pub trr_period: u64,
    /// Extra latency of an access that triggers the TRR sampler.
    pub trr_spike_ns: u64,
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams {
            row_hit_ns: 200,
            row_closed_ns: 250,
            row_conflict_ns: 380,
            noise_sigma_ns: 12.0,
            outlier_probability: 0.01,
            outlier_extra_ns: 600,
            trr_period: 0,
            trr_spike_ns: 0,
        }
    }
}

impl TimingParams {
    /// A noise-free variant, useful for deterministic unit tests.
    pub fn noiseless() -> Self {
        TimingParams {
            noise_sigma_ns: 0.0,
            outlier_probability: 0.0,
            outlier_extra_ns: 0,
            ..TimingParams::default()
        }
    }

    /// The default noise plus an active TRR-like sampler: every 17th
    /// activation in a bank pays a large deterministic spike. 17 is coprime
    /// to the probes' alternating access cycle, so the spikes drift across
    /// measurement windows instead of always hitting the same slot.
    pub fn trr_noise() -> Self {
        TimingParams {
            trr_period: 17,
            trr_spike_ns: 450,
            ..TimingParams::default()
        }
    }

    /// Midpoint between hit and conflict latency — a perfect oracle threshold,
    /// useful for tests that bypass calibration.
    pub fn oracle_threshold_ns(&self) -> u64 {
        (self.row_hit_ns + self.row_conflict_ns) / 2
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// DRAM timing and measurement-noise parameters.
    pub timing: TimingParams,
    /// Rowhammer charge-leakage model parameters.
    pub flip_params: FlipModelParams,
    /// Length of one refresh window in simulated nanoseconds. All rows are
    /// refreshed (and hammer counters reset) once per window.
    pub refresh_interval_ns: u64,
    /// Seed for the simulator's random number generator (noise, flips).
    pub rng_seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            timing: TimingParams::default(),
            flip_params: FlipModelParams::default(),
            // 64 ms, the standard DDR refresh interval.
            refresh_interval_ns: 64_000_000,
            rng_seed: 0x0D1A_3D16,
        }
    }
}

impl SimConfig {
    /// A configuration with no measurement noise (tests, calibration checks).
    pub fn noiseless() -> Self {
        SimConfig {
            timing: TimingParams::noiseless(),
            ..SimConfig::default()
        }
    }

    /// A configuration scaled down for fast rowhammer experiments: shorter
    /// refresh windows and lower activation thresholds so that bit flips
    /// appear after thousands rather than hundreds of thousands of
    /// activations. The *relative* behaviour (double-sided ≫ single-sided ≫
    /// wrong mapping) is preserved.
    pub fn fast_rowhammer() -> Self {
        SimConfig {
            timing: TimingParams::default(),
            flip_params: FlipModelParams::fast(),
            refresh_interval_ns: 2_000_000,
            rng_seed: 0x0D1A_3D16,
        }
    }

    /// Overrides the RNG seed (e.g. to model run-to-run variation across the
    /// paper's five rowhammer tests).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// A configuration with the TRR-like periodic-noise timing profile (see
    /// [`TimingParams::trr_noise`]) on top of the default Gaussian noise —
    /// the hardest profile the scenario-matrix evaluation measures under.
    pub fn trr_noise() -> Self {
        SimConfig {
            timing: TimingParams::trr_noise(),
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_latencies_are_ordered() {
        let t = TimingParams::default();
        assert!(t.row_hit_ns < t.row_closed_ns);
        assert!(t.row_closed_ns < t.row_conflict_ns);
    }

    #[test]
    fn oracle_threshold_sits_between_hit_and_conflict() {
        let t = TimingParams::default();
        let thr = t.oracle_threshold_ns();
        assert!(thr > t.row_hit_ns && thr < t.row_conflict_ns);
    }

    #[test]
    fn noiseless_removes_randomness() {
        let t = TimingParams::noiseless();
        assert_eq!(t.noise_sigma_ns, 0.0);
        assert_eq!(t.outlier_probability, 0.0);
    }

    #[test]
    fn fast_rowhammer_shrinks_window() {
        let fast = SimConfig::fast_rowhammer();
        let default = SimConfig::default();
        assert!(fast.refresh_interval_ns < default.refresh_interval_ns);
        assert!(
            fast.flip_params.double_sided_threshold < default.flip_params.double_sided_threshold
        );
    }

    #[test]
    fn with_seed_only_changes_seed() {
        let a = SimConfig::default();
        let b = SimConfig::default().with_seed(7);
        assert_eq!(a.timing, b.timing);
        assert_ne!(a.rng_seed, b.rng_seed);
    }

    #[test]
    fn trr_profile_enables_the_sampler_on_top_of_default_noise() {
        let t = TimingParams::trr_noise();
        assert!(t.trr_period > 0);
        assert!(t.trr_spike_ns > 0);
        assert_eq!(t.noise_sigma_ns, TimingParams::default().noise_sigma_ns);
        // The default and noiseless profiles keep the sampler off, so every
        // pre-existing seeded measurement sequence is unchanged.
        assert_eq!(TimingParams::default().trr_period, 0);
        assert_eq!(TimingParams::noiseless().trr_period, 0);
        assert_eq!(SimConfig::trr_noise().timing, t);
    }
}
