//! Simulation statistics and the simulated clock.

use std::fmt;

/// Counters accumulated by the [`crate::MemoryController`].
///
/// Besides bookkeeping, the simulated elapsed time is what the experiment
/// harness reports for Figure 2 ("time costs"): every memory access advances
/// the simulated clock by its latency, so an algorithm that issues more
/// latency measurements spends proportionally more simulated time, exactly as
/// on real hardware.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total number of memory accesses served.
    pub accesses: u64,
    /// Accesses that hit the open row in their bank.
    pub row_hits: u64,
    /// Accesses that found the bank precharged (no open row).
    pub row_empty: u64,
    /// Accesses that conflicted with a different open row.
    pub row_conflicts: u64,
    /// Number of refresh windows completed.
    pub refreshes: u64,
    /// Simulated nanoseconds elapsed.
    pub elapsed_ns: u64,
}

impl SimStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        SimStats::default()
    }

    /// Simulated elapsed time in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_ns as f64 / 1e9
    }

    /// Fraction of accesses that caused a row-buffer conflict.
    pub fn conflict_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_conflicts as f64 / self.accesses as f64
        }
    }

    /// Difference between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &SimStats) -> SimStats {
        SimStats {
            accesses: self.accesses - earlier.accesses,
            row_hits: self.row_hits - earlier.row_hits,
            row_empty: self.row_empty - earlier.row_empty,
            row_conflicts: self.row_conflicts - earlier.row_conflicts,
            refreshes: self.refreshes - earlier.refreshes,
            elapsed_ns: self.elapsed_ns - earlier.elapsed_ns,
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses ({} hits, {} empty, {} conflicts), {} refreshes, {:.3} s simulated",
            self.accesses,
            self.row_hits,
            self.row_empty,
            self.row_conflicts,
            self.refreshes,
            self.elapsed_seconds()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_rate_handles_zero_accesses() {
        assert_eq!(SimStats::new().conflict_rate(), 0.0);
    }

    #[test]
    fn since_subtracts_fields() {
        let earlier = SimStats {
            accesses: 10,
            row_hits: 4,
            row_empty: 1,
            row_conflicts: 5,
            refreshes: 1,
            elapsed_ns: 1000,
        };
        let later = SimStats {
            accesses: 25,
            row_hits: 10,
            row_empty: 2,
            row_conflicts: 13,
            refreshes: 3,
            elapsed_ns: 5000,
        };
        let d = later.since(&earlier);
        assert_eq!(d.accesses, 15);
        assert_eq!(d.row_conflicts, 8);
        assert_eq!(d.elapsed_ns, 4000);
        assert_eq!(d.elapsed_seconds(), 4e-6);
    }

    #[test]
    fn display_contains_key_counters() {
        let s = SimStats {
            accesses: 7,
            row_hits: 3,
            row_empty: 1,
            row_conflicts: 3,
            refreshes: 0,
            elapsed_ns: 2_000_000_000,
        };
        let text = s.to_string();
        assert!(text.contains("7 accesses"));
        assert!(text.contains("2.000 s"));
    }
}
