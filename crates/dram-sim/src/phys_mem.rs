//! A synthetic physical-page allocator.
//!
//! The reverse-engineering tools do not get to pick arbitrary physical
//! addresses: they can only touch pages the operating system actually handed
//! to their process. DRAMDig's Algorithm 1 explicitly deals with holes in
//! that pool ("if there are some pages missed in phys_pages, we try again"),
//! so the allocator here can produce contiguous pools, fragmented pools with
//! pseudo-random holes, or scattered pools, letting the tests exercise every
//! branch of the selection logic.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use dram_model::{PhysAddr, PAGE_SIZE};

/// How the synthetic OS hands out physical pages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AllocationPolicy {
    /// One physically contiguous block starting at `start_frame`.
    Contiguous {
        /// First allocated page frame number.
        start_frame: u64,
    },
    /// A mostly contiguous block in which each page is independently missing
    /// with probability `hole_probability` (fragmentation, other processes).
    Fragmented {
        /// First allocated page frame number.
        start_frame: u64,
        /// Probability that any individual page is *not* part of the pool.
        hole_probability: f64,
    },
    /// Pages drawn uniformly at random from the whole module (worst case for
    /// tools that assume contiguity).
    Scattered,
}

/// Internal storage: either an explicit frame list, or the whole module as a
/// closed-form range. The range form is what makes 30–39-bit generated
/// machines (up to 512 GiB) affordable — a dense list would materialise up
/// to 128 M frame numbers per probe clone.
#[derive(Debug, Clone)]
enum Frames {
    /// Explicit, sorted, deduplicated page frame numbers.
    Dense(Vec<u64>),
    /// Every frame `0..total_frames` is allocated; nothing is materialised.
    Full,
}

/// The set of physical pages available to the reverse-engineering tool.
#[derive(Debug, Clone)]
pub struct PhysMemory {
    frames: Frames,
    total_frames: u64,
    policy_desc: &'static str,
}

impl PhysMemory {
    /// Allocates `fraction` of a module containing `capacity_bytes` bytes
    /// according to `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `(0, 1]`.
    pub fn allocate(
        capacity_bytes: u64,
        fraction: f64,
        policy: AllocationPolicy,
        seed: u64,
    ) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let total_frames = capacity_bytes / PAGE_SIZE;
        let want = ((total_frames as f64 * fraction) as u64).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let (frames, policy_desc) = match policy {
            AllocationPolicy::Contiguous { start_frame } => {
                let start = start_frame.min(total_frames.saturating_sub(want));
                ((start..start + want).collect(), "contiguous")
            }
            AllocationPolicy::Fragmented {
                start_frame,
                hole_probability,
            } => {
                let start = start_frame.min(total_frames.saturating_sub(want));
                let frames: Vec<u64> = (start..total_frames)
                    .filter(|_| rng.gen::<f64>() >= hole_probability)
                    .take(want as usize)
                    .collect();
                (frames, "fragmented")
            }
            AllocationPolicy::Scattered => {
                let mut all: Vec<u64> = (0..total_frames).collect();
                all.shuffle(&mut rng);
                all.truncate(want as usize);
                all.sort_unstable();
                (all, "scattered")
            }
        };
        PhysMemory {
            frames: Frames::Dense(frames),
            total_frames,
            policy_desc,
        }
    }

    /// A pool containing every page of the module (hugepage-style access).
    ///
    /// Stored in closed form: no frame list is materialised, so full pools
    /// over arbitrarily large modules cost O(1) memory and clone for free.
    pub fn full(capacity_bytes: u64) -> Self {
        PhysMemory {
            frames: Frames::Full,
            total_frames: capacity_bytes / PAGE_SIZE,
            policy_desc: "full",
        }
    }

    /// Builds a pool directly from page frame numbers (tests).
    pub fn from_frames(frames: Vec<u64>, total_frames: u64) -> Self {
        let mut frames = frames;
        frames.sort_unstable();
        frames.dedup();
        PhysMemory {
            frames: Frames::Dense(frames),
            total_frames,
            policy_desc: "custom",
        }
    }

    /// Allocated page frame numbers, ascending. Full pools materialise the
    /// list on demand — callers on the measurement path should prefer
    /// [`PhysMemory::page_addresses`], [`PhysMemory::contains`] and
    /// [`PhysMemory::random_page`], which stay lazy.
    pub fn frames(&self) -> Vec<u64> {
        match &self.frames {
            Frames::Dense(frames) => frames.clone(),
            Frames::Full => (0..self.total_frames).collect(),
        }
    }

    /// Number of allocated pages.
    pub fn len(&self) -> usize {
        match &self.frames {
            Frames::Dense(frames) => frames.len(),
            Frames::Full => self.total_frames as usize,
        }
    }

    /// Returns `true` if no pages are allocated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of frames in the underlying module.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// A short human-readable description of the allocation policy.
    pub fn policy(&self) -> &'static str {
        self.policy_desc
    }

    /// Returns `true` if the pool contains the page holding `addr`.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        match &self.frames {
            Frames::Dense(frames) => frames.binary_search(&addr.page_frame()).is_ok(),
            Frames::Full => addr.page_frame() < self.total_frames,
        }
    }

    /// Returns `true` if every page in `[start, end)` (byte addresses) is in
    /// the pool — the `page_miss` check of Algorithm 1 inverted.
    pub fn covers_range(&self, start: PhysAddr, end: PhysAddr) -> bool {
        if end.raw() <= start.raw() {
            return true;
        }
        let first = start.page_frame();
        let last = (end.raw() - 1) / PAGE_SIZE;
        match &self.frames {
            Frames::Dense(frames) => (first..=last).all(|f| frames.binary_search(&f).is_ok()),
            Frames::Full => last < self.total_frames,
        }
    }

    /// Iterates over the base physical addresses of all allocated pages.
    pub fn page_addresses(&self) -> Box<dyn Iterator<Item = PhysAddr> + '_> {
        match &self.frames {
            Frames::Dense(frames) => Box::new(frames.iter().map(|&f| PhysAddr::new(f * PAGE_SIZE))),
            Frames::Full => Box::new((0..self.total_frames).map(|f| PhysAddr::new(f * PAGE_SIZE))),
        }
    }

    /// Picks a uniformly random allocated page base address.
    pub fn random_page(&self, rng: &mut StdRng) -> Option<PhysAddr> {
        match &self.frames {
            Frames::Dense(frames) => frames.choose(rng).map(|&f| PhysAddr::new(f * PAGE_SIZE)),
            Frames::Full => {
                if self.total_frames == 0 {
                    return None;
                }
                // Same single-draw sampling as `choose` on a dense full
                // list, so seeded measurement sequences are unchanged by the
                // lazy representation.
                let f = rng.gen_range(0..self.total_frames);
                Some(PhysAddr::new(f * PAGE_SIZE))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: u64 = 64 << 20; // 64 MiB keeps tests fast

    #[test]
    fn contiguous_allocation_has_no_holes() {
        let mem = PhysMemory::allocate(
            CAP,
            0.25,
            AllocationPolicy::Contiguous { start_frame: 8 },
            1,
        );
        let frames = mem.frames();
        assert_eq!(frames.len() as u64, CAP / PAGE_SIZE / 4);
        for w in frames.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
        assert_eq!(mem.policy(), "contiguous");
    }

    #[test]
    fn fragmented_allocation_has_holes() {
        let mem = PhysMemory::allocate(
            CAP,
            0.25,
            AllocationPolicy::Fragmented {
                start_frame: 0,
                hole_probability: 0.2,
            },
            7,
        );
        let frames = mem.frames();
        let contiguous = frames.windows(2).all(|w| w[1] == w[0] + 1);
        assert!(
            !contiguous,
            "fragmented pool should contain at least one hole"
        );
    }

    #[test]
    fn scattered_allocation_is_sorted_and_unique() {
        let mem = PhysMemory::allocate(CAP, 0.1, AllocationPolicy::Scattered, 3);
        let frames = mem.frames();
        assert!(frames.windows(2).all(|w| w[1] > w[0]));
        assert!(frames.iter().all(|&f| f < mem.total_frames()));
    }

    #[test]
    fn full_pool_contains_everything() {
        let mem = PhysMemory::full(CAP);
        assert_eq!(mem.len() as u64, CAP / PAGE_SIZE);
        assert!(mem.contains(PhysAddr::new(CAP - 1)));
        assert!(!mem.contains(PhysAddr::new(CAP)));
        assert!(mem.covers_range(PhysAddr::new(0), PhysAddr::new(CAP)));
        assert!(!mem.covers_range(PhysAddr::new(0), PhysAddr::new(CAP + PAGE_SIZE)));
    }

    #[test]
    fn full_pool_is_lazy_but_behaves_like_a_dense_one() {
        // A 512 GiB module must not materialise 128 M frame numbers.
        let huge = PhysMemory::full(512 << 30);
        assert_eq!(huge.total_frames(), (512u64 << 30) / PAGE_SIZE);
        assert!(huge.contains(PhysAddr::new((512u64 << 30) - 1)));

        // On a small module the lazy pool and an equivalent dense pool make
        // identical random draws from identical seeds.
        let lazy = PhysMemory::full(CAP);
        let dense = PhysMemory::from_frames((0..CAP / PAGE_SIZE).collect(), CAP / PAGE_SIZE);
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            assert_eq!(lazy.random_page(&mut rng_a), dense.random_page(&mut rng_b));
        }
        assert_eq!(
            lazy.page_addresses().take(5).collect::<Vec<_>>(),
            dense.page_addresses().take(5).collect::<Vec<_>>()
        );
    }

    #[test]
    fn contains_and_covers_range() {
        let mem = PhysMemory::from_frames(vec![0, 1, 2, 5], 16);
        assert!(mem.contains(PhysAddr::new(0)));
        assert!(mem.contains(PhysAddr::new(2 * PAGE_SIZE + 17)));
        assert!(!mem.contains(PhysAddr::new(3 * PAGE_SIZE)));
        assert!(mem.covers_range(PhysAddr::new(0), PhysAddr::new(3 * PAGE_SIZE)));
        assert!(!mem.covers_range(PhysAddr::new(0), PhysAddr::new(4 * PAGE_SIZE)));
        // Empty range is trivially covered.
        assert!(mem.covers_range(PhysAddr::new(100), PhysAddr::new(100)));
    }

    #[test]
    fn from_frames_sorts_and_dedups() {
        let mem = PhysMemory::from_frames(vec![5, 1, 5, 3], 16);
        assert_eq!(mem.frames(), &[1, 3, 5]);
        assert_eq!(mem.policy(), "custom");
        assert!(!mem.is_empty());
    }

    #[test]
    fn random_page_comes_from_pool() {
        let mem = PhysMemory::from_frames(vec![2, 9], 16);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let p = mem.random_page(&mut rng).unwrap();
            assert!(mem.contains(p));
            assert_eq!(p.page_offset(), 0);
        }
        let empty = PhysMemory::from_frames(vec![], 16);
        assert!(empty.random_page(&mut rng).is_none());
        assert!(empty.is_empty());
        assert!(PhysMemory::full(0).random_page(&mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_panics() {
        PhysMemory::allocate(CAP, 0.0, AllocationPolicy::Scattered, 0);
    }
}
