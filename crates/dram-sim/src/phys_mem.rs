//! A synthetic physical-page allocator.
//!
//! The reverse-engineering tools do not get to pick arbitrary physical
//! addresses: they can only touch pages the operating system actually handed
//! to their process. DRAMDig's Algorithm 1 explicitly deals with holes in
//! that pool ("if there are some pages missed in phys_pages, we try again"),
//! so the allocator here can produce contiguous pools, fragmented pools with
//! pseudo-random holes, or scattered pools, letting the tests exercise every
//! branch of the selection logic.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use dram_model::{PhysAddr, PAGE_SIZE};

/// How the synthetic OS hands out physical pages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AllocationPolicy {
    /// One physically contiguous block starting at `start_frame`.
    Contiguous {
        /// First allocated page frame number.
        start_frame: u64,
    },
    /// A mostly contiguous block in which each page is independently missing
    /// with probability `hole_probability` (fragmentation, other processes).
    Fragmented {
        /// First allocated page frame number.
        start_frame: u64,
        /// Probability that any individual page is *not* part of the pool.
        hole_probability: f64,
    },
    /// Pages drawn uniformly at random from the whole module (worst case for
    /// tools that assume contiguity).
    Scattered,
}

/// The set of physical pages available to the reverse-engineering tool.
#[derive(Debug, Clone)]
pub struct PhysMemory {
    frames: Vec<u64>,
    total_frames: u64,
    policy_desc: &'static str,
}

impl PhysMemory {
    /// Allocates `fraction` of a module containing `capacity_bytes` bytes
    /// according to `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `(0, 1]`.
    pub fn allocate(
        capacity_bytes: u64,
        fraction: f64,
        policy: AllocationPolicy,
        seed: u64,
    ) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let total_frames = capacity_bytes / PAGE_SIZE;
        let want = ((total_frames as f64 * fraction) as u64).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let (frames, policy_desc) = match policy {
            AllocationPolicy::Contiguous { start_frame } => {
                let start = start_frame.min(total_frames.saturating_sub(want));
                ((start..start + want).collect(), "contiguous")
            }
            AllocationPolicy::Fragmented {
                start_frame,
                hole_probability,
            } => {
                let start = start_frame.min(total_frames.saturating_sub(want));
                let frames: Vec<u64> = (start..total_frames)
                    .filter(|_| rng.gen::<f64>() >= hole_probability)
                    .take(want as usize)
                    .collect();
                (frames, "fragmented")
            }
            AllocationPolicy::Scattered => {
                let mut all: Vec<u64> = (0..total_frames).collect();
                all.shuffle(&mut rng);
                all.truncate(want as usize);
                all.sort_unstable();
                (all, "scattered")
            }
        };
        PhysMemory {
            frames,
            total_frames,
            policy_desc,
        }
    }

    /// A pool containing every page of the module (hugepage-style access).
    pub fn full(capacity_bytes: u64) -> Self {
        PhysMemory {
            frames: (0..capacity_bytes / PAGE_SIZE).collect(),
            total_frames: capacity_bytes / PAGE_SIZE,
            policy_desc: "full",
        }
    }

    /// Builds a pool directly from page frame numbers (tests).
    pub fn from_frames(frames: Vec<u64>, total_frames: u64) -> Self {
        let mut frames = frames;
        frames.sort_unstable();
        frames.dedup();
        PhysMemory {
            frames,
            total_frames,
            policy_desc: "custom",
        }
    }

    /// Allocated page frame numbers, ascending.
    pub fn frames(&self) -> &[u64] {
        &self.frames
    }

    /// Number of allocated pages.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Returns `true` if no pages are allocated.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total number of frames in the underlying module.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// A short human-readable description of the allocation policy.
    pub fn policy(&self) -> &'static str {
        self.policy_desc
    }

    /// Returns `true` if the pool contains the page holding `addr`.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        self.frames.binary_search(&addr.page_frame()).is_ok()
    }

    /// Returns `true` if every page in `[start, end)` (byte addresses) is in
    /// the pool — the `page_miss` check of Algorithm 1 inverted.
    pub fn covers_range(&self, start: PhysAddr, end: PhysAddr) -> bool {
        if end.raw() <= start.raw() {
            return true;
        }
        let first = start.page_frame();
        let last = (end.raw() - 1) / PAGE_SIZE;
        (first..=last).all(|f| self.frames.binary_search(&f).is_ok())
    }

    /// Iterates over the base physical addresses of all allocated pages.
    pub fn page_addresses(&self) -> impl Iterator<Item = PhysAddr> + '_ {
        self.frames.iter().map(|&f| PhysAddr::new(f * PAGE_SIZE))
    }

    /// Picks a uniformly random allocated page base address.
    pub fn random_page(&self, rng: &mut StdRng) -> Option<PhysAddr> {
        self.frames
            .choose(rng)
            .map(|&f| PhysAddr::new(f * PAGE_SIZE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: u64 = 64 << 20; // 64 MiB keeps tests fast

    #[test]
    fn contiguous_allocation_has_no_holes() {
        let mem = PhysMemory::allocate(
            CAP,
            0.25,
            AllocationPolicy::Contiguous { start_frame: 8 },
            1,
        );
        let frames = mem.frames();
        assert_eq!(frames.len() as u64, CAP / PAGE_SIZE / 4);
        for w in frames.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
        assert_eq!(mem.policy(), "contiguous");
    }

    #[test]
    fn fragmented_allocation_has_holes() {
        let mem = PhysMemory::allocate(
            CAP,
            0.25,
            AllocationPolicy::Fragmented {
                start_frame: 0,
                hole_probability: 0.2,
            },
            7,
        );
        let frames = mem.frames();
        let contiguous = frames.windows(2).all(|w| w[1] == w[0] + 1);
        assert!(
            !contiguous,
            "fragmented pool should contain at least one hole"
        );
    }

    #[test]
    fn scattered_allocation_is_sorted_and_unique() {
        let mem = PhysMemory::allocate(CAP, 0.1, AllocationPolicy::Scattered, 3);
        let frames = mem.frames();
        assert!(frames.windows(2).all(|w| w[1] > w[0]));
        assert!(frames.iter().all(|&f| f < mem.total_frames()));
    }

    #[test]
    fn full_pool_contains_everything() {
        let mem = PhysMemory::full(CAP);
        assert_eq!(mem.len() as u64, CAP / PAGE_SIZE);
        assert!(mem.contains(PhysAddr::new(CAP - 1)));
        assert!(mem.covers_range(PhysAddr::new(0), PhysAddr::new(CAP)));
    }

    #[test]
    fn contains_and_covers_range() {
        let mem = PhysMemory::from_frames(vec![0, 1, 2, 5], 16);
        assert!(mem.contains(PhysAddr::new(0)));
        assert!(mem.contains(PhysAddr::new(2 * PAGE_SIZE + 17)));
        assert!(!mem.contains(PhysAddr::new(3 * PAGE_SIZE)));
        assert!(mem.covers_range(PhysAddr::new(0), PhysAddr::new(3 * PAGE_SIZE)));
        assert!(!mem.covers_range(PhysAddr::new(0), PhysAddr::new(4 * PAGE_SIZE)));
        // Empty range is trivially covered.
        assert!(mem.covers_range(PhysAddr::new(100), PhysAddr::new(100)));
    }

    #[test]
    fn from_frames_sorts_and_dedups() {
        let mem = PhysMemory::from_frames(vec![5, 1, 5, 3], 16);
        assert_eq!(mem.frames(), &[1, 3, 5]);
        assert_eq!(mem.policy(), "custom");
        assert!(!mem.is_empty());
    }

    #[test]
    fn random_page_comes_from_pool() {
        let mem = PhysMemory::from_frames(vec![2, 9], 16);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let p = mem.random_page(&mut rng).unwrap();
            assert!(mem.contains(p));
            assert_eq!(p.page_offset(), 0);
        }
        let empty = PhysMemory::from_frames(vec![], 16);
        assert!(empty.random_page(&mut rng).is_none());
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_panics() {
        PhysMemory::allocate(CAP, 0.0, AllocationPolicy::Scattered, 0);
    }
}
