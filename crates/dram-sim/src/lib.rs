//! A software DRAM substrate for address-mapping reverse engineering.
//!
//! The DRAMDig paper evaluates on nine physical Intel machines. This crate
//! replaces the physical machines with a simulator that reproduces the two
//! observables the reverse-engineering tools rely on:
//!
//! 1. **Row-buffer-conflict timing** — accessing two addresses that live in
//!    the same bank but different rows ("SBDR") repeatedly re-opens rows and
//!    is measurably slower than accessing addresses in the same row or in
//!    different banks ([`MemoryController::access`]).
//! 2. **Rowhammer bit flips** — rows whose neighbours are activated many
//!    times within one refresh window leak charge and flip bits
//!    ([`rowhammer::FlipModel`]), with double-sided hammering far more
//!    effective than single-sided.
//!
//! The simulator is configured with a ground-truth [`AddressMapping`] (for
//! the paper's machines, from [`dram_model::MachineSetting`]), which lets the
//! test-suite check that the reverse-engineering tools recover exactly the
//! mapping the "hardware" uses — something that is impossible on real
//! hardware.
//!
//! # Example
//!
//! ```
//! use dram_model::MachineSetting;
//! use dram_sim::{SimConfig, SimMachine};
//!
//! let setting = MachineSetting::no4_haswell_ddr3_4g();
//! let mut machine = SimMachine::new(setting.mapping().clone(), SimConfig::default());
//! let a = dram_model::PhysAddr::new(0x100000);
//! let lat = machine.controller_mut().access(a);
//! assert!(lat > 0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod controller;
pub mod phys_mem;
pub mod rowhammer;
pub mod stats;

pub use config::{SimConfig, TimingParams};
pub use controller::{MemoryController, SimMachine};
pub use phys_mem::{AllocationPolicy, PhysMemory};
pub use rowhammer::{BitFlip, FlipModel, FlipModelParams};
pub use stats::SimStats;

pub use dram_model::{AddressMapping, DramAddress, PhysAddr};
