//! The simulated memory controller.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dram_model::{
    AddressMapping, DramAddress, GeneratedMachine, MachineSetting, PhysAddr, RowRemap,
};

use crate::config::SimConfig;
use crate::rowhammer::{sample_standard_normal, BitFlip, FlipModel};
use crate::stats::SimStats;

/// A simulated memory controller in front of one DRAM module.
///
/// Each access is decoded through the configured (ground-truth)
/// [`AddressMapping`], served by the per-bank row buffer and charged a
/// latency that depends on whether it hit the open row, found the bank
/// precharged, or conflicted with a different open row. Latencies include
/// configurable Gaussian noise and rare outliers so that the
/// reverse-engineering algorithms have to cope with realistic measurements.
///
/// Row activations feed the [`FlipModel`]; refresh windows close all rows and
/// materialise rowhammer bit flips.
#[derive(Debug, Clone)]
pub struct MemoryController {
    mapping: AddressMapping,
    config: SimConfig,
    open_rows: Vec<Option<u32>>,
    flip_model: FlipModel,
    rng: StdRng,
    stats: SimStats,
    next_refresh_ns: u64,
    /// Optional in-DRAM row remapping: the row index the DRAM array (row
    /// buffers, adjacency, rowhammer) actually uses is
    /// `remap.apply(mapping row)`. Being a bijection per bank, it changes
    /// *which* physical rows are neighbours but never whether two addresses
    /// conflict — it is invisible to the timing channel by construction.
    row_remap: Option<RowRemap>,
    /// Per-bank activation counters driving the TRR-like periodic noise
    /// (see [`crate::TimingParams::trr_period`]).
    trr_counters: Vec<u64>,
}

impl MemoryController {
    /// Creates a controller for a module wired according to `mapping`.
    pub fn new(mapping: AddressMapping, config: SimConfig) -> Self {
        let banks = mapping.num_banks() as usize;
        let rows = mapping.num_rows();
        MemoryController {
            open_rows: vec![None; banks],
            flip_model: FlipModel::new(config.flip_params, rows),
            rng: StdRng::seed_from_u64(config.rng_seed),
            stats: SimStats::new(),
            next_refresh_ns: config.refresh_interval_ns,
            row_remap: None,
            trr_counters: vec![0; banks],
            mapping,
            config,
        }
    }

    /// Installs an in-DRAM row remapping (builder style).
    #[must_use]
    pub fn with_row_remap(mut self, remap: RowRemap) -> Self {
        self.row_remap = Some(remap);
        self
    }

    /// The installed row remapping, if any.
    pub fn row_remap(&self) -> Option<RowRemap> {
        self.row_remap
    }

    /// The row index the DRAM array uses for `addr` (mapping row pushed
    /// through the remap when one is installed).
    pub fn array_row(&self, addr: PhysAddr) -> u32 {
        let row = self.mapping.row_of(addr);
        self.row_remap.map_or(row, |r| r.apply(row))
    }

    /// The ground-truth mapping the controller decodes addresses with.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Simulated nanoseconds elapsed since construction.
    pub fn elapsed_ns(&self) -> u64 {
        self.stats.elapsed_ns
    }

    /// Performs one uncached memory access and returns its latency in
    /// simulated nanoseconds.
    ///
    /// This models the `clflush`-then-load measurement loop used by the real
    /// tools: caches play no role, only the DRAM row-buffer state does.
    pub fn access(&mut self, addr: PhysAddr) -> u64 {
        let dram = self.mapping.to_dram(addr);
        self.access_decoded(dram.bank, dram.row)
    }

    /// One access at pre-decoded coordinates — the body of
    /// [`MemoryController::access`] after address decoding. A measurement
    /// loop alternating between two fixed addresses decodes each once and
    /// replays the accesses through here; the row-buffer transitions, RNG
    /// draws and refresh schedule are identical to calling `access` (only
    /// the repeated, pure `to_dram` decode is skipped).
    pub fn access_decoded(&mut self, bank: u32, logical_row: u32) -> u64 {
        let row = self.row_remap.map_or(logical_row, |r| r.apply(logical_row));
        let timing = self.config.timing;
        let slot = &mut self.open_rows[bank as usize];
        let mut activated = false;
        let base = match *slot {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                timing.row_hit_ns
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                self.flip_model.record_activation(bank, row);
                activated = true;
                timing.row_conflict_ns
            }
            None => {
                self.stats.row_empty += 1;
                self.flip_model.record_activation(bank, row);
                activated = true;
                timing.row_closed_ns
            }
        };
        *slot = Some(row);

        let mut latency = base as f64;
        if activated && timing.trr_period > 0 {
            let counter = &mut self.trr_counters[bank as usize];
            *counter += 1;
            if counter.is_multiple_of(timing.trr_period) {
                latency += timing.trr_spike_ns as f64;
            }
        }
        if timing.noise_sigma_ns > 0.0 {
            latency += timing.noise_sigma_ns * sample_standard_normal(&mut self.rng);
        }
        if timing.outlier_probability > 0.0 && self.rng.gen::<f64>() < timing.outlier_probability {
            latency += timing.outlier_extra_ns as f64;
        }
        let latency = latency.max(1.0).round() as u64;

        self.stats.accesses += 1;
        self.stats.elapsed_ns += latency;
        while self.stats.elapsed_ns >= self.next_refresh_ns {
            self.refresh();
        }
        latency
    }

    /// Decodes an address without touching the row buffers (oracle access,
    /// used only by tests and the experiment harness for verification).
    pub fn decode(&self, addr: PhysAddr) -> DramAddress {
        self.mapping.to_dram(addr)
    }

    /// Forces a refresh: all banks are precharged, hammer pressure is
    /// evaluated for bit flips and then cleared.
    pub fn refresh(&mut self) {
        self.flip_model.refresh(&mut self.rng);
        for slot in &mut self.open_rows {
            *slot = None;
        }
        self.stats.refreshes += 1;
        self.next_refresh_ns = self
            .next_refresh_ns
            .max(self.stats.elapsed_ns)
            .saturating_add(self.config.refresh_interval_ns);
    }

    /// Precharges all banks without evaluating rowhammer pressure
    /// (models an idle period long enough for row buffers to close).
    pub fn close_all_rows(&mut self) {
        for slot in &mut self.open_rows {
            *slot = None;
        }
    }

    /// Re-aligns the controller's stochastic state to a phase boundary: the
    /// noise stream is re-seeded from the configured seed mixed with `salt`,
    /// all row buffers close, pending hammer pressure *and* already
    /// materialised (but not yet collected) bit flips are discarded, and the
    /// next refresh is scheduled one full window from now.
    ///
    /// After this call both the latency sequence and the flip record
    /// produced by a given access sequence are a pure function of
    /// `(config, salt)` — independent of everything measured or hammered
    /// before the boundary. The pipeline engine uses this (through
    /// `MemoryProbe::begin_phase`) so that a phase replayed after a
    /// checkpoint resume observes bit-identical measurements, and observable
    /// channels that hammer use it so stale flips from an earlier phase are
    /// never attributed to the current one.
    pub fn begin_phase(&mut self, salt: u64) {
        self.rng = StdRng::seed_from_u64(self.config.rng_seed ^ salt);
        self.close_all_rows();
        self.flip_model.clear_pressure();
        let _ = self.flip_model.take_flips();
        for counter in &mut self.trr_counters {
            *counter = 0;
        }
        self.next_refresh_ns = self
            .stats
            .elapsed_ns
            .saturating_add(self.config.refresh_interval_ns);
    }

    /// Advances the simulated clock without performing accesses.
    pub fn advance_time(&mut self, ns: u64) {
        self.stats.elapsed_ns += ns;
        while self.stats.elapsed_ns >= self.next_refresh_ns {
            self.refresh();
        }
    }

    /// The row currently open in `bank`, if any.
    pub fn open_row(&self, bank: u32) -> Option<u32> {
        self.open_rows.get(bank as usize).copied().flatten()
    }

    /// Bit flips accumulated since the last [`MemoryController::take_flips`].
    pub fn flips(&self) -> &[BitFlip] {
        self.flip_model.flips()
    }

    /// Returns and clears the accumulated bit flips.
    pub fn take_flips(&mut self) -> Vec<BitFlip> {
        self.flip_model.take_flips()
    }

    /// Returns and clears the accumulated bit flips with each flip's row
    /// translated from DRAM-array coordinates back into address-space
    /// (mapping) rows — the view an attacker scanning memory for corrupted
    /// data actually gets. Without a row remap the two coordinate systems
    /// coincide; with one, the XOR involution inverts itself, so the
    /// reported row is the one the mapping assigns to the corrupted
    /// address.
    pub fn take_flips_addressed(&mut self) -> Vec<BitFlip> {
        let remap = self.row_remap;
        let mut flips = self.flip_model.take_flips();
        if let Some(r) = remap {
            for flip in &mut flips {
                flip.row = r.apply(flip.row);
            }
        }
        flips
    }

    /// Access to the flip model (tests and the rowhammer harness).
    pub fn flip_model(&self) -> &FlipModel {
        &self.flip_model
    }
}

/// A simulated machine: the memory controller plus the machine setting it
/// was built from (if any).
#[derive(Debug, Clone)]
pub struct SimMachine {
    controller: MemoryController,
    setting: Option<MachineSetting>,
    generated: Option<GeneratedMachine>,
}

impl SimMachine {
    /// Creates a machine from an explicit ground-truth mapping.
    pub fn new(mapping: AddressMapping, config: SimConfig) -> Self {
        SimMachine {
            controller: MemoryController::new(mapping, config),
            setting: None,
            generated: None,
        }
    }

    /// Creates a machine simulating one of the paper's Table-II settings.
    pub fn from_setting(setting: &MachineSetting, config: SimConfig) -> Self {
        SimMachine {
            controller: MemoryController::new(setting.mapping().clone(), config),
            setting: Some(setting.clone()),
            generated: None,
        }
    }

    /// Creates a machine simulating a [`GeneratedMachine`] sampled by
    /// [`dram_model::MachineGen`], wiring its row remap (when present) into
    /// the controller.
    pub fn from_generated(machine: &GeneratedMachine, config: SimConfig) -> Self {
        let mut controller = MemoryController::new(machine.mapping().clone(), config);
        if let Some(remap) = machine.row_remap {
            controller = controller.with_row_remap(remap);
        }
        SimMachine {
            controller,
            setting: None,
            generated: Some(machine.clone()),
        }
    }

    /// The machine setting this simulator models, if it was built from one.
    pub fn setting(&self) -> Option<&MachineSetting> {
        self.setting.as_ref()
    }

    /// The generated machine model this simulator runs, if it was built from
    /// one.
    pub fn generated(&self) -> Option<&GeneratedMachine> {
        self.generated.as_ref()
    }

    /// The ground-truth mapping (the "answer key" for verification).
    pub fn ground_truth(&self) -> &AddressMapping {
        self.controller.mapping()
    }

    /// Shared access to the memory controller.
    pub fn controller(&self) -> &MemoryController {
        &self.controller
    }

    /// Exclusive access to the memory controller.
    pub fn controller_mut(&mut self) -> &mut MemoryController {
        &mut self.controller
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::MappingBuilder;

    fn small_mapping() -> AddressMapping {
        // A tiny 1 MiB module: 4 banks, 64 rows, 4 KiB rows.
        MappingBuilder::new()
            .bank_func(&[12, 14])
            .bank_func(&[13, 15])
            .row_bit_range(14, 19)
            .column_bit_range(0, 11)
            .build()
            .unwrap()
    }

    fn controller_noiseless() -> MemoryController {
        MemoryController::new(small_mapping(), SimConfig::noiseless())
    }

    #[test]
    fn first_access_finds_bank_empty() {
        let mut c = controller_noiseless();
        let lat = c.access(PhysAddr::new(0));
        assert_eq!(lat, c.config().timing.row_closed_ns);
        assert_eq!(c.stats().row_empty, 1);
    }

    #[test]
    fn same_row_hits_after_open() {
        let mut c = controller_noiseless();
        let a = PhysAddr::new(0x10);
        c.access(a);
        let lat = c.access(a + 8);
        assert_eq!(lat, c.config().timing.row_hit_ns);
        assert_eq!(c.stats().row_hits, 1);
    }

    #[test]
    fn sbdr_pair_conflicts_every_time() {
        let mut c = controller_noiseless();
        let m = c.mapping().clone();
        let a = m.to_phys(DramAddress::new(1, 3, 0)).unwrap();
        let b = m.to_phys(DramAddress::new(1, 7, 0)).unwrap();
        c.access(a);
        let mut conflict_lat = 0;
        for _ in 0..10 {
            conflict_lat = c.access(b).max(c.access(a));
        }
        assert_eq!(conflict_lat, c.config().timing.row_conflict_ns);
        assert!(c.stats().row_conflicts >= 20);
    }

    #[test]
    fn different_banks_do_not_conflict() {
        let mut c = controller_noiseless();
        let m = c.mapping().clone();
        let a = m.to_phys(DramAddress::new(0, 3, 0)).unwrap();
        let b = m.to_phys(DramAddress::new(2, 9, 0)).unwrap();
        c.access(a);
        c.access(b);
        // Alternating accesses now always hit their own open row.
        for _ in 0..10 {
            assert_eq!(c.access(a), c.config().timing.row_hit_ns);
            assert_eq!(c.access(b), c.config().timing.row_hit_ns);
        }
    }

    #[test]
    fn open_row_tracking_and_close_all() {
        let mut c = controller_noiseless();
        let m = c.mapping().clone();
        let a = m.to_phys(DramAddress::new(3, 5, 0)).unwrap();
        c.access(a);
        assert_eq!(c.open_row(3), Some(5));
        c.close_all_rows();
        assert_eq!(c.open_row(3), None);
        assert_eq!(c.open_row(99), None);
    }

    #[test]
    fn refresh_advances_schedule_and_counts() {
        let mut c = controller_noiseless();
        let before = c.stats().refreshes;
        c.refresh();
        assert_eq!(c.stats().refreshes, before + 1);
        // A long idle period triggers automatic refreshes.
        c.advance_time(c.config().refresh_interval_ns * 3);
        assert!(c.stats().refreshes >= before + 2);
    }

    #[test]
    fn elapsed_time_accumulates_latencies() {
        let mut c = controller_noiseless();
        let l1 = c.access(PhysAddr::new(0));
        let l2 = c.access(PhysAddr::new(0x100000 - 8));
        assert_eq!(c.elapsed_ns(), l1 + l2);
        assert_eq!(c.stats().accesses, 2);
    }

    #[test]
    fn noise_produces_varying_latencies() {
        let mut c = MemoryController::new(small_mapping(), SimConfig::default());
        let a = PhysAddr::new(0);
        let lats: Vec<u64> = (0..50).map(|_| c.access(a)).collect();
        let distinct: std::collections::HashSet<u64> = lats.iter().copied().collect();
        assert!(distinct.len() > 3, "noisy latencies should vary");
    }

    #[test]
    fn decode_matches_mapping() {
        let c = controller_noiseless();
        let m = c.mapping().clone();
        let addr = PhysAddr::new(0x4_2000);
        assert_eq!(c.decode(addr), m.to_dram(addr));
    }

    #[test]
    fn sim_machine_from_setting_exposes_ground_truth() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let machine = SimMachine::from_setting(&setting, SimConfig::noiseless());
        assert!(machine.ground_truth().equivalent_to(setting.mapping()));
        assert_eq!(machine.setting().unwrap().number, 4);
        let anon = SimMachine::new(small_mapping(), SimConfig::noiseless());
        assert!(anon.setting().is_none());
    }

    #[test]
    fn trr_sampler_spikes_periodically_and_only_on_activations() {
        let mut config = SimConfig::noiseless();
        config.timing.trr_period = 4;
        config.timing.trr_spike_ns = 500;
        let mut c = MemoryController::new(small_mapping(), config.clone());
        let m = c.mapping().clone();
        let a = m.to_phys(DramAddress::new(1, 3, 0)).unwrap();
        let b = m.to_phys(DramAddress::new(1, 7, 0)).unwrap();
        let conflict = c.config().timing.row_conflict_ns;
        let spike = c.config().timing.trr_spike_ns;
        // Alternating SBDR accesses: every access activates, so every 4th
        // one pays the deterministic spike. The first access finds the bank
        // empty (activation #1); 25 more alternations follow.
        let mut latencies = vec![c.access(a)];
        for _ in 0..25 {
            latencies.push(c.access(b));
            latencies.push(c.access(a));
        }
        let spiked = latencies.iter().filter(|&&l| l > conflict).count();
        assert_eq!(spiked, latencies.len() / 4);
        assert!(latencies.iter().all(|&l| l <= conflict + spike));
        // Row hits do not activate and therefore never trigger the sampler.
        let mut c = MemoryController::new(small_mapping(), config);
        c.access(a);
        for _ in 0..20 {
            assert!(c.access(a) <= c.config().timing.row_hit_ns);
        }
    }

    #[test]
    fn row_remap_is_invisible_to_conflict_timing() {
        let remap = dram_model::RowRemap { xor_mask: 0b1010 };
        let mut plain = MemoryController::new(small_mapping(), SimConfig::noiseless());
        let mut remapped =
            MemoryController::new(small_mapping(), SimConfig::noiseless()).with_row_remap(remap);
        let m = plain.mapping().clone();
        let a = m.to_phys(DramAddress::new(1, 3, 0)).unwrap();
        let b = m.to_phys(DramAddress::new(1, 7, 0)).unwrap();
        let c_addr = m.to_phys(DramAddress::new(1, 3, 64)).unwrap();
        for addr in [a, b, c_addr, a, a, b] {
            assert_eq!(plain.access(addr), remapped.access(addr));
        }
        // The DRAM array row differs even though the timing does not.
        assert_eq!(plain.array_row(a), 3);
        assert_eq!(remapped.array_row(a), 3 ^ 0b1010);
        assert_eq!(remapped.row_remap(), Some(remap));
        assert_eq!(plain.row_remap(), None);
    }

    #[test]
    fn from_generated_wires_mapping_and_remap() {
        use dram_model::{MachineClass, MachineGen};
        let gen = MachineGen::new(7).generate(MachineClass::RowRemap);
        let machine = SimMachine::from_generated(&gen, SimConfig::noiseless());
        assert!(machine.ground_truth().equivalent_to(gen.mapping()));
        assert_eq!(machine.controller().row_remap(), gen.row_remap);
        assert_eq!(machine.generated().unwrap().label, gen.label);
        assert!(machine.setting().is_none());

        let in_scope = MachineGen::new(7).generate(MachineClass::InScope);
        let machine = SimMachine::from_generated(&in_scope, SimConfig::noiseless());
        assert_eq!(machine.controller().row_remap(), None);
    }

    fn hammer_victim(c: &mut MemoryController, victim_row: u32) {
        let m = c.mapping().clone();
        let above = m.to_phys(DramAddress::new(0, victim_row + 1, 0)).unwrap();
        let below = m.to_phys(DramAddress::new(0, victim_row - 1, 0)).unwrap();
        for _ in 0..40_000 {
            c.access(above);
            c.access(below);
        }
        c.refresh();
    }

    #[test]
    fn addressed_flips_invert_the_row_remap() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        // A high-bit mask keeps consecutive rows consecutive inside each
        // aligned 64-row block, so a double-sided attack on logical rows
        // r±1 really pressures the array row remap(r).
        let remap = dram_model::RowRemap {
            xor_mask: 0b100_0000,
        };
        let mut machine = SimMachine::from_setting(&setting, SimConfig::fast_rowhammer());
        *machine.controller_mut() = machine.controller().clone().with_row_remap(remap);
        let flip_model = machine.controller().flip_model().clone();
        let victim_row = (8..5_000u32)
            .find(|&r| {
                (1..=62).contains(&(r & 63))
                    && flip_model.row_vulnerability(0, remap.apply(r)) > 0.3
            })
            .unwrap();
        hammer_victim(machine.controller_mut(), victim_row);
        let c = machine.controller_mut();
        let raw: Vec<u32> = c.flips().iter().map(|f| f.row).collect();
        let addressed = c.take_flips_addressed();
        assert!(!addressed.is_empty());
        // Raw flips sit in array coordinates; addressed flips undo the
        // involution, landing back on the logical victim row.
        assert!(raw.contains(&remap.apply(victim_row)));
        assert!(addressed.iter().any(|f| f.row == victim_row));
        for (r, a) in raw.iter().zip(&addressed) {
            assert_eq!(remap.apply(*r), a.row);
        }
    }

    #[test]
    fn begin_phase_discards_materialised_flips() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let mut machine = SimMachine::from_setting(&setting, SimConfig::fast_rowhammer());
        let flip_model = machine.controller().flip_model().clone();
        let victim_row = (1..5_000u32)
            .find(|&r| flip_model.row_vulnerability(0, r) > 0.3)
            .unwrap();
        hammer_victim(machine.controller_mut(), victim_row);
        assert!(!machine.controller().flips().is_empty());
        machine.controller_mut().begin_phase(0xF00D);
        assert!(
            machine.controller().flips().is_empty(),
            "a phase boundary must not leak stale flips into the next phase"
        );
    }

    #[test]
    fn hammering_through_controller_produces_flips() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let mut machine = SimMachine::from_setting(&setting, SimConfig::fast_rowhammer());
        let truth = machine.ground_truth().clone();
        // Find a vulnerable victim row and hammer its neighbours.
        let flip_model = machine.controller().flip_model().clone();
        let victim_row = (1..5_000u32)
            .find(|&r| flip_model.row_vulnerability(0, r) > 0.3)
            .unwrap();
        let above = truth
            .to_phys(DramAddress::new(0, victim_row + 1, 0))
            .unwrap();
        let below = truth
            .to_phys(DramAddress::new(0, victim_row - 1, 0))
            .unwrap();
        let c = machine.controller_mut();
        for _ in 0..40_000 {
            c.access(above);
            c.access(below);
        }
        c.refresh();
        let flips = c.take_flips();
        assert!(
            flips.iter().any(|f| f.row == victim_row),
            "alternating access to the two neighbours must flip the victim"
        );
    }
}
