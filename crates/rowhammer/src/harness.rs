//! Double-sided and single-sided hammering loops.

use dram_model::PhysAddr;
use dram_sim::{BitFlip, SimMachine};

use crate::attacker::AttackerView;
use crate::roles::{
    Allocator, DoubleSidedHammerer, FlipTally, HammerAttempt, Hammerer, RandomAllocator,
    SingleSidedHammerer, Victim,
};

/// Parameters of one rowhammer test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HammerConfig {
    /// Number of victim locations attempted in this test.
    pub victims: usize,
    /// Alternating access iterations per aggressor pair (each iteration
    /// touches both aggressors once).
    pub iterations_per_pair: u32,
    /// Optional cap on the simulated time of the whole test, in nanoseconds;
    /// the test stops early once the simulated clock advanced this far. This
    /// is how the "5 minute" tests of Table III are expressed.
    pub duration_ns: Option<u64>,
    /// Seed for victim selection.
    pub rng_seed: u64,
}

impl Default for HammerConfig {
    fn default() -> Self {
        HammerConfig {
            victims: 64,
            iterations_per_pair: 6_000,
            duration_ns: None,
            rng_seed: 0x4A44,
        }
    }
}

impl HammerConfig {
    /// A very small test for unit tests and doc examples.
    pub fn quick() -> Self {
        HammerConfig {
            victims: 4,
            iterations_per_pair: 500,
            duration_ns: None,
            rng_seed: 0x4A44,
        }
    }

    /// A test bounded by simulated duration (Table III uses five simulated
    /// "minutes" scaled to the fast rowhammer configuration).
    pub fn timed(duration_ns: u64, seed: u64) -> Self {
        HammerConfig {
            victims: usize::MAX,
            iterations_per_pair: 6_000,
            duration_ns: Some(duration_ns),
            rng_seed: seed,
        }
    }
}

/// Result of one hammering test.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HammerResult {
    /// Bit flips induced during the test.
    pub flips: usize,
    /// Victim locations for which aggressor addresses could be constructed
    /// and hammered.
    pub pairs_attempted: usize,
    /// Victim locations skipped because the attacker's view could not build
    /// aggressors (edge rows, inconsistent model).
    pub pairs_skipped: usize,
    /// Diagnostic (uses the simulator's ground truth): how many hammered
    /// pairs really were same-bank rows exactly two apart.
    pub truly_double_sided: usize,
    /// Simulated nanoseconds the test consumed.
    pub elapsed_ns: u64,
}

impl HammerResult {
    /// Simulated seconds the test consumed.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_ns as f64 / 1e9
    }

    /// Fraction of hammered pairs that were truly double-sided.
    pub fn adjacency_rate(&self) -> f64 {
        if self.pairs_attempted == 0 {
            0.0
        } else {
            self.truly_double_sided as f64 / self.pairs_attempted as f64
        }
    }
}

/// Drives one rowhammer attack from its three composable roles: the
/// [`Allocator`] proposes victims, the [`Hammerer`] builds and drives
/// aggressors for each, and the [`Victim`] observes every flip the attack
/// materialised. The optional `duration_ns` budget of `cfg` is honoured
/// between victims.
///
/// Counting semantics are identical to the original monolithic loops: flips
/// are drained once up front and collected once at the end (with a final
/// refresh), so mid-attack refresh windows accumulate rather than reset the
/// tally.
pub fn run_attack(
    machine: &mut SimMachine,
    view: &AttackerView,
    cfg: &HammerConfig,
    allocator: &mut dyn Allocator,
    hammerer: &mut dyn Hammerer,
    victim_role: &mut dyn Victim,
) -> HammerResult {
    let truth = machine.ground_truth().clone();
    let start_ns = machine.controller().elapsed_ns();
    let mut result = HammerResult::default();
    machine.controller_mut().take_flips();

    loop {
        if let Some(limit) = cfg.duration_ns {
            if machine.controller().elapsed_ns() - start_ns >= limit {
                break;
            }
        }
        let Some(victim) = allocator.next_victim(view) else {
            break;
        };
        match hammerer.hammer(machine.controller_mut(), view, victim) {
            HammerAttempt::Skipped => result.pairs_skipped += 1,
            HammerAttempt::Hammered {
                aggressors,
                double_sided_intent,
            } => {
                if double_sided_intent && aggressors.len() == 2 {
                    let v = truth.to_dram(victim);
                    let b = truth.to_dram(aggressors[0]);
                    let a = truth.to_dram(aggressors[1]);
                    if b.bank == v.bank
                        && a.bank == v.bank
                        && b.row.abs_diff(a.row) == 2
                        && a.row != b.row
                    {
                        result.truly_double_sided += 1;
                    }
                }
                result.pairs_attempted += 1;
            }
        }
    }
    let controller = machine.controller_mut();
    controller.refresh();
    let flips = controller.take_flips();
    victim_role.observe(&flips);
    result.flips = flips.len();
    result.elapsed_ns = controller.elapsed_ns() - start_ns;
    result
}

/// Runs a double-sided rowhammer test: for each victim the two addresses the
/// attacker believes to be the adjacent rows are hammered alternately.
pub fn run_double_sided(
    machine: &mut SimMachine,
    view: &AttackerView,
    cfg: &HammerConfig,
) -> HammerResult {
    let capacity = machine.ground_truth().capacity_bytes();
    run_attack(
        machine,
        view,
        cfg,
        &mut RandomAllocator::new(capacity, cfg.victims, cfg.rng_seed),
        &mut DoubleSidedHammerer {
            iterations: cfg.iterations_per_pair,
        },
        &mut FlipTally::default(),
    )
}

/// Runs a single-sided test: only the row the attacker believes to be just
/// above the victim is hammered (together with a far-away address in the same
/// believed bank to keep evicting the row buffer).
pub fn run_single_sided(
    machine: &mut SimMachine,
    view: &AttackerView,
    cfg: &HammerConfig,
) -> HammerResult {
    let capacity = machine.ground_truth().capacity_bytes();
    run_attack(
        machine,
        view,
        cfg,
        &mut RandomAllocator::new(capacity, cfg.victims, cfg.rng_seed),
        &mut SingleSidedHammerer {
            iterations: cfg.iterations_per_pair,
        },
        &mut FlipTally::default(),
    )
}

/// Hammers one believed-adjacent aggressor pair and returns every flip it
/// induced, attributed to address-space rows (the remap involution — when
/// the module has one — is already undone, as an attacker scanning memory
/// for corrupted data would see it). This is the engine-consumable primitive
/// the flip-adjacency observable is built on.
///
/// The refresh window is re-aligned before hammering (one refresh up front)
/// so the whole burst lands inside a single window; a burst split across a
/// refresh boundary would have its aggressor pressure evaluated in two
/// halves that may both sit below the flip thresholds.
pub fn hammer_pair(
    machine: &mut SimMachine,
    a: PhysAddr,
    b: PhysAddr,
    iterations: u32,
) -> Vec<BitFlip> {
    let controller = machine.controller_mut();
    controller.refresh();
    controller.take_flips();
    for _ in 0..iterations {
        controller.access(a);
        controller.access(b);
    }
    controller.refresh();
    controller.take_flips_addressed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::MachineSetting;
    use dram_sim::SimConfig;

    fn machine(number: u8) -> (SimMachine, MachineSetting) {
        let setting = MachineSetting::by_number(number).unwrap();
        (
            SimMachine::from_setting(&setting, SimConfig::fast_rowhammer()),
            setting,
        )
    }

    fn test_config() -> HammerConfig {
        HammerConfig {
            victims: 24,
            iterations_per_pair: 3_000,
            duration_ns: None,
            rng_seed: 7,
        }
    }

    #[test]
    fn correct_mapping_induces_flips() {
        let (mut m, setting) = machine(1);
        let view = AttackerView::from_mapping(setting.mapping());
        let result = run_double_sided(&mut m, &view, &test_config());
        assert_eq!(result.pairs_attempted + result.pairs_skipped, 24);
        assert_eq!(result.truly_double_sided, result.pairs_attempted);
        assert!(
            result.flips > 0,
            "correct double-sided hammering must flip bits"
        );
        assert!(result.elapsed_ns > 0);
    }

    #[test]
    fn incomplete_mapping_induces_fewer_flips() {
        let (mut m_good, setting) = machine(1);
        let truth = setting.mapping();
        let good = AttackerView::from_mapping(truth);
        let good_result = run_double_sided(&mut m_good, &good, &test_config());

        // DRAMA-style view: right functions, but missing the shared row bits.
        let shared = truth.shared_row_bits();
        let partial_rows: Vec<u8> = truth
            .row_bits()
            .iter()
            .copied()
            .filter(|b| !shared.contains(b))
            .collect();
        let bad = AttackerView::new(truth.bank_funcs().to_vec(), partial_rows);
        let (mut m_bad, _) = machine(1);
        let bad_result = run_double_sided(&mut m_bad, &bad, &test_config());

        assert_eq!(bad_result.truly_double_sided, 0);
        assert!(
            good_result.flips > bad_result.flips * 2,
            "good {} vs bad {}",
            good_result.flips,
            bad_result.flips
        );
    }

    #[test]
    fn double_sided_beats_single_sided_with_the_same_budget() {
        let (mut m1, setting) = machine(4);
        let view = AttackerView::from_mapping(setting.mapping());
        let double = run_double_sided(&mut m1, &view, &test_config());
        let (mut m2, _) = machine(4);
        let single = run_single_sided(&mut m2, &view, &test_config());
        assert!(
            double.flips > single.flips,
            "double {} vs single {}",
            double.flips,
            single.flips
        );
    }

    #[test]
    fn timed_test_respects_duration() {
        let (mut m, setting) = machine(1);
        let view = AttackerView::from_mapping(setting.mapping());
        let cfg = HammerConfig::timed(20_000_000, 3);
        let result = run_double_sided(&mut m, &view, &cfg);
        // One extra pair may start just before the deadline.
        assert!(result.elapsed_ns < 20_000_000 + 10_000_000);
        assert!(result.pairs_attempted > 0);
    }

    #[test]
    fn adjacency_rate_diagnostic() {
        let r = HammerResult {
            flips: 0,
            pairs_attempted: 10,
            pairs_skipped: 0,
            truly_double_sided: 5,
            elapsed_ns: 0,
        };
        assert!((r.adjacency_rate() - 0.5).abs() < 1e-12);
        assert_eq!(HammerResult::default().adjacency_rate(), 0.0);
    }
}
