//! Rowhammer test harness driven by a (possibly imperfect) DRAM mapping.
//!
//! The DRAMDig paper justifies the correctness of its recovered mappings by
//! running double-sided rowhammer tests: a correct mapping lets the attacker
//! place two aggressor rows exactly one row above and below a victim row in
//! the same bank, which induces far more bit flips than an incorrect mapping
//! whose "adjacent" rows are actually far apart or even in different banks
//! (Table III).
//!
//! This crate provides:
//!
//! * [`AttackerView`] — what the attacker *believes* about the mapping (bank
//!   functions and row bits), constructed either from a full
//!   [`dram_model::AddressMapping`] or from the partial output of a baseline
//!   tool.
//! * [`harness`] — the double-sided (and single-sided) hammering loops that
//!   drive a [`dram_sim::SimMachine`] and count the bit flips its
//!   charge-leakage model produces.
//! * [`roles`] — the attack side split into pluggable [`Allocator`],
//!   [`Hammerer`] and [`Victim`] roles, so aggressor placement, the hammer
//!   loop and flip attribution compose independently.
//! * [`observable`] — [`FlipAdjacencyObservable`], the rowhammer-backed
//!   [`mem_probe::Observable`] channel: it answers row-adjacency queries from
//!   flip counts and recovers XOR row remaps that are provably invisible to
//!   conflict timing.
//!
//! # Example
//!
//! ```
//! use dram_model::MachineSetting;
//! use dram_sim::{SimConfig, SimMachine};
//! use rowhammer::{AttackerView, HammerConfig, run_double_sided};
//!
//! let setting = MachineSetting::no1_sandy_bridge_ddr3_8g();
//! let mut machine = SimMachine::from_setting(&setting, SimConfig::fast_rowhammer());
//! let view = AttackerView::from_mapping(setting.mapping());
//! let result = run_double_sided(&mut machine, &view, &HammerConfig::quick());
//! assert!(result.pairs_attempted > 0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod attacker;
pub mod harness;
pub mod observable;
pub mod roles;

pub use attacker::AttackerView;
pub use harness::{
    hammer_pair, run_attack, run_double_sided, run_single_sided, HammerConfig, HammerResult,
};
pub use observable::{FlipAdjacencyConfig, FlipAdjacencyObservable};
pub use roles::{
    Allocator, DoubleSidedHammerer, FlipTally, HammerAttempt, Hammerer, RandomAllocator,
    SingleSidedHammerer, Victim,
};
