//! The attack side decomposed into three composable roles.
//!
//! A rowhammer test is a pipeline of three decisions — *where* to attack,
//! *how* to drive the aggressor accesses, and *what* to do with the flips
//! the DRAM produces. Splitting them into [`Allocator`], [`Hammerer`] and
//! [`Victim`] traits lets the harness, the flip-adjacency observable and
//! future channels mix strategies without rewriting the drive loop
//! ([`crate::harness::run_attack`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dram_model::PhysAddr;
use dram_sim::{BitFlip, MemoryController};

use crate::attacker::AttackerView;

/// Chooses victim locations to attack.
pub trait Allocator {
    /// Proposes the next victim address, or `None` when the allocation
    /// strategy is exhausted.
    fn next_victim(&mut self, view: &AttackerView) -> Option<PhysAddr>;
}

/// Uniform random victim selection over the module's physical capacity —
/// the strategy of the paper's Table-III methodology.
#[derive(Debug)]
pub struct RandomAllocator {
    rng: StdRng,
    capacity: u64,
    remaining: usize,
}

impl RandomAllocator {
    /// Draws up to `victims` cache-line-aligned addresses below `capacity`
    /// from a deterministic stream seeded with `seed`.
    pub fn new(capacity: u64, victims: usize, seed: u64) -> Self {
        RandomAllocator {
            rng: StdRng::seed_from_u64(seed),
            capacity,
            remaining: victims,
        }
    }
}

impl Allocator for RandomAllocator {
    fn next_victim(&mut self, _view: &AttackerView) -> Option<PhysAddr> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(PhysAddr::new(self.rng.gen_range(0..self.capacity) & !0x3f))
    }
}

/// The outcome of asking a [`Hammerer`] to attack one victim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HammerAttempt {
    /// The aggressor set was constructed and hammered.
    Hammered {
        /// The addresses that were driven.
        aggressors: Vec<PhysAddr>,
        /// Whether the strategy *intended* a double-sided sandwich (used by
        /// the harness's ground-truth adjacency diagnostic).
        double_sided_intent: bool,
    },
    /// The attacker's view could not construct aggressors for this victim
    /// (edge row, inconsistent model).
    Skipped,
}

/// Drives the aggressor access pattern for one victim.
pub trait Hammerer {
    /// Builds the aggressor set for `victim` under `view` and hammers it
    /// through `controller`.
    fn hammer(
        &mut self,
        controller: &mut MemoryController,
        view: &AttackerView,
        victim: PhysAddr,
    ) -> HammerAttempt;
}

/// Classic double-sided hammering: the two rows the attacker believes to be
/// directly above and below the victim, accessed alternately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoubleSidedHammerer {
    /// Alternating iterations per pair (each touches both aggressors once).
    pub iterations: u32,
}

impl Hammerer for DoubleSidedHammerer {
    fn hammer(
        &mut self,
        controller: &mut MemoryController,
        view: &AttackerView,
        victim: PhysAddr,
    ) -> HammerAttempt {
        let Some((below, above)) = view.aggressors_for(victim) else {
            return HammerAttempt::Skipped;
        };
        for _ in 0..self.iterations {
            controller.access(below);
            controller.access(above);
        }
        HammerAttempt::Hammered {
            aggressors: vec![below, above],
            double_sided_intent: true,
        }
    }
}

/// Single-sided hammering: only the believed row above the victim, paired
/// with a far-away partner in the same believed bank to keep evicting the
/// row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleSidedHammerer {
    /// Alternating iterations per pair (each touches both addresses once).
    pub iterations: u32,
}

impl Hammerer for SingleSidedHammerer {
    fn hammer(
        &mut self,
        controller: &mut MemoryController,
        view: &AttackerView,
        victim: PhysAddr,
    ) -> HammerAttempt {
        let row = view.row_of(victim);
        if row + 1 >= view.num_rows() {
            return HammerAttempt::Skipped;
        }
        let Some(aggressor) = view.with_row(victim, row + 1) else {
            return HammerAttempt::Skipped;
        };
        let far_row = (row + view.num_rows() / 2) % view.num_rows();
        let Some(partner) = view.with_row(victim, far_row) else {
            return HammerAttempt::Skipped;
        };
        for _ in 0..self.iterations {
            controller.access(aggressor);
            controller.access(partner);
        }
        HammerAttempt::Hammered {
            aggressors: vec![aggressor, partner],
            double_sided_intent: false,
        }
    }
}

/// Consumes the bit flips an attack produced.
pub trait Victim {
    /// Called once per attack with every flip materialised during it.
    fn observe(&mut self, flips: &[BitFlip]);
}

/// Keeps every observed flip for later analysis (the engine-consumable
/// result the flip-adjacency observable is built on).
#[derive(Debug, Default)]
pub struct FlipTally {
    flips: Vec<BitFlip>,
}

impl FlipTally {
    /// The flips observed so far.
    pub fn flips(&self) -> &[BitFlip] {
        &self.flips
    }

    /// Consumes the tally and returns the flips.
    pub fn into_flips(self) -> Vec<BitFlip> {
        self.flips
    }
}

impl Victim for FlipTally {
    fn observe(&mut self, flips: &[BitFlip]) {
        self.flips.extend_from_slice(flips);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::MachineSetting;
    use dram_sim::{SimConfig, SimMachine};

    #[test]
    fn random_allocator_is_deterministic_and_bounded() {
        let setting = MachineSetting::no1_sandy_bridge_ddr3_8g();
        let view = AttackerView::from_mapping(setting.mapping());
        let capacity = setting.system.capacity_bytes;
        let draw = |seed| -> Vec<PhysAddr> {
            let mut alloc = RandomAllocator::new(capacity, 16, seed);
            std::iter::from_fn(|| alloc.next_victim(&view)).collect()
        };
        let a = draw(7);
        assert_eq!(a.len(), 16);
        assert_eq!(a, draw(7));
        assert_ne!(a, draw(8));
        assert!(a.iter().all(|v| v.raw() < capacity && v.raw() & 0x3f == 0));
    }

    #[test]
    fn double_sided_hammerer_builds_true_sandwiches() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let mut machine = SimMachine::from_setting(&setting, SimConfig::fast_rowhammer());
        let truth = machine.ground_truth().clone();
        let view = AttackerView::from_mapping(&truth);
        let victim = truth
            .to_phys(dram_model::DramAddress::new(2, 300, 0))
            .unwrap();
        let mut hammerer = DoubleSidedHammerer { iterations: 10 };
        let attempt = hammerer.hammer(machine.controller_mut(), &view, victim);
        let HammerAttempt::Hammered {
            aggressors,
            double_sided_intent,
        } = attempt
        else {
            panic!("expected a hammered attempt");
        };
        assert!(double_sided_intent);
        let rows: Vec<u32> = aggressors.iter().map(|&a| truth.row_of(a)).collect();
        assert_eq!(rows, vec![299, 301]);
        // An edge-row victim cannot be sandwiched.
        let edge = truth
            .to_phys(dram_model::DramAddress::new(2, 0, 0))
            .unwrap();
        assert_eq!(
            hammerer.hammer(machine.controller_mut(), &view, edge),
            HammerAttempt::Skipped
        );
    }

    #[test]
    fn flip_tally_accumulates() {
        let mut tally = FlipTally::default();
        let flip = BitFlip {
            bank: 0,
            row: 5,
            byte: 1,
            bit: 2,
            one_to_zero: true,
        };
        tally.observe(&[flip]);
        tally.observe(&[flip, flip]);
        assert_eq!(tally.flips().len(), 3);
        assert_eq!(tally.into_flips().len(), 3);
    }
}
