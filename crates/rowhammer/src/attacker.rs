//! The attacker's model of the DRAM address mapping.

use dram_model::{bits, gf2, AddressMapping, PhysAddr, XorFunc};

/// What the attacker believes about the machine's DRAM address mapping.
///
/// A perfect view (built from a correct [`AddressMapping`]) lets the harness
/// construct true double-sided aggressor pairs. An imperfect view — missing
/// bank functions or missing the row bits that are shared with bank functions,
/// as produced by the DRAMA baseline — makes the constructed "adjacent rows"
/// land far away from the victim or in a different bank, which is exactly why
/// incorrect mappings induce fewer bit flips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackerView {
    bank_funcs: Vec<XorFunc>,
    row_bits: Vec<u8>,
    /// Bits the attacker may freely change to keep the believed bank index
    /// constant (function bits it does not consider row bits).
    compensation_bits: Vec<u8>,
}

impl AttackerView {
    /// Builds a view from explicit bank functions and row bits.
    pub fn new(bank_funcs: Vec<XorFunc>, row_bits: Vec<u8>) -> Self {
        let mut row_bits = row_bits;
        row_bits.sort_unstable();
        row_bits.dedup();
        let func_union: u64 = bank_funcs.iter().fold(0, |m, f| m | f.mask());
        let compensation_bits = bits::bit_positions(func_union)
            .into_iter()
            .filter(|b| !row_bits.contains(b))
            .collect();
        AttackerView {
            bank_funcs,
            row_bits,
            compensation_bits,
        }
    }

    /// Builds the view an attacker with a *complete* mapping would hold.
    pub fn from_mapping(mapping: &AddressMapping) -> Self {
        AttackerView::new(mapping.bank_funcs().to_vec(), mapping.row_bits().to_vec())
    }

    /// The believed bank functions.
    pub fn bank_funcs(&self) -> &[XorFunc] {
        &self.bank_funcs
    }

    /// The believed row bits.
    pub fn row_bits(&self) -> &[u8] {
        &self.row_bits
    }

    /// Number of rows the attacker believes each bank has.
    pub fn num_rows(&self) -> u64 {
        1u64 << self.row_bits.len()
    }

    /// The believed row index of an address.
    pub fn row_of(&self, addr: PhysAddr) -> u64 {
        bits::gather_bits(addr.raw(), &self.row_bits)
    }

    /// The believed bank index of an address.
    pub fn bank_of(&self, addr: PhysAddr) -> u32 {
        let mut bank = 0;
        for (i, f) in self.bank_funcs.iter().enumerate() {
            if f.evaluate(addr) {
                bank |= 1 << i;
            }
        }
        bank
    }

    /// Returns `true` when the attacker believes `a` and `b` share a bank.
    pub fn same_bank(&self, a: PhysAddr, b: PhysAddr) -> bool {
        self.bank_of(a) == self.bank_of(b)
    }

    /// Rewrites `addr` so that its believed row index becomes `row` while the
    /// believed bank index stays unchanged, compensating through the
    /// function bits the attacker does not consider row bits.
    ///
    /// Returns `None` when `row` is out of range or no compensation exists
    /// (the attacker's model is too inconsistent to build the address).
    pub fn with_row(&self, addr: PhysAddr, row: u64) -> Option<PhysAddr> {
        if row >= self.num_rows() {
            return None;
        }
        let row_mask = bits::mask_of(&self.row_bits);
        let new_raw = (addr.raw() & !row_mask) | bits::scatter_bits(row, &self.row_bits);
        let candidate = PhysAddr::new(new_raw);

        // Which believed functions changed parity due to the row rewrite?
        let mut rhs = 0u64;
        for (i, f) in self.bank_funcs.iter().enumerate() {
            if f.evaluate(candidate) != f.evaluate(addr) {
                rhs |= 1 << i;
            }
        }
        if rhs == 0 {
            return Some(candidate);
        }
        // Solve for a set of compensation bits restoring every parity.
        let a_rows: Vec<u64> = self
            .bank_funcs
            .iter()
            .map(|f| bits::gather_bits(f.mask(), &self.compensation_bits))
            .collect();
        let solution = gf2::solve_any(&a_rows, rhs, self.compensation_bits.len())?;
        let flip = bits::scatter_bits(solution, &self.compensation_bits);
        Some(candidate ^ flip)
    }

    /// The two addresses the attacker believes sandwich `victim` (same bank,
    /// rows one below and one above).
    pub fn aggressors_for(&self, victim: PhysAddr) -> Option<(PhysAddr, PhysAddr)> {
        let row = self.row_of(victim);
        if row == 0 || row + 1 >= self.num_rows() {
            return None;
        }
        let below = self.with_row(victim, row - 1)?;
        let above = self.with_row(victim, row + 1)?;
        Some((below, above))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::MachineSetting;

    #[test]
    fn perfect_view_constructs_truly_adjacent_aggressors() {
        for setting in MachineSetting::all() {
            let truth = setting.mapping();
            let view = AttackerView::from_mapping(truth);
            let victim = truth
                .to_phys(dram_model::DramAddress::new(3, 500, 0))
                .unwrap();
            let (below, above) = view.aggressors_for(victim).unwrap();
            let v = truth.to_dram(victim);
            let b = truth.to_dram(below);
            let a = truth.to_dram(above);
            assert_eq!(b.bank, v.bank, "{}", setting.label());
            assert_eq!(a.bank, v.bank, "{}", setting.label());
            assert_eq!(b.row + 1, v.row, "{}", setting.label());
            assert_eq!(a.row, v.row + 1, "{}", setting.label());
        }
    }

    #[test]
    fn incomplete_view_misses_adjacency() {
        // DRAMA-style view of machine No.1: correct functions, but only the
        // row bits that are not shared with bank functions (20..=32).
        let setting = MachineSetting::no1_sandy_bridge_ddr3_8g();
        let truth = setting.mapping();
        let shared = truth.shared_row_bits();
        let partial_rows: Vec<u8> = truth
            .row_bits()
            .iter()
            .copied()
            .filter(|b| !shared.contains(b))
            .collect();
        let view = AttackerView::new(truth.bank_funcs().to_vec(), partial_rows);
        let victim = truth
            .to_phys(dram_model::DramAddress::new(5, 1000, 0))
            .unwrap();
        let (below, above) = view.aggressors_for(victim).unwrap();
        let v = truth.to_dram(victim);
        let b = truth.to_dram(below);
        let a = truth.to_dram(above);
        // Still the same bank (functions are right)…
        assert_eq!(b.bank, v.bank);
        assert_eq!(a.bank, v.bank);
        // …but the "adjacent" rows are actually eight rows away.
        assert!(a.row.abs_diff(v.row) > 1);
        assert!(b.row.abs_diff(v.row) > 1);
    }

    #[test]
    fn with_row_rejects_out_of_range() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let view = AttackerView::from_mapping(setting.mapping());
        let addr = PhysAddr::new(0x1000);
        assert!(view.with_row(addr, view.num_rows()).is_none());
        assert!(view
            .aggressors_for(
                setting
                    .mapping()
                    .to_phys(dram_model::DramAddress::new(0, 0, 0))
                    .unwrap()
            )
            .is_none());
    }

    #[test]
    fn bank_and_row_accessors_match_mapping() {
        let setting = MachineSetting::no7_skylake_ddr4_4g();
        let truth = setting.mapping();
        let view = AttackerView::from_mapping(truth);
        for raw in [0x1234u64, 0xabcd_ef00, 0x7fff_f000] {
            let addr = PhysAddr::new(raw);
            assert_eq!(view.bank_of(addr), truth.bank_of(addr));
            assert_eq!(view.row_of(addr), u64::from(truth.row_of(addr)));
        }
        let a = PhysAddr::new(0x1000);
        let b = PhysAddr::new(0x2000);
        assert_eq!(view.same_bank(a, b), truth.same_bank(a, b));
        assert_eq!(view.bank_funcs().len(), 3);
        assert_eq!(view.row_bits(), truth.row_bits());
    }
}
