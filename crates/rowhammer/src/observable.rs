//! The rowhammer flip-adjacency observable channel.
//!
//! Conflict timing can never see an XOR row remap: the involution preserves
//! row equality, so every timing-visible question has the same answer with
//! or without it. Bit flips can. A victim row only flips when its *physical
//! array* neighbours are hammered, so the rows a flip lands between betray
//! true array adjacency — evidence strong enough to recover the remap mask.
//!
//! # Recovering the mask
//!
//! One tempting experiment teaches nothing: hammering logical rows `t` and
//! `t ^ 2` lands on array rows `(t ^ m)` and `(t ^ m) ^ 2` — a guaranteed
//! double-sided attack for *every* mask `m` — but the flipped row, mapped
//! back to address space, always differs from `t` in only the low two bits,
//! because aggressors and victim are translated by the *same* mask. The
//! observation is invariant under any change to `m` above bit 1.
//!
//! The bits above come from arithmetic carries, which XOR masks do not
//! commute with. The pair `(x, x ^ h)` with `h = 0b1..10` (bits `1..=k`
//! set) sits exactly two rows apart in the array **iff** the masked bits
//! `1..k-1` of `x ^ m` are all ones and bit `k` is zero (a `+2` carry
//! chain), or all zeros with bit `k` one (the `-2` chain). Whether that
//! pair flips a sandwiched victim therefore reads out one mask bit at a
//! time. Recovery proceeds in three phases:
//!
//! 1. **Parity probe** — `(t, t ^ 2)` rounds pin down `bit0(m) ^ bit1(m)`
//!    from which side of the sandwich the victim lands on.
//! 2. **Carry-chain induction** — for each bit `k ≥ 2`, prepare `x` so the
//!    already-known masked bits below `k` form a carry chain and try both
//!    values of bit `k`; only the truly-adjacent variant can ever flip.
//! 3. **Middle-identity verification** — hammer pairs the candidate mask
//!    predicts to be two apart across a three-bit carry and require the
//!    flips to land exactly on the predicted middle row.
//!
//! The aggressor drive is sized between the simulator's double- and
//! single-sided flip thresholds, so a non-adjacent pair is *structurally
//! silent*: any flip at all is unambiguous adjacency evidence.
//!
//! # Reflection equivalence
//!
//! Complementing every row bit (`mask ^ (num_rows - 1)`) mirrors the row
//! line `row -> num_rows - 1 - row`, which preserves physical adjacency, so
//! no flip evidence can distinguish a mask from its reflection — they
//! describe the same module. Recovery returns
//! [`RowRemap::canonical_mask`]; scoring compares masks under the same
//! canonicalisation.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dram_model::{AddressMapping, GeneratedMachine, PhysAddr, RowRemap};
use dram_sim::{SimConfig, SimMachine};
use mem_probe::{
    Observable, ObservableAnswer, ObservableCost, ObservableKind, ObservableQuery, ProbeError,
};

use crate::attacker::AttackerView;
use crate::harness::hammer_pair;

/// Tuning knobs of the flip-adjacency channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlipAdjacencyConfig {
    /// Alternating access iterations per hammered aggressor pair (each
    /// iteration touches both aggressors once). The default sits *between*
    /// the fast profile's double-sided and single-sided thresholds: the
    /// sandwiched middle row can flip but the aggressors' outer neighbours
    /// never can, which makes any flip unambiguous adjacency evidence.
    pub iterations: u32,
    /// Maximum `(t, t ^ 2)` rounds hammered by the parity probe.
    pub parity_rounds: u32,
    /// Parity observations collected before the probe stops early.
    pub parity_observations: usize,
    /// Maximum attempts per bit value during the carry-chain induction; the
    /// two values alternate, so a bit gives up after twice this many silent
    /// rounds (each retry re-randomises the free bits, hence the victim's
    /// vulnerability draw).
    pub attempts_per_variant: u32,
    /// Maximum middle-identity rounds during verification.
    pub verify_rounds: u32,
    /// Confirmed middle flips required for verification to pass.
    pub verify_hits: usize,
    /// Flips on one row needed to call it a double-sided victim. One
    /// suffices at the default drive: non-adjacent pairs are structurally
    /// below the single-sided flip threshold.
    pub flip_threshold: usize,
    /// Seed of the channel's own aggressor-selection stream.
    pub rng_seed: u64,
}

impl Default for FlipAdjacencyConfig {
    fn default() -> Self {
        FlipAdjacencyConfig {
            iterations: 1_500,
            parity_rounds: 32,
            parity_observations: 4,
            attempts_per_variant: 32,
            verify_rounds: 32,
            verify_hits: 2,
            flip_threshold: 1,
            rng_seed: 0xF11A_AD7A,
        }
    }
}

/// An [`Observable`] that answers [`ObservableQuery::RowAdjacency`] by
/// double-sided hammering and recovers XOR row-remap masks from flip
/// adjacency.
///
/// The channel owns its own [`SimMachine`] — on real hardware it would own
/// its own hugepage pool and hammer loop. Keeping it separate from the
/// timing probe's machine means enabling this channel perturbs neither the
/// timing channel's measurement sequences nor its checkpoint artifacts.
#[derive(Debug)]
pub struct FlipAdjacencyObservable {
    machine: SimMachine,
    cfg: FlipAdjacencyConfig,
    view: Option<AttackerView>,
    hammer_pairs: u64,
}

impl FlipAdjacencyObservable {
    /// Wraps a simulated machine as a flip-adjacency channel.
    pub fn new(machine: SimMachine, cfg: FlipAdjacencyConfig) -> Self {
        FlipAdjacencyObservable {
            machine,
            cfg,
            view: None,
            hammer_pairs: 0,
        }
    }

    /// Builds the channel for a generated machine: same mapping and remap,
    /// but under the hammer-friendly [`SimConfig::fast_rowhammer`] profile
    /// (seeded with `sim_seed`), since a channel that waits hundreds of
    /// thousands of activations per flip would be useless inside a
    /// scenario-budgeted run.
    pub fn for_generated(machine: &GeneratedMachine, sim_seed: u64) -> Self {
        FlipAdjacencyObservable::new(
            SimMachine::from_generated(machine, SimConfig::fast_rowhammer().with_seed(sim_seed)),
            FlipAdjacencyConfig::default(),
        )
    }

    /// The attacker view installed by [`Observable::inform_mapping`], if any.
    pub fn view(&self) -> Option<&AttackerView> {
        self.view.as_ref()
    }

    /// The channel's simulated machine.
    pub fn machine(&self) -> &SimMachine {
        &self.machine
    }

    /// Hammers the believed rows `x` and `y` of one random base address and
    /// returns the double-sided victim rows, or `None` when the view could
    /// not realise the rows as addresses.
    fn hammer_believed_rows(
        &mut self,
        view: &AttackerView,
        rng: &mut StdRng,
        x: u64,
        y: u64,
    ) -> Option<Vec<u64>> {
        let capacity = self.machine.ground_truth().capacity_bytes();
        let base = PhysAddr::new(rng.gen_range(0..capacity) & !0x3f);
        let a = view.with_row(base, x)?;
        let b = view.with_row(base, y)?;
        self.hammer_pairs += 1;
        let flips = hammer_pair(&mut self.machine, a, b, self.cfg.iterations);
        Some(self.double_sided_victims(&flips))
    }

    /// Groups one hammering round's flips by victim row and keeps the rows
    /// that show the double-sided signature.
    fn double_sided_victims(&self, flips: &[dram_sim::BitFlip]) -> Vec<u64> {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for flip in flips {
            *counts.entry(flip.row).or_default() += 1;
        }
        let mut rows: Vec<u64> = counts
            .into_iter()
            .filter(|&(_, n)| n >= self.cfg.flip_threshold)
            .map(|(row, _)| u64::from(row))
            .collect();
        rows.sort_unstable();
        rows
    }
}

impl Observable for FlipAdjacencyObservable {
    fn kind(&self) -> ObservableKind {
        ObservableKind::FlipAdjacency
    }

    fn supports(&self, query: &ObservableQuery) -> bool {
        self.view.is_some() && matches!(query, ObservableQuery::RowAdjacency { .. })
    }

    fn answer(&mut self, query: &ObservableQuery) -> Result<ObservableAnswer, ProbeError> {
        let ObservableQuery::RowAdjacency { a, b } = *query else {
            return Err(ProbeError::Unsupported {
                reason: "flip adjacency only answers RowAdjacency queries".into(),
            });
        };
        if self.view.is_none() {
            return Err(ProbeError::Unsupported {
                reason: "flip adjacency needs a mapping skeleton (inform_mapping) first".into(),
            });
        }
        self.hammer_pairs += 1;
        let flips = hammer_pair(&mut self.machine, a, b, self.cfg.iterations);
        let verdict = !self.double_sided_victims(&flips).is_empty();
        // A positive is near-certain (a sandwiched victim flipped); a
        // negative is only as reliable as the chance the middle row was
        // vulnerable at all.
        let vulnerable = self
            .machine
            .controller()
            .config()
            .flip_params
            .vulnerable_row_fraction;
        let confidence = if verdict { 0.97 } else { 1.0 - vulnerable };
        Ok(ObservableAnswer {
            verdict,
            confidence,
        })
    }

    fn cost(&self) -> ObservableCost {
        ObservableCost {
            timing_pairs: 0,
            hammer_pairs: self.hammer_pairs,
            elapsed_ns: self.machine.controller().elapsed_ns(),
        }
    }

    fn inform_mapping(&mut self, mapping: &AddressMapping) {
        self.view = Some(AttackerView::from_mapping(mapping));
    }

    /// Recovers the XOR row-remap mask, if one is present and observable,
    /// canonicalised under reflection ([`RowRemap::canonical_mask`]).
    ///
    /// Runs the three phases described in the [module docs](self): a parity
    /// probe for `bit0 ^ bit1` of the mask, a carry-chain induction for
    /// every bit above, and a middle-identity verification of the final
    /// candidate. Returns `Ok(None)` when the module shows no observable
    /// remap or the evidence is insufficient (for example, every prepared
    /// victim row happened to be invulnerable).
    fn recover_row_remap(&mut self) -> Result<Option<u32>, ProbeError> {
        let Some(view) = self.view.clone() else {
            return Err(ProbeError::Unsupported {
                reason: "flip adjacency needs a mapping skeleton (inform_mapping) first".into(),
            });
        };
        let width = view.row_bits().len() as u32;
        if width < 5 {
            return Ok(None);
        }
        let rows = view.num_rows();
        let mut rng = StdRng::seed_from_u64(self.cfg.rng_seed);

        // Phase 1: hammering (t, t ^ 2) sandwiches the array row between
        // the aggressors; whether the victim comes back as t ^ 1 or t ^ 3
        // says whether the low two bits of t ^ mask agree, which reads out
        // bit0(mask) ^ bit1(mask).
        let mut parity: Option<u64> = None;
        let mut observations = 0usize;
        for _ in 0..self.cfg.parity_rounds {
            if observations >= self.cfg.parity_observations {
                break;
            }
            let t = rng.gen_range(0..rows);
            let Some(victims) = self.hammer_believed_rows(&view, &mut rng, t, t ^ 2) else {
                continue;
            };
            for u in victims {
                let observed = match u ^ t {
                    1 => 0u64,
                    3 => 1u64,
                    // A flip outside the sandwich: the remap is not of the
                    // XOR form this channel models.
                    _ => return Ok(None),
                };
                let parity_of_t = (t ^ (t >> 1)) & 1;
                let d = observed ^ parity_of_t;
                match parity {
                    None => parity = Some(d),
                    Some(p) if p != d => return Ok(None), // inconsistent evidence
                    Some(_) => {}
                }
                observations += 1;
            }
        }
        let Some(parity) = parity else {
            // Not a single victim flipped: no adjacency evidence at all.
            return Ok(None);
        };

        // Phase 2: carry-chain induction under the hypothesis bit1 = 0. For
        // each bit k, force the believed bits 1..k-1 to the complement of
        // the mask recovered so far (so the masked bits form a carry chain)
        // and alternate bit k between 0 and 1: the pair (x, x ^ h) is two
        // array rows apart only for the variant matching bit k of the mask,
        // and only an adjacent pair can flip. A wrong bit1 hypothesis
        // inverts every recovered bit, which lands on the reflected mask —
        // the same equivalence class.
        let mut mask = 0u64;
        for k in 2..u64::from(width) {
            let h = (1u64 << (k + 1)) - 2;
            let forced = !mask & ((1u64 << k) - 2);
            let mut decided = false;
            for attempt in 0..self.cfg.attempts_per_variant * 2 {
                let v = u64::from(attempt) & 1;
                let x = (rng.gen_range(0..rows) & !h) | forced | (v << k);
                let Some(victims) = self.hammer_believed_rows(&view, &mut rng, x, x ^ h) else {
                    continue;
                };
                if !victims.is_empty() {
                    mask |= v << k;
                    decided = true;
                    break;
                }
            }
            if !decided {
                return Ok(None); // both variants stayed silent
            }
        }
        mask |= parity; // bit0 = bit1 ^ parity, and bit1 = 0 by hypothesis
        let candidate = RowRemap::canonical_mask(
            u32::try_from(mask).expect("masks fit the mapping's row width"),
            u32::try_from(rows).expect("row counts fit the mapping's row width"),
        );
        if candidate == 0 {
            return Ok(None); // unremapped, or a pure mirror of the row line
        }

        // Phase 3: the candidate must place observed victims exactly on the
        // middle of sandwiches it predicts across a three-bit carry; any
        // flip elsewhere falsifies it.
        let candidate64 = u64::from(candidate);
        let mut hits = 0usize;
        for _ in 0..self.cfg.verify_rounds {
            if hits >= self.cfg.verify_hits {
                break;
            }
            let array = (rng.gen_range(0..rows) & !0b1110) | 0b0110;
            let x = array ^ candidate64;
            let y = (array + 2) ^ candidate64;
            let Some(victims) = self.hammer_believed_rows(&view, &mut rng, x, y) else {
                continue;
            };
            for u in victims {
                if u ^ candidate64 == array + 1 {
                    hits += 1;
                } else {
                    return Ok(None); // flip outside the predicted middle
                }
            }
        }
        if hits < self.cfg.verify_hits {
            return Ok(None);
        }
        Ok(Some(candidate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::{MachineClass, MachineGen, MachineSetting};

    fn informed_channel_for(gen_seed: u64, class: MachineClass) -> FlipAdjacencyObservable {
        let machine = MachineGen::new(gen_seed).generate(class);
        let mut channel = FlipAdjacencyObservable::for_generated(&machine, 0x5EED ^ gen_seed);
        channel.inform_mapping(machine.mapping());
        channel
    }

    #[test]
    fn channel_requires_a_mapping_first() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let machine = SimMachine::from_setting(&setting, SimConfig::fast_rowhammer());
        let mut channel = FlipAdjacencyObservable::new(machine, FlipAdjacencyConfig::default());
        let q = ObservableQuery::RowAdjacency {
            a: PhysAddr::new(0),
            b: PhysAddr::new(0x1000),
        };
        assert!(!channel.supports(&q));
        assert!(channel.answer(&q).is_err());
        assert!(channel.recover_row_remap().is_err());
        channel.inform_mapping(setting.mapping());
        assert!(channel.supports(&q));
        assert!(channel.view().is_some());
    }

    #[test]
    fn adjacency_answer_distinguishes_neighbours_from_distant_rows() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let machine = SimMachine::from_setting(&setting, SimConfig::fast_rowhammer());
        let mut channel = FlipAdjacencyObservable::new(machine, FlipAdjacencyConfig::default());
        channel.inform_mapping(setting.mapping());
        let truth = setting.mapping();
        // Find a vulnerable victim row so the positive case can flip.
        let flip_model = channel.machine().controller().flip_model().clone();
        let victim_row = (8..5_000u32)
            .find(|&r| flip_model.row_vulnerability(0, r) > 0.3)
            .unwrap();
        let below = truth
            .to_phys(dram_model::DramAddress::new(0, victim_row - 1, 0))
            .unwrap();
        let above = truth
            .to_phys(dram_model::DramAddress::new(0, victim_row + 1, 0))
            .unwrap();
        let far = truth
            .to_phys(dram_model::DramAddress::new(0, victim_row + 2_000, 0))
            .unwrap();
        let adjacent = channel
            .answer(&ObservableQuery::RowAdjacency { a: below, b: above })
            .unwrap();
        assert!(adjacent.verdict);
        assert!(adjacent.confidence > 0.9);
        let distant = channel
            .answer(&ObservableQuery::RowAdjacency { a: below, b: far })
            .unwrap();
        assert!(!distant.verdict);
        let cost = channel.cost();
        assert_eq!(cost.hammer_pairs, 2);
        assert_eq!(cost.timing_pairs, 0);
        assert!(cost.elapsed_ns > 0);
    }

    #[test]
    fn unsupported_queries_are_rejected() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let machine = SimMachine::from_setting(&setting, SimConfig::fast_rowhammer());
        let mut channel = FlipAdjacencyObservable::new(machine, FlipAdjacencyConfig::default());
        channel.inform_mapping(setting.mapping());
        let q = ObservableQuery::SameBankDifferentRow {
            a: PhysAddr::new(0),
            b: PhysAddr::new(0x1000),
        };
        assert!(!channel.supports(&q));
        assert!(channel.answer(&q).is_err());
        assert_eq!(channel.kind(), ObservableKind::FlipAdjacency);
    }

    #[test]
    fn recovers_the_remap_mask_on_generated_machines() {
        for gen_seed in [2u64, 11, 23] {
            let machine = MachineGen::new(gen_seed).generate(MachineClass::RowRemap);
            let truth_mask = machine.row_remap.expect("row-remap class").xor_mask;
            let expected = RowRemap::canonical_mask(truth_mask, machine.mapping().num_rows());
            let mut channel = informed_channel_for(gen_seed, MachineClass::RowRemap);
            let recovered = channel.recover_row_remap().unwrap();
            assert_eq!(
                recovered,
                Some(expected).filter(|&c| c != 0),
                "seed {gen_seed}: expected canonical mask {expected:#x} of {truth_mask:#x}, \
                 got {recovered:?}"
            );
            assert!(channel.cost().hammer_pairs > 0);
        }
    }

    #[test]
    fn reports_no_remap_on_unremapped_machines() {
        let mut channel = informed_channel_for(5, MachineClass::InScope);
        assert_eq!(channel.recover_row_remap().unwrap(), None);
    }
}
