//! Property-based differential tests: every bitsliced GF(2) kernel is
//! pinned element-wise to its scalar twin over random bases, masks and
//! address batches, plus the nine Table-II machine mappings.

use proptest::collection::vec;
use proptest::prelude::*;

use dram_model::gf2::{bitslice, Gf2Matrix, PileBasis};
use dram_model::{MachineSetting, XorFunc};

/// Scalar twin of [`bitslice::span_survivors`]: a Gray-code walk over the
/// full span, one combination at a time.
fn span_survivors_scalar(basis: &[u64], max_weight: usize) -> Vec<u64> {
    let mut survivors = Vec::new();
    let mut value = 0u64;
    // Step j of the binary-reflected Gray code toggles basis vector
    // trailing_zeros(j), visiting every span element exactly once.
    for j in 1u64..1u64 << basis.len() {
        value ^= basis[j.trailing_zeros() as usize];
        if value != 0 && (value.count_ones() as usize) <= max_weight {
            survivors.push(value);
        }
    }
    survivors.sort_unstable();
    survivors.dedup();
    survivors
}

/// Masks a random u64 batch down to `bits` meaningful bits.
fn clamp(values: &mut [u64], bits: u32) {
    let mask = u64::MAX >> (64 - bits);
    for v in values.iter_mut() {
        *v &= mask;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Coset reduction: `PileBasis::reduce_batch` equals per-value
    /// `PileBasis::reduce` for random piles and candidate batches.
    #[test]
    fn reduce_batch_matches_scalar_reduce(
        pivot in any::<u64>(),
        members in vec(any::<u64>(), 1..48),
        values in vec(any::<u64>(), 1..200),
        bits in 8u32..=64,
    ) {
        let (mut members, mut values) = (members, values);
        clamp(&mut members, bits);
        clamp(&mut values, bits);
        let basis = PileBasis::from_members(pivot & (u64::MAX >> (64 - bits)), members);
        let batched = basis.reduce_batch(&values);
        let scalar: Vec<u64> = values.iter().map(|&v| basis.reduce(v)).collect();
        prop_assert_eq!(batched, scalar);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Gray-code span walk: the 64-lane enumeration finds exactly the
    /// nonzero low-weight span elements the one-at-a-time walk finds.
    #[test]
    fn span_survivors_matches_scalar_walk(
        seeds in vec(any::<u64>(), 1..14),
        max_weight in 1usize..8,
        bits in 10u32..=40,
    ) {
        let mut seeds = seeds;
        clamp(&mut seeds, bits);
        // Row-reduce the random seeds into an independent basis.
        let basis = Gf2Matrix::from_rows(seeds).row_basis();
        prop_assume!(!basis.is_empty());
        let fast = bitslice::span_survivors(&basis, max_weight);
        let scalar = span_survivors_scalar(&basis, max_weight);
        prop_assert_eq!(fast, scalar);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batch canonicalization: the bitsliced Jordan elimination produces
    /// the same unique reduced row-echelon basis as the scalar matrix.
    #[test]
    fn reduced_row_basis_matches_scalar(
        rows in vec(any::<u64>(), 0..70),
        bits in 4u32..=64,
    ) {
        let mut rows = rows;
        clamp(&mut rows, bits);
        let fast = bitslice::reduced_row_basis(&rows);
        let scalar = Gf2Matrix::from_rows(rows).reduced_row_basis();
        prop_assert_eq!(fast, scalar);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Constant-mask filtering keeps exactly the masks the scalar
    /// `PileBasis::mask_constant` accepts, in input order.
    #[test]
    fn filter_constant_masks_matches_scalar(
        pivot in any::<u64>(),
        members in vec(any::<u64>(), 1..40),
        masks in vec(any::<u64>(), 1..150),
        bits in 8u32..=64,
    ) {
        let (mut members, mut masks) = (members, masks);
        clamp(&mut members, bits);
        clamp(&mut masks, bits);
        let basis = PileBasis::from_members(pivot & (u64::MAX >> (64 - bits)), members);
        let fast = bitslice::filter_constant_masks(&masks, basis.rows());
        let scalar: Vec<u64> = masks
            .iter()
            .copied()
            .filter(|&m| basis.mask_constant(m))
            .collect();
        prop_assert_eq!(fast, scalar);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// XOR-function evaluation over random address batches agrees with the
    /// scalar parity on every Table-II machine's bank functions.
    #[test]
    fn eval_funcs_matches_scalar_parity_on_table_ii(
        number in 1u8..=9,
        addrs in vec(any::<u64>(), 1..130),
    ) {
        let setting = MachineSetting::by_number(number).unwrap();
        let bits = setting.system.address_bits();
        let mut addrs = addrs;
        clamp(&mut addrs, u32::from(bits));
        let funcs: Vec<XorFunc> = setting.mapping().bank_funcs().to_vec();
        let masks: Vec<u64> = funcs.iter().map(|f| f.mask()).collect();
        let packed = bitslice::eval_funcs(&masks, &addrs);
        for (i, &addr) in addrs.iter().enumerate() {
            let mut expected = 0u64;
            for (f, func) in funcs.iter().enumerate() {
                if (addr & func.mask()).count_ones() % 2 == 1 {
                    expected |= 1 << f;
                }
            }
            prop_assert_eq!(packed[i], expected, "addr index {}", i);
        }
    }
}
