//! The nine evaluation machine settings of Table II with their ground-truth
//! DRAM address mappings.
//!
//! These mappings are the "answer key" of the reproduction: the simulator in
//! `dram-sim` is configured with one of them and the reverse-engineering
//! tools must rediscover it from timing measurements alone.

use std::fmt;

use crate::mapping::{AddressMapping, MappingBuilder};
use crate::spec::{DdrGeneration, DramGeometry, SystemInfo, GIB};

/// Intel CPU microarchitecture of a machine setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Microarch {
    /// Sandy Bridge (2nd gen Core).
    SandyBridge,
    /// Ivy Bridge (3rd gen Core).
    IvyBridge,
    /// Haswell (4th gen Core).
    Haswell,
    /// Skylake (6th gen Core).
    Skylake,
    /// Coffee Lake (8th/9th gen Core).
    CoffeeLake,
}

impl fmt::Display for Microarch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Microarch::SandyBridge => "Sandy Bridge",
            Microarch::IvyBridge => "Ivy Bridge",
            Microarch::Haswell => "Haswell",
            Microarch::Skylake => "Skylake",
            Microarch::CoffeeLake => "Coffee Lake",
        };
        write!(f, "{s}")
    }
}

impl Microarch {
    /// Whether the "lowest bit of the widest bank function is not a column
    /// bit" empirical observation applies (it does since Ivy Bridge).
    pub const fn widest_func_low_bit_not_column(self) -> bool {
        !matches!(self, Microarch::SandyBridge)
    }
}

/// One of the evaluated machine settings (a row of Table II), bundling
/// system information, CPU model and the ground-truth address mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSetting {
    /// Table II machine number (1–9).
    pub number: u8,
    /// CPU microarchitecture.
    pub microarch: Microarch,
    /// Marketing CPU model (e.g. "i5-2400").
    pub cpu_model: &'static str,
    /// System information (capacity, geometry, DDR generation).
    pub system: SystemInfo,
    /// Ground-truth physical-address → DRAM mapping.
    mapping: AddressMapping,
}

impl MachineSetting {
    /// The ground-truth address mapping used by the simulator.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// A short identifier such as `"No.3"`.
    pub fn label(&self) -> String {
        format!("No.{}", self.number)
    }

    /// DRAM capacity in GiB.
    pub fn capacity_gib(&self) -> u64 {
        self.system.capacity_bytes / GIB
    }

    /// All nine Table-II settings in order.
    pub fn all() -> Vec<MachineSetting> {
        vec![
            Self::no1_sandy_bridge_ddr3_8g(),
            Self::no2_ivy_bridge_ddr3_8g(),
            Self::no3_ivy_bridge_ddr3_4g(),
            Self::no4_haswell_ddr3_4g(),
            Self::no5_haswell_ddr3_16g(),
            Self::no6_skylake_ddr4_16g(),
            Self::no7_skylake_ddr4_4g(),
            Self::no8_coffee_lake_ddr4_8g(),
            Self::no9_coffee_lake_ddr4_16g(),
        ]
    }

    /// Looks a setting up by its Table-II number (1–9).
    pub fn by_number(number: u8) -> Option<MachineSetting> {
        Self::all().into_iter().find(|s| s.number == number)
    }

    /// Machine No.1: Sandy Bridge i5-2400, DDR3 8 GiB, config (2, 1, 1, 8).
    ///
    /// Bank functions `(6), (14,17), (15,18), (16,19)`, rows `17~32`,
    /// columns `0~5, 7~13`.
    pub fn no1_sandy_bridge_ddr3_8g() -> MachineSetting {
        let geometry = DramGeometry::new(2, 1, 1, 8);
        MachineSetting {
            number: 1,
            microarch: Microarch::SandyBridge,
            cpu_model: "i5-2400",
            system: SystemInfo::new(8 * GIB, geometry, DdrGeneration::Ddr3),
            mapping: MappingBuilder::new()
                .bank_func(&[6])
                .bank_func(&[14, 17])
                .bank_func(&[15, 18])
                .bank_func(&[16, 19])
                .row_bit_range(17, 32)
                .column_bit_range(0, 5)
                .column_bit_range(7, 13)
                .build()
                .expect("table II no.1 mapping is consistent"),
        }
    }

    /// Machine No.2: Ivy Bridge i5-3230M, DDR3 8 GiB, config (2, 1, 2, 8).
    ///
    /// Bank functions `(14,18), (15,19), (16,20), (17,21),
    /// (7,8,9,12,13,18,19)`, rows `18~32`, columns `0~6, 8~13`.
    pub fn no2_ivy_bridge_ddr3_8g() -> MachineSetting {
        let geometry = DramGeometry::new(2, 1, 2, 8);
        MachineSetting {
            number: 2,
            microarch: Microarch::IvyBridge,
            cpu_model: "i5-3230M",
            system: SystemInfo::new(8 * GIB, geometry, DdrGeneration::Ddr3),
            mapping: MappingBuilder::new()
                .bank_func(&[14, 18])
                .bank_func(&[15, 19])
                .bank_func(&[16, 20])
                .bank_func(&[17, 21])
                .bank_func(&[7, 8, 9, 12, 13, 18, 19])
                .row_bit_range(18, 32)
                .column_bit_range(0, 6)
                .column_bit_range(8, 13)
                .build()
                .expect("table II no.2 mapping is consistent"),
        }
    }

    /// Machine No.3: Ivy Bridge i5-3230M, DDR3 4 GiB, config (1, 1, 2, 8).
    ///
    /// Bank functions `(13,17), (14,18), (15,19), (16,20)`, rows `17~31`,
    /// columns `0~12`.
    pub fn no3_ivy_bridge_ddr3_4g() -> MachineSetting {
        let geometry = DramGeometry::new(1, 1, 2, 8);
        MachineSetting {
            number: 3,
            microarch: Microarch::IvyBridge,
            cpu_model: "i5-3230M",
            system: SystemInfo::new(4 * GIB, geometry, DdrGeneration::Ddr3),
            mapping: MappingBuilder::new()
                .bank_func(&[13, 17])
                .bank_func(&[14, 18])
                .bank_func(&[15, 19])
                .bank_func(&[16, 20])
                .row_bit_range(17, 31)
                .column_bit_range(0, 12)
                .build()
                .expect("table II no.3 mapping is consistent"),
        }
    }

    /// Machine No.4: Haswell i5-4210U, DDR3 4 GiB, config (1, 1, 1, 8).
    ///
    /// Bank functions `(13,16), (14,17), (15,18)`, rows `16~31`, columns
    /// `0~12`.
    pub fn no4_haswell_ddr3_4g() -> MachineSetting {
        let geometry = DramGeometry::new(1, 1, 1, 8);
        MachineSetting {
            number: 4,
            microarch: Microarch::Haswell,
            cpu_model: "i5-4210U",
            system: SystemInfo::new(4 * GIB, geometry, DdrGeneration::Ddr3),
            mapping: MappingBuilder::new()
                .bank_func(&[13, 16])
                .bank_func(&[14, 17])
                .bank_func(&[15, 18])
                .row_bit_range(16, 31)
                .column_bit_range(0, 12)
                .build()
                .expect("table II no.4 mapping is consistent"),
        }
    }

    /// Machine No.5: Haswell i7-4790, DDR3 16 GiB, config (2, 1, 2, 8).
    ///
    /// Bank functions `(14,18), (15,19), (16,20), (17,21),
    /// (7,8,9,12,13,18,19)`, columns `0~6, 8~13`.
    ///
    /// Table II prints the row bits as `18~32`, but a 16 GiB (34-bit) module
    /// with 5 bank bits and 13 column bits requires 16 row bits; we use
    /// `18~33` (No.2 scaled up), as recorded in `DESIGN.md`.
    pub fn no5_haswell_ddr3_16g() -> MachineSetting {
        let geometry = DramGeometry::new(2, 1, 2, 8);
        MachineSetting {
            number: 5,
            microarch: Microarch::Haswell,
            cpu_model: "i7-4790",
            system: SystemInfo::new(16 * GIB, geometry, DdrGeneration::Ddr3),
            mapping: MappingBuilder::new()
                .bank_func(&[14, 18])
                .bank_func(&[15, 19])
                .bank_func(&[16, 20])
                .bank_func(&[17, 21])
                .bank_func(&[7, 8, 9, 12, 13, 18, 19])
                .row_bit_range(18, 33)
                .column_bit_range(0, 6)
                .column_bit_range(8, 13)
                .build()
                .expect("table II no.5 mapping is consistent"),
        }
    }

    /// Machine No.6: Skylake i5-6600, DDR4 16 GiB, config (2, 1, 2, 16).
    ///
    /// Bank functions `(7,14), (15,19), (16,20), (17,21), (18,22),
    /// (8,9,12,13,18,19)`, rows `19~33`, columns `0~7, 9~13`.
    pub fn no6_skylake_ddr4_16g() -> MachineSetting {
        let geometry = DramGeometry::new(2, 1, 2, 16);
        MachineSetting {
            number: 6,
            microarch: Microarch::Skylake,
            cpu_model: "i5-6600",
            system: SystemInfo::new(16 * GIB, geometry, DdrGeneration::Ddr4),
            mapping: MappingBuilder::new()
                .bank_func(&[7, 14])
                .bank_func(&[15, 19])
                .bank_func(&[16, 20])
                .bank_func(&[17, 21])
                .bank_func(&[18, 22])
                .bank_func(&[8, 9, 12, 13, 18, 19])
                .row_bit_range(19, 33)
                .column_bit_range(0, 7)
                .column_bit_range(9, 13)
                .build()
                .expect("table II no.6 mapping is consistent"),
        }
    }

    /// Machine No.7: Skylake i5-6200U, DDR4 4 GiB, config (1, 1, 1, 8).
    ///
    /// Bank functions `(6,13), (14,16), (15,17)`, rows `16~31`, columns
    /// `0~12`.
    pub fn no7_skylake_ddr4_4g() -> MachineSetting {
        let geometry = DramGeometry::new(1, 1, 1, 8);
        MachineSetting {
            number: 7,
            microarch: Microarch::Skylake,
            cpu_model: "i5-6200U",
            system: SystemInfo::new(4 * GIB, geometry, DdrGeneration::Ddr4),
            mapping: MappingBuilder::new()
                .bank_func(&[6, 13])
                .bank_func(&[14, 16])
                .bank_func(&[15, 17])
                .row_bit_range(16, 31)
                .column_bit_range(0, 12)
                .build()
                .expect("table II no.7 mapping is consistent"),
        }
    }

    /// Machine No.8: Coffee Lake i5-9400, DDR4 8 GiB, config (1, 1, 1, 16).
    ///
    /// Bank functions `(6,13), (14,17), (15,18), (16,19)`, rows `17~32`,
    /// columns `0~12`.
    pub fn no8_coffee_lake_ddr4_8g() -> MachineSetting {
        let geometry = DramGeometry::new(1, 1, 1, 16);
        MachineSetting {
            number: 8,
            microarch: Microarch::CoffeeLake,
            cpu_model: "i5-9400",
            system: SystemInfo::new(8 * GIB, geometry, DdrGeneration::Ddr4),
            mapping: MappingBuilder::new()
                .bank_func(&[6, 13])
                .bank_func(&[14, 17])
                .bank_func(&[15, 18])
                .bank_func(&[16, 19])
                .row_bit_range(17, 32)
                .column_bit_range(0, 12)
                .build()
                .expect("table II no.8 mapping is consistent"),
        }
    }

    /// Machine No.9: Coffee Lake i5-9400, DDR4 16 GiB, config (2, 1, 2, 16).
    ///
    /// Same mapping as machine No.6.
    pub fn no9_coffee_lake_ddr4_16g() -> MachineSetting {
        let no6 = Self::no6_skylake_ddr4_16g();
        MachineSetting {
            number: 9,
            microarch: Microarch::CoffeeLake,
            cpu_model: "i5-9400",
            system: SystemInfo::new(16 * GIB, no6.system.geometry, DdrGeneration::Ddr4),
            mapping: no6.mapping,
        }
    }
}

impl fmt::Display for MachineSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {} GiB ({})",
            self.label(),
            self.microarch,
            self.cpu_model,
            self.system.generation,
            self.capacity_gib(),
            self.system.geometry
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PhysAddr;

    #[test]
    fn all_settings_present_and_ordered() {
        let all = MachineSetting::all();
        assert_eq!(all.len(), 9);
        for (i, s) in all.iter().enumerate() {
            assert_eq!(s.number as usize, i + 1);
        }
    }

    #[test]
    fn by_number_lookup() {
        assert_eq!(
            MachineSetting::by_number(4).unwrap().microarch,
            Microarch::Haswell
        );
        assert!(MachineSetting::by_number(0).is_none());
        assert!(MachineSetting::by_number(10).is_none());
    }

    #[test]
    fn function_count_matches_bank_bits() {
        for s in MachineSetting::all() {
            let expected = s.system.geometry.bank_bits() as usize;
            assert_eq!(
                s.mapping().bank_funcs().len(),
                expected,
                "{}: log2(#banks) must equal number of bank functions",
                s.label()
            );
        }
    }

    #[test]
    fn capacity_matches_mapping_width() {
        for s in MachineSetting::all() {
            assert_eq!(
                s.mapping().capacity_bytes(),
                s.system.capacity_bytes,
                "{}: mapping must cover the full module capacity",
                s.label()
            );
        }
    }

    #[test]
    fn spec_derivation_agrees_with_ground_truth() {
        for s in MachineSetting::all() {
            let spec = s.system.spec().unwrap();
            assert_eq!(
                spec.row_bits as usize,
                s.mapping().row_bits().len(),
                "{}: spec row bits",
                s.label()
            );
            assert_eq!(
                spec.column_bits as usize,
                s.mapping().column_bits().len(),
                "{}: spec column bits",
                s.label()
            );
            assert_eq!(
                spec.bank_bits as usize,
                s.mapping().bank_funcs().len(),
                "{}: spec bank bits",
                s.label()
            );
        }
    }

    #[test]
    fn mappings_roundtrip_on_sample_addresses() {
        for s in MachineSetting::all() {
            let m = s.mapping();
            let max = m.capacity_bytes();
            for raw in [0, max / 3, max / 2 + 12345, max - 64] {
                let a = PhysAddr::new(raw & !0x3); // keep aligned-ish, arbitrary
                assert_eq!(m.to_phys(m.to_dram(a)).unwrap(), a, "{}", s.label());
            }
        }
    }

    #[test]
    fn table_ii_no1_exact_functions() {
        let s = MachineSetting::no1_sandy_bridge_ddr3_8g();
        let rendered: Vec<String> = s
            .mapping()
            .bank_funcs()
            .iter()
            .map(|f| f.to_string())
            .collect();
        assert_eq!(rendered, vec!["(6)", "(14, 17)", "(15, 18)", "(16, 19)"]);
        assert_eq!(
            crate::mapping::format_bit_ranges(s.mapping().row_bits()),
            "17~32"
        );
        assert_eq!(
            crate::mapping::format_bit_ranges(s.mapping().column_bits()),
            "0~5, 7~13"
        );
    }

    #[test]
    fn no6_and_no9_share_the_mapping() {
        let a = MachineSetting::no6_skylake_ddr4_16g();
        let b = MachineSetting::no9_coffee_lake_ddr4_16g();
        assert!(a.mapping().equivalent_to(b.mapping()));
        assert_ne!(a.microarch, b.microarch);
    }

    #[test]
    fn sandy_bridge_is_the_only_pre_ivy_arch() {
        for s in MachineSetting::all() {
            let expect = s.microarch != Microarch::SandyBridge;
            assert_eq!(s.microarch.widest_func_low_bit_not_column(), expect);
        }
    }

    #[test]
    fn display_mentions_label_and_arch() {
        let s = MachineSetting::no8_coffee_lake_ddr4_8g();
        let text = s.to_string();
        assert!(text.contains("No.8"));
        assert!(text.contains("Coffee Lake"));
        assert!(text.contains("DDR4"));
    }
}
