//! Error types for the model crate.

use std::fmt;

/// Errors produced while constructing or using DRAM address mappings.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// The mapping does not cover every physical-address bit exactly once
    /// (after accounting for shared bank bits), so it cannot be a bijection.
    NotBijective {
        /// Human readable explanation of what is inconsistent.
        reason: String,
    },
    /// A bank-address function set is linearly dependent over GF(2).
    LinearlyDependentFunctions,
    /// The requested bit index exceeds the physical address width.
    BitOutOfRange {
        /// The offending bit index.
        bit: u8,
        /// The physical address width in bits.
        width: u8,
    },
    /// A DRAM coordinate (bank, row or column) exceeds the geometry limits.
    CoordinateOutOfRange {
        /// Which coordinate was out of range ("bank", "row" or "column").
        field: &'static str,
        /// The offending value.
        value: u64,
        /// The exclusive upper bound.
        limit: u64,
    },
    /// The total capacity is not a power of two or does not match geometry.
    InvalidCapacity {
        /// The offending capacity in bytes.
        capacity: u64,
    },
    /// The mapping inverse could not be computed because the pure-bank-bit
    /// system is singular over GF(2).
    SingularBankSystem,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NotBijective { reason } => {
                write!(f, "address mapping is not a bijection: {reason}")
            }
            ModelError::LinearlyDependentFunctions => {
                write!(
                    f,
                    "bank address functions are linearly dependent over GF(2)"
                )
            }
            ModelError::BitOutOfRange { bit, width } => {
                write!(
                    f,
                    "bit index {bit} out of range for {width}-bit physical addresses"
                )
            }
            ModelError::CoordinateOutOfRange {
                field,
                value,
                limit,
            } => {
                write!(f, "{field} value {value} out of range (limit {limit})")
            }
            ModelError::InvalidCapacity { capacity } => {
                write!(f, "invalid DRAM capacity {capacity} bytes")
            }
            ModelError::SingularBankSystem => {
                write!(f, "pure bank bit system is singular; cannot invert mapping")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = vec![
            ModelError::NotBijective { reason: "x".into() },
            ModelError::LinearlyDependentFunctions,
            ModelError::BitOutOfRange { bit: 40, width: 33 },
            ModelError::CoordinateOutOfRange {
                field: "row",
                value: 10,
                limit: 5,
            },
            ModelError::InvalidCapacity { capacity: 3 },
            ModelError::SingularBankSystem,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
