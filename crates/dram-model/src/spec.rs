//! Domain knowledge: DDR specifications, DRAM geometry and system information.
//!
//! DRAMDig's key idea (Section III-A of the paper) is to feed three kinds of
//! knowledge into the reverse-engineering process:
//!
//! 1. **Specifications** — DDR3/DDR4 data sheets give the number of row,
//!    column and bank address bits of a chip ([`DdrSpec`]).
//! 2. **System information** — `decode-dimms` / `dmidecode` output gives the
//!    total number of banks, the physical memory size and whether ECC is
//!    present ([`SystemInfo`], [`DramGeometry`]).
//! 3. **Empirical observations** — bank functions are XORs of physical
//!    address bits, and since Ivy Bridge the lowest bit of the widest bank
//!    function is not a column bit (encoded in the `dramdig` crate).

use std::fmt;

use crate::error::ModelError;

/// DRAM generation of the installed DIMMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DdrGeneration {
    /// DDR3 SDRAM (e.g. Micron MT41K…, 8 banks per rank).
    Ddr3,
    /// DDR4 SDRAM (e.g. Micron MT40A…, 16 banks per rank in 4 bank groups).
    Ddr4,
}

impl fmt::Display for DdrGeneration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdrGeneration::Ddr3 => write!(f, "DDR3"),
            DdrGeneration::Ddr4 => write!(f, "DDR4"),
        }
    }
}

impl DdrGeneration {
    /// Banks per rank mandated by the specification.
    pub const fn banks_per_rank(self) -> u32 {
        match self {
            DdrGeneration::Ddr3 => 8,
            DdrGeneration::Ddr4 => 16,
        }
    }

    /// Typical column-address width in bits for x8/x16 parts addressed at
    /// byte granularity over a 64-bit channel (8 KiB row ⇒ 13 column bits).
    pub const fn typical_column_bits(self) -> u8 {
        13
    }
}

/// Specification-derived bit counts for one DRAM configuration
/// (the paper's "Specifications" knowledge group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DdrSpec {
    /// DRAM generation.
    pub generation: DdrGeneration,
    /// Number of physical-address bits used to index rows.
    pub row_bits: u8,
    /// Number of physical-address bits used to index columns (byte offset in
    /// an open row as seen over the full channel width).
    pub column_bits: u8,
    /// Number of bank-address bits (`log2` of total banks across channels,
    /// DIMMs, ranks and banks per rank).
    pub bank_bits: u8,
}

impl DdrSpec {
    /// Derives the spec for a system from its geometry and capacity.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidCapacity`] if the capacity is not a power
    /// of two or is too small to hold the implied bank/column structure.
    pub fn derive(
        generation: DdrGeneration,
        geometry: DramGeometry,
        capacity_bytes: u64,
    ) -> Result<Self, ModelError> {
        if capacity_bytes == 0 || !capacity_bytes.is_power_of_two() {
            return Err(ModelError::InvalidCapacity {
                capacity: capacity_bytes,
            });
        }
        let total_bits = capacity_bytes.trailing_zeros() as u8;
        let bank_bits = geometry.bank_bits();
        let column_bits = generation.typical_column_bits();
        if total_bits < bank_bits + column_bits {
            return Err(ModelError::InvalidCapacity {
                capacity: capacity_bytes,
            });
        }
        let row_bits = total_bits - bank_bits - column_bits;
        Ok(DdrSpec {
            generation,
            row_bits,
            column_bits,
            bank_bits,
        })
    }

    /// Total number of physical-address bits described by this spec.
    pub const fn total_bits(&self) -> u8 {
        self.row_bits + self.column_bits + self.bank_bits
    }
}

/// DRAM geometry: the `Config.` quadruple of Table II —
/// (channels, DIMMs per channel, ranks per DIMM, banks per rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramGeometry {
    /// Number of memory channels.
    pub channels: u32,
    /// DIMMs per channel.
    pub dimms_per_channel: u32,
    /// Ranks per DIMM.
    pub ranks_per_dimm: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
}

impl DramGeometry {
    /// Creates a geometry from the Table-II quadruple.
    pub const fn new(
        channels: u32,
        dimms_per_channel: u32,
        ranks_per_dimm: u32,
        banks_per_rank: u32,
    ) -> Self {
        DramGeometry {
            channels,
            dimms_per_channel,
            ranks_per_dimm,
            banks_per_rank,
        }
    }

    /// Total number of banks across channels, DIMMs and ranks.
    pub const fn total_banks(&self) -> u32 {
        self.channels * self.dimms_per_channel * self.ranks_per_dimm * self.banks_per_rank
    }

    /// `log2` of the total number of banks.
    ///
    /// # Panics
    ///
    /// Panics if the total number of banks is not a power of two; real
    /// systems always have power-of-two bank counts.
    pub const fn bank_bits(&self) -> u8 {
        let total = self.total_banks();
        assert!(total.is_power_of_two(), "bank count must be a power of two");
        total.trailing_zeros() as u8
    }
}

impl fmt::Display for DramGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}, {}, {}, {}",
            self.channels, self.dimms_per_channel, self.ranks_per_dimm, self.banks_per_rank
        )
    }
}

/// System information as obtained from `dmidecode`/`decode-dimms`
/// (the paper's "System Information" knowledge group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystemInfo {
    /// Total physical memory size in bytes.
    pub capacity_bytes: u64,
    /// DRAM geometry.
    pub geometry: DramGeometry,
    /// DRAM generation.
    pub generation: DdrGeneration,
    /// Whether the DIMMs are ECC-protected.
    pub ecc: bool,
}

impl SystemInfo {
    /// Creates system information for a non-ECC machine.
    pub const fn new(
        capacity_bytes: u64,
        geometry: DramGeometry,
        generation: DdrGeneration,
    ) -> Self {
        SystemInfo {
            capacity_bytes,
            geometry,
            generation,
            ecc: false,
        }
    }

    /// Total number of banks reported by the system.
    pub const fn total_banks(&self) -> u32 {
        self.geometry.total_banks()
    }

    /// Physical address width in bits implied by the capacity.
    pub const fn address_bits(&self) -> u8 {
        // capacity is a power of two on all evaluated machines
        self.capacity_bytes.trailing_zeros() as u8
    }

    /// Derives the DDR specification for this system.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError::InvalidCapacity`] from [`DdrSpec::derive`].
    pub fn spec(&self) -> Result<DdrSpec, ModelError> {
        DdrSpec::derive(self.generation, self.geometry, self.capacity_bytes)
    }
}

/// Convenience constant: one GiB in bytes.
pub const GIB: u64 = 1 << 30;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_bank_math() {
        let g = DramGeometry::new(2, 1, 2, 8);
        assert_eq!(g.total_banks(), 32);
        assert_eq!(g.bank_bits(), 5);
        assert_eq!(g.to_string(), "2, 1, 2, 8");
    }

    #[test]
    fn ddr_generation_properties() {
        assert_eq!(DdrGeneration::Ddr3.banks_per_rank(), 8);
        assert_eq!(DdrGeneration::Ddr4.banks_per_rank(), 16);
        assert_eq!(DdrGeneration::Ddr3.to_string(), "DDR3");
        assert_eq!(DdrGeneration::Ddr4.to_string(), "DDR4");
    }

    #[test]
    fn spec_derivation_sandy_bridge_8g() {
        // Machine No.1: 8 GiB, (2,1,1,8) = 16 banks = 4 bank bits.
        let g = DramGeometry::new(2, 1, 1, 8);
        let spec = DdrSpec::derive(DdrGeneration::Ddr3, g, 8 * GIB).unwrap();
        assert_eq!(spec.bank_bits, 4);
        assert_eq!(spec.column_bits, 13);
        assert_eq!(spec.row_bits, 16);
        assert_eq!(spec.total_bits(), 33);
    }

    #[test]
    fn spec_derivation_skylake_16g() {
        // Machine No.6: 16 GiB, (2,1,2,16) = 64 banks = 6 bank bits.
        let g = DramGeometry::new(2, 1, 2, 16);
        let spec = DdrSpec::derive(DdrGeneration::Ddr4, g, 16 * GIB).unwrap();
        assert_eq!(spec.bank_bits, 6);
        assert_eq!(spec.row_bits, 15);
        assert_eq!(spec.total_bits(), 34);
    }

    #[test]
    fn spec_rejects_bad_capacity() {
        let g = DramGeometry::new(1, 1, 1, 8);
        assert!(DdrSpec::derive(DdrGeneration::Ddr3, g, 3 * GIB).is_err());
        assert!(DdrSpec::derive(DdrGeneration::Ddr3, g, 0).is_err());
        assert!(DdrSpec::derive(DdrGeneration::Ddr3, g, 4096).is_err());
    }

    #[test]
    fn system_info_accessors() {
        let info = SystemInfo::new(4 * GIB, DramGeometry::new(1, 1, 1, 8), DdrGeneration::Ddr3);
        assert_eq!(info.total_banks(), 8);
        assert_eq!(info.address_bits(), 32);
        assert!(!info.ecc);
        let spec = info.spec().unwrap();
        assert_eq!(spec.row_bits, 16);
    }
}
