//! Parsing of the Table-II textual notation for mappings.
//!
//! The paper (and this workspace's reports) present mappings as bank
//! functions like `(7, 14), (15, 19)` plus bit ranges like `0~7, 9~13`. This
//! module parses that notation back into the typed representation so
//! mappings can be stored in plain-text files, passed on a command line, or
//! compared against published tables.

use std::fmt;

use crate::bits;
use crate::mapping::AddressMapping;
use crate::xor_func::XorFunc;
use crate::ModelError;

/// Error produced when parsing the textual mapping notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseMappingError {
    /// A bit index could not be parsed as an integer in `0..64`.
    InvalidBit {
        /// The offending token.
        token: String,
    },
    /// A function group was empty or malformed (e.g. unbalanced parentheses).
    InvalidFunction {
        /// The offending fragment.
        fragment: String,
    },
    /// A bit range was malformed (e.g. `9~3`).
    InvalidRange {
        /// The offending fragment.
        fragment: String,
    },
    /// The parsed pieces do not form a valid bijective mapping.
    Inconsistent(ModelError),
}

impl fmt::Display for ParseMappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseMappingError::InvalidBit { token } => write!(f, "invalid bit index `{token}`"),
            ParseMappingError::InvalidFunction { fragment } => {
                write!(f, "invalid bank function `{fragment}`")
            }
            ParseMappingError::InvalidRange { fragment } => {
                write!(f, "invalid bit range `{fragment}`")
            }
            ParseMappingError::Inconsistent(e) => write!(f, "parsed mapping is inconsistent: {e}"),
        }
    }
}

impl std::error::Error for ParseMappingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseMappingError::Inconsistent(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for ParseMappingError {
    fn from(e: ModelError) -> Self {
        ParseMappingError::Inconsistent(e)
    }
}

fn parse_bit(token: &str) -> Result<u8, ParseMappingError> {
    let trimmed = token.trim();
    let bit: u8 = trimmed.parse().map_err(|_| ParseMappingError::InvalidBit {
        token: trimmed.to_string(),
    })?;
    if bit >= 64 {
        return Err(ParseMappingError::InvalidBit {
            token: trimmed.to_string(),
        });
    }
    Ok(bit)
}

/// Parses a comma/whitespace separated list of bank functions in the paper's
/// notation, e.g. `"(6), (14, 17), (15, 18)"`.
///
/// # Errors
///
/// Returns [`ParseMappingError::InvalidFunction`] for unbalanced or empty
/// groups and [`ParseMappingError::InvalidBit`] for non-numeric bits.
pub fn parse_functions(text: &str) -> Result<Vec<XorFunc>, ParseMappingError> {
    let mut funcs = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let Some(open) = rest.find('(') else {
            if rest.trim_matches([',', ' ']).is_empty() {
                break;
            }
            return Err(ParseMappingError::InvalidFunction {
                fragment: rest.to_string(),
            });
        };
        let Some(close_rel) = rest[open..].find(')') else {
            return Err(ParseMappingError::InvalidFunction {
                fragment: rest[open..].to_string(),
            });
        };
        let inner = &rest[open + 1..open + close_rel];
        let mut func_bits = Vec::new();
        for token in inner.split([',', ' ']).filter(|t| !t.trim().is_empty()) {
            func_bits.push(parse_bit(token)?);
        }
        if func_bits.is_empty() {
            return Err(ParseMappingError::InvalidFunction {
                fragment: rest[open..=open + close_rel].to_string(),
            });
        }
        funcs.push(XorFunc::from_bits(&func_bits));
        rest = &rest[open + close_rel + 1..];
    }
    Ok(funcs)
}

/// Parses a bit list in the Table-II range notation, e.g. `"0~5, 7~13"` or
/// `"17~32"` or `"4, 6, 9"`. The placeholder `"-"` parses to an empty list.
///
/// # Errors
///
/// Returns [`ParseMappingError::InvalidRange`] for descending or malformed
/// ranges and [`ParseMappingError::InvalidBit`] for non-numeric bits.
pub fn parse_bit_ranges(text: &str) -> Result<Vec<u8>, ParseMappingError> {
    let trimmed = text.trim();
    if trimmed == "-" || trimmed.is_empty() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for part in trimmed.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        if let Some((lo, hi)) = part.split_once(['~', '-']) {
            let lo = parse_bit(lo)?;
            let hi = parse_bit(hi)?;
            if hi < lo {
                return Err(ParseMappingError::InvalidRange {
                    fragment: part.to_string(),
                });
            }
            out.extend(lo..=hi);
        } else {
            out.push(parse_bit(part)?);
        }
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// Parses a full mapping from its three textual components.
///
/// # Errors
///
/// Any parse error from the components, or
/// [`ParseMappingError::Inconsistent`] if the pieces do not form a bijection.
pub fn parse_mapping(
    functions: &str,
    row_bits: &str,
    column_bits: &str,
) -> Result<AddressMapping, ParseMappingError> {
    let funcs = parse_functions(functions)?;
    let rows = parse_bit_ranges(row_bits)?;
    let cols = parse_bit_ranges(column_bits)?;
    Ok(AddressMapping::new(funcs, rows, cols)?)
}

/// Renders a mapping into the three textual components accepted by
/// [`parse_mapping`] (functions, row bits, column bits).
pub fn render_mapping(mapping: &AddressMapping) -> (String, String, String) {
    let funcs: Vec<String> = mapping.bank_funcs().iter().map(|f| f.to_string()).collect();
    (
        funcs.join(", "),
        crate::mapping::format_bit_ranges(mapping.row_bits()),
        crate::mapping::format_bit_ranges(mapping.column_bits()),
    )
}

/// Convenience: parses a bit list and returns it as a mask (used by CLI
/// tooling when specifying candidate bank bits).
pub fn parse_bit_mask(text: &str) -> Result<u64, ParseMappingError> {
    Ok(bits::mask_of(&parse_bit_ranges(text)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineSetting;

    #[test]
    fn parses_paper_notation() {
        let funcs = parse_functions("(6), (14, 17), (15, 18), (16, 19)").unwrap();
        assert_eq!(funcs.len(), 4);
        assert_eq!(funcs[0], XorFunc::from_bits(&[6]));
        assert_eq!(funcs[3], XorFunc::from_bits(&[16, 19]));

        assert_eq!(
            parse_bit_ranges("17~32").unwrap(),
            (17..=32).collect::<Vec<u8>>()
        );
        assert_eq!(
            parse_bit_ranges("0~5, 7~13").unwrap(),
            vec![0, 1, 2, 3, 4, 5, 7, 8, 9, 10, 11, 12, 13]
        );
        assert_eq!(parse_bit_ranges("4, 9, 2").unwrap(), vec![2, 4, 9]);
        assert_eq!(parse_bit_ranges("-").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn roundtrips_every_table_ii_mapping() {
        for setting in MachineSetting::all() {
            let (funcs, rows, cols) = render_mapping(setting.mapping());
            let parsed = parse_mapping(&funcs, &rows, &cols).unwrap();
            assert_eq!(&parsed, setting.mapping(), "{}", setting.label());
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(matches!(
            parse_functions("(14, 17"),
            Err(ParseMappingError::InvalidFunction { .. })
        ));
        assert!(matches!(
            parse_functions("()"),
            Err(ParseMappingError::InvalidFunction { .. })
        ));
        assert!(matches!(
            parse_functions("14, 17"),
            Err(ParseMappingError::InvalidFunction { .. })
        ));
        assert!(matches!(
            parse_functions("(14, x)"),
            Err(ParseMappingError::InvalidBit { .. })
        ));
        assert!(matches!(
            parse_bit_ranges("9~3"),
            Err(ParseMappingError::InvalidRange { .. })
        ));
        assert!(matches!(
            parse_bit_ranges("70"),
            Err(ParseMappingError::InvalidBit { .. })
        ));
        // Pieces that parse but do not form a bijection.
        assert!(matches!(
            parse_mapping("(13, 16)", "16~31", "0~12"),
            Err(ParseMappingError::Inconsistent(_))
        ));
    }

    #[test]
    fn parse_bit_mask_builds_masks() {
        assert_eq!(parse_bit_mask("0~3").unwrap(), 0b1111);
        assert_eq!(parse_bit_mask("6, 13").unwrap(), (1 << 6) | (1 << 13));
    }

    #[test]
    fn error_display_is_informative() {
        let e = parse_functions("(x)").unwrap_err();
        assert!(e.to_string().contains("invalid bit"));
        let e = parse_mapping("(13, 16)", "16~31", "0~12").unwrap_err();
        assert!(e.to_string().contains("inconsistent"));
    }
}
