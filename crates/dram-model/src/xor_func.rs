//! Bank-address XOR functions.

use std::fmt;

use crate::bits;
use crate::PhysAddr;

/// A bank address function on Intel microarchitectures: a set of physical
/// address bits whose XOR yields one bit of the (flat) bank index.
///
/// Internally stored as a bit mask over the physical address. The paper's
/// empirical observation (Section III-A) is that all Intel bank functions
/// have this linear-over-GF(2) form.
///
/// ```
/// use dram_model::{PhysAddr, XorFunc};
/// let f = XorFunc::from_bits(&[14, 17]);
/// assert!(f.evaluate(PhysAddr::new(1 << 14)));
/// assert!(!f.evaluate(PhysAddr::new((1 << 14) | (1 << 17))));
/// assert_eq!(f.to_string(), "(14, 17)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct XorFunc {
    mask: u64,
}

impl XorFunc {
    /// Creates a function from a raw bit mask over physical address bits.
    pub const fn from_mask(mask: u64) -> Self {
        XorFunc { mask }
    }

    /// Creates a function from a list of physical-address bit indices.
    pub fn from_bits(bit_indices: &[u8]) -> Self {
        XorFunc {
            mask: bits::mask_of(bit_indices),
        }
    }

    /// The raw bit mask of this function.
    pub const fn mask(self) -> u64 {
        self.mask
    }

    /// The physical-address bit indices participating in this function,
    /// lowest first.
    pub fn bits(self) -> Vec<u8> {
        bits::bit_positions(self.mask)
    }

    /// Number of physical-address bits participating in this function.
    pub const fn len(self) -> u32 {
        self.mask.count_ones()
    }

    /// Returns `true` if the function uses no bits (the zero function).
    pub const fn is_empty(self) -> bool {
        self.mask == 0
    }

    /// Returns `true` if physical-address bit `bit` participates.
    pub const fn contains_bit(self, bit: u8) -> bool {
        (self.mask >> bit) & 1 == 1
    }

    /// Lowest participating bit, if any.
    pub fn lowest_bit(self) -> Option<u8> {
        if self.mask == 0 {
            None
        } else {
            Some(self.mask.trailing_zeros() as u8)
        }
    }

    /// Highest participating bit, if any.
    pub fn highest_bit(self) -> Option<u8> {
        if self.mask == 0 {
            None
        } else {
            Some(63 - self.mask.leading_zeros() as u8)
        }
    }

    /// Evaluates the function on a physical address: the XOR (parity) of the
    /// participating address bits.
    pub const fn evaluate(self, addr: PhysAddr) -> bool {
        addr.masked_parity(self.mask)
    }

    /// XOR-combines two functions (their GF(2) sum).
    pub const fn combine(self, other: XorFunc) -> XorFunc {
        XorFunc {
            mask: self.mask ^ other.mask,
        }
    }
}

impl fmt::Display for XorFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.bits();
        write!(f, "(")?;
        for (i, bit) in b.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{bit}")?;
        }
        write!(f, ")")
    }
}

impl From<u64> for XorFunc {
    fn from(mask: u64) -> Self {
        XorFunc::from_mask(mask)
    }
}

impl From<XorFunc> for u64 {
    fn from(f: XorFunc) -> Self {
        f.mask
    }
}

/// Sorts a set of functions into the paper's canonical presentation order:
/// fewer participating bits first, then by lowest participating bit.
pub fn canonical_order(funcs: &mut [XorFunc]) {
    funcs.sort_by_key(|f| (f.len(), f.lowest_bit().unwrap_or(0), f.mask()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let f = XorFunc::from_bits(&[7, 8, 9, 12, 13, 18, 19]);
        assert_eq!(f.bits(), vec![7, 8, 9, 12, 13, 18, 19]);
        assert_eq!(f.len(), 7);
        assert_eq!(f.lowest_bit(), Some(7));
        assert_eq!(f.highest_bit(), Some(19));
        assert!(f.contains_bit(12));
        assert!(!f.contains_bit(11));
    }

    #[test]
    fn evaluate_is_parity() {
        let f = XorFunc::from_bits(&[14, 17]);
        assert!(!f.evaluate(PhysAddr::new(0)));
        assert!(f.evaluate(PhysAddr::new(1 << 14)));
        assert!(f.evaluate(PhysAddr::new(1 << 17)));
        assert!(!f.evaluate(PhysAddr::new((1 << 14) | (1 << 17))));
        // Unrelated bits do not matter.
        assert!(!f.evaluate(PhysAddr::new(0xff)));
    }

    #[test]
    fn empty_function() {
        let f = XorFunc::default();
        assert!(f.is_empty());
        assert_eq!(f.lowest_bit(), None);
        assert_eq!(f.highest_bit(), None);
        assert!(!f.evaluate(PhysAddr::new(u64::MAX)));
    }

    #[test]
    fn combine_is_xor_of_masks() {
        let a = XorFunc::from_bits(&[14, 18]);
        let b = XorFunc::from_bits(&[15, 19]);
        let c = a.combine(b);
        assert_eq!(c.bits(), vec![14, 15, 18, 19]);
        // Combining with itself yields the zero function.
        assert!(a.combine(a).is_empty());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(XorFunc::from_bits(&[6]).to_string(), "(6)");
        assert_eq!(XorFunc::from_bits(&[16, 20]).to_string(), "(16, 20)");
    }

    #[test]
    fn canonical_order_sorts_by_size_then_bit() {
        let mut funcs = vec![
            XorFunc::from_bits(&[7, 8, 9, 12, 13, 18, 19]),
            XorFunc::from_bits(&[15, 19]),
            XorFunc::from_bits(&[6]),
            XorFunc::from_bits(&[14, 18]),
        ];
        canonical_order(&mut funcs);
        assert_eq!(funcs[0], XorFunc::from_bits(&[6]));
        assert_eq!(funcs[1], XorFunc::from_bits(&[14, 18]));
        assert_eq!(funcs[2], XorFunc::from_bits(&[15, 19]));
        assert_eq!(funcs[3].len(), 7);
    }

    #[test]
    fn conversions() {
        let f: XorFunc = 0b110u64.into();
        let m: u64 = f.into();
        assert_eq!(m, 0b110);
    }
}
