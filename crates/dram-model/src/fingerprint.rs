//! Content addressing for address mappings.
//!
//! Two recoveries of the same mapping may present different bank-function
//! lists (any basis of the same GF(2) row space names the same banks), so a
//! mapping's identity is its unique reduced row-echelon basis plus the
//! row/column bit sets. This module turns that identity into a stable
//! 64-bit **fingerprint**: the canonical basis is rendered into a fixed
//! text codec and hashed with FNV-1a. The registry keys its shards,
//! segment records and exact-lookup index on this fingerprint, so the
//! encoding here is a persistent on-disk contract — changing a byte of it
//! re-keys every registry.

use crate::gf2::bitslice;
use crate::mapping::AddressMapping;
use crate::xor_func::XorFunc;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The unique reduced row-echelon basis of a mapping's bank functions,
/// computed with the bitsliced RREF kernel (the scalar
/// [`crate::gf2::Gf2Matrix::reduced_row_basis`] is its differential twin).
pub fn canonical_basis(mapping: &AddressMapping) -> Vec<u64> {
    let masks: Vec<u64> = mapping.bank_funcs().iter().map(|f| f.mask()).collect();
    bitslice::reduced_row_basis(&masks)
}

/// The canonical text codec a fingerprint is taken over: the RREF basis
/// masks in their canonical order, then the row bits, then the column bits,
/// all in decimal. Example: `b=98304,155648;r=16,17;c=0,1,2`.
pub fn canonical_encoding_of(basis: &[u64], row_bits: &[u8], column_bits: &[u8]) -> String {
    fn join<T: std::fmt::Display>(items: &[T]) -> String {
        items.iter().map(T::to_string).collect::<Vec<_>>().join(",")
    }
    format!(
        "b={};r={};c={}",
        join(basis),
        join(row_bits),
        join(column_bits)
    )
}

/// [`canonical_encoding_of`] applied to a mapping's own canonical basis.
pub fn canonical_encoding(mapping: &AddressMapping) -> String {
    canonical_encoding_of(
        &canonical_basis(mapping),
        mapping.row_bits(),
        mapping.column_bits(),
    )
}

/// The content-addressed identity of a mapping: FNV-1a over its canonical
/// encoding. Basis-choice invariant by construction.
pub fn mapping_fingerprint(mapping: &AddressMapping) -> u64 {
    fnv1a64(canonical_encoding(mapping).as_bytes())
}

/// The mapping with its bank functions replaced by their canonical RREF
/// basis. Idempotent; the result has the same fingerprint and bank
/// partition as the input.
pub fn canonicalize(mapping: &AddressMapping) -> AddressMapping {
    let funcs: Vec<XorFunc> = canonical_basis(mapping)
        .iter()
        .map(|&mask| XorFunc::from_mask(mask))
        .collect();
    AddressMapping::new(
        funcs,
        mapping.row_bits().to_vec(),
        mapping.column_bits().to_vec(),
    )
    .expect("an RREF basis spans the same space as the valid input mapping")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf2::Gf2Matrix;
    use crate::settings::MachineSetting;
    use std::collections::BTreeSet;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fingerprint_is_basis_invariant() {
        let no4 = MachineSetting::by_number(4).unwrap();
        // Replace (14,17) by (14,17)^(15,18): same row space, other basis.
        let variant = AddressMapping::new(
            vec![
                XorFunc::from_bits(&[13, 16]),
                XorFunc::from_bits(&[14, 15, 17, 18]),
                XorFunc::from_bits(&[15, 18]),
            ],
            no4.mapping().row_bits().to_vec(),
            no4.mapping().column_bits().to_vec(),
        )
        .unwrap();
        assert_eq!(
            mapping_fingerprint(no4.mapping()),
            mapping_fingerprint(&variant)
        );
        assert_eq!(
            canonicalize(no4.mapping()).bank_funcs(),
            canonicalize(&variant).bank_funcs()
        );
    }

    #[test]
    fn canonical_basis_matches_scalar_rref() {
        for n in 1..=9u8 {
            let mapping = MachineSetting::by_number(n).unwrap().mapping().clone();
            assert_eq!(
                canonical_basis(&mapping),
                Gf2Matrix::from_funcs(mapping.bank_funcs()).reduced_row_basis(),
                "machine No.{n}"
            );
        }
    }

    #[test]
    fn distinct_mappings_get_distinct_fingerprints() {
        // One fingerprint per distinct canonical identity across Table II.
        let mut identities = BTreeSet::new();
        let mut fingerprints = BTreeSet::new();
        for n in 1..=9u8 {
            let mapping = MachineSetting::by_number(n).unwrap().mapping().clone();
            identities.insert(canonical_encoding(&mapping));
            fingerprints.insert(mapping_fingerprint(&mapping));
        }
        assert_eq!(identities.len(), fingerprints.len());
        assert!(fingerprints.len() > 1);
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let mapping = MachineSetting::by_number(6).unwrap().mapping().clone();
        let once = canonicalize(&mapping);
        let twice = canonicalize(&once);
        assert_eq!(once.bank_funcs(), twice.bank_funcs());
        assert_eq!(mapping_fingerprint(&mapping), mapping_fingerprint(&once));
    }
}
