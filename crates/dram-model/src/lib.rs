//! Vocabulary types for DRAM address-mapping reverse engineering.
//!
//! This crate provides everything the rest of the workspace shares:
//!
//! * [`PhysAddr`] — a physical address newtype with bit-level helpers.
//! * [`XorFunc`] — an Intel-style bank address function (a XOR of physical
//!   address bits).
//! * [`AddressMapping`] — a full physical-address → DRAM-address mapping
//!   (bank functions + row bits + column bits) together with its inverse.
//! * [`gf2`] — dense GF(2) linear algebra used to remove linearly dependent
//!   candidate functions and to invert mappings.
//! * [`DdrSpec`], [`SystemInfo`] — the "domain knowledge" of the DRAMDig
//!   paper (Section III-A): DDR3/DDR4 specification data and
//!   `dmidecode`-style system information.
//! * [`MachineSetting`] — the nine evaluation machines of Table II with
//!   their ground-truth mappings, which the simulator uses and the
//!   reverse-engineering tools are checked against.
//! * [`MachineGen`] — a deterministic sampler of valid-by-construction
//!   machine models beyond Table II (split windows, wide functions, row
//!   remapping), feeding the scenario-matrix evaluation.
//! * [`fingerprint`] — content addressing: basis-invariant FNV-1a
//!   fingerprints over the canonical RREF codec, keying the mapping
//!   registry.
//!
//! # Example
//!
//! ```
//! use dram_model::{MachineSetting, PhysAddr};
//!
//! let setting = MachineSetting::no1_sandy_bridge_ddr3_8g();
//! let mapping = setting.mapping();
//! let dram = mapping.to_dram(PhysAddr::new(0x1234_5678));
//! let back = mapping.to_phys(dram).expect("mapping is a bijection");
//! assert_eq!(back, PhysAddr::new(0x1234_5678));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod addr;
pub mod bits;
pub mod error;
pub mod fingerprint;
pub mod gf2;
pub mod machine_gen;
pub mod mapping;
pub mod parse;
pub mod settings;
pub mod spec;
pub mod xor_func;

pub use addr::{DramAddress, PhysAddr};
pub use error::ModelError;
pub use machine_gen::{GeneratedMachine, MachineClass, MachineGen, RowRemap};
pub use mapping::{AddressMapping, MappingBuilder};
pub use settings::{MachineSetting, Microarch};
pub use spec::{DdrGeneration, DdrSpec, DramGeometry, SystemInfo};
pub use xor_func::XorFunc;

/// Size of a standard 4 KiB page, used throughout the workspace.
pub const PAGE_SIZE: u64 = 4096;

/// Number of address bits covered by a 4 KiB page (`log2(PAGE_SIZE)`).
pub const PAGE_SHIFT: u32 = 12;
