//! Bitsliced (transposed) GF(2) kernels: 64 masks or addresses per word op.
//!
//! Every hot loop of the recovery pipeline — coset reduction against a
//! [`PileBasis`](super::PileBasis), the Gray-code walk over a nullspace
//! span, RREF canonicalization of a function set, XOR-function evaluation —
//! processes one 64-bit mask per iteration in its scalar form. This module
//! stores the *transpose* instead: a [`BitSlab`] holds up to 64 values with
//! `planes[b]` collecting bit `b` of every value, lane `j` of each plane
//! word belonging to value `j`. In that layout a conditional XOR of a basis
//! row into whichever values need it is one word op per set bit of the row,
//! applied to all 64 lanes at once, and a parity (XOR-function evaluation)
//! is one XOR per set bit of the mask — again for 64 addresses at a time.
//!
//! Each kernel has a scalar twin in [`super`] (or in `dramdig::functions`)
//! that it is pinned to by unit tests here and by the proptest differential
//! suite in `crates/dram-model/tests/bitslice_props.rs`.

/// Number of values a [`BitSlab`] holds: one per bit lane of a `u64`.
pub const LANES: usize = 64;

/// In-place transpose of a 64x64 bit matrix stored row-major.
///
/// Bit `c` of `a[r]` on entry becomes bit `r` of `a[c]` on exit (plain
/// main-diagonal transpose in LSB-first bit order), via the classic
/// log-depth delta-swap network: 6 rounds of masked block swaps.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut mask: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            if k & j == 0 {
                let t = ((a[k] >> j) ^ a[k | j]) & mask;
                a[k | j] ^= t;
                a[k] ^= t << j;
            }
            k += 1;
        }
        j >>= 1;
        // 32 -> 0x0000FFFF0000FFFF -> 0x00FF00FF... -> 0x0F0F... -> 0x3333...
        mask ^= mask << j;
    }
}

/// Up to 64 GF(2) vectors in transposed (bit-plane) layout.
///
/// `planes[b]` holds bit `b` of every stored value; lane `j` (bit `j` of a
/// plane word) belongs to value `j`. Lanes at index `len..64` are zero.
#[derive(Debug, Clone)]
pub struct BitSlab {
    planes: [u64; 64],
    len: usize,
}

impl BitSlab {
    /// Transposes a batch of at most [`LANES`] values into plane layout.
    ///
    /// # Panics
    ///
    /// Panics when more than [`LANES`] values are given.
    pub fn from_values(values: &[u64]) -> Self {
        assert!(
            values.len() <= LANES,
            "a BitSlab holds at most {LANES} values, got {}",
            values.len()
        );
        let mut planes = [0u64; 64];
        planes[..values.len()].copy_from_slice(values);
        transpose64(&mut planes);
        BitSlab {
            planes,
            len: values.len(),
        }
    }

    /// Number of values stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the slab holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The plane word for one bit position: lane `j` is bit `bit` of value
    /// `j`.
    pub fn plane(&self, bit: usize) -> u64 {
        self.planes[bit]
    }

    /// Transposes back to the stored values.
    pub fn values(&self) -> Vec<u64> {
        let mut rows = self.planes;
        transpose64(&mut rows);
        rows[..self.len].to_vec()
    }

    /// Reduces every stored value against a row-echelon basis, exactly as
    /// [`reduce_against`](super::reduce_against) does one value at a time:
    /// for each basis row in order, every value whose leading-bit lane is
    /// set absorbs the row. The selection mask is the leading bit's plane
    /// word, so all 64 lanes take the conditional XOR in one word op per
    /// set bit of the row.
    ///
    /// `rows` must have pairwise-distinct leading bits (the invariant
    /// [`PileBasis`](super::PileBasis) maintains); rows equal to zero are
    /// skipped.
    pub fn reduce_rows(&mut self, rows: &[u64]) {
        for &row in rows {
            if row == 0 {
                continue;
            }
            let lead = 63 - row.leading_zeros() as usize;
            let sel = self.planes[lead];
            if sel == 0 {
                continue;
            }
            let mut rem = row;
            while rem != 0 {
                let b = rem.trailing_zeros() as usize;
                self.planes[b] ^= sel;
                rem &= rem - 1;
            }
        }
    }

    /// XOR-parity of `mask` over every stored value in one pass: lane `j`
    /// of the result is `(values[j] & mask).count_ones() & 1` — the scalar
    /// [`XorFunc::evaluate`](crate::XorFunc::evaluate) applied to 64
    /// addresses at once, at one XOR per set bit of the mask.
    pub fn parity(&self, mask: u64) -> u64 {
        let mut acc = 0u64;
        let mut rem = mask;
        while rem != 0 {
            acc ^= self.planes[rem.trailing_zeros() as usize];
            rem &= rem - 1;
        }
        acc
    }
}

/// Kernel (a): batch coset reduction. Reduces every value against a
/// row-echelon `basis_rows`, returning the coset representatives in input
/// order — element-wise identical to calling
/// [`reduce_against`](super::reduce_against) per value, but in O(1) table
/// lookups per value instead of O(rank) conditional row XORs.
pub fn reduce_batch(values: &[u64], basis_rows: &[u64]) -> Vec<u64> {
    if values.is_empty() || basis_rows.iter().all(|&r| r == 0) {
        return values.to_vec();
    }
    // Against the *reduced* row-echelon basis each pivot bit appears in
    // exactly one row, so the representative is `v ^ Σ v[pivot_i]·row_i` —
    // a linear map of `v`. (Row-echelon and RREF bases of the same space
    // yield the same representative: it is the unique coset member with
    // every pivot coordinate zero.)
    let rref = reduced_row_basis(basis_rows);
    // Column images of that map: identity except on pivot columns, where
    // the pivot bit clears and the row's free bits fold in.
    let mut cols = [0u64; 64];
    for (j, col) in cols.iter_mut().enumerate() {
        *col = 1u64 << j;
    }
    for &row in &rref {
        let pivot = 63 - row.leading_zeros() as usize;
        cols[pivot] = row ^ (1u64 << pivot);
    }
    // Method of four Russians: one 256-entry XOR table per input byte turns
    // the 64-column map into eight table lookups per value.
    let mut tables = [[0u64; 256]; 8];
    for (k, table) in tables.iter_mut().enumerate() {
        for b in 1usize..256 {
            table[b] = table[b & (b - 1)] ^ cols[k * 8 + b.trailing_zeros() as usize];
        }
    }
    values
        .iter()
        .map(|&v| {
            tables.iter().enumerate().fold(0u64, |rep, (k, table)| {
                rep ^ table[(v >> (k * 8)) as usize & 0xFF]
            })
        })
        .collect()
}

/// Lane-selection constants: bit `j` of `SEL[k]` is bit `k` of the lane
/// index `j`, so XOR-accumulating `SEL[k]` into the planes of `basis[k]`
/// makes lane `j` hold the combination of basis vectors selected by the
/// binary digits of `j`.
const SEL: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Kernel (b): bitsliced span enumeration. Returns every *non-zero* vector
/// in the span of the linearly independent `basis` whose Hamming weight is
/// at most `max_weight`, sorted ascending.
///
/// The first six basis vectors are spread across the 64 lanes of one block
/// through the `SEL` lane constants; the remaining vectors are Gray-code
/// walked as a per-block base, toggling whole planes (`^= !0`). Each block
/// therefore tests 64 candidate masks with a handful of word ops: a
/// vertical-counter (carry-save) popcount over the planes in use, a
/// bitsliced `<= max_weight` compare, and one scalar materialization per
/// surviving lane.
///
/// The scalar twin is the Gray-code walk in
/// `dramdig::functions::detect_bank_functions_with_basis` (one XOR + one
/// `count_ones` per candidate).
///
/// # Panics
///
/// Panics when `basis` has 32 or more vectors (2^32 candidates is far past
/// anything the pipeline enumerates — the chunked-sweep path takes over
/// long before).
pub fn span_survivors(basis: &[u64], max_weight: usize) -> Vec<u64> {
    assert!(
        basis.len() < 32,
        "span of {} basis vectors is too large to enumerate",
        basis.len()
    );
    if basis.is_empty() {
        return Vec::new();
    }
    let low = basis.len().min(6);
    let lane_count = 1usize << low;
    let lane_mask: u64 = if lane_count == LANES {
        !0
    } else {
        (1u64 << lane_count) - 1
    };
    let union: u64 = basis.iter().fold(0, |acc, &b| acc | b);

    // Planes of the 64 low-lane combinations (blockbase = 0).
    let mut planes = [0u64; 64];
    for (k, &vector) in basis.iter().take(low).enumerate() {
        let mut rem = vector;
        while rem != 0 {
            planes[rem.trailing_zeros() as usize] ^= SEL[k];
            rem &= rem - 1;
        }
    }
    // Lane -> low-combination lookup for materializing survivors.
    let mut low_combos = [0u64; LANES];
    for j in 1..lane_count {
        low_combos[j] = low_combos[j & (j - 1)] ^ basis[j.trailing_zeros() as usize];
    }

    let limit = max_weight.min(127) as u64;
    let blocks = 1u64 << (basis.len() - low);
    let mut blockbase = 0u64;
    let mut out = Vec::new();
    for t in 0..blocks {
        if t > 0 {
            // Gray-code step over the high basis vectors: one whole-plane
            // toggle per set bit of the stepped vector.
            let step = basis[low + t.trailing_zeros() as usize];
            blockbase ^= step;
            let mut rem = step;
            while rem != 0 {
                planes[rem.trailing_zeros() as usize] ^= !0u64;
                rem &= rem - 1;
            }
        }
        // Vertical-counter popcount: cnt[i] is bit i of each lane's weight.
        let mut cnt = [0u64; 7];
        let mut nonzero = 0u64;
        let mut rem = union;
        while rem != 0 {
            let plane = planes[rem.trailing_zeros() as usize];
            nonzero |= plane;
            let mut carry = plane;
            for c in cnt.iter_mut() {
                if carry == 0 {
                    break;
                }
                let overflow = *c & carry;
                *c ^= carry;
                carry = overflow;
            }
            rem &= rem - 1;
        }
        // Bitsliced compare: lanes whose weight exceeds `limit`.
        let mut gt = 0u64;
        let mut eq = !0u64;
        for i in (0..7).rev() {
            let lbit = if (limit >> i) & 1 == 1 { !0u64 } else { 0 };
            gt |= eq & cnt[i] & !lbit;
            eq &= !(cnt[i] ^ lbit);
        }
        let mut keep = !gt & nonzero & lane_mask;
        while keep != 0 {
            let j = keep.trailing_zeros() as usize;
            out.push(blockbase ^ low_combos[j]);
            keep &= keep - 1;
        }
    }
    out.sort_unstable();
    out
}

/// Kernel (b), filtering form: keeps the masks (in input order) that have
/// even parity against every basis row — the bitsliced twin of testing
/// [`PileBasis::mask_constant`](super::PileBasis::mask_constant) per mask.
/// One [`BitSlab::parity`] per basis row classifies 64 masks at once.
pub fn filter_constant_masks(masks: &[u64], basis_rows: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    for chunk in masks.chunks(LANES) {
        let slab = BitSlab::from_values(chunk);
        let mut odd = 0u64;
        for &row in basis_rows {
            odd |= slab.parity(row);
        }
        let lane_mask: u64 = if chunk.len() == LANES {
            !0
        } else {
            (1u64 << chunk.len()) - 1
        };
        let mut keep = !odd & lane_mask;
        while keep != 0 {
            let j = keep.trailing_zeros() as usize;
            out.push(chunk[j]);
            keep &= keep - 1;
        }
    }
    out
}

/// Kernel (c): batch RREF canonicalization with the matrix's rows as
/// lanes. Produces the unique reduced row-echelon basis of the row space —
/// byte-identical to
/// [`Gf2Matrix::reduced_row_basis`](super::Gf2Matrix::reduced_row_basis) —
/// but each elimination clears a pivot bit from *all* other rows in one
/// word op per set bit of the pivot row.
///
/// More than 64 rows are first folded into a plain row-echelon basis (the
/// row space has rank at most 64) and the bitsliced elimination runs on
/// that; the result is identical either way.
pub fn reduced_row_basis(rows: &[u64]) -> Vec<u64> {
    if rows.len() > LANES {
        let mut echelon: Vec<u64> = Vec::new();
        for &row in rows {
            let reduced = super::reduce_against(row, &echelon);
            if reduced != 0 {
                echelon.push(reduced);
                echelon.sort_unstable_by(|a, b| b.cmp(a));
            }
        }
        return reduced_row_basis(&echelon);
    }
    let mut slab = BitSlab::from_values(rows);
    let mut remaining: u64 = if rows.len() == LANES {
        !0
    } else {
        (1u64 << rows.len()) - 1
    };
    let mut pivot_lanes: Vec<usize> = Vec::new();
    for bit in (0..64).rev() {
        let candidates = slab.planes[bit] & remaining;
        if candidates == 0 {
            continue;
        }
        let lane = candidates.trailing_zeros() as usize;
        remaining &= !(1u64 << lane);
        // Gather the pivot row (higher bits are already eliminated).
        let mut row = 0u64;
        for b in 0..=bit {
            row |= ((slab.planes[b] >> lane) & 1) << b;
        }
        // Jordan elimination: every other lane holding the pivot bit —
        // including earlier pivots, for full back-substitution — absorbs
        // the pivot row.
        let sel = slab.planes[bit] & !(1u64 << lane);
        if sel != 0 {
            let mut rem = row;
            while rem != 0 {
                slab.planes[rem.trailing_zeros() as usize] ^= sel;
                rem &= rem - 1;
            }
        }
        pivot_lanes.push(lane);
    }
    // Pivot discovery ran from the highest bit down, so gathering in that
    // order yields rows sorted descending by leading bit — the same order
    // the scalar canonicalization sorts into.
    pivot_lanes
        .iter()
        .map(|&lane| {
            let mut row = 0u64;
            for b in 0..64 {
                row |= ((slab.planes[b] >> lane) & 1) << b;
            }
            row
        })
        .collect()
}

/// Kernel (d): evaluates a set of XOR functions (bit masks) over a batch
/// of raw addresses, 64 addresses per block. Returns one packed result per
/// address: bit `i` of `out[j]` is the parity of `funcs[i]` on `addrs[j]`
/// — the bank number when `funcs` are the mapping's bank functions.
pub fn eval_funcs(funcs: &[u64], addrs: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(addrs.len());
    for chunk in addrs.chunks(LANES) {
        let slab = BitSlab::from_values(chunk);
        // Collect each function's parity word as one plane of the result
        // slab, then transpose back so lane j reads out as a bank number.
        let mut result = [0u64; 64];
        for (i, &f) in funcs.iter().enumerate() {
            result[i] = slab.parity(f);
        }
        transpose64(&mut result);
        out.extend_from_slice(&result[..chunk.len()]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::{reduce_against, Gf2Matrix, PileBasis};
    use super::*;

    fn rng_values(seed: u64, n: usize, bits: u32) -> Vec<u64> {
        // SplitMix64 stream; enough for structural tests.
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & (u64::MAX >> (64 - bits))
            })
            .collect()
    }

    #[test]
    fn transpose_round_trips_and_moves_bits() {
        let values = rng_values(1, 64, 64);
        let mut a: [u64; 64] = values.clone().try_into().unwrap();
        transpose64(&mut a);
        for (r, &v) in values.iter().enumerate() {
            for (c, &plane) in a.iter().enumerate() {
                assert_eq!((plane >> r) & 1, (v >> c) & 1, "bit ({r},{c})");
            }
        }
        transpose64(&mut a);
        assert_eq!(a.to_vec(), values);
    }

    #[test]
    fn slab_round_trips_partial_batches() {
        for n in [0usize, 1, 7, 63, 64] {
            let values = rng_values(2, n, 40);
            let slab = BitSlab::from_values(&values);
            assert_eq!(slab.len(), n);
            assert_eq!(slab.is_empty(), n == 0);
            assert_eq!(slab.values(), values);
        }
    }

    #[test]
    fn parity_matches_scalar_popcount() {
        let values = rng_values(3, 64, 48);
        let slab = BitSlab::from_values(&values);
        for &mask in &[0u64, 1, 0b1011, 0xFFFF_FFFF_FFFF] {
            let word = slab.parity(mask);
            for (j, &v) in values.iter().enumerate() {
                let scalar = (v & mask).count_ones() & 1;
                assert_eq!((word >> j) & 1, u64::from(scalar), "lane {j}");
            }
        }
    }

    #[test]
    fn reduce_batch_matches_scalar_reduce() {
        let mut basis = PileBasis::new(0);
        for &d in &[0b1100_1000, 0b0110_0001, 0b0001_1010, 0b1000_0010] {
            basis.insert(d);
        }
        let values = rng_values(4, 200, 10);
        let batched = reduce_batch(&values, basis.rows());
        for (j, &v) in values.iter().enumerate() {
            assert_eq!(batched[j], reduce_against(v, basis.rows()), "value {j}");
        }
    }

    #[test]
    fn span_survivors_matches_gray_walk() {
        // An independent basis over 14 bits; enumerate with both kernels.
        let basis = vec![
            0b10_0000_0000_0011u64,
            0b01_0000_0110_0000,
            0b00_1010_0000_1000,
        ];
        for max_weight in 0..=5usize {
            let mut scalar: Vec<u64> = Vec::new();
            let mut value = 0u64;
            for i in 1u64..(1 << basis.len()) {
                value ^= basis[i.trailing_zeros() as usize];
                if value.count_ones() as usize <= max_weight {
                    scalar.push(value);
                }
            }
            scalar.sort_unstable();
            assert_eq!(span_survivors(&basis, max_weight), scalar, "w={max_weight}");
        }
    }

    #[test]
    fn span_survivors_crosses_block_boundaries() {
        // 8 basis vectors -> 4 blocks of 64 lanes: the Gray-coded blockbase
        // path is exercised.
        let basis: Vec<u64> = (0..8).map(|i| 1u64 << (2 * i)).collect();
        let got = span_survivors(&basis, 3);
        // Non-zero subsets of 8 independent singleton-pair bits with weight
        // <= 3: C(8,1) + C(8,2) + C(8,3).
        assert_eq!(got.len(), 8 + 28 + 56);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, got, "sorted and unique");
    }

    #[test]
    fn filter_constant_masks_matches_mask_constant() {
        let mut basis = PileBasis::new(0);
        for &d in &[0b1001_0010u64, 0b0100_0101, 0b0011_1000] {
            basis.insert(d);
        }
        let masks = rng_values(5, 150, 9);
        let kept = filter_constant_masks(&masks, basis.rows());
        let scalar: Vec<u64> = masks
            .iter()
            .copied()
            .filter(|&m| basis.mask_constant(m))
            .collect();
        assert_eq!(kept, scalar);
    }

    #[test]
    fn reduced_row_basis_matches_scalar_rref() {
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![0],
            vec![0b1, 0b10, 0b11],
            vec![0b1100, 0b0110, 0b1010],
            rng_values(6, 40, 22),
            rng_values(7, 64, 64),
        ];
        for rows in cases {
            let scalar = Gf2Matrix::from_rows(rows.clone()).reduced_row_basis();
            assert_eq!(reduced_row_basis(&rows), scalar, "rows {rows:?}");
        }
    }

    #[test]
    fn eval_funcs_matches_scalar_parity() {
        let funcs = vec![0b0110_0001u64, 0b1000_0110, 0b0001_1100];
        let addrs = rng_values(8, 130, 9);
        let packed = eval_funcs(&funcs, &addrs);
        for (j, &addr) in addrs.iter().enumerate() {
            let mut expect = 0u64;
            for (i, &f) in funcs.iter().enumerate() {
                expect |= u64::from((addr & f).count_ones() & 1) << i;
            }
            assert_eq!(packed[j], expect, "addr {j}");
        }
    }
}
