//! The physical-address → DRAM-address mapping and its inverse.

use std::fmt;

use crate::bits;
use crate::error::ModelError;
use crate::gf2;
use crate::{DramAddress, PhysAddr, XorFunc};

/// A complete DRAM address mapping: how the memory controller turns a
/// physical address into a (bank, row, column) triple.
///
/// * Each [`XorFunc`] yields one bit of the flat bank index.
/// * `row_bits` / `column_bits` list the physical-address bits that form the
///   row and column indices (gathered LSB-first).
///
/// A valid mapping is a bijection between physical addresses of
/// `physical_bits()` bits and DRAM coordinates; [`AddressMapping::to_phys`]
/// is the inverse direction and is used by the simulator and the rowhammer
/// harness to materialise addresses with desired DRAM coordinates.
///
/// ```
/// use dram_model::{AddressMapping, PhysAddr, XorFunc};
/// let mapping = AddressMapping::new(
///     vec![XorFunc::from_bits(&[13, 16]), XorFunc::from_bits(&[14, 17]), XorFunc::from_bits(&[15, 18])],
///     (16..=31).collect(),
///     (0..=12).collect(),
/// )?;
/// let d = mapping.to_dram(PhysAddr::new(0xdead_b000));
/// assert_eq!(mapping.to_phys(d)?, PhysAddr::new(0xdead_b000));
/// # Ok::<(), dram_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMapping {
    bank_funcs: Vec<XorFunc>,
    row_bits: Vec<u8>,
    column_bits: Vec<u8>,
    physical_bits: u8,
    /// Bits that participate in bank functions but are neither row nor
    /// column bits ("pure" bank bits), sorted ascending.
    pure_bank_bits: Vec<u8>,
}

impl AddressMapping {
    /// Builds and validates a mapping.
    ///
    /// The physical address width is inferred as
    /// `row_bits.len() + column_bits.len() + bank_funcs.len()`, which is the
    /// width of the bijection.
    ///
    /// # Errors
    ///
    /// * [`ModelError::LinearlyDependentFunctions`] if the bank functions are
    ///   not linearly independent over GF(2).
    /// * [`ModelError::NotBijective`] if the bit sets overlap, leave gaps, or
    ///   the pure-bank-bit count does not equal the function count.
    /// * [`ModelError::SingularBankSystem`] if pure bank bits cannot be
    ///   recovered from the bank index (the mapping would not be invertible).
    pub fn new(
        bank_funcs: Vec<XorFunc>,
        row_bits: Vec<u8>,
        column_bits: Vec<u8>,
    ) -> Result<Self, ModelError> {
        let mut row_bits = row_bits;
        let mut column_bits = column_bits;
        row_bits.sort_unstable();
        row_bits.dedup();
        column_bits.sort_unstable();
        column_bits.dedup();

        if bank_funcs.iter().any(|f| f.is_empty()) {
            return Err(ModelError::NotBijective {
                reason: "a bank function uses no physical address bits".into(),
            });
        }
        if !gf2::functions_independent(&bank_funcs) {
            return Err(ModelError::LinearlyDependentFunctions);
        }

        let physical_bits = (row_bits.len() + column_bits.len() + bank_funcs.len()) as u8;
        if physical_bits > 63 {
            return Err(ModelError::NotBijective {
                reason: format!("physical address width {physical_bits} exceeds 63 bits"),
            });
        }

        let row_mask = bits::mask_of(&row_bits);
        let col_mask = bits::mask_of(&column_bits);
        if row_mask & col_mask != 0 {
            return Err(ModelError::NotBijective {
                reason: "row bits and column bits overlap".into(),
            });
        }

        let func_mask: u64 = bank_funcs.iter().fold(0, |m, f| m | f.mask());
        let full_mask: u64 = if physical_bits == 64 {
            u64::MAX
        } else {
            (1u64 << physical_bits) - 1
        };
        let covered = row_mask | col_mask | func_mask;
        if covered & full_mask != full_mask {
            let missing = bits::bit_positions(full_mask & !covered);
            return Err(ModelError::NotBijective {
                reason: format!("physical bits {missing:?} are not used by any coordinate"),
            });
        }
        if covered & !full_mask != 0 {
            let extra = bits::bit_positions(covered & !full_mask);
            return Err(ModelError::NotBijective {
                reason: format!(
                    "bits {extra:?} exceed the {physical_bits}-bit physical address width"
                ),
            });
        }

        let pure_bank_mask = func_mask & !(row_mask | col_mask);
        let pure_bank_bits = bits::bit_positions(pure_bank_mask);
        if pure_bank_bits.len() != bank_funcs.len() {
            return Err(ModelError::NotBijective {
                reason: format!(
                    "{} pure bank bits but {} bank functions",
                    pure_bank_bits.len(),
                    bank_funcs.len()
                ),
            });
        }

        let mapping = AddressMapping {
            bank_funcs,
            row_bits,
            column_bits,
            physical_bits,
            pure_bank_bits,
        };
        // Verify invertibility of the pure-bank-bit system once, up front.
        if mapping.pure_bank_matrix_rank() != mapping.bank_funcs.len() {
            return Err(ModelError::SingularBankSystem);
        }
        Ok(mapping)
    }

    fn pure_bank_matrix_rank(&self) -> usize {
        let rows: Vec<u64> = self
            .bank_funcs
            .iter()
            .map(|f| bits::gather_bits(f.mask(), &self.pure_bank_bits))
            .collect();
        gf2::Gf2Matrix::from_rows(rows).rank()
    }

    /// The bank address functions, one per bank-index bit (bit `i` of the
    /// bank index is `bank_funcs()[i]` evaluated on the physical address).
    pub fn bank_funcs(&self) -> &[XorFunc] {
        &self.bank_funcs
    }

    /// Physical-address bits forming the row index, ascending.
    pub fn row_bits(&self) -> &[u8] {
        &self.row_bits
    }

    /// Physical-address bits forming the column index, ascending.
    pub fn column_bits(&self) -> &[u8] {
        &self.column_bits
    }

    /// Width of the physical addresses this mapping covers, in bits.
    pub fn physical_bits(&self) -> u8 {
        self.physical_bits
    }

    /// Total capacity covered by the mapping, in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        1u64 << self.physical_bits
    }

    /// Number of banks (2^number of bank functions).
    pub fn num_banks(&self) -> u32 {
        1u32 << self.bank_funcs.len()
    }

    /// Number of rows per bank.
    pub fn num_rows(&self) -> u32 {
        1u32 << self.row_bits.len()
    }

    /// Number of column (byte) positions per row.
    pub fn num_columns(&self) -> u32 {
        1u32 << self.column_bits.len()
    }

    /// Row size in bytes (equal to [`Self::num_columns`]).
    pub fn row_size_bytes(&self) -> u64 {
        1u64 << self.column_bits.len()
    }

    /// Bits that participate in bank functions but index neither rows nor
    /// columns.
    pub fn pure_bank_bits(&self) -> &[u8] {
        &self.pure_bank_bits
    }

    /// All physical-address bits that participate in at least one bank
    /// function, ascending.
    pub fn bank_function_bits(&self) -> Vec<u8> {
        let mask = self.bank_funcs.iter().fold(0u64, |m, f| m | f.mask());
        bits::bit_positions(mask)
    }

    /// Row bits that are *shared* with bank functions (the lined boxes of
    /// Figure 1 in the paper).
    pub fn shared_row_bits(&self) -> Vec<u8> {
        let func_mask = self.bank_funcs.iter().fold(0u64, |m, f| m | f.mask());
        bits::bit_positions(func_mask & bits::mask_of(&self.row_bits))
    }

    /// Column bits that are shared with bank functions.
    pub fn shared_column_bits(&self) -> Vec<u8> {
        let func_mask = self.bank_funcs.iter().fold(0u64, |m, f| m | f.mask());
        bits::bit_positions(func_mask & bits::mask_of(&self.column_bits))
    }

    /// Computes the flat bank index of a physical address.
    pub fn bank_of(&self, addr: PhysAddr) -> u32 {
        let mut bank = 0u32;
        for (i, f) in self.bank_funcs.iter().enumerate() {
            if f.evaluate(addr) {
                bank |= 1 << i;
            }
        }
        bank
    }

    /// Computes the flat bank index of a batch of physical addresses, 64
    /// per bitsliced block ([`gf2::bitslice::eval_funcs`]): every bank
    /// function costs one XOR per set mask bit for 64 addresses at once.
    /// Element-wise identical to [`AddressMapping::bank_of`], which remains
    /// the scalar differential twin.
    pub fn banks_of(&self, addrs: &[PhysAddr]) -> Vec<u32> {
        let masks: Vec<u64> = self.bank_funcs.iter().map(|f| f.mask()).collect();
        let raw: Vec<u64> = addrs.iter().map(|a| a.raw()).collect();
        gf2::bitslice::eval_funcs(&masks, &raw)
            .into_iter()
            .map(|packed| packed as u32)
            .collect()
    }

    /// Computes the row index of a physical address.
    pub fn row_of(&self, addr: PhysAddr) -> u32 {
        bits::gather_bits(addr.raw(), &self.row_bits) as u32
    }

    /// Computes the column index of a physical address.
    pub fn column_of(&self, addr: PhysAddr) -> u32 {
        bits::gather_bits(addr.raw(), &self.column_bits) as u32
    }

    /// Decodes a physical address into its DRAM coordinates.
    pub fn to_dram(&self, addr: PhysAddr) -> DramAddress {
        DramAddress {
            bank: self.bank_of(addr),
            row: self.row_of(addr),
            column: self.column_of(addr),
        }
    }

    /// Encodes DRAM coordinates back into the unique physical address that
    /// maps to them.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CoordinateOutOfRange`] if any coordinate exceeds
    /// the geometry, or [`ModelError::SingularBankSystem`] if the pure bank
    /// bits cannot be solved (cannot happen for a mapping accepted by
    /// [`AddressMapping::new`]).
    pub fn to_phys(&self, dram: DramAddress) -> Result<PhysAddr, ModelError> {
        if u64::from(dram.bank) >= u64::from(self.num_banks()) {
            return Err(ModelError::CoordinateOutOfRange {
                field: "bank",
                value: dram.bank.into(),
                limit: self.num_banks().into(),
            });
        }
        if u64::from(dram.row) >= u64::from(self.num_rows()) {
            return Err(ModelError::CoordinateOutOfRange {
                field: "row",
                value: dram.row.into(),
                limit: self.num_rows().into(),
            });
        }
        if u64::from(dram.column) >= u64::from(self.num_columns()) {
            return Err(ModelError::CoordinateOutOfRange {
                field: "column",
                value: dram.column.into(),
                limit: self.num_columns().into(),
            });
        }

        // Place row and column bits.
        let mut raw = bits::scatter_bits(dram.row.into(), &self.row_bits)
            | bits::scatter_bits(dram.column.into(), &self.column_bits);

        // Solve for the pure bank bits: for each function i,
        //   parity(pure part) = bank_bit_i XOR parity(known part).
        let n = self.bank_funcs.len();
        let mut a_rows = Vec::with_capacity(n);
        let mut rhs = 0u64;
        for (i, f) in self.bank_funcs.iter().enumerate() {
            let pure_part = bits::gather_bits(f.mask(), &self.pure_bank_bits);
            a_rows.push(pure_part);
            let known_parity = PhysAddr::new(raw).masked_parity(f.mask());
            let bank_bit = (dram.bank >> i) & 1 == 1;
            if known_parity ^ bank_bit {
                rhs |= 1 << i;
            }
        }
        let pure_values =
            gf2::solve_square(&a_rows, rhs, n).ok_or(ModelError::SingularBankSystem)?;
        raw |= bits::scatter_bits(pure_values, &self.pure_bank_bits);
        Ok(PhysAddr::new(raw))
    }

    /// Returns `true` if two physical addresses map to the same bank.
    pub fn same_bank(&self, a: PhysAddr, b: PhysAddr) -> bool {
        self.bank_of(a) == self.bank_of(b)
    }

    /// Returns `true` if two physical addresses are in the same bank but
    /// different rows (the SBDR condition that causes row-buffer conflicts).
    pub fn is_sbdr(&self, a: PhysAddr, b: PhysAddr) -> bool {
        self.same_bank(a, b) && self.row_of(a) != self.row_of(b)
    }

    /// Returns `true` if the recovered mapping `other` is *functionally
    /// equivalent* to `self`: identical row and column bit sets and bank
    /// functions spanning the same GF(2) row space (individual functions may
    /// differ by linear combinations without changing which addresses share a
    /// bank).
    pub fn equivalent_to(&self, other: &AddressMapping) -> bool {
        if self.row_bits != other.row_bits || self.column_bits != other.column_bits {
            return false;
        }
        if self.bank_funcs.len() != other.bank_funcs.len() {
            return false;
        }
        let mine = gf2::Gf2Matrix::from_funcs(&self.bank_funcs);
        let theirs = gf2::Gf2Matrix::from_funcs(&other.bank_funcs);
        other.bank_funcs.iter().all(|f| mine.spans(f.mask()))
            && self.bank_funcs.iter().all(|f| theirs.spans(f.mask()))
    }

    /// Returns `true` if `other` induces the same *bank partition* as `self`
    /// (same-bank relation identical), regardless of row/column assignment.
    pub fn same_bank_partition(&self, other: &AddressMapping) -> bool {
        if self.bank_funcs.len() != other.bank_funcs.len() {
            return false;
        }
        let mine = gf2::Gf2Matrix::from_funcs(&self.bank_funcs);
        let theirs = gf2::Gf2Matrix::from_funcs(&other.bank_funcs);
        other.bank_funcs.iter().all(|f| mine.spans(f.mask()))
            && self.bank_funcs.iter().all(|f| theirs.spans(f.mask()))
    }
}

impl fmt::Display for AddressMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank functions: ")?;
        for (i, func) in self.bank_funcs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{func}")?;
        }
        write!(
            f,
            "; row bits: {}; column bits: {}",
            format_bit_ranges(&self.row_bits),
            format_bit_ranges(&self.column_bits)
        )
    }
}

/// Formats a sorted bit list the way Table II does, e.g. `0~5, 7~13`.
pub fn format_bit_ranges(sorted_bits: &[u8]) -> String {
    if sorted_bits.is_empty() {
        return "-".to_string();
    }
    let mut parts = Vec::new();
    let mut start = sorted_bits[0];
    let mut prev = sorted_bits[0];
    for &b in &sorted_bits[1..] {
        if b == prev + 1 {
            prev = b;
            continue;
        }
        parts.push(range_str(start, prev));
        start = b;
        prev = b;
    }
    parts.push(range_str(start, prev));
    parts.join(", ")
}

fn range_str(start: u8, end: u8) -> String {
    if start == end {
        format!("{start}")
    } else {
        format!("{start}~{end}")
    }
}

/// Builder for [`AddressMapping`] offering range-based convenience methods.
///
/// ```
/// use dram_model::MappingBuilder;
/// let mapping = MappingBuilder::new()
///     .bank_func(&[13, 16])
///     .bank_func(&[14, 17])
///     .bank_func(&[15, 18])
///     .row_bit_range(16, 31)
///     .column_bit_range(0, 12)
///     .build()?;
/// assert_eq!(mapping.num_banks(), 8);
/// # Ok::<(), dram_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct MappingBuilder {
    bank_funcs: Vec<XorFunc>,
    row_bits: Vec<u8>,
    column_bits: Vec<u8>,
}

impl MappingBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a bank function given its participating bit indices.
    pub fn bank_func(mut self, bit_indices: &[u8]) -> Self {
        self.bank_funcs.push(XorFunc::from_bits(bit_indices));
        self
    }

    /// Adds an already constructed bank function.
    pub fn bank_func_raw(mut self, func: XorFunc) -> Self {
        self.bank_funcs.push(func);
        self
    }

    /// Adds a single row bit.
    pub fn row_bit(mut self, bit: u8) -> Self {
        self.row_bits.push(bit);
        self
    }

    /// Adds an inclusive range of row bits.
    pub fn row_bit_range(mut self, low: u8, high: u8) -> Self {
        self.row_bits.extend(low..=high);
        self
    }

    /// Adds a single column bit.
    pub fn column_bit(mut self, bit: u8) -> Self {
        self.column_bits.push(bit);
        self
    }

    /// Adds an inclusive range of column bits.
    pub fn column_bit_range(mut self, low: u8, high: u8) -> Self {
        self.column_bits.extend(low..=high);
        self
    }

    /// Builds the mapping.
    ///
    /// # Errors
    ///
    /// See [`AddressMapping::new`].
    pub fn build(self) -> Result<AddressMapping, ModelError> {
        AddressMapping::new(self.bank_funcs, self.row_bits, self.column_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn haswell_4g() -> AddressMapping {
        // Machine No.4 of Table II.
        MappingBuilder::new()
            .bank_func(&[13, 16])
            .bank_func(&[14, 17])
            .bank_func(&[15, 18])
            .row_bit_range(16, 31)
            .column_bit_range(0, 12)
            .build()
            .unwrap()
    }

    fn skylake_16g() -> AddressMapping {
        // Machine No.6 of Table II.
        MappingBuilder::new()
            .bank_func(&[7, 14])
            .bank_func(&[15, 19])
            .bank_func(&[16, 20])
            .bank_func(&[17, 21])
            .bank_func(&[18, 22])
            .bank_func(&[8, 9, 12, 13, 18, 19])
            .row_bit_range(19, 33)
            .column_bit_range(0, 7)
            .column_bit_range(9, 13)
            .build()
            .unwrap()
    }

    #[test]
    fn geometry_counts() {
        let m = haswell_4g();
        assert_eq!(m.physical_bits(), 32);
        assert_eq!(m.capacity_bytes(), 4 << 30);
        assert_eq!(m.num_banks(), 8);
        assert_eq!(m.num_rows(), 1 << 16);
        assert_eq!(m.num_columns(), 1 << 13);
        assert_eq!(m.row_size_bytes(), 8192);
        assert_eq!(m.pure_bank_bits(), &[13, 14, 15]);
        assert_eq!(m.shared_row_bits(), vec![16, 17, 18]);
        assert!(m.shared_column_bits().is_empty());
    }

    #[test]
    fn skylake_shared_bits() {
        let m = skylake_16g();
        assert_eq!(m.physical_bits(), 34);
        assert_eq!(m.num_banks(), 64);
        assert_eq!(m.pure_bank_bits(), &[8, 14, 15, 16, 17, 18]);
        assert_eq!(m.shared_row_bits(), vec![19, 20, 21, 22]);
        assert_eq!(m.shared_column_bits(), vec![7, 9, 12, 13]);
    }

    #[test]
    fn roundtrip_haswell() {
        let m = haswell_4g();
        for raw in [0u64, 1, 0xfff, 0x1234_5678, 0xdead_beef, (4u64 << 30) - 1] {
            let addr = PhysAddr::new(raw);
            let dram = m.to_dram(addr);
            assert_eq!(m.to_phys(dram).unwrap(), addr, "raw = {raw:#x}");
        }
    }

    #[test]
    fn roundtrip_skylake_both_directions() {
        let m = skylake_16g();
        // phys -> dram -> phys
        for raw in [0u64, 0xabc_def0, 0x3_5678_9abc, (16u64 << 30) - 4096] {
            let addr = PhysAddr::new(raw);
            assert_eq!(m.to_phys(m.to_dram(addr)).unwrap(), addr);
        }
        // dram -> phys -> dram
        for (bank, row, col) in [(0, 0, 0), (63, 100, 8000), (17, 0x7abc, 1)] {
            let d = DramAddress::new(bank, row, col);
            let addr = m.to_phys(d).unwrap();
            assert_eq!(m.to_dram(addr), d);
        }
    }

    #[test]
    fn to_phys_rejects_out_of_range() {
        let m = haswell_4g();
        assert!(m.to_phys(DramAddress::new(8, 0, 0)).is_err());
        assert!(m.to_phys(DramAddress::new(0, 1 << 16, 0)).is_err());
        assert!(m.to_phys(DramAddress::new(0, 0, 1 << 13)).is_err());
    }

    #[test]
    fn sbdr_and_same_bank() {
        let m = haswell_4g();
        let a = m.to_phys(DramAddress::new(3, 100, 0)).unwrap();
        let b = m.to_phys(DramAddress::new(3, 200, 64)).unwrap();
        let c = m.to_phys(DramAddress::new(3, 100, 64)).unwrap();
        let d = m.to_phys(DramAddress::new(4, 100, 0)).unwrap();
        assert!(m.is_sbdr(a, b));
        assert!(!m.is_sbdr(a, c));
        assert!(m.same_bank(a, c));
        assert!(!m.same_bank(a, d));
    }

    #[test]
    fn rejects_dependent_functions() {
        let err = MappingBuilder::new()
            .bank_func(&[13, 16])
            .bank_func(&[14, 17])
            .bank_func(&[13, 14, 16, 17])
            .row_bit_range(16, 31)
            .column_bit_range(0, 12)
            .build()
            .unwrap_err();
        assert_eq!(err, ModelError::LinearlyDependentFunctions);
    }

    #[test]
    fn rejects_gap_in_coverage() {
        // Bit 13 is not used anywhere -> 32-bit space cannot be covered.
        let err = MappingBuilder::new()
            .bank_func(&[14, 17])
            .bank_func(&[15, 18])
            .bank_func(&[16, 19])
            .row_bit_range(17, 31)
            .column_bit_range(0, 12)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::NotBijective { .. }));
    }

    #[test]
    fn rejects_overlapping_row_and_column_bits() {
        let err = MappingBuilder::new()
            .bank_func(&[13, 16])
            .bank_func(&[14, 17])
            .bank_func(&[15, 18])
            .row_bit_range(12, 31)
            .column_bit_range(0, 12)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::NotBijective { .. }));
    }

    #[test]
    fn rejects_empty_function() {
        let err = AddressMapping::new(
            vec![XorFunc::default()],
            (14..=31).collect(),
            (0..=12).collect(),
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::NotBijective { .. }));
    }

    #[test]
    fn equivalence_up_to_linear_combination() {
        let a = haswell_4g();
        // Replace (14,17) by (14,17)^(15,18) = (14,15,17,18): same row space.
        let b = MappingBuilder::new()
            .bank_func(&[13, 16])
            .bank_func(&[14, 15, 17, 18])
            .bank_func(&[15, 18])
            .row_bit_range(16, 31)
            .column_bit_range(0, 12)
            .build()
            .unwrap();
        assert!(a.equivalent_to(&b));
        assert!(a.same_bank_partition(&b));
        let c = skylake_16g();
        assert!(!a.equivalent_to(&c));
    }

    #[test]
    fn display_matches_table_notation() {
        let m = haswell_4g();
        let s = m.to_string();
        assert!(s.contains("(13, 16)"));
        assert!(s.contains("16~31"));
        assert!(s.contains("0~12"));
    }

    #[test]
    fn format_bit_ranges_handles_gaps_and_singletons() {
        assert_eq!(format_bit_ranges(&[]), "-");
        assert_eq!(format_bit_ranges(&[5]), "5");
        assert_eq!(format_bit_ranges(&[0, 1, 2, 3, 4, 5, 7, 8, 9]), "0~5, 7~9");
        assert_eq!(format_bit_ranges(&[1, 3, 5]), "1, 3, 5");
    }

    #[test]
    fn bank_partition_counts_are_uniform() {
        // Every bank receives exactly capacity / num_banks bytes. Check on a
        // small synthetic mapping to keep the loop cheap.
        let m = MappingBuilder::new()
            .bank_func(&[2, 4])
            .bank_func(&[3, 5])
            .row_bit_range(4, 7)
            .column_bit_range(0, 1)
            .build()
            .unwrap();
        assert_eq!(m.physical_bits(), 8);
        let mut counts = vec![0u32; m.num_banks() as usize];
        for raw in 0..m.capacity_bytes() {
            counts[m.bank_of(PhysAddr::new(raw)) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 256 / 4));
    }
}
