//! Deterministic generation of valid-by-construction machine models.
//!
//! The paper evaluates on nine fixed machines (Table II), but the
//! interesting failure surface of mapping reverse engineering lies in shapes
//! the paper never enumerated: split row-bit windows, deeper channel/rank
//! interleaving, wider XOR functions, remapped rows. [`MachineGen`] samples
//! such machines from a seed across declared axes:
//!
//! * physical address width 30–39 bits (1 GiB – 512 GiB modules);
//! * 1–2 channels and 1–2 ranks, DDR3 (8 banks/rank) or DDR4 (16);
//! * 3–6 XOR bank functions of varying span;
//! * consecutive vs. split row-bit windows and split column windows;
//! * optional XOR row remapping (an involution on the row index).
//!
//! Every sample is **valid by construction**: the bank-function set has full
//! GF(2) rank, row/column windows are disjoint, and the mapping is a
//! bijection — all re-checked by [`AddressMapping::new`] when the machine is
//! assembled, so a generator bug cannot silently produce an invalid model.
//!
//! Machines come in three [`MachineClass`]es used by the scenario-matrix
//! evaluation:
//!
//! * [`MachineClass::InScope`] — DRAMDig's knowledge assumptions hold and
//!   the pipeline is expected to recover the mapping exactly;
//! * [`MachineClass::WideFunction`] — one bank function spans more bits than
//!   Algorithm 3 enumerates (`max_func_bits`), so the pipeline must *detect*
//!   the failure and report an error rather than return a wrong mapping;
//! * [`MachineClass::RowRemap`] — the controller permutes row indices with
//!   an XOR mask. The permutation is invisible to the conflict timing
//!   channel (row identity sets are unchanged), so the pipeline recovers the
//!   linear skeleton and the evaluation reports the remap as unobservable.

use std::fmt;

use crate::mapping::AddressMapping;
use crate::parse;
use crate::spec::{DdrGeneration, DramGeometry, SystemInfo};
use crate::xor_func::XorFunc;

/// Widest function span (in bits) the DRAMDig pipeline enumerates; the
/// generator keeps in-scope machines at or below this and pushes
/// [`MachineClass::WideFunction`] machines strictly above it.
pub const MAX_IN_SCOPE_SPAN: u32 = 7;

/// A bijective XOR permutation of the row index (`row ^ mask`), modelling
/// in-DRAM row remapping. It is its own inverse and preserves row equality,
/// which is exactly why it cannot be observed through row-buffer conflicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowRemap {
    /// The XOR mask applied to every row index; always below the machine's
    /// row count, so the permutation stays within the row address space.
    pub xor_mask: u32,
}

impl RowRemap {
    /// Applies the remap (an involution: applying it twice is the identity).
    pub const fn apply(self, row: u32) -> u32 {
        row ^ self.xor_mask
    }

    /// Folds a mask onto its reflection-equivalence representative.
    ///
    /// The masks `m` and `m ^ (num_rows - 1)` differ by complementing every
    /// row bit, i.e. by the mirror `row -> num_rows - 1 - row` of the whole
    /// row line. Mirroring preserves which rows are physically adjacent, so
    /// no adjacency evidence — bit flips included — can tell the two masks
    /// apart; they describe the same physical module. This helper picks the
    /// numerically smaller of the pair so equivalent masks compare equal,
    /// and maps the all-ones mask (a pure mirror) onto `0`, i.e. "no
    /// observable remap".
    pub const fn canonical_mask(mask: u32, num_rows: u32) -> u32 {
        let reflected = mask ^ (num_rows - 1);
        if reflected < mask {
            reflected
        } else {
            mask
        }
    }
}

/// Which evaluation class a generated machine belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MachineClass {
    /// DRAMDig's knowledge assumptions hold; exact recovery is expected.
    InScope,
    /// One bank function is wider than Algorithm 3 enumerates; the pipeline
    /// must fail loudly instead of recovering a wrong mapping.
    WideFunction,
    /// Rows are remapped by an XOR mask the timing channel cannot observe;
    /// only the linear skeleton is recoverable.
    RowRemap,
}

impl MachineClass {
    /// Every class, in a stable order.
    pub const ALL: [MachineClass; 3] = [
        MachineClass::InScope,
        MachineClass::WideFunction,
        MachineClass::RowRemap,
    ];

    /// Stable identifier used by the scenario-matrix scoreboard codec.
    pub const fn as_str(self) -> &'static str {
        match self {
            MachineClass::InScope => "in-scope",
            MachineClass::WideFunction => "wide-function",
            MachineClass::RowRemap => "row-remap",
        }
    }

    /// Parses an identifier produced by [`MachineClass::as_str`].
    pub fn from_name(name: &str) -> Option<MachineClass> {
        Self::ALL.into_iter().find(|c| c.as_str() == name)
    }
}

impl fmt::Display for MachineClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One sampled machine model: system information consistent with the
/// mapping, the ground-truth mapping itself, and the optional row remap.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedMachine {
    /// Stable identifier derived from the generator seed, e.g.
    /// `g-00000000deadbeef`.
    pub label: String,
    /// System information (capacity, geometry, DDR generation) consistent
    /// with the mapping — what `dmidecode`/`decode-dimms` would report.
    pub system: SystemInfo,
    /// The ground-truth physical-address → DRAM mapping.
    mapping: AddressMapping,
    /// Optional XOR row remapping applied by the simulated controller.
    pub row_remap: Option<RowRemap>,
    /// The evaluation class the machine was generated for.
    pub class: MachineClass,
    /// Human-readable window shape, e.g. `split-rows`.
    pub shape: &'static str,
}

impl GeneratedMachine {
    /// The ground-truth mapping (without the row remap; see
    /// [`GeneratedMachine::row_remap`]).
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Widest bank-function span in bits.
    pub fn widest_span(&self) -> u32 {
        self.mapping
            .bank_funcs()
            .iter()
            .map(|f| f.len())
            .max()
            .unwrap_or(0)
    }

    /// One-line axis summary for reports, stable across runs.
    pub fn axes_summary(&self) -> String {
        format!(
            "width={} gen={} channels={} ranks={} funcs={} span={} shape={} remap={} class={}",
            self.system.address_bits(),
            match self.system.generation {
                DdrGeneration::Ddr3 => "ddr3",
                DdrGeneration::Ddr4 => "ddr4",
            },
            self.system.geometry.channels,
            self.system.geometry.ranks_per_dimm,
            self.mapping.bank_funcs().len(),
            self.widest_span(),
            self.shape,
            self.row_remap
                .map_or("none".to_string(), |r| format!("{:#x}", r.xor_mask)),
            self.class,
        )
    }

    /// Serializes the machine as `key = value` lines;
    /// [`GeneratedMachine::decode`] is the exact inverse.
    pub fn encode(&self) -> String {
        let (funcs, rows, cols) = parse::render_mapping(&self.mapping);
        format!(
            concat!(
                "label = {}\n",
                "class = {}\n",
                "shape = {}\n",
                "generation = {}\n",
                "channels = {}\n",
                "ranks = {}\n",
                "capacity_bytes = {}\n",
                "funcs = {}\n",
                "rows = {}\n",
                "cols = {}\n",
                "row_remap = {}\n",
            ),
            self.label,
            self.class,
            self.shape,
            match self.system.generation {
                DdrGeneration::Ddr3 => "ddr3",
                DdrGeneration::Ddr4 => "ddr4",
            },
            self.system.geometry.channels,
            self.system.geometry.ranks_per_dimm,
            self.system.capacity_bytes,
            funcs,
            rows,
            cols,
            self.row_remap
                .map_or("none".to_string(), |r| r.xor_mask.to_string()),
        )
    }

    /// Parses a machine written by [`GeneratedMachine::encode`], re-running
    /// the full mapping validation.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a line is malformed, a key is
    /// missing or the decoded pieces do not form a valid machine.
    pub fn decode(text: &str) -> Result<GeneratedMachine, String> {
        let mut fields = std::collections::BTreeMap::new();
        for (number, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", number + 1))?;
            fields.insert(key.trim().to_string(), value.trim().to_string());
        }
        let get = |key: &str| {
            fields
                .get(key)
                .cloned()
                .ok_or_else(|| format!("missing key `{key}`"))
        };
        let generation = match get("generation")?.as_str() {
            "ddr3" => DdrGeneration::Ddr3,
            "ddr4" => DdrGeneration::Ddr4,
            other => return Err(format!("unknown generation `{other}`")),
        };
        let parse_u64 = |key: &str, v: &str| -> Result<u64, String> {
            v.parse()
                .map_err(|_| format!("invalid `{key}` value `{v}`"))
        };
        let channels = parse_u64("channels", &get("channels")?)? as u32;
        let ranks = parse_u64("ranks", &get("ranks")?)? as u32;
        let capacity = parse_u64("capacity_bytes", &get("capacity_bytes")?)?;
        let mapping = parse::parse_mapping(&get("funcs")?, &get("rows")?, &get("cols")?)
            .map_err(|e| format!("invalid mapping: {e}"))?;
        let class_name = get("class")?;
        let class = MachineClass::from_name(&class_name)
            .ok_or_else(|| format!("unknown class `{class_name}`"))?;
        let row_remap = match get("row_remap")?.as_str() {
            "none" => None,
            value => Some(RowRemap {
                xor_mask: parse_u64("row_remap", value)? as u32,
            }),
        };
        let shape = match get("shape")?.as_str() {
            "consecutive" => "consecutive",
            "wide-tail" => "wide-tail",
            "split-columns" => "split-columns",
            "split-rows" => "split-rows",
            other => return Err(format!("unknown shape `{other}`")),
        };
        let geometry = DramGeometry::new(channels, 1, ranks, generation.banks_per_rank());
        let machine = GeneratedMachine {
            label: get("label")?,
            system: SystemInfo::new(capacity, geometry, generation),
            mapping,
            row_remap,
            class,
            shape,
        };
        machine.verify()?;
        Ok(machine)
    }

    /// Re-checks every construction invariant: the mapping is consistent
    /// with the declared geometry and capacity, the spec-derived bit counts
    /// match, and the remap stays within the row address space.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason for the first violated invariant.
    pub fn verify(&self) -> Result<(), String> {
        if self.mapping.capacity_bytes() != self.system.capacity_bytes {
            return Err(format!(
                "mapping covers {} bytes but the system reports {}",
                self.mapping.capacity_bytes(),
                self.system.capacity_bytes
            ));
        }
        let spec = self.system.spec().map_err(|e| e.to_string())?;
        if spec.bank_bits as usize != self.mapping.bank_funcs().len() {
            return Err(format!(
                "{} bank functions but the geometry implies {}",
                self.mapping.bank_funcs().len(),
                spec.bank_bits
            ));
        }
        if spec.row_bits as usize != self.mapping.row_bits().len() {
            return Err(format!(
                "{} row bits but the spec implies {}",
                self.mapping.row_bits().len(),
                spec.row_bits
            ));
        }
        if spec.column_bits as usize != self.mapping.column_bits().len() {
            return Err(format!(
                "{} column bits but the spec implies {}",
                self.mapping.column_bits().len(),
                spec.column_bits
            ));
        }
        if let Some(remap) = self.row_remap {
            if u64::from(remap.xor_mask) >= u64::from(self.mapping.num_rows()) {
                return Err(format!(
                    "row remap mask {:#x} exceeds the {} rows per bank",
                    remap.xor_mask,
                    self.mapping.num_rows()
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for GeneratedMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.label, self.axes_summary())
    }
}

/// A tiny dependency-free SplitMix64 generator: the machine generator must
/// be deterministic and cannot pull the workspace's `rand` stand-in into
/// `dram-model` (which is otherwise dependency-free).
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n` (`n > 0`).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }

    /// Draws `count` distinct values from `0..n`, ascending.
    fn distinct(&mut self, n: u64, count: usize) -> Vec<u64> {
        assert!(count as u64 <= n, "cannot draw {count} distinct from {n}");
        let mut picked = Vec::with_capacity(count);
        while picked.len() < count {
            let v = self.below(n);
            if !picked.contains(&v) {
                picked.push(v);
            }
        }
        picked.sort_unstable();
        picked
    }
}

/// Window shape of a sampled machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// Columns, pure bank bits, then one consecutive row window; every
    /// function is an isolated two-bit pair (the common Table-II shape).
    Consecutive,
    /// Like [`Shape::Consecutive`] but one function also spans several row
    /// bits (the channel/rank hash of dual-channel machines).
    WideTail,
    /// A column window with a gap; the gap bit anchors the widest function,
    /// which also covers column bits (machines No.1/2/5/6 of Table II).
    SplitColumns,
    /// The pure bank bits sit *inside* the row window, splitting it in two —
    /// a shape the paper never enumerated.
    SplitRows,
}

impl Shape {
    const fn as_str(self) -> &'static str {
        match self {
            Shape::Consecutive => "consecutive",
            Shape::WideTail => "wide-tail",
            Shape::SplitColumns => "split-columns",
            Shape::SplitRows => "split-rows",
        }
    }
}

/// Deterministic machine-model sampler. Construction is `O(address bits)`
/// and infallible: all axis combinations the sampler draws are valid by
/// construction, and the final [`AddressMapping::new`] validation would
/// catch any generator bug as a panic rather than a silently wrong model.
#[derive(Debug, Clone, Copy)]
pub struct MachineGen {
    seed: u64,
}

impl MachineGen {
    /// A generator for one seed; equal seeds generate equal machines.
    pub const fn new(seed: u64) -> Self {
        MachineGen { seed }
    }

    /// The generator seed.
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Samples the machine of the given class for this seed.
    pub fn generate(&self, class: MachineClass) -> GeneratedMachine {
        let mut rng = SplitMix64::new(
            self.seed
                ^ match class {
                    MachineClass::InScope => 0,
                    MachineClass::WideFunction => 0x57ED_E57E_D000_0001,
                    MachineClass::RowRemap => 0x0BAD_CAFE_0000_0002,
                },
        );

        // --- Geometry axes -------------------------------------------------
        // Wide-function machines keep the interleaving shallow so the pool
        // the partition walks stays small even with the 8-10 bit function.
        let deep_interleave = class != MachineClass::WideFunction;
        let generation = if rng.flag() {
            DdrGeneration::Ddr4
        } else {
            DdrGeneration::Ddr3
        };
        let channels = if deep_interleave && rng.flag() { 2 } else { 1 };
        let ranks = if deep_interleave && rng.flag() { 2 } else { 1 };
        let geometry = DramGeometry::new(channels, 1, ranks, generation.banks_per_rank());
        let n = geometry.bank_bits() as usize; // 3..=6 bank functions

        // --- Width axis: 30..=39 physical address bits ---------------------
        let width = 30 + rng.below(10) as u8;
        let column_count = generation.typical_column_bits() as usize; // 13
        let row_count = width as usize - column_count - n;

        // --- Window shape axis ---------------------------------------------
        let shape = match class {
            MachineClass::WideFunction => Shape::WideTail,
            _ => match rng.below(4) {
                0 => Shape::Consecutive,
                1 => Shape::WideTail,
                // Split columns need a second pure bit above the window.
                2 if n >= 2 => Shape::SplitColumns,
                2 => Shape::Consecutive,
                _ => Shape::SplitRows,
            },
        };

        // --- Bit layout ----------------------------------------------------
        // Columns occupy the low bits (optionally with a gap `g` that
        // becomes a pure bank bit), pure bank bits follow (optionally pushed
        // inside the row region), rows fill the rest.
        let mut column_bits: Vec<u8> = Vec::with_capacity(column_count);
        let mut pure_bits: Vec<u8> = Vec::with_capacity(n);
        let gap = match shape {
            Shape::SplitColumns => {
                let g = 6 + rng.below(2) as u8; // 6 or 7, as on real machines
                column_bits.extend((0..=13u8).filter(|&b| b != g));
                pure_bits.push(g);
                Some(g)
            }
            _ => {
                column_bits.extend(0..13u8);
                None
            }
        };
        let region_base = *column_bits.last().expect("13 column bits") + 1;
        let remaining_pure = n - pure_bits.len();
        let row_bits: Vec<u8> = match shape {
            Shape::SplitRows => {
                // `low_rows` rows below the pure chunk, the rest above it.
                let max_low = (row_count - remaining_pure.max(2) - 2).clamp(1, 4);
                let low_rows = 1 + rng.below(max_low as u64) as u8;
                pure_bits
                    .extend(region_base + low_rows..region_base + low_rows + remaining_pure as u8);
                let upper_base = region_base + low_rows + remaining_pure as u8;
                (region_base..region_base + low_rows)
                    .chain(upper_base..width)
                    .collect()
            }
            _ => {
                pure_bits.extend(region_base..region_base + remaining_pure as u8);
                (region_base + remaining_pure as u8..width).collect()
            }
        };
        debug_assert_eq!(row_bits.len(), row_count);
        debug_assert_eq!(pure_bits.len(), n);

        // Row partners for functions are drawn from the *lowest* rows above
        // the pure bits (the empirically observed shape, and what keeps the
        // pool the partition walks small). `eligible` rows are those above
        // every pure bit.
        let highest_pure = *pure_bits.last().expect("at least 3 pure bits");
        let eligible: Vec<u8> = row_bits
            .iter()
            .copied()
            .filter(|&b| b > highest_pure)
            .collect();

        // --- Function shape axis -------------------------------------------
        let wide_span = match (class, shape) {
            (MachineClass::WideFunction, _) => 8 + rng.below(3) as u32, // 8..=10
            (_, Shape::WideTail) => 3 + rng.below(5) as u32,            // 3..=7
            (_, Shape::SplitColumns) => 4 + rng.below(2) as u32,        // 4..=5
            _ => 0,
        };
        let wide_rows = match shape {
            Shape::WideTail => wide_span.saturating_sub(1) as usize,
            Shape::SplitColumns => 1 + rng.below(2) as usize, // 1..=2 rows
            _ => 0,
        };
        let wide_cols = if shape == Shape::SplitColumns {
            wide_span as usize - 1 - wide_rows
        } else {
            0
        };
        let isolated = n - usize::from(wide_span > 0);

        // Distinct partner rows: the wide function's first, then one per
        // isolated pair, all from a small low-row window (one spare row of
        // jitter). Keeping partners low keeps the bank-bit span — and with
        // it the pool Algorithm 1 walks — small, as on the real machines.
        let window = (wide_rows + isolated + 1).min(eligible.len());
        let picked = rng.distinct(window as u64, wide_rows + isolated);
        let partners: Vec<u8> = picked.iter().map(|&i| eligible[i as usize]).collect();
        let (wide_partners, pair_partners) = partners.split_at(wide_rows);

        let mut funcs: Vec<XorFunc> = Vec::with_capacity(n);
        let mut pair_pure: Vec<u8> = pure_bits.clone();
        if wide_span > 0 {
            // The wide function is anchored on the gap bit (split columns)
            // or the lowest pure bit; either way its lowest bit is not a
            // column bit, respecting the paper's empirical observation.
            let anchor = gap.unwrap_or(pure_bits[0]);
            pair_pure.retain(|&b| b != anchor);
            let mut bits = vec![anchor];
            if wide_cols > 0 {
                // Column bits strictly above the gap keep the anchor lowest.
                let above: Vec<u8> = column_bits
                    .iter()
                    .copied()
                    .filter(|&c| c > anchor)
                    .collect();
                for i in rng.distinct(above.len() as u64, wide_cols) {
                    bits.push(above[i as usize]);
                }
            }
            bits.extend_from_slice(wide_partners);
            funcs.push(XorFunc::from_bits(&bits));
        }
        for (pure, partner) in pair_pure.iter().zip(pair_partners) {
            funcs.push(XorFunc::from_bits(&[*pure, *partner]));
        }

        // --- Optional row remap axis ---------------------------------------
        let row_remap = match class {
            MachineClass::RowRemap => Some(RowRemap {
                xor_mask: 1 + rng.below((1u64 << row_count) - 1) as u32,
            }),
            _ => None,
        };

        let mapping = AddressMapping::new(funcs, row_bits, column_bits)
            .expect("generated machines are valid by construction");
        let machine = GeneratedMachine {
            label: format!("g-{:016x}", self.seed),
            system: SystemInfo::new(1u64 << width, geometry, generation),
            mapping,
            row_remap,
            class,
            shape: shape.as_str(),
        };
        machine
            .verify()
            .expect("generated machines satisfy every invariant");
        machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf2;

    fn sample(seed: u64, class: MachineClass) -> GeneratedMachine {
        MachineGen::new(seed).generate(class)
    }

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX] {
            for class in MachineClass::ALL {
                assert_eq!(sample(seed, class), sample(seed, class));
            }
        }
        assert_ne!(
            sample(1, MachineClass::InScope),
            sample(2, MachineClass::InScope)
        );
    }

    #[test]
    fn axes_stay_in_their_declared_ranges() {
        for seed in 0..200u64 {
            let m = sample(seed, MachineClass::InScope);
            let width = m.system.address_bits();
            assert!((30..=39).contains(&width), "{m}");
            assert!((1..=2).contains(&m.system.geometry.channels), "{m}");
            assert!((1..=2).contains(&m.system.geometry.ranks_per_dimm), "{m}");
            let funcs = m.mapping().bank_funcs().len();
            assert!((3..=6).contains(&funcs), "{m}");
            assert!(m.widest_span() <= MAX_IN_SCOPE_SPAN, "{m}");
            assert!(m.row_remap.is_none(), "{m}");
        }
    }

    #[test]
    fn sampled_function_sets_have_full_rank() {
        for seed in 0..200u64 {
            for class in MachineClass::ALL {
                let m = sample(seed, class);
                assert!(gf2::functions_independent(m.mapping().bank_funcs()), "{m}");
            }
        }
    }

    #[test]
    fn wide_function_machines_exceed_the_enumerable_span() {
        for seed in 0..100u64 {
            let m = sample(seed, MachineClass::WideFunction);
            assert!(m.widest_span() > MAX_IN_SCOPE_SPAN, "{m}");
            assert!(m.widest_span() <= 10, "{m}");
            // The wide bits are disjoint from every two-bit function, so no
            // GF(2) combination of functions has an enumerable span either —
            // that is what makes detection *provably* fail loudly.
            let widest = m
                .mapping()
                .bank_funcs()
                .iter()
                .max_by_key(|f| f.len())
                .copied()
                .unwrap();
            for f in m.mapping().bank_funcs() {
                if *f != widest {
                    assert_eq!(f.mask() & widest.mask(), 0, "{m}");
                }
            }
        }
    }

    #[test]
    fn row_remap_machines_carry_an_involution_within_range() {
        for seed in 0..100u64 {
            let m = sample(seed, MachineClass::RowRemap);
            let remap = m.row_remap.expect("class carries a remap");
            assert!(remap.xor_mask > 0);
            assert!(remap.xor_mask < m.mapping().num_rows());
            for row in [0u32, 1, 17, m.mapping().num_rows() - 1] {
                assert_eq!(remap.apply(remap.apply(row)), row);
            }
        }
    }

    #[test]
    fn canonical_mask_folds_reflections_together() {
        let rows = 1u32 << 16;
        for mask in [1u32, 0x4a31, 0x8001, rows - 2, rows - 1] {
            let mirrored = mask ^ (rows - 1);
            let canon = RowRemap::canonical_mask(mask, rows);
            assert_eq!(canon, RowRemap::canonical_mask(mirrored, rows));
            assert!(canon == mask || canon == mirrored);
            assert_eq!(canon, canon.min(mirrored.min(mask)));
        }
        // A pure mirror of the row line is not an observable remap at all.
        assert_eq!(RowRemap::canonical_mask(rows - 1, rows), 0);
        assert_eq!(RowRemap::canonical_mask(0, rows), 0);
    }

    #[test]
    fn every_shape_is_eventually_sampled() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..200u64 {
            seen.insert(sample(seed, MachineClass::InScope).shape);
        }
        for shape in ["consecutive", "wide-tail", "split-columns", "split-rows"] {
            assert!(seen.contains(shape), "shape `{shape}` never sampled");
        }
    }

    #[test]
    fn split_row_machines_have_a_gap_in_the_row_window() {
        let m = (0..200u64)
            .map(|s| sample(s, MachineClass::InScope))
            .find(|m| m.shape == "split-rows")
            .expect("split-rows sampled within 200 seeds");
        let rows = m.mapping().row_bits();
        let contiguous = rows.windows(2).all(|w| w[1] == w[0] + 1);
        assert!(!contiguous, "{m}");
        assert!(
            crate::mapping::format_bit_ranges(rows).contains(", "),
            "{m}"
        );
    }

    #[test]
    fn machines_round_trip_through_the_text_codec() {
        for seed in 0..50u64 {
            for class in MachineClass::ALL {
                let m = sample(seed, class);
                let decoded = GeneratedMachine::decode(&m.encode()).unwrap();
                assert_eq!(decoded, m, "seed {seed} class {class}");
            }
        }
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        let m = sample(3, MachineClass::InScope);
        assert!(GeneratedMachine::decode("").is_err());
        assert!(GeneratedMachine::decode("label x\n").is_err());
        assert!(GeneratedMachine::decode(&m.encode().replace("ddr", "xdr")).is_err());
        assert!(
            GeneratedMachine::decode(&m.encode().replace("class = in-scope", "class = x")).is_err()
        );
        // An inconsistent capacity fails verification, not just parsing.
        let broken = m.encode().replace(
            &format!("capacity_bytes = {}", m.system.capacity_bytes),
            "capacity_bytes = 4096",
        );
        assert!(GeneratedMachine::decode(&broken).is_err());
    }

    #[test]
    fn class_names_round_trip() {
        for class in MachineClass::ALL {
            assert_eq!(MachineClass::from_name(class.as_str()), Some(class));
        }
        assert_eq!(MachineClass::from_name("magic"), None);
    }

    #[test]
    fn spec_knowledge_is_consistent_for_every_sample() {
        for seed in 0..100u64 {
            for class in MachineClass::ALL {
                let m = sample(seed, class);
                let spec = m.system.spec().unwrap();
                assert_eq!(spec.row_bits as usize, m.mapping().row_bits().len());
                assert_eq!(spec.column_bits as usize, m.mapping().column_bits().len());
                assert_eq!(spec.bank_bits as usize, m.mapping().bank_funcs().len());
            }
        }
    }
}
