//! Bit-manipulation helpers shared by the reverse-engineering algorithms.

/// Returns the positions (LSB-first) of all set bits in `mask`.
///
/// ```
/// assert_eq!(dram_model::bits::bit_positions(0b1010_0010), vec![1, 5, 7]);
/// ```
pub fn bit_positions(mask: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(mask.count_ones() as usize);
    let mut m = mask;
    while m != 0 {
        let b = m.trailing_zeros() as u8;
        out.push(b);
        m &= m - 1;
    }
    out
}

/// Builds a bit mask with the given bit positions set.
///
/// ```
/// assert_eq!(dram_model::bits::mask_of(&[1, 5, 7]), 0b1010_0010);
/// ```
pub fn mask_of(bits: &[u8]) -> u64 {
    bits.iter().fold(0u64, |m, &b| m | (1u64 << b))
}

/// Gathers the bits of `value` at the given positions (LSB-first order) into a
/// dense integer: position `positions[0]` becomes bit 0 of the result.
///
/// ```
/// // value = 0b1101, positions 0 and 3 -> bits 1 and 1 -> 0b11
/// assert_eq!(dram_model::bits::gather_bits(0b1101, &[0, 3]), 0b11);
/// ```
pub fn gather_bits(value: u64, positions: &[u8]) -> u64 {
    let mut out = 0u64;
    for (i, &p) in positions.iter().enumerate() {
        if (value >> p) & 1 == 1 {
            out |= 1 << i;
        }
    }
    out
}

/// Scatters the low bits of `value` to the given positions: bit `i` of
/// `value` is placed at `positions[i]`. Inverse of [`gather_bits`].
///
/// ```
/// assert_eq!(dram_model::bits::scatter_bits(0b11, &[0, 3]), 0b1001);
/// ```
pub fn scatter_bits(value: u64, positions: &[u8]) -> u64 {
    let mut out = 0u64;
    for (i, &p) in positions.iter().enumerate() {
        if (value >> i) & 1 == 1 {
            out |= 1 << p;
        }
    }
    out
}

/// Iterator over all `k`-combinations of the items of a slice.
///
/// Used by the bank-function search (Algorithm 3) to enumerate candidate
/// XOR masks built from the detected bank bits, ordered by combination size.
#[derive(Debug, Clone)]
pub struct Combinations<'a, T> {
    items: &'a [T],
    indices: Vec<usize>,
    first: bool,
    done: bool,
}

impl<'a, T: Copy> Combinations<'a, T> {
    /// Creates an iterator over all `k`-element combinations of `items`.
    pub fn new(items: &'a [T], k: usize) -> Self {
        let done = k > items.len();
        Combinations {
            items,
            indices: (0..k).collect(),
            first: true,
            done,
        }
    }
}

impl<'a, T: Copy> Iterator for Combinations<'a, T> {
    type Item = Vec<T>;

    fn next(&mut self) -> Option<Vec<T>> {
        if self.done {
            return None;
        }
        if self.first {
            self.first = false;
            return Some(self.indices.iter().map(|&i| self.items[i]).collect());
        }
        let k = self.indices.len();
        let n = self.items.len();
        if k == 0 {
            self.done = true;
            return None;
        }
        // Advance the combination indices in lexicographic order.
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                return None;
            }
            i -= 1;
            if self.indices[i] != i + n - k {
                break;
            }
        }
        self.indices[i] += 1;
        for j in i + 1..k {
            self.indices[j] = self.indices[j - 1] + 1;
        }
        Some(self.indices.iter().map(|&i| self.items[i]).collect())
    }
}

/// Convenience wrapper returning all `k`-combinations of `items` as vectors.
pub fn combinations<T: Copy>(items: &[T], k: usize) -> Vec<Vec<T>> {
    Combinations::new(items, k).collect()
}

/// Enumerates candidate XOR masks from `bits`, grouped by combination size
/// from 1 up to `max_size` bits, in the order used by Algorithm 3 of the
/// paper (`gen_xor_masks`).
pub fn gen_xor_masks(bits: &[u8], max_size: usize) -> Vec<u64> {
    let mut masks = Vec::new();
    for k in 1..=max_size.min(bits.len()) {
        for combo in Combinations::new(bits, k) {
            masks.push(mask_of(&combo));
        }
    }
    masks
}

/// Orders XOR masks the way [`gen_xor_masks`] emits them: fewer
/// participating bits first, ties broken by the lexicographic order of the
/// ascending bit-position sequences. Sorting an unordered candidate set
/// with this comparator reproduces the enumeration order exactly.
pub fn cmp_masks_enumeration_order(a: u64, b: u64) -> std::cmp::Ordering {
    // Lexicographic order on the ascending bit-position sequences is the
    // *descending* numeric order of the bit-reversed masks: the first
    // position where the sequences differ is the highest differing bit of
    // the reversals, and the smaller position is the one that is set there.
    a.count_ones()
        .cmp(&b.count_ones())
        .then_with(|| b.reverse_bits().cmp(&a.reverse_bits()))
}

/// Binomial coefficient `n choose k` (saturating; used for cost estimation).
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u64 = 1;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_and_mask_roundtrip() {
        let mask = 0b1001_0110_0000;
        let pos = bit_positions(mask);
        assert_eq!(pos, vec![5, 6, 8, 11]);
        assert_eq!(mask_of(&pos), mask);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let positions = [2u8, 5, 9, 17];
        for value in 0..16u64 {
            let scattered = scatter_bits(value, &positions);
            assert_eq!(gather_bits(scattered, &positions), value);
        }
    }

    #[test]
    fn gather_ignores_unlisted_bits() {
        assert_eq!(gather_bits(u64::MAX, &[3, 60]), 0b11);
    }

    #[test]
    fn combinations_counts_match_binomial() {
        let items: Vec<u8> = (0..6).collect();
        for k in 0..=6usize {
            let combos = combinations(&items, k);
            assert_eq!(combos.len() as u64, binomial(6, k as u64), "k = {k}");
            // all distinct
            let mut sorted = combos.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), combos.len());
        }
    }

    #[test]
    fn combinations_of_more_than_available_is_empty() {
        let items = [1u8, 2, 3];
        assert!(combinations(&items, 4).is_empty());
    }

    #[test]
    fn combinations_zero_k_yields_single_empty() {
        let items = [1u8, 2, 3];
        let combos = combinations(&items, 0);
        assert_eq!(combos, vec![Vec::<u8>::new()]);
    }

    #[test]
    fn gen_xor_masks_orders_by_size() {
        let masks = gen_xor_masks(&[1, 2, 3], 3);
        // 3 singles, 3 pairs, 1 triple
        assert_eq!(masks.len(), 7);
        assert_eq!(masks[0].count_ones(), 1);
        assert_eq!(masks[3].count_ones(), 2);
        assert_eq!(masks[6].count_ones(), 3);
    }

    #[test]
    fn enumeration_order_comparator_reproduces_gen_xor_masks() {
        for bits_set in [
            vec![1u8, 2, 3, 4],
            vec![0, 5, 9, 13, 21],
            vec![6, 13, 14, 15, 16, 17],
        ] {
            for max in 1..=bits_set.len() {
                let reference = gen_xor_masks(&bits_set, max);
                let mut shuffled: Vec<u64> = reference.clone();
                shuffled.reverse();
                shuffled.sort_unstable_by(|&a, &b| cmp_masks_enumeration_order(a, b));
                assert_eq!(shuffled, reference, "bits {bits_set:?} max {max}");
            }
        }
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(10, 1), 10);
        assert_eq!(binomial(10, 5), 252);
        assert_eq!(binomial(5, 7), 0);
    }
}
