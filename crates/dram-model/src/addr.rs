//! Physical and DRAM address types.

use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Sub};

/// A physical (machine) address.
///
/// The reverse-engineering tools in this workspace reason exclusively about
/// physical addresses; translating from virtual addresses (via
/// `/proc/self/pagemap` or hugepages) is the job of the probe layer.
///
/// ```
/// use dram_model::PhysAddr;
/// let a = PhysAddr::new(0b1010_0000);
/// assert!(a.bit(5));
/// assert!(!a.bit(6));
/// assert_eq!(a.with_bit_flipped(6).raw(), 0b1110_0000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from its raw integer value.
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Returns the raw integer value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` if bit `bit` is set.
    pub const fn bit(self, bit: u8) -> bool {
        (self.0 >> bit) & 1 == 1
    }

    /// Returns a copy with bit `bit` set to `value`.
    pub const fn with_bit(self, bit: u8, value: bool) -> Self {
        let mask = 1u64 << bit;
        if value {
            PhysAddr(self.0 | mask)
        } else {
            PhysAddr(self.0 & !mask)
        }
    }

    /// Returns a copy with bit `bit` flipped.
    pub const fn with_bit_flipped(self, bit: u8) -> Self {
        PhysAddr(self.0 ^ (1u64 << bit))
    }

    /// Returns the 4 KiB page frame number of this address.
    pub const fn page_frame(self) -> u64 {
        self.0 >> crate::PAGE_SHIFT
    }

    /// Returns the offset of this address within its 4 KiB page.
    pub const fn page_offset(self) -> u64 {
        self.0 & (crate::PAGE_SIZE - 1)
    }

    /// Returns the address of the first byte of the page containing `self`.
    pub const fn page_base(self) -> Self {
        PhysAddr(self.0 & !(crate::PAGE_SIZE - 1))
    }

    /// Parity (XOR of all bits) of `self & mask`.
    ///
    /// This is the core operation used when evaluating bank address
    /// functions.
    pub const fn masked_parity(self, mask: u64) -> bool {
        (self.0 & mask).count_ones() % 2 == 1
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        PhysAddr(raw)
    }
}

impl From<PhysAddr> for u64 {
    fn from(addr: PhysAddr) -> Self {
        addr.0
    }
}

impl Add<u64> for PhysAddr {
    type Output = PhysAddr;
    fn add(self, rhs: u64) -> PhysAddr {
        PhysAddr(self.0 + rhs)
    }
}

impl Sub<u64> for PhysAddr {
    type Output = PhysAddr;
    fn sub(self, rhs: u64) -> PhysAddr {
        PhysAddr(self.0 - rhs)
    }
}

impl BitAnd<u64> for PhysAddr {
    type Output = PhysAddr;
    fn bitand(self, rhs: u64) -> PhysAddr {
        PhysAddr(self.0 & rhs)
    }
}

impl BitOr<u64> for PhysAddr {
    type Output = PhysAddr;
    fn bitor(self, rhs: u64) -> PhysAddr {
        PhysAddr(self.0 | rhs)
    }
}

impl BitXor<u64> for PhysAddr {
    type Output = PhysAddr;
    fn bitxor(self, rhs: u64) -> PhysAddr {
        PhysAddr(self.0 ^ rhs)
    }
}

/// A fully decoded DRAM address: the 3-tuple of the paper (bank, row, column),
/// where "bank" folds in channel, DIMM and rank as in Section II-A.
///
/// ```
/// use dram_model::DramAddress;
/// let d = DramAddress::new(3, 0x1f2, 0x40);
/// assert_eq!(d.bank, 3);
/// assert_eq!(d.row, 0x1f2);
/// assert_eq!(d.column, 0x40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DramAddress {
    /// Flat bank index (channel, DIMM, rank and bank folded together).
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// Column (byte) index within the row.
    pub column: u32,
}

impl DramAddress {
    /// Creates a DRAM address from its components.
    pub const fn new(bank: u32, row: u32, column: u32) -> Self {
        DramAddress { bank, row, column }
    }

    /// Returns `true` when `self` and `other` lie in the same bank.
    pub const fn same_bank(&self, other: &DramAddress) -> bool {
        self.bank == other.bank
    }

    /// Returns `true` when `self` and `other` lie in the same bank but in
    /// different rows — the "SBDR" condition that produces a row-buffer
    /// conflict and therefore a measurably higher access latency.
    pub const fn is_sbdr_with(&self, other: &DramAddress) -> bool {
        self.bank == other.bank && self.row != other.row
    }

    /// Returns `true` when `self` and `other` are in the same bank and their
    /// rows are exactly `distance` apart (used to select double-sided
    /// rowhammer aggressors with `distance == 2` around a victim).
    pub const fn rows_apart(&self, other: &DramAddress, distance: u32) -> bool {
        self.bank == other.bank && self.row.abs_diff(other.row) == distance
    }
}

impl fmt::Display for DramAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bank {} row {:#x} col {:#x}",
            self.bank, self.row, self.column
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_get_set_flip_roundtrip() {
        let a = PhysAddr::new(0);
        let b = a.with_bit(13, true);
        assert!(b.bit(13));
        assert!(!b.bit(12));
        assert_eq!(b.with_bit(13, false), a);
        assert_eq!(b.with_bit_flipped(13), a);
    }

    #[test]
    fn page_helpers() {
        let a = PhysAddr::new(0x12345);
        assert_eq!(a.page_frame(), 0x12);
        assert_eq!(a.page_offset(), 0x345);
        assert_eq!(a.page_base(), PhysAddr::new(0x12000));
    }

    #[test]
    fn masked_parity_counts_bits_under_mask() {
        let a = PhysAddr::new(0b1011_0100);
        assert!(a.masked_parity(0b0001_0000)); // one bit set
        assert!(!a.masked_parity(0b0011_0000)); // two bits set
        assert!(!a.masked_parity(0b0000_1000)); // zero bits set
        assert!(!a.masked_parity(0b1011_0100)); // four bits set
    }

    #[test]
    fn arithmetic_and_bit_ops() {
        let a = PhysAddr::new(0x1000);
        assert_eq!((a + 0x234).raw(), 0x1234);
        assert_eq!((a - 0x800).raw(), 0x800);
        assert_eq!((a | 0xff).raw(), 0x10ff);
        assert_eq!((a & 0xff00).raw(), 0x1000);
        assert_eq!((a ^ 0x1001).raw(), 0x1);
    }

    #[test]
    fn dram_address_predicates() {
        let a = DramAddress::new(2, 100, 0);
        let same_row = DramAddress::new(2, 100, 64);
        let other_row = DramAddress::new(2, 102, 0);
        let other_bank = DramAddress::new(3, 100, 0);
        assert!(a.same_bank(&same_row));
        assert!(!a.is_sbdr_with(&same_row));
        assert!(a.is_sbdr_with(&other_row));
        assert!(!a.is_sbdr_with(&other_bank));
        assert!(a.rows_apart(&other_row, 2));
        assert!(!a.rows_apart(&other_bank, 2));
    }

    #[test]
    fn display_formats() {
        let a = PhysAddr::new(255);
        assert_eq!(format!("{a}"), "0xff");
        assert_eq!(format!("{a:x}"), "ff");
        assert_eq!(format!("{a:X}"), "FF");
        assert_eq!(format!("{a:b}"), "11111111");
        let d = DramAddress::new(1, 2, 3);
        assert!(format!("{d}").contains("bank 1"));
    }

    #[test]
    fn conversions() {
        let a: PhysAddr = 42u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 42);
    }
}
