//! Dense linear algebra over GF(2).
//!
//! Bank address functions are linear forms over GF(2) of the physical address
//! bits, so questions such as "is this candidate function redundant?" or "do
//! these `log2(#banks)` functions actually number all piles distinctly?"
//! reduce to rank computations over GF(2). Rows are stored as `u64` bit
//! masks, which comfortably covers physical addresses up to 64 bits.

use crate::XorFunc;

/// A matrix over GF(2) whose rows are stored as 64-bit masks.
///
/// ```
/// use dram_model::gf2::Gf2Matrix;
/// let m = Gf2Matrix::from_rows(vec![0b011, 0b101, 0b110]);
/// // the third row is the XOR of the first two
/// assert_eq!(m.rank(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Gf2Matrix {
    rows: Vec<u64>,
}

impl Gf2Matrix {
    /// Creates an empty matrix with no rows.
    pub fn new() -> Self {
        Gf2Matrix { rows: Vec::new() }
    }

    /// Creates a matrix from row bit masks.
    pub fn from_rows(rows: Vec<u64>) -> Self {
        Gf2Matrix { rows }
    }

    /// Creates a matrix whose rows are the masks of the given functions.
    pub fn from_funcs(funcs: &[XorFunc]) -> Self {
        Gf2Matrix {
            rows: funcs.iter().map(|f| f.mask()).collect(),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Returns the rows of the matrix.
    pub fn rows(&self) -> &[u64] {
        &self.rows
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: u64) {
        self.rows.push(row);
    }

    /// Computes the rank of the matrix by Gaussian elimination.
    pub fn rank(&self) -> usize {
        let mut rows = self.rows.clone();
        rank_in_place(&mut rows)
    }

    /// Returns a row-echelon basis (pivot rows only) of the row space.
    pub fn row_basis(&self) -> Vec<u64> {
        let mut basis: Vec<u64> = Vec::new();
        for &row in &self.rows {
            let reduced = reduce_against(row, &basis);
            if reduced != 0 {
                basis.push(reduced);
                basis.sort_unstable_by(|a, b| b.cmp(a));
            }
        }
        basis
    }

    /// Returns `true` if `candidate` lies in the row space of the matrix,
    /// i.e. it is a XOR (linear combination) of existing rows.
    pub fn spans(&self, candidate: u64) -> bool {
        let basis = self.row_basis();
        reduce_against(candidate, &basis) == 0
    }
}

/// Reduces `value` against a set of basis rows (each used by its leading bit).
fn reduce_against(mut value: u64, basis: &[u64]) -> u64 {
    for &b in basis {
        if b == 0 {
            continue;
        }
        let lead = 63 - b.leading_zeros();
        if value >> lead & 1 == 1 {
            value ^= b;
        }
    }
    value
}

/// Computes the rank of a set of row masks, destroying them in the process.
fn rank_in_place(rows: &mut [u64]) -> usize {
    let mut rank = 0;
    for bit in (0..64).rev() {
        // Find a pivot row with this leading bit.
        let mut pivot = None;
        for (i, &row) in rows.iter().enumerate().skip(rank) {
            if (row >> bit) & 1 == 1 {
                pivot = Some(i);
                break;
            }
        }
        let Some(p) = pivot else { continue };
        rows.swap(rank, p);
        let pivot_row = rows[rank];
        for (i, row) in rows.iter_mut().enumerate() {
            if i != rank && (*row >> bit) & 1 == 1 {
                *row ^= pivot_row;
            }
        }
        rank += 1;
        if rank == rows.len() {
            break;
        }
    }
    rank
}

/// Returns `true` if the given functions are linearly independent over GF(2).
pub fn functions_independent(funcs: &[XorFunc]) -> bool {
    Gf2Matrix::from_funcs(funcs).rank() == funcs.len()
}

/// Returns `true` if `candidate` is a linear combination (XOR) of `funcs`.
pub fn is_linear_combination(candidate: XorFunc, funcs: &[XorFunc]) -> bool {
    Gf2Matrix::from_funcs(funcs).spans(candidate.mask())
}

/// Removes functions that are linear combinations of *higher-priority*
/// functions, where priority is "fewer participating bits first" as in
/// Algorithm 3 (`prioritize` + `remove_redundant`).
///
/// The surviving set is linearly independent and every removed function is a
/// XOR of surviving ones.
pub fn remove_redundant(funcs: &[XorFunc]) -> Vec<XorFunc> {
    let mut sorted: Vec<XorFunc> = funcs.to_vec();
    crate::xor_func::canonical_order(&mut sorted);
    let mut kept: Vec<XorFunc> = Vec::new();
    for f in sorted {
        if f.is_empty() {
            continue;
        }
        if !is_linear_combination(f, &kept) {
            kept.push(f);
        }
    }
    kept
}

/// Solves the square GF(2) system `A x = b` where row `i` of `a_rows` holds
/// the coefficients of equation `i` over `n` unknowns (bit `j` of the row is
/// the coefficient of unknown `j`) and bit `i` of `b` is the right-hand side.
///
/// Returns `None` when the system is singular.
pub fn solve_square(a_rows: &[u64], b: u64, n: usize) -> Option<u64> {
    assert!(a_rows.len() == n, "system must be square");
    assert!(n <= 64, "at most 64 unknowns supported");
    // Augment: keep rhs bit alongside each row.
    let mut rows: Vec<(u64, bool)> = a_rows
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, (b >> i) & 1 == 1))
        .collect();
    let mut pivot_of_col: Vec<Option<usize>> = vec![None; n];
    let mut used = vec![false; n];
    for (col, slot) in pivot_of_col.iter_mut().enumerate() {
        // Find an unused row with a 1 in this column.
        let pivot = (0..n).find(|&r| !used[r] && (rows[r].0 >> col) & 1 == 1)?;
        used[pivot] = true;
        *slot = Some(pivot);
        let (prow, pb) = rows[pivot];
        for (r, row) in rows.iter_mut().enumerate() {
            if r != pivot && (row.0 >> col) & 1 == 1 {
                row.0 ^= prow;
                row.1 ^= pb;
            }
        }
    }
    // After full elimination every pivot row has exactly one column left.
    let mut x = 0u64;
    for (col, pivot) in pivot_of_col.iter().enumerate() {
        let p = (*pivot)?;
        if rows[p].1 {
            x |= 1 << col;
        }
    }
    Some(x)
}

/// Solves the (possibly non-square, possibly under-determined) GF(2) system
/// `A x = b` with `n` unknowns and `a_rows.len()` equations, returning *any*
/// solution with free variables set to zero, or `None` when the system is
/// inconsistent.
pub fn solve_any(a_rows: &[u64], b: u64, n: usize) -> Option<u64> {
    assert!(n <= 64, "at most 64 unknowns supported");
    let m = a_rows.len();
    let mut rows: Vec<(u64, bool)> = a_rows
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, (b >> i) & 1 == 1))
        .collect();
    let mut pivot_col_of_row: Vec<usize> = Vec::with_capacity(m);
    let mut next_row = 0usize;
    for col in 0..n {
        let Some(p) = (next_row..m).find(|&i| (rows[i].0 >> col) & 1 == 1) else {
            continue;
        };
        rows.swap(next_row, p);
        let (prow, pb) = rows[next_row];
        for (i, row) in rows.iter_mut().enumerate() {
            if i != next_row && (row.0 >> col) & 1 == 1 {
                row.0 ^= prow;
                row.1 ^= pb;
            }
        }
        pivot_col_of_row.push(col);
        next_row += 1;
        if next_row == m {
            break;
        }
    }
    // Rows without a pivot are all-zero; a non-zero right-hand side there
    // makes the system inconsistent.
    if rows[next_row..]
        .iter()
        .any(|&(coeff, rhs)| coeff == 0 && rhs)
    {
        return None;
    }
    let mut x = 0u64;
    for (i, &col) in pivot_col_of_row.iter().enumerate() {
        if rows[i].1 {
            x |= 1 << col;
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_any_underdetermined_system() {
        // One equation, three unknowns: x0 ^ x2 = 1.
        let x = solve_any(&[0b101], 0b1, 3).unwrap();
        assert_eq!((x & 0b101).count_ones() % 2, 1);
        // Inconsistent: 0 = 1.
        assert!(solve_any(&[0b000], 0b1, 3).is_none());
        // Consistent homogeneous system.
        assert_eq!(solve_any(&[0b11, 0b11], 0b00, 2), Some(0));
        // Redundant but consistent equations.
        let x = solve_any(&[0b11, 0b11], 0b11, 2).unwrap();
        assert_eq!((x & 0b11).count_ones() % 2, 1);
    }

    #[test]
    fn solve_any_matches_solve_square_on_square_systems() {
        let mats = [vec![0b011u64, 0b010, 0b100], vec![0b111, 0b011, 0b001]];
        for a in &mats {
            for b in 0..8u64 {
                assert_eq!(solve_any(a, b, 3), solve_square(a, b, 3));
            }
        }
    }

    #[test]
    fn rank_of_independent_rows() {
        let m = Gf2Matrix::from_rows(vec![0b001, 0b010, 0b100]);
        assert_eq!(m.rank(), 3);
    }

    #[test]
    fn rank_detects_dependence() {
        // row3 = row1 ^ row2
        let m = Gf2Matrix::from_rows(vec![0b0110, 0b1010, 0b1100]);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn rank_of_empty_and_zero() {
        assert_eq!(Gf2Matrix::new().rank(), 0);
        assert_eq!(Gf2Matrix::from_rows(vec![0, 0]).rank(), 0);
    }

    #[test]
    fn spans_detects_linear_combination() {
        let m = Gf2Matrix::from_rows(vec![0b0011, 0b0101]);
        assert!(m.spans(0b0110)); // xor of the two rows
        assert!(m.spans(0b0011));
        assert!(m.spans(0)); // zero vector is always spanned
        assert!(!m.spans(0b1000));
    }

    #[test]
    fn paper_example_redundancy() {
        // The paper's example: (14,18), (15,19) have priority over
        // (14,15,18,19) which is their combination and must be removed.
        let funcs = vec![
            XorFunc::from_bits(&[14, 15, 18, 19]),
            XorFunc::from_bits(&[14, 18]),
            XorFunc::from_bits(&[15, 19]),
        ];
        let kept = remove_redundant(&funcs);
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(&XorFunc::from_bits(&[14, 18])));
        assert!(kept.contains(&XorFunc::from_bits(&[15, 19])));
    }

    #[test]
    fn remove_redundant_keeps_independent_sets_intact() {
        let funcs = vec![
            XorFunc::from_bits(&[6]),
            XorFunc::from_bits(&[14, 17]),
            XorFunc::from_bits(&[15, 18]),
            XorFunc::from_bits(&[16, 19]),
        ];
        let kept = remove_redundant(&funcs);
        assert_eq!(kept.len(), 4);
    }

    #[test]
    fn functions_independent_matches_rank() {
        let indep = vec![XorFunc::from_bits(&[1]), XorFunc::from_bits(&[2])];
        let dep = vec![
            XorFunc::from_bits(&[1]),
            XorFunc::from_bits(&[2]),
            XorFunc::from_bits(&[1, 2]),
        ];
        assert!(functions_independent(&indep));
        assert!(!functions_independent(&dep));
    }

    #[test]
    fn solve_square_identity() {
        // x0 = 1, x1 = 0, x2 = 1
        let a = vec![0b001, 0b010, 0b100];
        let x = solve_square(&a, 0b101, 3).unwrap();
        assert_eq!(x, 0b101);
    }

    #[test]
    fn solve_square_coupled() {
        // eq0: x0 ^ x1 = 1, eq1: x1 = 1  => x0 = 0, x1 = 1
        let a = vec![0b11, 0b10];
        let x = solve_square(&a, 0b11, 2).unwrap();
        assert_eq!(x, 0b10);
    }

    #[test]
    fn solve_square_singular_returns_none() {
        let a = vec![0b11, 0b11];
        assert!(solve_square(&a, 0b01, 2).is_none());
    }

    #[test]
    fn solve_square_roundtrip_random_like() {
        // A small deterministic sweep: for every invertible 3x3 matrix from a
        // fixed list, A * solve(A, b) == b for all b.
        let mats = [
            vec![0b001u64, 0b010, 0b100],
            vec![0b011, 0b010, 0b100],
            vec![0b111, 0b011, 0b001],
            vec![0b101, 0b110, 0b010],
        ];
        for a in &mats {
            for b in 0..8u64 {
                let x = solve_square(a, b, 3).expect("invertible");
                // recompute A x
                let mut bx = 0u64;
                for (i, &row) in a.iter().enumerate() {
                    if (row & x).count_ones() % 2 == 1 {
                        bx |= 1 << i;
                    }
                }
                assert_eq!(bx, b, "A = {a:?}, b = {b}");
            }
        }
    }
}
