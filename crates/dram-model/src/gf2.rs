//! Dense linear algebra over GF(2).
//!
//! Bank address functions are linear forms over GF(2) of the physical address
//! bits, so questions such as "is this candidate function redundant?" or "do
//! these `log2(#banks)` functions actually number all piles distinctly?"
//! reduce to rank computations over GF(2). Rows are stored as `u64` bit
//! masks, which comfortably covers physical addresses up to 64 bits.

use crate::XorFunc;

pub mod bitslice;

/// A matrix over GF(2) whose rows are stored as 64-bit masks.
///
/// ```
/// use dram_model::gf2::Gf2Matrix;
/// let m = Gf2Matrix::from_rows(vec![0b011, 0b101, 0b110]);
/// // the third row is the XOR of the first two
/// assert_eq!(m.rank(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Gf2Matrix {
    rows: Vec<u64>,
}

impl Gf2Matrix {
    /// Creates an empty matrix with no rows.
    pub fn new() -> Self {
        Gf2Matrix { rows: Vec::new() }
    }

    /// Creates a matrix from row bit masks.
    pub fn from_rows(rows: Vec<u64>) -> Self {
        Gf2Matrix { rows }
    }

    /// Creates a matrix whose rows are the masks of the given functions.
    pub fn from_funcs(funcs: &[XorFunc]) -> Self {
        Gf2Matrix {
            rows: funcs.iter().map(|f| f.mask()).collect(),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Returns the rows of the matrix.
    pub fn rows(&self) -> &[u64] {
        &self.rows
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: u64) {
        self.rows.push(row);
    }

    /// Computes the rank of the matrix by Gaussian elimination.
    pub fn rank(&self) -> usize {
        let mut rows = self.rows.clone();
        rank_in_place(&mut rows)
    }

    /// Returns a row-echelon basis (pivot rows only) of the row space.
    pub fn row_basis(&self) -> Vec<u64> {
        let mut basis: Vec<u64> = Vec::new();
        for &row in &self.rows {
            let reduced = reduce_against(row, &basis);
            if reduced != 0 {
                basis.push(reduced);
                basis.sort_unstable_by(|a, b| b.cmp(a));
            }
        }
        basis
    }

    /// Returns `true` if `candidate` lies in the row space of the matrix,
    /// i.e. it is a XOR (linear combination) of existing rows.
    pub fn spans(&self, candidate: u64) -> bool {
        let basis = self.row_basis();
        reduce_against(candidate, &basis) == 0
    }

    /// Returns the **reduced** row-echelon basis of the row space, sorted
    /// descending. Unlike [`Gf2Matrix::row_basis`] (which depends on row
    /// insertion order), the reduced form is the unique canonical basis of a
    /// subspace: two matrices span the same space if and only if their
    /// reduced bases are equal. The mapping store uses this to deduplicate
    /// recovered function sets that differ only by linear combinations.
    pub fn reduced_row_basis(&self) -> Vec<u64> {
        let mut basis = self.row_basis();
        // Back-substitute: clear each pivot (leading) bit from every other
        // row. Echelon rows have distinct leading bits, so this terminates
        // with the unique reduced form.
        for i in 0..basis.len() {
            let lead = 1u64 << (63 - basis[i].leading_zeros());
            for j in 0..basis.len() {
                if j != i && basis[j] & lead != 0 {
                    basis[j] ^= basis[i];
                }
            }
        }
        basis.sort_unstable_by(|a, b| b.cmp(a));
        basis
    }
}

/// Incremental row-echelon GF(2) basis of the differences `member ⊕ pivot`
/// of one same-bank pile.
///
/// A XOR mask evaluates to the same parity for *every* address of a pile if
/// and only if it is orthogonal (even parity) to every difference
/// `member ⊕ pivot` — and parity is linear over GF(2), so it suffices to
/// check the mask against a basis of the difference space. The basis has at
/// most `addr_bits` rows, so a candidate mask is verified in O(rank)
/// popcount-parity checks instead of O(members), with bit-identical results
/// to the naive per-member scan.
///
/// ```
/// use dram_model::gf2::PileBasis;
/// // Pile {0b000, 0b011, 0b101, 0b110}: differences span {011, 101}.
/// let basis = PileBasis::from_members(0b000, [0b011, 0b101, 0b110]);
/// assert_eq!(basis.rank(), 2);
/// assert!(basis.mask_constant(0b111)); // even parity on every member
/// assert!(!basis.mask_constant(0b001)); // splits the pile
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PileBasis {
    pivot: u64,
    basis: Vec<u64>,
}

impl PileBasis {
    /// Creates an empty basis around a pivot address.
    #[must_use]
    pub fn new(pivot: u64) -> Self {
        PileBasis {
            pivot,
            basis: Vec::new(),
        }
    }

    /// Builds the basis of a whole pile in one pass over its members.
    #[must_use]
    pub fn from_members(pivot: u64, members: impl IntoIterator<Item = u64>) -> Self {
        let mut b = PileBasis::new(pivot);
        for m in members {
            b.insert(m);
        }
        b
    }

    /// Folds one member into the basis. Returns `true` when the member's
    /// difference to the pivot was linearly independent of the differences
    /// seen so far (i.e. the rank grew).
    pub fn insert(&mut self, member: u64) -> bool {
        let reduced = reduce_against(member ^ self.pivot, &self.basis);
        if reduced == 0 {
            return false;
        }
        self.basis.push(reduced);
        self.basis.sort_unstable_by(|a, b| b.cmp(a));
        true
    }

    /// The pivot address the differences are taken against.
    #[must_use]
    pub fn pivot(&self) -> u64 {
        self.pivot
    }

    /// Rank of the difference space (number of basis rows).
    #[must_use]
    pub fn rank(&self) -> usize {
        self.basis.len()
    }

    /// The row-echelon basis rows of the difference space.
    #[must_use]
    pub fn rows(&self) -> &[u64] {
        &self.basis
    }

    /// Returns `true` if `difference` lies in the span of the differences
    /// folded in so far (so inserting a member at `pivot ^ difference` would
    /// not grow the rank).
    #[must_use]
    pub fn spans_difference(&self, difference: u64) -> bool {
        reduce_against(difference, &self.basis) == 0
    }

    /// Reduces `value` against the basis, returning the canonical coset
    /// representative of `value` modulo the spanned difference space (zero
    /// exactly when the value is spanned). Two values reduce to the same
    /// representative if and only if they lie in the same coset.
    #[must_use]
    pub fn reduce(&self, value: u64) -> u64 {
        reduce_against(value, &self.basis)
    }

    /// Returns `true` if `mask` evaluates to the same parity on every member
    /// folded into the basis — the fast equivalent of the naive
    /// `apply_xor_mask_to_pile` scan.
    #[must_use]
    pub fn mask_constant(&self, mask: u64) -> bool {
        self.basis
            .iter()
            .all(|&d| (d & mask).count_ones().is_multiple_of(2))
    }

    /// Reduces a whole batch of values, 64 per bitsliced block — the
    /// word-parallel twin of calling [`PileBasis::reduce`] on each value
    /// (element-wise identical output, in input order).
    #[must_use]
    pub fn reduce_batch(&self, values: &[u64]) -> Vec<u64> {
        bitslice::reduce_batch(values, &self.basis)
    }
}

/// Reduces `value` against a set of basis rows (each used by its leading bit).
pub fn reduce_against(mut value: u64, basis: &[u64]) -> u64 {
    for &b in basis {
        if b == 0 {
            continue;
        }
        let lead = 63 - b.leading_zeros();
        if value >> lead & 1 == 1 {
            value ^= b;
        }
    }
    value
}

/// Computes the rank of a set of row masks, destroying them in the process.
fn rank_in_place(rows: &mut [u64]) -> usize {
    let mut rank = 0;
    for bit in (0..64).rev() {
        // Find a pivot row with this leading bit.
        let mut pivot = None;
        for (i, &row) in rows.iter().enumerate().skip(rank) {
            if (row >> bit) & 1 == 1 {
                pivot = Some(i);
                break;
            }
        }
        let Some(p) = pivot else { continue };
        rows.swap(rank, p);
        let pivot_row = rows[rank];
        for (i, row) in rows.iter_mut().enumerate() {
            if i != rank && (*row >> bit) & 1 == 1 {
                *row ^= pivot_row;
            }
        }
        rank += 1;
        if rank == rows.len() {
            break;
        }
    }
    rank
}

/// Returns `true` if the given functions are linearly independent over GF(2).
pub fn functions_independent(funcs: &[XorFunc]) -> bool {
    Gf2Matrix::from_funcs(funcs).rank() == funcs.len()
}

/// Returns `true` if `candidate` is a linear combination (XOR) of `funcs`.
pub fn is_linear_combination(candidate: XorFunc, funcs: &[XorFunc]) -> bool {
    Gf2Matrix::from_funcs(funcs).spans(candidate.mask())
}

/// Removes functions that are linear combinations of *higher-priority*
/// functions, where priority is "fewer participating bits first" as in
/// Algorithm 3 (`prioritize` + `remove_redundant`).
///
/// The surviving set is linearly independent and every removed function is a
/// XOR of surviving ones.
pub fn remove_redundant(funcs: &[XorFunc]) -> Vec<XorFunc> {
    let mut sorted: Vec<XorFunc> = funcs.to_vec();
    crate::xor_func::canonical_order(&mut sorted);
    let mut kept: Vec<XorFunc> = Vec::new();
    // Incremental row-echelon basis of the kept functions: each candidate is
    // a linear combination of the kept set exactly when it reduces to zero,
    // so redundancy costs O(rank) per candidate instead of re-running
    // Gaussian elimination over the whole kept set every time.
    let mut basis: Vec<u64> = Vec::new();
    for f in sorted {
        if f.is_empty() {
            continue;
        }
        let reduced = reduce_against(f.mask(), &basis);
        if reduced != 0 {
            kept.push(f);
            basis.push(reduced);
            basis.sort_unstable_by(|a, b| b.cmp(a));
        }
    }
    kept
}

/// Computes a basis of the nullspace `{x : row · x = 0 for every row}` of a
/// GF(2) matrix over `n` columns (bit `j` of a row is the coefficient of
/// unknown `j`).
///
/// The dimension of the returned basis is `n - rank(rows)`. Algorithm 3
/// uses this to enumerate the candidate masks orthogonal to a pile
/// difference basis directly — the span of the result — instead of testing
/// every subset of the bank bits.
pub fn nullspace_basis(rows_in: &[u64], n: usize) -> Vec<u64> {
    assert!(n <= 64, "at most 64 unknowns supported");
    let mut rows: Vec<u64> = rows_in.to_vec();
    let mut pivot_cols: Vec<usize> = Vec::new();
    let mut pivot_col_mask = 0u64;
    let mut next_row = 0usize;
    for col in 0..n {
        let Some(p) = (next_row..rows.len()).find(|&i| rows[i] >> col & 1 == 1) else {
            continue;
        };
        rows.swap(next_row, p);
        let pivot_row = rows[next_row];
        for (i, row) in rows.iter_mut().enumerate() {
            if i != next_row && *row >> col & 1 == 1 {
                *row ^= pivot_row;
            }
        }
        pivot_cols.push(col);
        pivot_col_mask |= 1 << col;
        next_row += 1;
        if next_row == rows.len() {
            break;
        }
    }
    // In reduced row-echelon form, row i reads x_{pivot_i} = Σ coeffs over
    // free columns; each free column yields one basis vector.
    let mut basis = Vec::with_capacity(n - pivot_cols.len());
    for free in 0..n {
        if pivot_col_mask >> free & 1 == 1 {
            continue;
        }
        let mut v = 1u64 << free;
        for (i, &pc) in pivot_cols.iter().enumerate() {
            if rows[i] >> free & 1 == 1 {
                v |= 1 << pc;
            }
        }
        basis.push(v);
    }
    basis
}

/// Solves the square GF(2) system `A x = b` where row `i` of `a_rows` holds
/// the coefficients of equation `i` over `n` unknowns (bit `j` of the row is
/// the coefficient of unknown `j`) and bit `i` of `b` is the right-hand side.
///
/// Returns `None` when the system is singular.
pub fn solve_square(a_rows: &[u64], b: u64, n: usize) -> Option<u64> {
    assert!(a_rows.len() == n, "system must be square");
    assert!(n <= 64, "at most 64 unknowns supported");
    // Augment: keep rhs bit alongside each row.
    let mut rows: Vec<(u64, bool)> = a_rows
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, (b >> i) & 1 == 1))
        .collect();
    let mut pivot_of_col: Vec<Option<usize>> = vec![None; n];
    let mut used = vec![false; n];
    for (col, slot) in pivot_of_col.iter_mut().enumerate() {
        // Find an unused row with a 1 in this column.
        let pivot = (0..n).find(|&r| !used[r] && (rows[r].0 >> col) & 1 == 1)?;
        used[pivot] = true;
        *slot = Some(pivot);
        let (prow, pb) = rows[pivot];
        for (r, row) in rows.iter_mut().enumerate() {
            if r != pivot && (row.0 >> col) & 1 == 1 {
                row.0 ^= prow;
                row.1 ^= pb;
            }
        }
    }
    // After full elimination every pivot row has exactly one column left.
    let mut x = 0u64;
    for (col, pivot) in pivot_of_col.iter().enumerate() {
        let p = (*pivot)?;
        if rows[p].1 {
            x |= 1 << col;
        }
    }
    Some(x)
}

/// Solves the (possibly non-square, possibly under-determined) GF(2) system
/// `A x = b` with `n` unknowns and `a_rows.len()` equations, returning *any*
/// solution with free variables set to zero, or `None` when the system is
/// inconsistent.
pub fn solve_any(a_rows: &[u64], b: u64, n: usize) -> Option<u64> {
    assert!(n <= 64, "at most 64 unknowns supported");
    let m = a_rows.len();
    let mut rows: Vec<(u64, bool)> = a_rows
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, (b >> i) & 1 == 1))
        .collect();
    let mut pivot_col_of_row: Vec<usize> = Vec::with_capacity(m);
    let mut next_row = 0usize;
    for col in 0..n {
        let Some(p) = (next_row..m).find(|&i| (rows[i].0 >> col) & 1 == 1) else {
            continue;
        };
        rows.swap(next_row, p);
        let (prow, pb) = rows[next_row];
        for (i, row) in rows.iter_mut().enumerate() {
            if i != next_row && (row.0 >> col) & 1 == 1 {
                row.0 ^= prow;
                row.1 ^= pb;
            }
        }
        pivot_col_of_row.push(col);
        next_row += 1;
        if next_row == m {
            break;
        }
    }
    // Rows without a pivot are all-zero; a non-zero right-hand side there
    // makes the system inconsistent.
    if rows[next_row..]
        .iter()
        .any(|&(coeff, rhs)| coeff == 0 && rhs)
    {
        return None;
    }
    let mut x = 0u64;
    for (i, &col) in pivot_col_of_row.iter().enumerate() {
        if rows[i].1 {
            x |= 1 << col;
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_any_underdetermined_system() {
        // One equation, three unknowns: x0 ^ x2 = 1.
        let x = solve_any(&[0b101], 0b1, 3).unwrap();
        assert_eq!((x & 0b101).count_ones() % 2, 1);
        // Inconsistent: 0 = 1.
        assert!(solve_any(&[0b000], 0b1, 3).is_none());
        // Consistent homogeneous system.
        assert_eq!(solve_any(&[0b11, 0b11], 0b00, 2), Some(0));
        // Redundant but consistent equations.
        let x = solve_any(&[0b11, 0b11], 0b11, 2).unwrap();
        assert_eq!((x & 0b11).count_ones() % 2, 1);
    }

    #[test]
    fn solve_any_matches_solve_square_on_square_systems() {
        let mats = [vec![0b011u64, 0b010, 0b100], vec![0b111, 0b011, 0b001]];
        for a in &mats {
            for b in 0..8u64 {
                assert_eq!(solve_any(a, b, 3), solve_square(a, b, 3));
            }
        }
    }

    #[test]
    fn rank_of_independent_rows() {
        let m = Gf2Matrix::from_rows(vec![0b001, 0b010, 0b100]);
        assert_eq!(m.rank(), 3);
    }

    #[test]
    fn rank_detects_dependence() {
        // row3 = row1 ^ row2
        let m = Gf2Matrix::from_rows(vec![0b0110, 0b1010, 0b1100]);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn rank_of_empty_and_zero() {
        assert_eq!(Gf2Matrix::new().rank(), 0);
        assert_eq!(Gf2Matrix::from_rows(vec![0, 0]).rank(), 0);
    }

    #[test]
    fn spans_detects_linear_combination() {
        let m = Gf2Matrix::from_rows(vec![0b0011, 0b0101]);
        assert!(m.spans(0b0110)); // xor of the two rows
        assert!(m.spans(0b0011));
        assert!(m.spans(0)); // zero vector is always spanned
        assert!(!m.spans(0b1000));
    }

    #[test]
    fn reduced_row_basis_is_order_independent() {
        // Same 2-dimensional space presented three ways.
        let presentations = [
            vec![0b11u64, 0b01],
            vec![0b01u64, 0b11],
            vec![0b10u64, 0b01, 0b11],
        ];
        let canonical: Vec<Vec<u64>> = presentations
            .iter()
            .map(|rows| Gf2Matrix::from_rows(rows.clone()).reduced_row_basis())
            .collect();
        assert_eq!(canonical[0], canonical[1]);
        assert_eq!(canonical[0], canonical[2]);
        assert_eq!(canonical[0], vec![0b10, 0b01]);
        // The Haswell bank functions and a linear-combination variant
        // canonicalize identically.
        let a = Gf2Matrix::from_funcs(&[
            XorFunc::from_bits(&[13, 16]),
            XorFunc::from_bits(&[14, 17]),
            XorFunc::from_bits(&[15, 18]),
        ]);
        let b = Gf2Matrix::from_funcs(&[
            XorFunc::from_bits(&[14, 15, 17, 18]),
            XorFunc::from_bits(&[13, 16]),
            XorFunc::from_bits(&[15, 18]),
        ]);
        assert_eq!(a.reduced_row_basis(), b.reduced_row_basis());
        // Different spaces stay different.
        let c = Gf2Matrix::from_rows(vec![0b100, 0b010]);
        let d = Gf2Matrix::from_rows(vec![0b100, 0b001]);
        assert_ne!(c.reduced_row_basis(), d.reduced_row_basis());
        assert!(Gf2Matrix::new().reduced_row_basis().is_empty());
    }

    #[test]
    fn paper_example_redundancy() {
        // The paper's example: (14,18), (15,19) have priority over
        // (14,15,18,19) which is their combination and must be removed.
        let funcs = vec![
            XorFunc::from_bits(&[14, 15, 18, 19]),
            XorFunc::from_bits(&[14, 18]),
            XorFunc::from_bits(&[15, 19]),
        ];
        let kept = remove_redundant(&funcs);
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(&XorFunc::from_bits(&[14, 18])));
        assert!(kept.contains(&XorFunc::from_bits(&[15, 19])));
    }

    #[test]
    fn remove_redundant_keeps_independent_sets_intact() {
        let funcs = vec![
            XorFunc::from_bits(&[6]),
            XorFunc::from_bits(&[14, 17]),
            XorFunc::from_bits(&[15, 18]),
            XorFunc::from_bits(&[16, 19]),
        ];
        let kept = remove_redundant(&funcs);
        assert_eq!(kept.len(), 4);
    }

    #[test]
    fn functions_independent_matches_rank() {
        let indep = vec![XorFunc::from_bits(&[1]), XorFunc::from_bits(&[2])];
        let dep = vec![
            XorFunc::from_bits(&[1]),
            XorFunc::from_bits(&[2]),
            XorFunc::from_bits(&[1, 2]),
        ];
        assert!(functions_independent(&indep));
        assert!(!functions_independent(&dep));
    }

    #[test]
    fn nullspace_is_orthogonal_complement() {
        // rows of rank 2 over 5 unknowns -> nullspace of dimension 3.
        let rows = [0b00110u64, 0b01010];
        let basis = nullspace_basis(&rows, 5);
        assert_eq!(basis.len(), 3);
        // Every span element is orthogonal to every row; the span has full
        // size (basis vectors are independent).
        let mut span = std::collections::BTreeSet::new();
        for combo in 0..(1u64 << basis.len()) {
            let mut v = 0u64;
            for (i, &b) in basis.iter().enumerate() {
                if combo >> i & 1 == 1 {
                    v ^= b;
                }
            }
            span.insert(v);
            for &r in &rows {
                assert_eq!((v & r).count_ones() % 2, 0, "v = {v:#b}, r = {r:#b}");
            }
        }
        assert_eq!(span.len(), 8);
        // Exhaustive cross-check: exactly the orthogonal vectors are spanned.
        for v in 0..32u64 {
            let orthogonal = rows.iter().all(|&r| (v & r).count_ones() % 2 == 0);
            assert_eq!(span.contains(&v), orthogonal, "v = {v:#b}");
        }
    }

    #[test]
    fn nullspace_of_empty_and_full_rank_systems() {
        // No constraints: the whole space.
        assert_eq!(nullspace_basis(&[], 3).len(), 3);
        // Full rank: only the zero vector.
        assert_eq!(nullspace_basis(&[0b001, 0b010, 0b100], 3).len(), 0);
        // Redundant rows do not shrink the nullspace further.
        assert_eq!(nullspace_basis(&[0b011, 0b011], 3).len(), 2);
    }

    #[test]
    fn pile_basis_matches_naive_scan_exhaustively() {
        // Pile = coset of span{0b0110, 0b1010} around an arbitrary pivot.
        let pivot = 0b0101u64;
        let kernel = [0b0000u64, 0b0110, 0b1010, 0b1100];
        let members: Vec<u64> = kernel.iter().map(|k| pivot ^ k).collect();
        let basis = PileBasis::from_members(pivot, members.iter().copied());
        assert_eq!(basis.rank(), 2);
        for mask in 0..16u64 {
            let naive = {
                let expected = (pivot & mask).count_ones() % 2;
                members
                    .iter()
                    .all(|m| (m & mask).count_ones() % 2 == expected)
            };
            assert_eq!(basis.mask_constant(mask), naive, "mask {mask:#b}");
        }
    }

    #[test]
    fn pile_basis_insert_reports_rank_growth() {
        let mut basis = PileBasis::new(0);
        assert!(basis.insert(0b001));
        assert!(basis.insert(0b010));
        assert!(!basis.insert(0b011)); // 001 ^ 010, already spanned
        assert!(!basis.insert(0)); // the pivot itself never adds rank
        assert_eq!(basis.rank(), 2);
        assert!(basis.spans_difference(0b011));
        assert!(!basis.spans_difference(0b100));
        assert_eq!(basis.pivot(), 0);
        assert_eq!(basis.rows().len(), 2);
    }

    #[test]
    fn pile_basis_empty_pile_accepts_every_mask() {
        let basis = PileBasis::new(0b1011);
        assert_eq!(basis.rank(), 0);
        for mask in 0..32u64 {
            assert!(basis.mask_constant(mask));
        }
        assert_eq!(basis.pivot(), 0b1011);
    }

    #[test]
    fn solve_square_identity() {
        // x0 = 1, x1 = 0, x2 = 1
        let a = vec![0b001, 0b010, 0b100];
        let x = solve_square(&a, 0b101, 3).unwrap();
        assert_eq!(x, 0b101);
    }

    #[test]
    fn solve_square_coupled() {
        // eq0: x0 ^ x1 = 1, eq1: x1 = 1  => x0 = 0, x1 = 1
        let a = vec![0b11, 0b10];
        let x = solve_square(&a, 0b11, 2).unwrap();
        assert_eq!(x, 0b10);
    }

    #[test]
    fn solve_square_singular_returns_none() {
        let a = vec![0b11, 0b11];
        assert!(solve_square(&a, 0b01, 2).is_none());
    }

    #[test]
    fn solve_square_roundtrip_random_like() {
        // A small deterministic sweep: for every invertible 3x3 matrix from a
        // fixed list, A * solve(A, b) == b for all b.
        let mats = [
            vec![0b001u64, 0b010, 0b100],
            vec![0b011, 0b010, 0b100],
            vec![0b111, 0b011, 0b001],
            vec![0b101, 0b110, 0b010],
        ];
        for a in &mats {
            for b in 0..8u64 {
                let x = solve_square(a, b, 3).expect("invertible");
                // recompute A x
                let mut bx = 0u64;
                for (i, &row) in a.iter().enumerate() {
                    if (row & x).count_ones() % 2 == 1 {
                        bx |= 1 << i;
                    }
                }
                assert_eq!(bx, b, "A = {a:?}, b = {b}");
            }
        }
    }
}
