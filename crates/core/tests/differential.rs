//! Differential regression tests: the fast paths (pile-basis candidate
//! verification, kernel-decomposition partition, cached/batched probing)
//! must agree with the naive reference paths on every Table-II machine
//! setting, for clean *and* noisy piles, under fixed seeds.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dram_model::MachineSetting;
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::functions::{detect_bank_functions, detect_bank_functions_naive};
use dramdig::partition::{partition_into_piles, synthetic_piles, Pile};
use dramdig::select::select_addresses;
use dramdig::{DomainKnowledge, DramDig, DramDigConfig};
use mem_probe::{ConflictOracle, LatencyCalibration, MemoryProbe, SimProbe};

/// Piles produced by the measurement-driven exhaustive partition on a
/// *noisy* simulated machine: the realistic, possibly polluted input
/// Algorithm 3 sees in production.
fn measured_noisy_piles(setting: &MachineSetting, seed: u64) -> Vec<Pile> {
    let machine = SimMachine::from_setting(setting, SimConfig::default().with_seed(seed));
    let threshold = machine.controller().config().timing.oracle_threshold_ns();
    let probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
    let mut oracle = ConflictOracle::new(probe, LatencyCalibration::from_threshold(threshold));
    let bank_bits = setting.mapping().bank_function_bits();
    let pool = select_addresses(oracle.probe().memory(), &bank_bits, Some(2048)).unwrap();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37);
    partition_into_piles(
        &mut oracle,
        &pool.addresses,
        setting.system.total_banks(),
        &DramDigConfig::default(),
        &mut rng,
    )
    .unwrap()
    .piles
}

#[test]
fn fast_and_naive_detection_agree_on_clean_piles_for_all_settings() {
    for setting in MachineSetting::all() {
        let piles = synthetic_piles(setting.mapping());
        let bank_bits = setting.mapping().bank_function_bits();
        let banks = setting.system.total_banks();
        let cfg = DramDigConfig::default();
        let fast = detect_bank_functions(&piles, &bank_bits, banks, &cfg).unwrap();
        let naive = detect_bank_functions_naive(&piles, &bank_bits, banks, &cfg).unwrap();
        assert_eq!(
            fast,
            naive,
            "{}: fast and naive paths diverged",
            setting.label()
        );
    }
}

#[test]
fn fast_and_naive_detection_agree_on_noisy_measured_piles() {
    // The exhaustive partition on the default (noisy) simulator produces
    // the real-world pile shapes, including partial piles and any noise
    // pollution the tolerance let through.
    for (number, seed) in [(4u8, 11u64), (6, 23), (7, 31)] {
        let setting = MachineSetting::by_number(number).unwrap();
        let piles = measured_noisy_piles(&setting, seed);
        assert!(!piles.is_empty());
        let bank_bits = setting.mapping().bank_function_bits();
        let banks = setting.system.total_banks();
        let cfg = DramDigConfig::default();
        let fast = detect_bank_functions(&piles, &bank_bits, banks, &cfg).unwrap();
        let naive = detect_bank_functions_naive(&piles, &bank_bits, banks, &cfg).unwrap();
        assert_eq!(
            fast,
            naive,
            "{}: fast and naive paths diverged on noisy piles",
            setting.label()
        );
    }
}

#[test]
fn detection_is_deterministic_for_a_fixed_seed() {
    let setting = MachineSetting::no4_haswell_ddr3_4g();
    let a = measured_noisy_piles(&setting, 77);
    let b = measured_noisy_piles(&setting, 77);
    assert_eq!(a, b, "partition must be seed-deterministic");
    let bank_bits = setting.mapping().bank_function_bits();
    let cfg = DramDigConfig::default();
    let fast_a = detect_bank_functions(&a, &bank_bits, 8, &cfg).unwrap();
    let fast_b = detect_bank_functions(&b, &bank_bits, 8, &cfg).unwrap();
    assert_eq!(fast_a, fast_b);
}

#[test]
fn optimized_pipeline_recovers_the_naive_mapping_end_to_end() {
    // End-to-end: the measurement-minimal profile must land on a mapping
    // equivalent to both the naive profile's and the ground truth (noise
    // enabled). A representative spread of Table II keeps the runtime sane;
    // `bench_json` sweeps all nine settings.
    for number in [1u8, 4, 6, 7] {
        let setting = MachineSetting::by_number(number).unwrap();
        let run = |config: DramDigConfig| {
            let machine = SimMachine::from_setting(&setting, SimConfig::default().with_seed(5));
            let mut probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
            let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
            DramDig::new(knowledge, config).run(&mut probe).unwrap()
        };
        let naive = run(DramDigConfig::naive());
        let fast = run(DramDigConfig::optimized());
        assert!(
            naive.mapping.equivalent_to(setting.mapping()),
            "{}: naive profile missed the ground truth",
            setting.label()
        );
        assert!(
            fast.mapping.equivalent_to(setting.mapping()),
            "{}: optimized profile missed the ground truth",
            setting.label()
        );
        assert!(
            fast.mapping.equivalent_to(&naive.mapping),
            "{}: profiles disagree",
            setting.label()
        );
        assert!(
            fast.total.measurements < naive.total.measurements,
            "{}: optimized profile must measure less ({} vs {})",
            setting.label(),
            fast.total.measurements,
            naive.total.measurements
        );
    }
}
