//! Checkpoint/resume differential tests for the pipeline engine: killing a
//! run at any phase boundary and resuming it must produce a serialized
//! `RecoveryReport` byte-identical to an uninterrupted run, repaying none of
//! the already-checkpointed measurements.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use dram_model::MachineSetting;
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::engine::{Budget, EngineEvent, EngineOptions, NullObserver, PipelineEngine};
use dramdig::{
    CheckpointStore, DomainKnowledge, DramDig, DramDigConfig, DramDigError, Phase, RecoveryReport,
    RunReport,
};
use mem_probe::{MemoryProbe, SimProbe};

fn probe_for(number: u8, sim_seed: u64) -> (SimProbe, MachineSetting) {
    let setting = MachineSetting::by_number(number).unwrap();
    let machine = SimMachine::from_setting(&setting, SimConfig::default().with_seed(sim_seed));
    let probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
    (probe, setting)
}

fn engine_for(number: u8, config: &DramDigConfig) -> PipelineEngine {
    let setting = MachineSetting::by_number(number).unwrap();
    let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
    PipelineEngine::new(knowledge, config.clone())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dramdig-engine-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn straight_run(number: u8, config: &DramDigConfig, sim_seed: u64) -> RunReport {
    let (mut probe, _) = probe_for(number, sim_seed);
    engine_for(number, config)
        .run(&mut probe, &EngineOptions::default(), &mut NullObserver)
        .unwrap()
}

/// Kills the run after `boundary`, resumes it from the checkpoint, and
/// returns the resumed report plus the measurements the resumed invocation
/// itself paid for.
fn kill_and_resume(
    number: u8,
    config: &DramDigConfig,
    sim_seed: u64,
    boundary: Phase,
    tag: &str,
) -> (RunReport, u64) {
    let dir = temp_dir(tag);
    let engine = engine_for(number, config);

    let (mut probe, _) = probe_for(number, sim_seed);
    let killed = engine.run(
        &mut probe,
        &EngineOptions::default()
            .with_checkpoint(&dir)
            .with_stop_after(boundary),
        &mut NullObserver,
    );
    if boundary == *Phase::ALL.last().unwrap() {
        // Stopping after the final phase is a completed run, not a kill.
        let report = killed.unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        return (report, probe.stats().measurements);
    }
    assert!(
        matches!(killed, Err(DramDigError::Interrupted { .. })),
        "boundary {boundary}: {killed:?}"
    );

    let (mut probe, _) = probe_for(number, sim_seed);
    let resumed = engine
        .run(
            &mut probe,
            &EngineOptions::default().with_checkpoint(&dir),
            &mut NullObserver,
        )
        .unwrap();
    let repaid = probe.stats().measurements;
    let _ = std::fs::remove_dir_all(&dir);
    (resumed, repaid)
}

#[test]
fn kill_at_every_boundary_resumes_byte_identically() {
    let config = DramDigConfig::fast();
    let straight = straight_run(4, &config, 11);
    let straight_encoded = RecoveryReport::from(&straight).encode();
    for boundary in Phase::ALL {
        let (resumed, repaid) = kill_and_resume(
            4,
            &config,
            11,
            boundary,
            &format!("fast-{}", boundary.name()),
        );
        assert_eq!(
            RecoveryReport::from(&resumed).encode(),
            straight_encoded,
            "boundary {boundary}"
        );
        assert_eq!(resumed.mapping, straight.mapping, "boundary {boundary}");
        // The resumed invocation only pays for the phases after the
        // boundary: checkpointed measurements are never repaid. (Stopping
        // after the final phase is a completed run, not a kill, so there
        // is no resumed invocation to account for.)
        if boundary != *Phase::ALL.last().unwrap() {
            let checkpointed: u64 = straight
                .phase_costs
                .iter()
                .filter(|(p, _)| p.index() <= boundary.index())
                .map(|(_, c)| c.measurements)
                .sum();
            assert_eq!(
                repaid,
                straight.total.measurements - checkpointed,
                "boundary {boundary}"
            );
        }
    }
}

#[test]
fn optimized_profile_with_cache_and_kernel_resumes_byte_identically() {
    // The optimized profile exercises the checkpointed kernel basis, the
    // conflict-cache snapshot and cache-backed validation.
    let config = DramDigConfig::optimized();
    let straight = straight_run(4, &config, 7);
    let straight_encoded = RecoveryReport::from(&straight).encode();
    assert!(straight.total.cache_misses > 0, "cache must be exercised");
    for boundary in [Phase::Partition, Phase::FineDetection] {
        let (resumed, _) =
            kill_and_resume(4, &config, 7, boundary, &format!("opt-{}", boundary.name()));
        assert_eq!(
            RecoveryReport::from(&resumed).encode(),
            straight_encoded,
            "boundary {boundary}"
        );
    }
}

#[test]
fn mid_fine_detection_kill_repays_zero_partition_measurements() {
    // A fleet killed mid-FineDetection resumes from the FunctionDetection
    // boundary: the partition phase — the dominant measurement cost per
    // Table II — is restored from its artifact, not re-measured.
    let config = DramDigConfig::fast();
    let straight = straight_run(4, &config, 3);
    let partition_cost = straight.cost_of(Phase::Partition).unwrap().measurements;
    assert!(partition_cost > 0);
    let (resumed, repaid) = kill_and_resume(4, &config, 3, Phase::FunctionDetection, "midfine");
    assert_eq!(
        RecoveryReport::from(&resumed).encode(),
        RecoveryReport::from(&straight).encode()
    );
    let after_kill: u64 = straight
        .phase_costs
        .iter()
        .filter(|(p, _)| p.index() > Phase::FunctionDetection.index())
        .map(|(_, c)| c.measurements)
        .sum();
    assert_eq!(repaid, after_kill, "only fine+validation are paid again");
    assert!(
        repaid < partition_cost,
        "the resumed invocation ({repaid}) must repay less than the \
         partition phase alone ({partition_cost})"
    );
}

#[test]
fn budget_interrupts_at_a_boundary_and_resume_completes() {
    let config = DramDigConfig::fast();
    let dir = temp_dir("budget");
    let engine = engine_for(4, &config);

    // Calibration (200) + coarse fit under 300; the partition blows it.
    let (mut probe, _) = probe_for(4, 11);
    let mut events: Vec<EngineEvent> = Vec::new();
    let err = engine
        .run(
            &mut probe,
            &EngineOptions::default()
                .with_checkpoint(&dir)
                .with_budget(Budget::measurements(300)),
            &mut |event: &EngineEvent| events.push(event.clone()),
        )
        .unwrap_err();
    let DramDigError::Interrupted { phase, reason } = err else {
        panic!("expected interruption, got {err}");
    };
    assert!(reason.contains("budget"), "{reason}");
    assert!(phase.index() > Phase::CoarseDetection.index());
    assert!(events
        .iter()
        .any(|e| matches!(e, EngineEvent::BudgetPressure { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, EngineEvent::Interrupted { .. })));

    // Re-running the *same* command — same budget included — must make
    // fresh progress: the budget counts this invocation's spend, not the
    // costs already restored from checkpoints. The remaining phases fit
    // under 300 fresh measurements, so the second run completes.
    let (mut probe, _) = probe_for(4, 11);
    let resumed = engine
        .run(
            &mut probe,
            &EngineOptions::default()
                .with_checkpoint(&dir)
                .with_budget(Budget::measurements(300)),
            &mut NullObserver,
        )
        .unwrap();
    assert!(probe.stats().measurements < 300);
    let straight = straight_run(4, &config, 11);
    assert_eq!(
        RecoveryReport::from(&resumed).encode(),
        RecoveryReport::from(&straight).encode()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failing_validation_is_not_checkpointed_and_a_restored_one_still_fails() {
    let config = DramDigConfig::fast();
    let dir = temp_dir("badvalid");
    let engine = engine_for(4, &config);
    let (mut probe, _) = probe_for(4, 11);
    engine
        .run(
            &mut probe,
            &EngineOptions::default().with_checkpoint(&dir),
            &mut NullObserver,
        )
        .unwrap();
    // Corrupt the persisted validation tally into a failing one: a resume
    // must reject it with a validation error, not return a report.
    let path = dir.join("05-validation.phase");
    let text = std::fs::read_to_string(&path).unwrap();
    let poisoned: String = text
        .lines()
        .map(|line| {
            if line.starts_with("mismatches") {
                "mismatches = 1000".to_string()
            } else {
                line.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    std::fs::write(&path, poisoned).unwrap();
    let (mut probe, _) = probe_for(4, 11);
    let err = engine
        .run(
            &mut probe,
            &EngineOptions::default().with_checkpoint(&dir),
            &mut NullObserver,
        )
        .unwrap_err();
    assert!(matches!(err, DramDigError::Validation { .. }), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn per_phase_budget_interrupts_after_the_offending_phase() {
    let config = DramDigConfig::fast();
    let engine = engine_for(4, &config);
    let (mut probe, _) = probe_for(4, 11);
    let err = engine
        .run(
            &mut probe,
            &EngineOptions::default().with_budget(Budget {
                max_phase_measurements: Some(10),
                ..Budget::default()
            }),
            &mut NullObserver,
        )
        .unwrap_err();
    // Calibration spends its full sample budget, far over 10 per phase.
    let DramDigError::Interrupted { phase, reason } = err else {
        panic!("expected interruption");
    };
    assert_eq!(phase, Phase::CoarseDetection);
    assert!(reason.contains("per-phase"), "{reason}");
}

#[test]
fn stop_after_fine_detection_with_validation_disabled_is_a_completed_run() {
    // Regression: with `validate = false` the boundary check used to look at
    // the *next phase in the table* (Validation) instead of the next phase
    // that will actually run. Since Validation is disabled there is nothing
    // left to do after FineDetection, so stopping there — or exhausting a
    // budget exactly at that boundary — is a completed run, not an
    // `Interrupted { phase: Validation }`.
    let config = DramDigConfig {
        validate: false,
        ..DramDigConfig::fast()
    };
    let engine = engine_for(4, &config);

    let (mut probe, _) = probe_for(4, 11);
    let stopped = engine
        .run(
            &mut probe,
            &EngineOptions::default().with_stop_after(Phase::FineDetection),
            &mut NullObserver,
        )
        .unwrap();
    assert!(stopped.validation.is_none());
    assert_eq!(
        RecoveryReport::from(&stopped).encode(),
        RecoveryReport::from(&straight_run(4, &config, 11)).encode()
    );

    // A total budget that trips at the FineDetection boundary must likewise
    // report completion: the full spend fits the budget and no enabled phase
    // remains.
    let spent = probe.stats().measurements;
    let (mut probe, _) = probe_for(4, 11);
    let budgeted = engine.run(
        &mut probe,
        &EngineOptions::default().with_budget(Budget::measurements(spent)),
        &mut NullObserver,
    );
    assert!(budgeted.is_ok(), "{budgeted:?}");

    // With validation enabled the same stop is a genuine kill (there is an
    // enabled phase left), so the boundary still interrupts.
    let with_validation = DramDigConfig::fast();
    let (mut probe, _) = probe_for(4, 11);
    let err = engine_for(4, &with_validation)
        .run(
            &mut probe,
            &EngineOptions::default().with_stop_after(Phase::FineDetection),
            &mut NullObserver,
        )
        .unwrap_err();
    assert!(matches!(
        err,
        DramDigError::Interrupted {
            phase: Phase::Validation,
            ..
        }
    ));
}

#[test]
fn cancellation_stops_before_any_phase() {
    let config = DramDigConfig::fast();
    let engine = engine_for(4, &config);
    let (mut probe, _) = probe_for(4, 11);
    let cancel = Arc::new(AtomicBool::new(true));
    let err = engine
        .run(
            &mut probe,
            &EngineOptions::default().with_cancel(Arc::clone(&cancel)),
            &mut NullObserver,
        )
        .unwrap_err();
    assert!(matches!(
        err,
        DramDigError::Interrupted {
            phase: Phase::Calibration,
            ..
        }
    ));
    assert_eq!(probe.stats().measurements, 0, "nothing ran");
    cancel.store(false, Ordering::Relaxed);
    assert!(engine
        .run(
            &mut probe,
            &EngineOptions::default().with_cancel(cancel),
            &mut NullObserver
        )
        .is_ok());
}

#[test]
fn observer_sees_the_phase_lifecycle_in_order() {
    let config = DramDigConfig::fast();
    let dir = temp_dir("observer");
    let engine = engine_for(7, &config);

    let (mut probe, _) = probe_for(7, 5);
    let mut events: Vec<EngineEvent> = Vec::new();
    engine
        .run(
            &mut probe,
            &EngineOptions::default().with_checkpoint(&dir),
            &mut |event: &EngineEvent| events.push(event.clone()),
        )
        .unwrap();
    let phases: Vec<Phase> = events
        .iter()
        .filter_map(|e| match e {
            EngineEvent::PhaseCompleted {
                phase,
                checkpointed,
                ..
            } => {
                assert!(*checkpointed);
                Some(*phase)
            }
            _ => None,
        })
        .collect();
    assert_eq!(phases, Phase::ALL.to_vec());
    assert!(matches!(
        events.first(),
        Some(EngineEvent::RunStarted { resumed: 0, .. })
    ));
    assert!(matches!(
        events.last(),
        Some(EngineEvent::RunCompleted { .. })
    ));

    // A second run over a complete checkpoint restores every phase and
    // measures nothing.
    let (mut probe, _) = probe_for(7, 5);
    let mut restored = 0usize;
    engine
        .run(
            &mut probe,
            &EngineOptions::default().with_checkpoint(&dir),
            &mut |event: &EngineEvent| {
                if matches!(event, EngineEvent::PhaseRestored { .. }) {
                    restored += 1;
                }
            },
        )
        .unwrap();
    assert_eq!(restored, Phase::ALL.len());
    assert_eq!(probe.stats().measurements, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoints_of_a_different_configuration_are_rejected() {
    let dir = temp_dir("mismatch");
    CheckpointStore::new(&dir)
        .save_config(&DramDigConfig::fast())
        .unwrap();
    let engine = engine_for(4, &DramDigConfig::optimized());
    let (mut probe, _) = probe_for(4, 1);
    let err = engine
        .run(
            &mut probe,
            &EngineOptions::default().with_checkpoint(&dir),
            &mut NullObserver,
        )
        .unwrap_err();
    assert!(matches!(err, DramDigError::Checkpoint { .. }), "{err}");
    assert!(err.to_string().contains("different configuration"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_and_wrapper_agree() {
    let config = DramDigConfig::fast();
    let (mut probe, setting) = probe_for(4, 11);
    let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
    let wrapped = DramDig::new(knowledge, config.clone())
        .run(&mut probe)
        .unwrap();
    let engined = straight_run(4, &config, 11);
    assert_eq!(
        RecoveryReport::from(&wrapped).encode(),
        RecoveryReport::from(&engined).encode()
    );
    assert!(wrapped.mapping.equivalent_to(setting.mapping()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For every phase boundary (and a spread of machines/noise seeds),
    /// kill-at-boundary + resume yields a `RecoveryReport` text-identical
    /// to an uninterrupted run.
    #[test]
    fn resume_is_byte_identical_at_any_boundary(
        boundary_index in 0usize..6,
        machine_pick in 0usize..2,
        sim_seed in 1u64..500,
    ) {
        let number = [4u8, 7][machine_pick];
        let boundary = Phase::ALL[boundary_index];
        let config = DramDigConfig::fast();
        let straight = straight_run(number, &config, sim_seed);
        let (resumed, _) = kill_and_resume(
            number,
            &config,
            sim_seed,
            boundary,
            &format!("prop-{number}-{sim_seed}-{boundary_index}"),
        );
        prop_assert_eq!(
            RecoveryReport::from(&resumed).encode(),
            RecoveryReport::from(&straight).encode()
        );
    }
}
