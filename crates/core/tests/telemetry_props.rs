//! Telemetry determinism tests: the spans and metrics a
//! [`TelemetryObserver`] records are a pure function of the run
//! configuration. Two same-seed runs export byte-identical Chrome traces
//! and metrics snapshots on every Table-II machine, a killed run's trace is
//! a byte-prefix of the uninterrupted run's, and a resumed run's trace is
//! byte-identical to the uninterrupted run's — the engine's report-level
//! resume guarantee, extended to telemetry.

use std::path::PathBuf;

use proptest::prelude::*;

use dram_model::MachineSetting;
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::engine::{EngineOptions, PipelineEngine};
use dramdig::{DomainKnowledge, DramDigConfig, DramDigError, Phase, TelemetryObserver};
use mem_probe::SimProbe;

fn probe_for(number: u8, sim_seed: u64) -> SimProbe {
    let setting = MachineSetting::by_number(number).unwrap();
    let machine = SimMachine::from_setting(&setting, SimConfig::default().with_seed(sim_seed));
    SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes))
}

fn engine_for(number: u8, config: &DramDigConfig) -> PipelineEngine {
    let setting = MachineSetting::by_number(number).unwrap();
    let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
    PipelineEngine::new(knowledge, config.clone())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dramdig-telem-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the pipeline with a fresh [`TelemetryObserver`] and returns the
/// exported (trace, metrics snapshot) bytes.
fn observed_run(number: u8, config: &DramDigConfig, sim_seed: u64) -> (String, String) {
    let mut probe = probe_for(number, sim_seed);
    let mut observer = TelemetryObserver::new();
    engine_for(number, config)
        .run(&mut probe, &EngineOptions::default(), &mut observer)
        .unwrap();
    let (tracer, metrics) = observer.into_parts();
    (tracer.chrome_trace(), metrics.snapshot())
}

/// Two same-seed runs export byte-identical traces and snapshots on every
/// Table-II machine — the property the CI telemetry-smoke step `cmp`s,
/// exercised here across the whole machine matrix.
#[test]
fn same_seed_exports_are_byte_identical_on_all_nine_machines() {
    let config = DramDigConfig::fast();
    for number in 1..=9u8 {
        let (trace_a, metrics_a) = observed_run(number, &config, u64::from(number));
        let (trace_b, metrics_b) = observed_run(number, &config, u64::from(number));
        assert_eq!(trace_a, trace_b, "machine {number}: traces diverged");
        assert_eq!(metrics_a, metrics_b, "machine {number}: metrics diverged");
        // Every phase span made it into the stream.
        for phase in Phase::ALL {
            assert!(
                trace_a.contains(&format!("\"name\":\"{}\"", phase.name())),
                "machine {number}: no span for {phase}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Killing a run at any phase boundary leaves a trace whose events are
    /// a byte-prefix of the uninterrupted run's (plus one trailing
    /// `interrupted` instant), and resuming from the checkpoint exports a
    /// trace byte-identical to the uninterrupted run's: restored phases
    /// replay exactly the bytes their original execution wrote.
    #[test]
    fn killed_trace_is_a_prefix_and_resumed_trace_is_identical(
        boundary_index in 0usize..5,
        machine_pick in 0usize..2,
        sim_seed in 1u64..500,
    ) {
        let number = [4u8, 7][machine_pick];
        let boundary = Phase::ALL[boundary_index];
        let config = DramDigConfig::fast();
        let dir = temp_dir(&format!("prop-{number}-{sim_seed}-{boundary_index}"));
        let engine = engine_for(number, &config);

        let (straight_trace, _) = observed_run(number, &config, sim_seed);

        let mut probe = probe_for(number, sim_seed);
        let mut killed_observer = TelemetryObserver::new();
        let killed = engine.run(
            &mut probe,
            &EngineOptions::default()
                .with_checkpoint(&dir)
                .with_stop_after(boundary),
            &mut killed_observer,
        );
        let interrupted = matches!(killed, Err(DramDigError::Interrupted { .. }));
        prop_assert!(interrupted, "kill at {boundary} did not interrupt");
        let killed_trace = killed_observer.tracer().chrome_trace();

        // The killed stream is the straight stream cut at the boundary:
        // dropping its closing `]` and the `interrupted` instant leaves a
        // literal byte-prefix of the straight trace.
        let killed_lines: Vec<&str> = killed_trace.lines().collect();
        let straight_lines: Vec<&str> = straight_trace.lines().collect();
        prop_assert!(
            killed_lines[killed_lines.len() - 2].contains("\"name\":\"interrupted\""),
            "last killed event must be the interrupt: {killed_trace}"
        );
        let prefix = &killed_lines[..killed_lines.len() - 2];
        prop_assert_eq!(prefix, &straight_lines[..prefix.len()]);

        let mut probe = probe_for(number, sim_seed);
        let mut resumed_observer = TelemetryObserver::new();
        engine
            .run(
                &mut probe,
                &EngineOptions::default().with_checkpoint(&dir),
                &mut resumed_observer,
            )
            .unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        prop_assert_eq!(
            resumed_observer.tracer().chrome_trace(),
            straight_trace,
            "resumed trace must be byte-identical to the uninterrupted run's"
        );
        // The restore count is visible in the metrics, not the trace.
        prop_assert_eq!(
            resumed_observer.metrics().counter("phases_restored"),
            (boundary_index + 1) as u64
        );
    }
}
