//! Step 1 — coarse-grained row & column bit detection (Section III-C).
//!
//! For every physical-address bit the detector measures the latency of a pair
//! of addresses that differ *only* in that bit. A row-buffer conflict (high
//! latency) means the two addresses are in the same bank but different rows,
//! so the flipped bit must index rows. Column bits are found the same way but
//! flipping one *known* row bit together with the candidate bit: if the pair
//! still conflicts, the candidate bit changed neither the bank nor anything
//! that matters for the row, i.e. it is a column bit.
//!
//! Bits that participate in a bank address function change the bank when
//! flipped, so they show *low* latency in both tests and fall through to the
//! "possible bank bits" set `B`, exactly as in the paper's Figure 1 (the grey
//! boxes). Step 3 later decides which of those are actually shared row or
//! column bits.

use rand::rngs::StdRng;

use dram_model::{PhysAddr, PAGE_SHIFT};
use dram_sim::PhysMemory;
use mem_probe::{ConflictOracle, MemoryProbe};

use crate::config::DramDigConfig;
use crate::error::DramDigError;

/// Result of the coarse-grained detection.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoarseBits {
    /// Bits that index rows and do not participate in bank functions.
    pub row_bits: Vec<u8>,
    /// Bits that index columns and do not participate in bank functions.
    pub column_bits: Vec<u8>,
    /// The remaining bits — candidates for bank address functions
    /// (pure bank bits plus shared row/column bits).
    pub bank_bits: Vec<u8>,
    /// Bits for which no measurable address pair could be built from the
    /// available page pool (they are conservatively treated as bank bits).
    pub undetermined: Vec<u8>,
}

impl CoarseBits {
    /// Total number of classified bits (row + column + bank candidates).
    pub fn total_bits(&self) -> usize {
        self.row_bits.len() + self.column_bits.len() + self.bank_bits.len()
    }
}

/// Finds a pair of addresses in the page pool that differ exactly in the bits
/// of `flip_mask`.
///
/// Bits below the page shift can always be satisfied within a single page;
/// higher bits require the buddy page to be present in the pool, so several
/// random base pages are tried.
pub fn find_flip_pair(
    memory: &PhysMemory,
    flip_mask: u64,
    rng: &mut StdRng,
    max_bases: u32,
) -> Option<(PhysAddr, PhysAddr)> {
    let page_mask = flip_mask >> PAGE_SHIFT << PAGE_SHIFT;
    for _ in 0..max_bases {
        let base = memory.random_page(rng)?;
        let buddy = base ^ flip_mask;
        if page_mask == 0 || memory.contains(buddy) {
            return Some((base, buddy));
        }
    }
    None
}

/// Performs the coarse-grained detection over `address_bits` physical-address
/// bits.
///
/// # Errors
///
/// Returns [`DramDigError::CoarseDetection`] when no row bit at all can be
/// found (the timing channel is unusable) — column detection depends on
/// having at least one known row bit.
pub fn detect<P: MemoryProbe>(
    oracle: &mut ConflictOracle<P>,
    address_bits: u8,
    cfg: &DramDigConfig,
    rng: &mut StdRng,
) -> Result<CoarseBits, DramDigError> {
    let memory = oracle.probe().memory().clone();
    let mut result = CoarseBits::default();

    // Row bits: flip one bit at a time. The pairs are built first (so the
    // RNG sequence matches the historical per-bit loop) and measured as one
    // batch through the probe's batched entry point.
    let mut row_probes: Vec<(u8, (PhysAddr, PhysAddr))> = Vec::new();
    for bit in 0..address_bits {
        match find_flip_pair(&memory, 1u64 << bit, rng, cfg.max_bases_per_bit) {
            Some(pair) => row_probes.push((bit, pair)),
            None => result.undetermined.push(bit),
        }
    }
    let row_pairs: Vec<(PhysAddr, PhysAddr)> = row_probes.iter().map(|&(_, p)| p).collect();
    for (&(bit, _), conflict) in row_probes.iter().zip(oracle.are_sbdr(&row_pairs)) {
        if conflict {
            result.row_bits.push(bit);
        }
    }
    if result.row_bits.is_empty() {
        return Err(DramDigError::CoarseDetection {
            reason: "no row bit produced a row-buffer conflict; timing channel unusable".into(),
        });
    }

    // Column bits: flip a known row bit together with the candidate bit.
    // Only the first reachable (candidate, row-bit) pair per candidate is
    // measured, exactly as before — but again as one batch.
    let reference_rows: Vec<u8> = result.row_bits.clone();
    let mut col_probes: Vec<(u8, (PhysAddr, PhysAddr))> = Vec::new();
    for bit in 0..address_bits {
        if result.row_bits.contains(&bit) || result.undetermined.contains(&bit) {
            continue;
        }
        let mut classified = false;
        for &row_bit in &reference_rows {
            let mask = (1u64 << bit) | (1u64 << row_bit);
            if let Some(pair) = find_flip_pair(&memory, mask, rng, cfg.max_bases_per_bit) {
                col_probes.push((bit, pair));
                classified = true;
                break;
            }
        }
        if !classified {
            result.undetermined.push(bit);
        }
    }
    let col_pairs: Vec<(PhysAddr, PhysAddr)> = col_probes.iter().map(|&(_, p)| p).collect();
    for (&(bit, _), conflict) in col_probes.iter().zip(oracle.are_sbdr(&col_pairs)) {
        if conflict {
            result.column_bits.push(bit);
        }
    }

    // Everything else is a bank-bit candidate.
    for bit in 0..address_bits {
        if !result.row_bits.contains(&bit) && !result.column_bits.contains(&bit) {
            result.bank_bits.push(bit);
        }
    }
    result.undetermined.sort_unstable();
    result.undetermined.dedup();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::MachineSetting;
    use dram_sim::{SimConfig, SimMachine};
    use mem_probe::{LatencyCalibration, SimProbe};
    use rand::SeedableRng;

    fn oracle_for(number: u8) -> ConflictOracle<SimProbe> {
        let setting = MachineSetting::by_number(number).unwrap();
        let machine = SimMachine::from_setting(&setting, SimConfig::default());
        let threshold = machine.controller().config().timing.oracle_threshold_ns();
        let probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
        ConflictOracle::new(probe, LatencyCalibration::from_threshold(threshold))
    }

    fn ground_truth_coarse(number: u8) -> (Vec<u8>, Vec<u8>) {
        let setting = MachineSetting::by_number(number).unwrap();
        let mapping = setting.mapping();
        let func_bits = mapping.bank_function_bits();
        let rows: Vec<u8> = mapping
            .row_bits()
            .iter()
            .copied()
            .filter(|b| !func_bits.contains(b))
            .collect();
        let cols: Vec<u8> = mapping
            .column_bits()
            .iter()
            .copied()
            .filter(|b| !func_bits.contains(b))
            .collect();
        (rows, cols)
    }

    #[test]
    fn coarse_detection_matches_ground_truth_on_haswell() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let mut oracle = oracle_for(4);
        let mut rng = StdRng::seed_from_u64(1);
        let coarse = detect(
            &mut oracle,
            setting.system.address_bits(),
            &DramDigConfig::default(),
            &mut rng,
        )
        .unwrap();
        let (rows, cols) = ground_truth_coarse(4);
        assert_eq!(coarse.row_bits, rows);
        assert_eq!(coarse.column_bits, cols);
        assert!(coarse.undetermined.is_empty());
        assert_eq!(coarse.total_bits(), 32);
    }

    #[test]
    fn coarse_detection_matches_ground_truth_on_skylake_ddr4() {
        let setting = MachineSetting::no6_skylake_ddr4_16g();
        let mut oracle = oracle_for(6);
        let mut rng = StdRng::seed_from_u64(2);
        let coarse = detect(
            &mut oracle,
            setting.system.address_bits(),
            &DramDigConfig::default(),
            &mut rng,
        )
        .unwrap();
        let (rows, cols) = ground_truth_coarse(6);
        assert_eq!(coarse.row_bits, rows);
        assert_eq!(coarse.column_bits, cols);
        // Shared bits must have fallen through to the bank candidates.
        let truth_funcs = setting.mapping().bank_function_bits();
        for bit in truth_funcs {
            assert!(
                coarse.bank_bits.contains(&bit),
                "bit {bit} should be a bank candidate"
            );
        }
    }

    #[test]
    fn find_flip_pair_respects_pool_membership() {
        let memory = PhysMemory::from_frames(vec![0, 1], 1024);
        let mut rng = StdRng::seed_from_u64(3);
        // Bit 12 flips between frames 0 and 1 — both present.
        let (a, b) = find_flip_pair(&memory, 1 << 12, &mut rng, 8).unwrap();
        assert_eq!(a.raw() ^ b.raw(), 1 << 12);
        // Bit 20 would need frame 256, which is absent.
        assert!(find_flip_pair(&memory, 1 << 20, &mut rng, 8).is_none());
        // Sub-page bits never need a second page.
        assert!(find_flip_pair(&memory, 1 << 3, &mut rng, 8).is_some());
    }

    #[test]
    fn missing_high_pages_are_reported_as_undetermined() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let machine = SimMachine::from_setting(&setting, SimConfig::default());
        let threshold = machine.controller().config().timing.oracle_threshold_ns();
        // Only the low 1 MiB of the module is available: bits ≥ 20 can never
        // be flipped within the pool.
        let memory =
            PhysMemory::from_frames((0..256).collect(), setting.system.capacity_bytes / 4096);
        let probe = SimProbe::new(machine, memory);
        let mut oracle = ConflictOracle::new(probe, LatencyCalibration::from_threshold(threshold));
        let mut rng = StdRng::seed_from_u64(4);
        let coarse = detect(
            &mut oracle,
            setting.system.address_bits(),
            &DramDigConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(coarse.undetermined.contains(&31));
        // Undetermined bits are conservatively bank candidates.
        assert!(coarse.bank_bits.contains(&31));
    }
}
