//! Typed, codec-serializable artifacts of the pipeline phases plus the
//! on-disk checkpoint store.
//!
//! Every phase of the [`PipelineEngine`](crate::engine::PipelineEngine)
//! consumes the artifacts of earlier phases and produces exactly one
//! [`PhaseArtifact`] of its own: the calibrated threshold, the coarse bit
//! classification, the pile partition (with its learned GF(2) kernel), the
//! detected bank functions, the fine-grained bit classification and the
//! validation tally. Each artifact round-trips through the same plain-text
//! `key = value` codec ([`crate::codec`]) that the campaign journal uses, so
//! a [`PhaseCheckpoint`] written after a completed phase is enough to resume
//! a killed run from that boundary with a byte-identical final
//! [`crate::RecoveryReport`].
//!
//! A checkpoint additionally carries a snapshot of the probe's conflict
//! cache (oldest entry first): the later phases consult the cache for pairs
//! earlier phases already classified, so restoring it is required for the
//! resumed measurement stream — and therefore the cost accounting — to match
//! the uninterrupted run exactly.

use std::path::{Path, PathBuf};

use dram_model::gf2::PileBasis;
use dram_model::PhysAddr;

use crate::coarse::CoarseBits;
use crate::codec::{self, CodecError};
use crate::config::DramDigConfig;
use crate::driver::{Phase, PhaseCosts};
use crate::error::DramDigError;
use crate::fine::{FineBits, ValidationReport};
use crate::functions::DetectedFunctions;
use crate::partition::{Partition, Pile};
use crate::report;

/// Outcome of the calibration phase: the conflict threshold in nanoseconds.
/// Everything later phases need from calibration is captured by this number
/// (`LatencyCalibration::from_threshold` rebuilds the oracle's side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalibrationArtifact {
    /// The calibrated row-buffer-conflict latency threshold.
    pub threshold_ns: u64,
}

/// Outcome of the partition phase: the selected pool size plus the accepted
/// piles (and, for the decomposition strategy, the learned kernel basis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionArtifact {
    /// Number of addresses Algorithm 1 selected.
    pub pool_size: usize,
    /// The pile partition Algorithm 2 produced.
    pub partition: Partition,
}

/// The typed output of one pipeline phase.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseArtifact {
    /// Calibration result.
    Calibration(CalibrationArtifact),
    /// Step-1 result.
    Coarse(CoarseBits),
    /// Step-2a/2b result.
    Partition(PartitionArtifact),
    /// Step-2c result.
    Functions(DetectedFunctions),
    /// Step-3 result.
    Fine(FineBits),
    /// Validation tally.
    Validation(ValidationReport),
}

impl PhaseArtifact {
    /// The phase that produces this artifact kind.
    #[must_use]
    pub fn phase(&self) -> Phase {
        match self {
            PhaseArtifact::Calibration(_) => Phase::Calibration,
            PhaseArtifact::Coarse(_) => Phase::CoarseDetection,
            PhaseArtifact::Partition(_) => Phase::Partition,
            PhaseArtifact::Functions(_) => Phase::FunctionDetection,
            PhaseArtifact::Fine(_) => Phase::FineDetection,
            PhaseArtifact::Validation(_) => Phase::Validation,
        }
    }
}

/// Everything the engine persists when a phase completes: the phase, its
/// measured cost, its artifact and the conflict-cache snapshot at the
/// boundary (as `(low_addr, high_addr, is_conflict)`, oldest first).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseCheckpoint {
    /// The completed phase.
    pub phase: Phase,
    /// What the phase cost.
    pub costs: PhaseCosts,
    /// What the phase produced.
    pub artifact: PhaseArtifact,
    /// The conflict cache at the phase boundary, oldest entry first.
    pub cache: Vec<(u64, u64, bool)>,
}

fn encode_list<T: std::fmt::Display>(items: impl IntoIterator<Item = T>) -> String {
    items
        .into_iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn decode_u8_list(line: usize, key: &str, value: &str) -> Result<Vec<u8>, CodecError> {
    if value.is_empty() {
        return Ok(Vec::new());
    }
    value
        .split(',')
        .map(str::trim)
        .map(|item| {
            item.parse().map_err(|_| {
                CodecError::at(
                    line,
                    format!("`{key}` expects 8-bit integers, got `{item}`"),
                )
            })
        })
        .collect()
}

fn decode_u64_list(line: usize, key: &str, value: &str) -> Result<Vec<u64>, CodecError> {
    if value.is_empty() {
        return Ok(Vec::new());
    }
    value
        .split(',')
        .map(str::trim)
        .map(|item| codec::parse_u64(line, key, item))
        .collect()
}

fn decode_addr_list(line: usize, key: &str, value: &str) -> Result<Vec<PhysAddr>, CodecError> {
    Ok(decode_u64_list(line, key, value)?
        .into_iter()
        .map(PhysAddr::new)
        .collect())
}

fn encode_basis(basis: &PileBasis) -> String {
    format!("{};{}", basis.pivot(), encode_list(basis.rows().iter()))
}

fn decode_basis(line: usize, key: &str, value: &str) -> Result<PileBasis, CodecError> {
    let (pivot, rows) = value
        .split_once(';')
        .ok_or_else(|| CodecError::at(line, format!("`{key}` expects `pivot;row,row,...`")))?;
    let pivot = codec::parse_u64(line, key, pivot.trim())?;
    let rows = decode_u64_list(line, key, rows.trim())?;
    let mut basis = PileBasis::new(pivot);
    for &row in &rows {
        basis.insert(pivot ^ row);
    }
    // Re-inserting an echelon basis must reproduce it exactly (each row has
    // a distinct leading bit); anything else means the document was edited.
    if basis.rows() != rows {
        return Err(CodecError::at(
            line,
            format!("`{key}` rows are not a row-echelon basis"),
        ));
    }
    Ok(basis)
}

impl PhaseCheckpoint {
    /// Serializes the checkpoint as `key = value` lines.
    /// [`PhaseCheckpoint::decode`] is the exact inverse.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("phase = {}\n", self.phase.name()));
        out.push_str(&format!("costs = {}\n", report::encode_costs(&self.costs)));
        match &self.artifact {
            PhaseArtifact::Calibration(c) => {
                out.push_str(&format!("threshold_ns = {}\n", c.threshold_ns));
            }
            PhaseArtifact::Coarse(c) => {
                out.push_str(&format!("coarse_rows = {}\n", encode_list(&c.row_bits)));
                out.push_str(&format!("coarse_cols = {}\n", encode_list(&c.column_bits)));
                out.push_str(&format!("coarse_banks = {}\n", encode_list(&c.bank_bits)));
                out.push_str(&format!(
                    "coarse_undetermined = {}\n",
                    encode_list(&c.undetermined)
                ));
            }
            PhaseArtifact::Partition(p) => {
                out.push_str(&format!("pool = {}\n", p.pool_size));
                out.push_str(&format!("rejected = {}\n", p.partition.rejected_piles));
                out.push_str(&format!(
                    "unassigned = {}\n",
                    encode_list(p.partition.unassigned.iter().map(|a| a.raw()))
                ));
                if let Some(kernel) = &p.partition.kernel {
                    out.push_str(&format!("kernel = {}\n", encode_basis(kernel)));
                }
                for (i, pile) in p.partition.piles.iter().enumerate() {
                    out.push_str(&format!(
                        "pile.{i} = {};{}\n",
                        pile.pivot.raw(),
                        encode_list(pile.members.iter().map(|a| a.raw()))
                    ));
                }
            }
            PhaseArtifact::Functions(d) => {
                out.push_str(&format!(
                    "functions = {}\n",
                    encode_list(d.functions.iter().map(|f| f.mask()))
                ));
                out.push_str(&format!(
                    "consistent = {}\n",
                    encode_list(d.consistent_masks.iter().map(|f| f.mask()))
                ));
            }
            PhaseArtifact::Fine(f) => {
                out.push_str(&format!("fine_rows = {}\n", encode_list(&f.row_bits)));
                out.push_str(&format!("fine_cols = {}\n", encode_list(&f.column_bits)));
                out.push_str(&format!("fine_pure = {}\n", encode_list(&f.pure_bank_bits)));
                out.push_str(&format!(
                    "fine_measured = {}\n",
                    encode_list(&f.measured_shared_rows)
                ));
                out.push_str(&format!(
                    "fine_inferred = {}\n",
                    encode_list(&f.inferred_bits)
                ));
            }
            PhaseArtifact::Validation(v) => {
                out.push_str(&format!("bit_checks = {}\n", v.bit_checks));
                out.push_str(&format!("pair_checks = {}\n", v.pair_checks));
                out.push_str(&format!("cached_checks = {}\n", v.cached_checks));
                out.push_str(&format!("mismatches = {}\n", v.mismatches));
            }
        }
        for (i, (a, b, verdict)) in self.cache.iter().enumerate() {
            out.push_str(&format!("cache.{i} = {a},{b},{}\n", u8::from(*verdict)));
        }
        out
    }

    /// Parses a checkpoint written by [`PhaseCheckpoint::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] for malformed lines, unknown keys, a missing
    /// phase/costs header, non-contiguous pile or cache indices, or an
    /// artifact that does not match the named phase.
    pub fn decode(text: &str) -> Result<Self, CodecError> {
        let lines = codec::parse_kv_lines(text)?;
        let missing = |what: &str| CodecError::whole(format!("checkpoint is missing `{what}`"));

        let mut phase = None;
        let mut costs = None;
        let mut fields: std::collections::BTreeMap<&str, (usize, &str)> = Default::default();
        let mut piles: std::collections::BTreeMap<usize, (usize, &str)> = Default::default();
        let mut cache: std::collections::BTreeMap<usize, (usize, &str)> = Default::default();
        for (line, key, value) in lines {
            if key == "phase" {
                phase = Some(
                    Phase::from_name(value)
                        .ok_or_else(|| CodecError::at(line, format!("unknown phase `{value}`")))?,
                );
            } else if key == "costs" {
                costs = Some(report::decode_costs(line, key, value)?);
            } else if let Some(index) = key.strip_prefix("pile.") {
                let index = codec::parse_usize(line, key, index)?;
                piles.insert(index, (line, value));
            } else if let Some(index) = key.strip_prefix("cache.") {
                let index = codec::parse_usize(line, key, index)?;
                cache.insert(index, (line, value));
            } else {
                fields.insert(key, (line, value));
            }
        }
        let phase = phase.ok_or_else(|| missing("phase"))?;
        let costs = costs.ok_or_else(|| missing("costs"))?;

        let field = |key: &str| -> Result<(usize, &str), CodecError> {
            fields.get(key).copied().ok_or_else(|| missing(key))
        };
        let artifact = match phase {
            Phase::Calibration => {
                let (line, value) = field("threshold_ns")?;
                PhaseArtifact::Calibration(CalibrationArtifact {
                    threshold_ns: codec::parse_u64(line, "threshold_ns", value)?,
                })
            }
            Phase::CoarseDetection => {
                let bits = |key| -> Result<Vec<u8>, CodecError> {
                    let (line, value) = field(key)?;
                    decode_u8_list(line, key, value)
                };
                PhaseArtifact::Coarse(CoarseBits {
                    row_bits: bits("coarse_rows")?,
                    column_bits: bits("coarse_cols")?,
                    bank_bits: bits("coarse_banks")?,
                    undetermined: bits("coarse_undetermined")?,
                })
            }
            Phase::Partition => {
                let (line, value) = field("pool")?;
                let pool_size = codec::parse_usize(line, "pool", value)?;
                let (line, value) = field("rejected")?;
                let rejected = codec::parse_u32(line, "rejected", value)?;
                let (line, value) = field("unassigned")?;
                let unassigned = decode_addr_list(line, "unassigned", value)?;
                let kernel = match fields.get("kernel") {
                    Some(&(line, value)) => Some(decode_basis(line, "kernel", value)?),
                    None => None,
                };
                let mut decoded_piles = Vec::with_capacity(piles.len());
                for (expected, (index, (line, value))) in piles.iter().enumerate() {
                    if *index != expected {
                        return Err(CodecError::at(
                            *line,
                            format!("pile indices are not contiguous at `pile.{index}`"),
                        ));
                    }
                    let (pivot, members) = value.split_once(';').ok_or_else(|| {
                        CodecError::at(*line, "a pile expects `pivot;member,member,...`")
                    })?;
                    decoded_piles.push(Pile {
                        pivot: PhysAddr::new(codec::parse_u64(*line, "pile", pivot.trim())?),
                        members: decode_addr_list(*line, "pile", members.trim())?,
                    });
                }
                PhaseArtifact::Partition(PartitionArtifact {
                    pool_size,
                    partition: Partition {
                        piles: decoded_piles,
                        unassigned,
                        rejected_piles: rejected,
                        kernel,
                    },
                })
            }
            Phase::FunctionDetection => {
                let masks = |key| -> Result<Vec<dram_model::XorFunc>, CodecError> {
                    let (line, value) = field(key)?;
                    Ok(decode_u64_list(line, key, value)?
                        .into_iter()
                        .map(dram_model::XorFunc::from_mask)
                        .collect())
                };
                PhaseArtifact::Functions(DetectedFunctions {
                    functions: masks("functions")?,
                    consistent_masks: masks("consistent")?,
                })
            }
            Phase::FineDetection => {
                let bits = |key| -> Result<Vec<u8>, CodecError> {
                    let (line, value) = field(key)?;
                    decode_u8_list(line, key, value)
                };
                PhaseArtifact::Fine(FineBits {
                    row_bits: bits("fine_rows")?,
                    column_bits: bits("fine_cols")?,
                    pure_bank_bits: bits("fine_pure")?,
                    measured_shared_rows: bits("fine_measured")?,
                    inferred_bits: bits("fine_inferred")?,
                })
            }
            Phase::Validation => {
                let count = |key| -> Result<u32, CodecError> {
                    let (line, value) = field(key)?;
                    codec::parse_u32(line, key, value)
                };
                PhaseArtifact::Validation(ValidationReport {
                    bit_checks: count("bit_checks")?,
                    pair_checks: count("pair_checks")?,
                    cached_checks: count("cached_checks")?,
                    mismatches: count("mismatches")?,
                })
            }
        };

        let mut decoded_cache = Vec::with_capacity(cache.len());
        for (expected, (index, (line, value))) in cache.iter().enumerate() {
            if *index != expected {
                return Err(CodecError::at(
                    *line,
                    format!("cache indices are not contiguous at `cache.{index}`"),
                ));
            }
            let parts: Vec<&str> = value.split(',').map(str::trim).collect();
            let [a, b, verdict] = parts.as_slice() else {
                return Err(CodecError::at(
                    *line,
                    "a cache entry expects `low,high,0|1`",
                ));
            };
            let verdict = match *verdict {
                "0" => false,
                "1" => true,
                other => {
                    return Err(CodecError::at(
                        *line,
                        format!("cache verdict expects 0 or 1, got `{other}`"),
                    ))
                }
            };
            decoded_cache.push((
                codec::parse_u64(*line, "cache", a)?,
                codec::parse_u64(*line, "cache", b)?,
                verdict,
            ));
        }

        Ok(PhaseCheckpoint {
            phase,
            costs,
            artifact,
            cache: decoded_cache,
        })
    }
}

/// A directory of phase checkpoints: one text file per completed phase plus
/// the configuration the run started with.
///
/// The store is what makes a killed run resumable: the engine saves a
/// [`PhaseCheckpoint`] after each phase, and on the next run loads the
/// longest contiguous prefix of completed phases, replays their artifacts
/// and continues from the boundary. The stored configuration guards the
/// resume — artifacts measured under one configuration must never silently
/// seed a run with another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// A store rooted at `dir` (created on the first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointStore { dir: dir.into() }
    }

    /// The checkpoint directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn config_path(&self) -> PathBuf {
        self.dir.join("config.txt")
    }

    fn phase_path(&self, phase: Phase) -> PathBuf {
        self.dir
            .join(format!("{:02}-{}.phase", phase.index(), phase.name()))
    }

    fn io_error(path: &Path, error: &std::io::Error) -> DramDigError {
        DramDigError::Checkpoint {
            reason: format!("{}: {error}", path.display()),
        }
    }

    /// Atomically writes `text` to `path` (write to a staging file, then
    /// rename): a kill mid-write can never leave a truncated checkpoint
    /// that a later resume would half-trust.
    fn write_atomic(&self, path: &Path, text: &str) -> Result<(), DramDigError> {
        std::fs::create_dir_all(&self.dir).map_err(|e| Self::io_error(&self.dir, &e))?;
        let staged = path.with_extension("tmp");
        std::fs::write(&staged, text)
            .and_then(|()| std::fs::rename(&staged, path))
            .map_err(|e| Self::io_error(path, &e))
    }

    fn read_optional(path: &Path) -> Result<Option<String>, DramDigError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(Self::io_error(path, &e)),
        }
    }

    /// Persists the configuration the run uses.
    ///
    /// # Errors
    ///
    /// Returns [`DramDigError::Checkpoint`] on IO failures.
    pub fn save_config(&self, config: &DramDigConfig) -> Result<(), DramDigError> {
        self.write_atomic(&self.config_path(), &config.encode())
    }

    /// Loads the stored configuration, if any.
    ///
    /// # Errors
    ///
    /// Returns [`DramDigError::Checkpoint`] on IO failures or a corrupt
    /// document.
    pub fn load_config(&self) -> Result<Option<DramDigConfig>, DramDigError> {
        let Some(text) = Self::read_optional(&self.config_path())? else {
            return Ok(None);
        };
        DramDigConfig::decode(&text)
            .map(Some)
            .map_err(|e| DramDigError::Checkpoint {
                reason: format!("{}: {e}", self.config_path().display()),
            })
    }

    /// Persists one completed phase.
    ///
    /// # Errors
    ///
    /// Returns [`DramDigError::Checkpoint`] on IO failures.
    pub fn save_phase(&self, checkpoint: &PhaseCheckpoint) -> Result<(), DramDigError> {
        self.write_atomic(&self.phase_path(checkpoint.phase), &checkpoint.encode())
    }

    /// Atomically writes an arbitrary sidecar file into the checkpoint
    /// directory with the same stage-then-rename protocol as the phase
    /// files (a kill mid-write can never leave a truncated sidecar). The
    /// CLI records its `uncover.meta` run identity this way.
    ///
    /// # Errors
    ///
    /// Returns [`DramDigError::Checkpoint`] on IO failures.
    pub fn save_sidecar(&self, file_name: &str, contents: &str) -> Result<(), DramDigError> {
        self.write_atomic(&self.dir.join(file_name), contents)
    }

    /// Loads one phase's checkpoint, if present.
    ///
    /// # Errors
    ///
    /// Returns [`DramDigError::Checkpoint`] on IO failures or a corrupt
    /// document.
    pub fn load_phase(&self, phase: Phase) -> Result<Option<PhaseCheckpoint>, DramDigError> {
        let path = self.phase_path(phase);
        let Some(text) = Self::read_optional(&path)? else {
            return Ok(None);
        };
        let checkpoint = PhaseCheckpoint::decode(&text).map_err(|e| DramDigError::Checkpoint {
            reason: format!("{}: {e}", path.display()),
        })?;
        if checkpoint.phase != phase {
            return Err(DramDigError::Checkpoint {
                reason: format!(
                    "{}: names phase `{}` but was stored for `{}`",
                    path.display(),
                    checkpoint.phase.name(),
                    phase.name()
                ),
            });
        }
        Ok(Some(checkpoint))
    }

    /// Loads the longest contiguous prefix of completed phases, in
    /// execution order. A gap (e.g. a hand-deleted file) truncates the
    /// prefix: everything after it re-runs rather than trusting
    /// out-of-order artifacts.
    ///
    /// # Errors
    ///
    /// Returns [`DramDigError::Checkpoint`] on IO failures or corrupt
    /// documents.
    pub fn load_phases(&self) -> Result<Vec<PhaseCheckpoint>, DramDigError> {
        let mut restored = Vec::new();
        for phase in Phase::ALL {
            match self.load_phase(phase)? {
                Some(checkpoint) => restored.push(checkpoint),
                None => break,
            }
        }
        Ok(restored)
    }

    /// Removes the whole checkpoint directory (a missing directory is fine).
    ///
    /// # Errors
    ///
    /// Returns [`DramDigError::Checkpoint`] on IO failures.
    pub fn clear(&self) -> Result<(), DramDigError> {
        match std::fs::remove_dir_all(&self.dir) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(Self::io_error(&self.dir, &e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoints() -> Vec<PhaseCheckpoint> {
        let costs = PhaseCosts {
            measurements: 10,
            accesses: 20,
            elapsed_ns: 30,
            cache_hits: 1,
            cache_misses: 9,
        };
        let mut kernel = PileBasis::new(0x1000);
        kernel.insert(0x1000 ^ 0b0110_0000_0000_0000);
        kernel.insert(0x1000 ^ 0b1010_0000_0000_0000);
        vec![
            PhaseCheckpoint {
                phase: Phase::Calibration,
                costs,
                artifact: PhaseArtifact::Calibration(CalibrationArtifact { threshold_ns: 290 }),
                cache: Vec::new(),
            },
            PhaseCheckpoint {
                phase: Phase::CoarseDetection,
                costs,
                artifact: PhaseArtifact::Coarse(CoarseBits {
                    row_bits: vec![19, 20],
                    column_bits: vec![0, 1, 2],
                    bank_bits: vec![13, 14],
                    undetermined: Vec::new(),
                }),
                cache: vec![(0x1000, 0x2000, true), (0x1000, 0x3000, false)],
            },
            PhaseCheckpoint {
                phase: Phase::Partition,
                costs,
                artifact: PhaseArtifact::Partition(PartitionArtifact {
                    pool_size: 4,
                    partition: Partition {
                        piles: vec![
                            Pile {
                                pivot: PhysAddr::new(0x1000),
                                members: vec![PhysAddr::new(0x1000), PhysAddr::new(0x7000)],
                            },
                            Pile {
                                pivot: PhysAddr::new(0x3000),
                                members: vec![PhysAddr::new(0x3000)],
                            },
                        ],
                        unassigned: vec![PhysAddr::new(0x5000)],
                        rejected_piles: 3,
                        kernel: Some(kernel),
                    },
                }),
                cache: vec![(0x1000, 0x7000, true)],
            },
            PhaseCheckpoint {
                phase: Phase::FunctionDetection,
                costs,
                artifact: PhaseArtifact::Functions(DetectedFunctions {
                    functions: vec![dram_model::XorFunc::from_mask(0b0110_0000_0000_0000)],
                    consistent_masks: vec![
                        dram_model::XorFunc::from_mask(0b0110_0000_0000_0000),
                        dram_model::XorFunc::from_mask(0b1010_0000_0000_0000),
                    ],
                }),
                cache: Vec::new(),
            },
            PhaseCheckpoint {
                phase: Phase::FineDetection,
                costs,
                artifact: PhaseArtifact::Fine(FineBits {
                    row_bits: vec![14, 19, 20],
                    column_bits: vec![0, 1, 2],
                    pure_bank_bits: vec![13],
                    measured_shared_rows: vec![14],
                    inferred_bits: Vec::new(),
                }),
                cache: Vec::new(),
            },
            PhaseCheckpoint {
                phase: Phase::Validation,
                costs,
                artifact: PhaseArtifact::Validation(ValidationReport {
                    bit_checks: 3,
                    pair_checks: 60,
                    cached_checks: 12,
                    mismatches: 1,
                }),
                cache: Vec::new(),
            },
        ]
    }

    #[test]
    fn every_artifact_kind_round_trips() {
        for checkpoint in sample_checkpoints() {
            let text = checkpoint.encode();
            let decoded = PhaseCheckpoint::decode(&text).unwrap();
            assert_eq!(decoded, checkpoint, "{}", checkpoint.phase.name());
            assert_eq!(decoded.artifact.phase(), checkpoint.phase);
        }
    }

    #[test]
    fn decode_rejects_malformed_checkpoints() {
        assert!(PhaseCheckpoint::decode("").is_err(), "missing phase");
        assert!(PhaseCheckpoint::decode("phase = warp\ncosts = 0,0,0,0,0\n").is_err());
        assert!(
            PhaseCheckpoint::decode("phase = calibration\ncosts = 0,0,0,0,0\n").is_err(),
            "missing threshold"
        );
        // Non-contiguous cache and pile indices are rejected.
        let base = "phase = calibration\ncosts = 0,0,0,0,0\nthreshold_ns = 1\n";
        assert!(PhaseCheckpoint::decode(&format!("{base}cache.1 = 1,2,1\n")).is_err());
        assert!(PhaseCheckpoint::decode(&format!("{base}cache.0 = 1,2,maybe\n")).is_err());
        let partition =
            "phase = partition\ncosts = 0,0,0,0,0\npool = 2\nrejected = 0\nunassigned = \n";
        assert!(PhaseCheckpoint::decode(&format!("{partition}pile.1 = 0;0\n")).is_err());
        assert!(PhaseCheckpoint::decode(&format!("{partition}pile.0 = garbage\n")).is_err());
        // A kernel whose rows are not echelon is rejected.
        assert!(
            PhaseCheckpoint::decode(&format!("{partition}kernel = 0;3,1,2\npile.0 = 0;0\n"))
                .is_err()
        );
    }

    #[test]
    fn store_round_trips_phases_and_config_on_disk() {
        let dir = std::env::temp_dir().join(format!("dramdig-ckpt-{}", std::process::id()));
        let store = CheckpointStore::new(&dir);
        store.clear().unwrap();
        assert_eq!(store.load_config().unwrap(), None);
        assert!(store.load_phases().unwrap().is_empty());

        let config = DramDigConfig::fast().with_seed(99);
        store.save_config(&config).unwrap();
        assert_eq!(store.load_config().unwrap(), Some(config));

        let checkpoints = sample_checkpoints();
        // Save out of order: load_phases still returns execution order.
        for checkpoint in checkpoints.iter().rev() {
            store.save_phase(checkpoint).unwrap();
        }
        assert_eq!(store.load_phases().unwrap(), checkpoints);

        // A gap truncates the restored prefix.
        std::fs::remove_file(dir.join("02-partition.phase")).unwrap();
        let prefix = store.load_phases().unwrap();
        assert_eq!(prefix.len(), 2);
        assert_eq!(prefix[1].phase, Phase::CoarseDetection);

        // A corrupt file is an error, not silent truncation.
        std::fs::write(dir.join("01-coarse.phase"), "phase = coarse\n").unwrap();
        assert!(store.load_phases().is_err());

        store.clear().unwrap();
        assert!(!dir.exists());
        store.clear().unwrap(); // idempotent
    }
}
