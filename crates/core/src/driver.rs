//! The end-to-end DRAMDig driver (Figure 1 of the paper).

use std::fmt;

use dram_model::AddressMapping;
use mem_probe::{MemoryProbe, ObservableCost, ObservableKind, ProbeStats};

use crate::coarse::CoarseBits;
use crate::config::DramDigConfig;
use crate::error::DramDigError;
use crate::fine::{FineBits, ValidationReport};
use crate::functions::DetectedFunctions;
use crate::knowledge::DomainKnowledge;

/// Measurement cost of one pipeline phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCosts {
    /// Pair-latency measurements issued during the phase.
    pub measurements: u64,
    /// Individual memory accesses issued during the phase.
    pub accesses: u64,
    /// Simulated (or wall-clock, for the hardware probe) nanoseconds spent.
    pub elapsed_ns: u64,
    /// SBDR queries answered from the probe cache during the phase.
    pub cache_hits: u64,
    /// SBDR queries that missed the probe cache during the phase.
    pub cache_misses: u64,
}

impl From<ProbeStats> for PhaseCosts {
    fn from(stats: ProbeStats) -> Self {
        PhaseCosts {
            measurements: stats.measurements,
            accesses: stats.accesses,
            elapsed_ns: stats.elapsed_ns,
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
        }
    }
}

impl From<PhaseCosts> for ProbeStats {
    fn from(costs: PhaseCosts) -> Self {
        ProbeStats {
            measurements: costs.measurements,
            accesses: costs.accesses,
            elapsed_ns: costs.elapsed_ns,
            cache_hits: costs.cache_hits,
            cache_misses: costs.cache_misses,
        }
    }
}

impl PhaseCosts {
    /// The cost delta between two snapshots of the *same* probe.
    /// Subtraction saturates: [`ProbeStats::merge`] saturates at `u64::MAX`,
    /// so a later snapshot of a long-lived probe can legitimately carry a
    /// saturated counter that is no longer strictly larger than an earlier
    /// one — the delta clamps to zero instead of panicking in debug builds.
    pub(crate) fn between(before: ProbeStats, after: ProbeStats) -> Self {
        PhaseCosts {
            measurements: after.measurements.saturating_sub(before.measurements),
            accesses: after.accesses.saturating_sub(before.accesses),
            elapsed_ns: after.elapsed_ns.saturating_sub(before.elapsed_ns),
            cache_hits: after.cache_hits.saturating_sub(before.cache_hits),
            cache_misses: after.cache_misses.saturating_sub(before.cache_misses),
        }
    }

    /// Elapsed time in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_ns as f64 / 1e9
    }

    /// Sums two cost snapshots for aggregating *independent* runs — e.g.
    /// per-job totals into campaign totals. Delegates to
    /// [`ProbeStats::merge`] (the counters correspond one-to-one), which is
    /// also where the caveats live: saturating, and never for two snapshots
    /// of the same run.
    #[must_use]
    pub fn merge(self, other: PhaseCosts) -> PhaseCosts {
        ProbeStats::from(self).merge(other.into()).into()
    }
}

/// Names of the pipeline phases, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Latency threshold calibration.
    Calibration,
    /// Step 1: coarse row/column detection.
    CoarseDetection,
    /// Step 2a/2b: address selection and pile partition.
    Partition,
    /// Step 2c: bank-function detection (no measurements, pure computation).
    FunctionDetection,
    /// Step 3: fine-grained shared-bit detection.
    FineDetection,
    /// Optional measurement-based validation.
    Validation,
}

/// One row of the single source of truth for everything phase-related:
/// execution order, the stable codec identifier and the human-readable
/// label. Adding a phase means adding one row here (and a variant above) —
/// [`Phase::ALL`], [`Phase::name`], [`Phase::from_name`] and the `Display`
/// impl all derive from this table, so they cannot desynchronize.
struct PhaseInfo {
    phase: Phase,
    name: &'static str,
    display: &'static str,
}

const PHASE_TABLE: [PhaseInfo; 6] = [
    PhaseInfo {
        phase: Phase::Calibration,
        name: "calibration",
        display: "calibration",
    },
    PhaseInfo {
        phase: Phase::CoarseDetection,
        name: "coarse",
        display: "coarse row/column detection",
    },
    PhaseInfo {
        phase: Phase::Partition,
        name: "partition",
        display: "address selection & partition",
    },
    PhaseInfo {
        phase: Phase::FunctionDetection,
        name: "detect",
        display: "bank function detection",
    },
    PhaseInfo {
        phase: Phase::FineDetection,
        name: "fine",
        display: "fine-grained detection",
    },
    PhaseInfo {
        phase: Phase::Validation,
        name: "validation",
        display: "validation",
    },
];

// The table must list the phases in declaration (= execution) order, or the
// `as usize` indexing below would hand out the wrong row.
const _: () = {
    let mut i = 0;
    while i < PHASE_TABLE.len() {
        assert!(PHASE_TABLE[i].phase as usize == i);
        i += 1;
    }
};

impl Phase {
    /// Every phase, in execution order (derived from the phase table).
    pub const ALL: [Phase; 6] = {
        let mut all = [Phase::Calibration; 6];
        let mut i = 0;
        while i < PHASE_TABLE.len() {
            all[i] = PHASE_TABLE[i].phase;
            i += 1;
        }
        all
    };

    /// Position of this phase in [`Phase::ALL`] (execution order).
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable machine-readable identifier, used by the serialized report
    /// codec, checkpoint file names and the benchmark JSON.
    /// [`Phase::from_name`] is its inverse.
    pub const fn name(self) -> &'static str {
        PHASE_TABLE[self.index()].name
    }

    /// Parses a [`Phase::name`] identifier back into the phase.
    pub fn from_name(name: &str) -> Option<Phase> {
        PHASE_TABLE
            .iter()
            .find(|info| info.name == name)
            .map(|info| info.phase)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", PHASE_TABLE[self.index()].display)
    }
}

/// Everything DRAMDig learned during one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The recovered physical-address → DRAM mapping.
    pub mapping: AddressMapping,
    /// Step-1 result (coarse bits).
    pub coarse: CoarseBits,
    /// Step-2 result: selected pool size and accepted piles.
    pub pool_size: usize,
    /// Number of accepted same-bank piles.
    pub pile_count: usize,
    /// Step-2c result (detected functions plus all consistent masks).
    pub functions: DetectedFunctions,
    /// Step-3 result (full bit classification).
    pub fine: FineBits,
    /// Validation outcome, when enabled.
    pub validation: Option<ValidationReport>,
    /// The calibrated conflict threshold in nanoseconds.
    pub threshold_ns: u64,
    /// Per-phase measurement costs.
    pub phase_costs: Vec<(Phase, PhaseCosts)>,
    /// Total cost across all phases.
    pub total: PhaseCosts,
    /// XOR row-remap mask recovered by an extra observable channel
    /// (canonicalised under reflection), when one was declared, consulted
    /// and cross-checked. `None` on timing-only runs: an XOR involution on
    /// the row line preserves row equality and is invisible to conflict
    /// timing.
    pub row_remap: Option<u32>,
    /// What each extra observable channel the run consulted spent, in
    /// consultation order. Empty on timing-only runs (the timing spend is
    /// already in [`RunReport::phase_costs`]).
    pub observable_costs: Vec<(ObservableKind, ObservableCost)>,
}

impl RunReport {
    /// Cost of one phase, if it ran.
    pub fn cost_of(&self, phase: Phase) -> Option<PhaseCosts> {
        self.phase_costs
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, c)| *c)
    }

    /// Total simulated seconds spent, the quantity plotted in Figure 2.
    pub fn elapsed_seconds(&self) -> f64 {
        self.total.elapsed_seconds()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "recovered mapping: {}", self.mapping)?;
        if let Some(mask) = self.row_remap {
            writeln!(
                f,
                "row remap: logical row r stored in array row r ^ {mask:#x}"
            )?;
        }
        writeln!(
            f,
            "pool: {} addresses in {} piles; threshold {} ns",
            self.pool_size, self.pile_count, self.threshold_ns
        )?;
        for (phase, cost) in &self.phase_costs {
            writeln!(
                f,
                "  {phase}: {} measurements, {:.3} s",
                cost.measurements,
                cost.elapsed_seconds()
            )?;
        }
        for (kind, cost) in &self.observable_costs {
            writeln!(
                f,
                "  observable {kind}: {} hammer pairs, {} timing pairs, {:.3} s",
                cost.hammer_pairs,
                cost.timing_pairs,
                cost.elapsed_ns as f64 / 1e9
            )?;
        }
        if self.total.cache_hits + self.total.cache_misses > 0 {
            writeln!(
                f,
                "probe cache: {} hits, {} misses",
                self.total.cache_hits, self.total.cache_misses
            )?;
        }
        write!(
            f,
            "total: {} measurements, {:.3} s simulated",
            self.total.measurements,
            self.total.elapsed_seconds()
        )
    }
}

/// The knowledge-assisted reverse-engineering tool.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug, Clone)]
pub struct DramDig {
    knowledge: DomainKnowledge,
    config: DramDigConfig,
}

impl DramDig {
    /// Creates a tool instance for a machine described by `knowledge`.
    pub fn new(knowledge: DomainKnowledge, config: DramDigConfig) -> Self {
        DramDig { knowledge, config }
    }

    /// The domain knowledge this instance uses.
    pub fn knowledge(&self) -> &DomainKnowledge {
        &self.knowledge
    }

    /// The configuration this instance uses.
    pub fn config(&self) -> &DramDigConfig {
        &self.config
    }

    /// Runs the full three-step pipeline against a probe and returns the
    /// recovered mapping plus cost accounting.
    ///
    /// This is a thin compatibility wrapper over
    /// [`PipelineEngine`](crate::engine::PipelineEngine) with no checkpoint
    /// directory, no budget and the silent observer — use the engine
    /// directly for resumable runs, budget enforcement or progress events.
    ///
    /// # Errors
    ///
    /// Any phase can fail; the error names the phase and the reason (see
    /// [`DramDigError`]). In particular a validation agreement below 90%
    /// yields [`DramDigError::Validation`].
    pub fn run<P: MemoryProbe>(&mut self, probe: &mut P) -> Result<RunReport, DramDigError> {
        crate::engine::PipelineEngine::new(self.knowledge.clone(), self.config.clone()).run(
            probe,
            &crate::engine::EngineOptions::default(),
            &mut crate::engine::NullObserver,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::MachineSetting;
    use dram_sim::{PhysMemory, SimConfig, SimMachine};
    use mem_probe::SimProbe;

    fn probe_for(number: u8) -> (SimProbe, MachineSetting) {
        let setting = MachineSetting::by_number(number).unwrap();
        let machine = SimMachine::from_setting(&setting, SimConfig::default());
        let probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
        (probe, setting)
    }

    fn run_setting(number: u8, config: DramDigConfig) -> (RunReport, MachineSetting) {
        let (mut probe, setting) = probe_for(number);
        let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
        let mut tool = DramDig::new(knowledge, config);
        let report = tool.run(&mut probe).unwrap();
        (report, setting)
    }

    #[test]
    fn recovers_haswell_mapping_end_to_end() {
        let (report, setting) = run_setting(4, DramDigConfig::fast());
        assert!(report.mapping.equivalent_to(setting.mapping()));
        assert_eq!(report.pile_count, 8);
        assert!(report.validation.unwrap().agreement() > 0.95);
        assert!(report.total.measurements > 0);
        assert!(report.elapsed_seconds() > 0.0);
    }

    #[test]
    fn recovers_skylake_single_channel_mapping() {
        let (report, setting) = run_setting(7, DramDigConfig::fast());
        assert!(report.mapping.equivalent_to(setting.mapping()));
        assert_eq!(report.mapping.row_bits(), setting.mapping().row_bits());
        assert_eq!(
            report.mapping.column_bits(),
            setting.mapping().column_bits()
        );
    }

    #[test]
    fn report_exposes_phase_costs_in_order() {
        let (report, _) = run_setting(4, DramDigConfig::fast());
        let phases: Vec<Phase> = report.phase_costs.iter().map(|(p, _)| *p).collect();
        assert_eq!(
            phases,
            vec![
                Phase::Calibration,
                Phase::CoarseDetection,
                Phase::Partition,
                Phase::FunctionDetection,
                Phase::FineDetection,
                Phase::Validation,
            ]
        );
        // The partition dominates the measurement budget, as the paper notes.
        let partition = report.cost_of(Phase::Partition).unwrap();
        let coarse = report.cost_of(Phase::CoarseDetection).unwrap();
        assert!(partition.measurements > coarse.measurements);
        let text = report.to_string();
        assert!(text.contains("partition"));
    }

    #[test]
    fn optimized_profile_recovers_the_same_mapping_with_fewer_measurements() {
        let (naive, setting) = run_setting(4, DramDigConfig::naive());
        let (fast, _) = run_setting(4, DramDigConfig::optimized());
        assert!(naive.mapping.equivalent_to(setting.mapping()));
        assert!(fast.mapping.equivalent_to(setting.mapping()));
        assert!(
            fast.total.measurements * 3 <= naive.total.measurements,
            "optimized {} vs naive {} measurements",
            fast.total.measurements,
            naive.total.measurements
        );
        // The naive profile never consults a cache.
        assert_eq!(naive.total.cache_hits + naive.total.cache_misses, 0);
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_seed() {
        let (a, _) = run_setting(7, DramDigConfig::fast());
        let (b, _) = run_setting(7, DramDigConfig::fast());
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.total.measurements, b.total.measurements);
    }

    #[test]
    fn disabled_system_info_fails_cleanly() {
        let (mut probe, setting) = probe_for(4);
        let knowledge =
            DomainKnowledge::new(setting.system, Some(setting.microarch)).without_system_info();
        let mut tool = DramDig::new(knowledge, DramDigConfig::fast());
        let err = tool.run(&mut probe).unwrap_err();
        assert!(matches!(err, DramDigError::MissingKnowledge { .. }));
    }

    #[test]
    fn phase_names_round_trip() {
        for phase in Phase::ALL {
            assert_eq!(Phase::from_name(phase.name()), Some(phase));
        }
        assert_eq!(Phase::from_name("warp-drive"), None);
    }

    #[test]
    fn phase_costs_merge_sums_and_saturates() {
        let a = PhaseCosts {
            measurements: 5,
            accesses: 10,
            elapsed_ns: 100,
            cache_hits: 2,
            cache_misses: 3,
        };
        let b = PhaseCosts {
            measurements: 7,
            accesses: 1,
            elapsed_ns: u64::MAX,
            cache_hits: 1,
            cache_misses: 0,
        };
        let m = a.merge(b);
        assert_eq!(m.measurements, 12);
        assert_eq!(m.accesses, 11);
        assert_eq!(m.elapsed_ns, u64::MAX, "saturating, not wrapping");
        assert_eq!(m.cache_hits + m.cache_misses, 6);
        assert_eq!(a.merge(PhaseCosts::default()), a);
    }

    #[test]
    fn between_saturates_on_wrapped_counters() {
        // `ProbeStats::merge` saturates, so a later snapshot can carry a
        // counter that is not strictly larger than an earlier one; the
        // delta must clamp to zero instead of panicking.
        let before = ProbeStats {
            measurements: 10,
            accesses: u64::MAX,
            elapsed_ns: 5,
            cache_hits: 0,
            cache_misses: 0,
        };
        let after = ProbeStats {
            measurements: 7,
            accesses: u64::MAX,
            elapsed_ns: 9,
            cache_hits: 0,
            cache_misses: 0,
        };
        let delta = PhaseCosts::between(before, after);
        assert_eq!(delta.measurements, 0, "clamped, not wrapped");
        assert_eq!(delta.accesses, 0);
        assert_eq!(delta.elapsed_ns, 4);
    }

    #[test]
    fn phase_table_is_the_single_source_of_truth() {
        for (i, phase) in Phase::ALL.into_iter().enumerate() {
            assert_eq!(phase.index(), i);
            assert_eq!(Phase::from_name(phase.name()), Some(phase));
            assert!(!phase.to_string().is_empty());
        }
        // Codec names and display labels stay what the serialized reports
        // and the benchmark JSON already use.
        assert_eq!(Phase::FunctionDetection.name(), "detect");
        assert_eq!(
            Phase::Partition.to_string(),
            "address selection & partition"
        );
    }

    #[test]
    fn accessors_round_trip() {
        let (_, setting) = probe_for(4);
        let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
        let tool = DramDig::new(knowledge.clone(), DramDigConfig::fast());
        assert_eq!(tool.knowledge(), &knowledge);
        assert_eq!(tool.config(), &DramDigConfig::fast());
    }
}
