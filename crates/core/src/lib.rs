//! # DRAMDig — knowledge-assisted DRAM address-mapping reverse engineering
//!
//! This crate implements the algorithm of *DRAMDig: A Knowledge-assisted Tool
//! to Uncover DRAM Address Mapping* (Wang, Zhang, Cheng, Nepal — DAC 2020).
//! Given only a timing side channel (row-buffer conflicts, exposed through
//! [`mem_probe::MemoryProbe`]) and *domain knowledge* about the machine
//! (DDR specs, `dmidecode` output, empirical observations about Intel bank
//! hashing), it deterministically recovers how physical addresses map to DRAM
//! banks, rows and columns.
//!
//! The pipeline mirrors Figure 1 of the paper:
//!
//! 1. **Coarse row & column bit detection** ([`coarse`]) — single-bit-flip
//!    latency measurements classify the physical address bits that index rows
//!    and columns *and do not participate in bank functions*.
//! 2. **Bank address function resolving** ([`select`], [`partition`],
//!    [`functions`]) — Algorithm 1 selects a pool of physical addresses
//!    covering all bank-bit combinations, Algorithm 2 partitions them into
//!    same-bank piles using the timing channel, Algorithm 3 searches XOR
//!    masks that are constant per pile, removes GF(2)-redundant candidates
//!    and checks that the surviving functions number the piles correctly.
//! 3. **Fine-grained row & column bit detection** ([`fine`]) — resolves the
//!    row/column bits that are *shared* with bank functions, using two-bit
//!    function measurements, the DDR-spec bit counts and the empirical
//!    observation about the widest function's lowest bit.
//!
//! The end-to-end driver is [`DramDig`]; it produces an
//! [`dram_model::AddressMapping`] plus a [`RunReport`] with per-phase cost
//! accounting (used to regenerate Figure 2 of the paper). [`DramDig`] is a
//! thin wrapper over the [`engine::PipelineEngine`], an explicit state
//! machine over [`Phase::ALL`] with per-phase checkpoints (resume a killed
//! run from its last phase boundary with a byte-identical report),
//! measurement/time budgets, cooperative cancellation and structured
//! progress events — see the [`engine`] module docs.
//!
//! # Example
//!
//! ```
//! use dram_model::MachineSetting;
//! use dram_sim::{PhysMemory, SimConfig, SimMachine};
//! use mem_probe::SimProbe;
//! use dramdig::{DomainKnowledge, DramDig, DramDigConfig};
//!
//! // Simulate the paper's machine No.4 (Haswell, DDR3 4 GiB).
//! let setting = MachineSetting::no4_haswell_ddr3_4g();
//! let machine = SimMachine::from_setting(&setting, SimConfig::default());
//! let memory = PhysMemory::full(setting.system.capacity_bytes);
//! let mut probe = SimProbe::new(machine, memory);
//!
//! let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
//! let mut dramdig = DramDig::new(knowledge, DramDigConfig::default());
//! let report = dramdig.run(&mut probe)?;
//! assert!(report.mapping.equivalent_to(setting.mapping()));
//! # Ok::<(), dramdig::DramDigError>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod artifact;
pub mod coarse;
pub mod codec;
pub mod config;
pub mod driver;
pub mod engine;
pub mod error;
pub mod fine;
pub mod functions;
pub mod knowledge;
pub mod partition;
pub mod report;
pub mod select;
pub mod trace;

pub use artifact::{CheckpointStore, PhaseArtifact, PhaseCheckpoint};
pub use codec::CodecError;
pub use config::{DramDigConfig, PartitionStrategy};
pub use driver::{DramDig, Phase, PhaseCosts, RunReport};
pub use engine::{
    Budget, EngineEvent, EngineOptions, NullObserver, Observer, PhaseContext, PhaseRunner,
    PipelineEngine, PipelineState,
};
pub use error::DramDigError;
pub use knowledge::DomainKnowledge;
pub use report::RecoveryReport;
pub use trace::TelemetryObserver;

pub use dram_model::{AddressMapping, PhysAddr, XorFunc};
