//! Error type of the DRAMDig pipeline.

use std::fmt;

use dram_model::ModelError;
use mem_probe::ProbeError;

/// Errors that can occur while reverse engineering a DRAM address mapping.
#[derive(Debug)]
#[non_exhaustive]
pub enum DramDigError {
    /// The timing-channel calibration failed.
    Calibration(ProbeError),
    /// Step 1 could not classify the physical address bits.
    CoarseDetection {
        /// Explanation of what went wrong.
        reason: String,
    },
    /// Algorithm 1 could not select a suitable address pool.
    Selection {
        /// Explanation of what went wrong.
        reason: String,
    },
    /// Algorithm 2 could not partition the pool into same-bank piles.
    Partition {
        /// Explanation of what went wrong.
        reason: String,
    },
    /// Algorithm 3 could not resolve the bank address functions.
    FunctionDetection {
        /// Explanation of what went wrong.
        reason: String,
    },
    /// Step 3 could not assign the remaining shared row/column bits.
    Refinement {
        /// Explanation of what went wrong.
        reason: String,
    },
    /// The recovered bit classification contradicts follow-up measurements.
    Validation {
        /// Explanation of which check disagreed.
        reason: String,
    },
    /// The recovered pieces do not form a bijective mapping.
    Model(ModelError),
    /// Required domain knowledge is missing for the requested operation.
    MissingKnowledge {
        /// Which knowledge group is required.
        group: &'static str,
    },
    /// The engine stopped cooperatively at a phase boundary (budget
    /// exhausted, cancellation requested or an explicit stop point) without
    /// any phase having failed. When a checkpoint directory is configured,
    /// every completed phase survives and a resumed run continues from the
    /// boundary with a byte-identical final report.
    Interrupted {
        /// The first phase that did *not* run.
        phase: crate::driver::Phase,
        /// Why the engine stopped.
        reason: String,
    },
    /// A checkpoint could not be written, read or applied.
    Checkpoint {
        /// Explanation of what went wrong.
        reason: String,
    },
}

impl fmt::Display for DramDigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramDigError::Calibration(e) => write!(f, "calibration failed: {e}"),
            DramDigError::CoarseDetection { reason } => {
                write!(f, "coarse row/column detection failed: {reason}")
            }
            DramDigError::Selection { reason } => {
                write!(f, "physical address selection failed: {reason}")
            }
            DramDigError::Partition { reason } => {
                write!(f, "physical address partition failed: {reason}")
            }
            DramDigError::FunctionDetection { reason } => {
                write!(f, "bank address function detection failed: {reason}")
            }
            DramDigError::Refinement { reason } => {
                write!(f, "fine-grained bit detection failed: {reason}")
            }
            DramDigError::Validation { reason } => {
                write!(f, "validation of the recovered mapping failed: {reason}")
            }
            DramDigError::Model(e) => write!(f, "recovered mapping is inconsistent: {e}"),
            DramDigError::MissingKnowledge { group } => {
                write!(f, "required domain knowledge is disabled: {group}")
            }
            DramDigError::Interrupted { phase, reason } => {
                write!(f, "pipeline interrupted before {phase}: {reason}")
            }
            DramDigError::Checkpoint { reason } => {
                write!(f, "checkpoint error: {reason}")
            }
        }
    }
}

impl std::error::Error for DramDigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DramDigError::Calibration(e) => Some(e),
            DramDigError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProbeError> for DramDigError {
    fn from(e: ProbeError) -> Self {
        DramDigError::Calibration(e)
    }
}

impl From<ModelError> for DramDigError {
    fn from(e: ModelError) -> Self {
        DramDigError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DramDigError::Partition {
            reason: "only 3 piles found".into(),
        };
        assert!(e.to_string().contains("partition"));
        assert!(e.to_string().contains("3 piles"));
        let e = DramDigError::MissingKnowledge {
            group: "specifications",
        };
        assert!(e.to_string().contains("specifications"));
    }

    #[test]
    fn conversions_preserve_source() {
        use std::error::Error;
        let model_err = ModelError::LinearlyDependentFunctions;
        let e: DramDigError = model_err.into();
        assert!(e.source().is_some());
        let probe_err = ProbeError::CalibrationFailed { reason: "x".into() };
        let e: DramDigError = probe_err.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramDigError>();
    }
}
