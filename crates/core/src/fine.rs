//! Step 3 — fine-grained row & column bit detection (Section III-E).
//!
//! After Step 2 the bank address functions are known, but some of their input
//! bits double as row or column bits (the "shared bits" of Figure 1). This
//! step classifies every function bit as shared-row, shared-column or pure
//! bank bit using three sources of information:
//!
//! 1. **Two-bit function measurements** — for a two-bit function whose bits
//!    appear in no other function, flipping both bits keeps the bank fixed;
//!    a high latency then proves the *higher* bit is a row bit (and the lower
//!    one a pure bank bit), following the observation of Seaborn and Xiao
//!    et al. that row bits sit above bank bits.
//! 2. **Specification counts** — the DDR data sheet fixes how many row and
//!    column bits exist, so once the measured ones are known the remaining
//!    shared row bits are the highest still-unclassified bits and the shared
//!    column bits are the lowest ones.
//! 3. **The empirical observation** that (since Ivy Bridge) the lowest bit of
//!    the *widest* bank function is not a column bit, which disambiguates the
//!    channel/rank hash functions of dual-channel machines.
//!
//! When [`DramDigConfig::validate`] is enabled, every classification of a
//! shared bit is re-checked with a *compensated* measurement: the bit is
//! flipped together with a set of pure bank bits chosen (by solving a GF(2)
//! system over the recovered functions) so that the bank provably stays the
//! same; the latency must then be high for row bits and low for column bits.

use rand::rngs::StdRng;

use dram_model::{bits, gf2, PhysAddr, XorFunc};
use dram_sim::PhysMemory;
use mem_probe::{ConflictOracle, MemoryProbe};

use crate::coarse::{find_flip_pair, CoarseBits};
use crate::config::DramDigConfig;
use crate::error::DramDigError;
use crate::knowledge::DomainKnowledge;

/// Final bit classification produced by Step 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FineBits {
    /// All row bits (coarse plus shared), ascending.
    pub row_bits: Vec<u8>,
    /// All column bits (coarse plus shared), ascending.
    pub column_bits: Vec<u8>,
    /// Bits that only feed bank functions, ascending.
    pub pure_bank_bits: Vec<u8>,
    /// Shared row bits confirmed directly by a two-bit-function measurement.
    pub measured_shared_rows: Vec<u8>,
    /// Shared bits assigned from specification counts rather than a direct
    /// measurement.
    pub inferred_bits: Vec<u8>,
}

/// Result of the optional validation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ValidationReport {
    /// Number of compensated per-bit checks performed.
    pub bit_checks: u32,
    /// Number of random pair-consistency checks performed.
    pub pair_checks: u32,
    /// Pair classifications replayed from the probe cache (free checks: the
    /// measurement was already paid for by an earlier stage).
    pub cached_checks: u32,
    /// Checks whose outcome disagreed with the recovered mapping.
    pub mismatches: u32,
}

impl ValidationReport {
    /// Fraction of checks that agreed with the recovered mapping.
    pub fn agreement(&self) -> f64 {
        let total = self.bit_checks + self.pair_checks + self.cached_checks;
        if total == 0 {
            1.0
        } else {
            1.0 - f64::from(self.mismatches) / f64::from(total)
        }
    }
}

/// Classifies the shared bits of the recovered bank functions.
///
/// # Errors
///
/// Returns [`DramDigError::Refinement`] when the specification counts cannot
/// be satisfied (too few candidate bits) or when the final pure-bank-bit
/// count does not match the number of functions.
pub fn refine<P: MemoryProbe>(
    oracle: &mut ConflictOracle<P>,
    memory: &PhysMemory,
    coarse: &CoarseBits,
    functions: &[XorFunc],
    knowledge: &DomainKnowledge,
    cfg: &DramDigConfig,
    rng: &mut StdRng,
) -> Result<FineBits, DramDigError> {
    let mut rows: Vec<u8> = coarse.row_bits.clone();
    let mut cols: Vec<u8> = coarse.column_bits.clone();
    let mut pure: Vec<u8> = Vec::new();
    let mut not_row: Vec<u8> = Vec::new();
    let mut measured_shared_rows: Vec<u8> = Vec::new();
    let mut inferred: Vec<u8> = Vec::new();

    let func_union: u64 = functions.iter().fold(0, |m, f| m | f.mask());
    let mut unclassified: Vec<u8> = coarse.bank_bits.clone();

    // --- 1. Two-bit function measurements -------------------------------
    // Pair construction (which consumes the RNG) runs first in function
    // order; the measurements then go to the probe as one batch.
    let mut probes: Vec<((u8, u8), (PhysAddr, PhysAddr))> = Vec::new();
    for f in functions.iter().filter(|f| f.len() == 2) {
        let f_bits = f.bits();
        let (low, high) = (f_bits[0], f_bits[1]);
        let appears_elsewhere = functions
            .iter()
            .filter(|other| *other != f)
            .any(|other| other.contains_bit(low) || other.contains_bit(high));
        if appears_elsewhere {
            continue;
        }
        let Some(pair) = find_flip_pair(memory, f.mask(), rng, cfg.max_bases_per_bit) else {
            continue;
        };
        probes.push(((low, high), pair));
    }
    let pairs: Vec<(PhysAddr, PhysAddr)> = probes.iter().map(|&(_, p)| p).collect();
    for (&((low, high), _), conflict) in probes.iter().zip(oracle.are_sbdr(&pairs)) {
        if conflict {
            // Same bank by construction, different row: the higher bit is the
            // row bit, the lower one a pure bank bit.
            push_unique(&mut rows, high);
            push_unique(&mut pure, low);
            push_unique(&mut measured_shared_rows, high);
        } else {
            push_unique(&mut not_row, low);
            push_unique(&mut not_row, high);
        }
    }
    unclassified.retain(|b| !rows.contains(b) && !pure.contains(b) && !cols.contains(b));

    // --- 2. Fill the remaining row bits from the specification ----------
    let spec = knowledge.spec().ok();
    if let Some(spec) = spec {
        let expected_rows = spec.row_bits as usize;
        if rows.len() > expected_rows {
            return Err(DramDigError::Refinement {
                reason: format!(
                    "detected {} row bits but the specification allows only {expected_rows}",
                    rows.len()
                ),
            });
        }
        let missing = expected_rows - rows.len();
        let mut candidates: Vec<u8> = unclassified
            .iter()
            .copied()
            .filter(|b| !not_row.contains(b))
            .collect();
        candidates.sort_unstable_by(|a, b| b.cmp(a)); // highest first
        if candidates.len() < missing {
            return Err(DramDigError::Refinement {
                reason: format!(
                    "{missing} row bits still uncovered but only {} candidate bits remain",
                    candidates.len()
                ),
            });
        }
        for &bit in candidates.iter().take(missing) {
            push_unique(&mut rows, bit);
            push_unique(&mut inferred, bit);
        }
        unclassified.retain(|b| !rows.contains(b));

        // --- 3. Fill the remaining column bits --------------------------
        let expected_cols = spec.column_bits as usize;
        if cols.len() > expected_cols {
            return Err(DramDigError::Refinement {
                reason: format!(
                    "detected {} column bits but the specification allows only {expected_cols}",
                    cols.len()
                ),
            });
        }
        let missing_cols = expected_cols - cols.len();
        let mut candidates: Vec<u8> = unclassified.clone();
        if missing_cols > 0 && knowledge.widest_func_rule_applies() {
            if let Some(l) = lowest_bit_of_unique_widest(functions) {
                candidates.retain(|&b| b != l);
            }
        }
        candidates.sort_unstable(); // lowest first
        if candidates.len() < missing_cols {
            return Err(DramDigError::Refinement {
                reason: format!(
                    "{missing_cols} column bits still uncovered but only {} candidate bits remain",
                    candidates.len()
                ),
            });
        }
        for &bit in candidates.iter().take(missing_cols) {
            push_unique(&mut cols, bit);
            push_unique(&mut inferred, bit);
        }
        unclassified.retain(|b| !cols.contains(b));
    } else {
        // Ablation fallback without specification knowledge: every remaining
        // candidate above the lowest known row bit is assumed to be a row
        // bit, the rest pure bank bits. This loses the guarantee that the
        // column count is right — exactly the degradation the ablation
        // experiment quantifies.
        let lowest_row = rows.iter().copied().min().unwrap_or(u8::MAX);
        let (high, low): (Vec<u8>, Vec<u8>) = unclassified
            .iter()
            .copied()
            .filter(|b| !not_row.contains(b))
            .partition(|&b| b > lowest_row);
        for bit in high {
            push_unique(&mut rows, bit);
            push_unique(&mut inferred, bit);
        }
        for bit in low {
            push_unique(&mut inferred, bit);
        }
        unclassified.retain(|b| !rows.contains(b));
        unclassified.extend(
            not_row
                .iter()
                .copied()
                .filter(|b| func_union >> *b & 1 == 0),
        );
    }

    // Everything left over feeds only the bank functions.
    for bit in unclassified {
        push_unique(&mut pure, bit);
    }

    rows.sort_unstable();
    cols.sort_unstable();
    pure.sort_unstable();
    measured_shared_rows.sort_unstable();
    inferred.sort_unstable();

    if spec.is_some() && pure.len() != functions.len() {
        return Err(DramDigError::Refinement {
            reason: format!(
                "{} pure bank bits assigned but {} bank functions were detected",
                pure.len(),
                functions.len()
            ),
        });
    }

    Ok(FineBits {
        row_bits: rows,
        column_bits: cols,
        pure_bank_bits: pure,
        measured_shared_rows,
        inferred_bits: inferred,
    })
}

/// Lowest bit of the function with strictly more bits than every other
/// function, if such a function exists (the empirical rule only applies when
/// the widest function is unambiguous — on single-channel machines all
/// functions are two-bit and the rule is vacuous).
pub fn lowest_bit_of_unique_widest(functions: &[XorFunc]) -> Option<u8> {
    let max_len = functions.iter().map(|f| f.len()).max()?;
    let widest: Vec<&XorFunc> = functions.iter().filter(|f| f.len() == max_len).collect();
    if widest.len() == 1 && max_len >= 3 {
        widest[0].lowest_bit()
    } else {
        None
    }
}

/// Validates the classification with compensated per-bit measurements plus
/// random pair-consistency checks against the fully assembled mapping.
///
/// # Errors
///
/// Returns [`DramDigError::Validation`] when the GF(2) compensation system is
/// singular (cannot happen for a bijective mapping) — measurement
/// disagreements are reported in the [`ValidationReport`], not as errors, so
/// the caller can decide how strict to be.
pub fn validate<P: MemoryProbe>(
    oracle: &mut ConflictOracle<P>,
    memory: &PhysMemory,
    fine: &FineBits,
    functions: &[XorFunc],
    mapping: &dram_model::AddressMapping,
    cfg: &DramDigConfig,
    rng: &mut StdRng,
) -> Result<ValidationReport, DramDigError> {
    let mut report = ValidationReport::default();
    let pure = &fine.pure_bank_bits;
    let a_rows: Vec<u64> = functions
        .iter()
        .map(|f| bits::gather_bits(f.mask(), pure))
        .collect();

    // Compensated per-bit checks for every shared bit.
    let func_union: u64 = functions.iter().fold(0, |m, f| m | f.mask());
    for &bit in fine.row_bits.iter().chain(fine.column_bits.iter()) {
        if func_union >> bit & 1 == 0 {
            continue; // not shared with any function, already covered by Step 1
        }
        let mut rhs = 0u64;
        for (i, f) in functions.iter().enumerate() {
            if f.contains_bit(bit) {
                rhs |= 1 << i;
            }
        }
        let Some(solution) = gf2::solve_square(&a_rows, rhs, functions.len()) else {
            return Err(DramDigError::Validation {
                reason: "pure-bank-bit system is singular; cannot build compensated flips".into(),
            });
        };
        let flip_mask = (1u64 << bit) | bits::scatter_bits(solution, pure);
        let Some((a, b)) = find_flip_pair(memory, flip_mask, rng, cfg.max_bases_per_bit) else {
            continue;
        };
        let expect_conflict = fine.row_bits.contains(&bit);
        report.bit_checks += 1;
        if oracle.is_sbdr(a, b) != expect_conflict {
            report.mismatches += 1;
        }
    }

    // Replay the probe cache as free consistency checks: every pair an
    // earlier stage measured must agree with the recovered mapping, and
    // checking costs no measurement at all. A healthy cache then covers the
    // bulk of the confidence budget and the fresh random sample below
    // shrinks accordingly.
    let mut fresh_budget = cfg.validation_samples;
    if cfg.validate_from_cache {
        if let Some(cache) = oracle.cache() {
            for ((a, b), measured) in cache.entries().take(cfg.validation_samples * 64) {
                report.cached_checks += 1;
                if mapping.is_sbdr(a, b) != measured {
                    report.mismatches += 1;
                }
            }
        }
        if report.cached_checks as usize >= cfg.validation_samples {
            fresh_budget = (cfg.validation_samples / 8).max(4);
        }
    }

    // Random pair-consistency checks: the recovered mapping must predict the
    // measured SBDR relation.
    for _ in 0..fresh_budget {
        let Some(a) = memory.random_page(rng) else {
            break;
        };
        let Some(b) = memory.random_page(rng) else {
            break;
        };
        if a == b {
            continue;
        }
        report.pair_checks += 1;
        let predicted = mapping.is_sbdr(a, b);
        if oracle.is_sbdr(a, b) != predicted {
            report.mismatches += 1;
        }
    }
    Ok(report)
}

fn push_unique(v: &mut Vec<u8>, bit: u8) {
    if !v.contains(&bit) {
        v.push(bit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse;
    use dram_model::MachineSetting;
    use dram_sim::{SimConfig, SimMachine};
    use mem_probe::{LatencyCalibration, SimProbe};
    use rand::SeedableRng;

    fn oracle_for(number: u8) -> ConflictOracle<SimProbe> {
        let setting = MachineSetting::by_number(number).unwrap();
        let machine = SimMachine::from_setting(&setting, SimConfig::default());
        let threshold = machine.controller().config().timing.oracle_threshold_ns();
        let probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
        ConflictOracle::new(probe, LatencyCalibration::from_threshold(threshold))
    }

    fn refine_setting(number: u8) -> (FineBits, MachineSetting) {
        let setting = MachineSetting::by_number(number).unwrap();
        let mut oracle = oracle_for(number);
        let memory = oracle.probe().memory().clone();
        let cfg = DramDigConfig::default();
        let mut rng = StdRng::seed_from_u64(77);
        let coarse =
            coarse::detect(&mut oracle, setting.system.address_bits(), &cfg, &mut rng).unwrap();
        let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
        let fine = refine(
            &mut oracle,
            &memory,
            &coarse,
            setting.mapping().bank_funcs(),
            &knowledge,
            &cfg,
            &mut rng,
        )
        .unwrap();
        (fine, setting)
    }

    #[test]
    fn refinement_recovers_exact_bits_on_all_settings() {
        for number in 1..=9u8 {
            let (fine, setting) = refine_setting(number);
            assert_eq!(
                fine.row_bits,
                setting.mapping().row_bits(),
                "{} rows",
                setting.label()
            );
            assert_eq!(
                fine.column_bits,
                setting.mapping().column_bits(),
                "{} columns",
                setting.label()
            );
            assert_eq!(
                fine.pure_bank_bits,
                setting.mapping().pure_bank_bits(),
                "{} pure bank bits",
                setting.label()
            );
        }
    }

    #[test]
    fn two_bit_measurements_cover_isolated_functions() {
        // Machine No.4: all three functions are isolated two-bit functions,
        // so every shared row bit is measured rather than inferred.
        let (fine, _) = refine_setting(4);
        assert_eq!(fine.measured_shared_rows, vec![16, 17, 18]);
        assert!(fine.inferred_bits.is_empty());
    }

    #[test]
    fn spec_counting_fills_entangled_functions() {
        // Machine No.6: bits 19 and 22 sit in two functions each, so they can
        // only be inferred from the specification counts.
        let (fine, _) = refine_setting(6);
        assert!(fine.inferred_bits.contains(&19));
        assert!(fine.inferred_bits.contains(&22));
        assert!(fine.measured_shared_rows.contains(&20));
        assert!(fine.measured_shared_rows.contains(&21));
    }

    #[test]
    fn widest_rule_detection() {
        let no6 = MachineSetting::no6_skylake_ddr4_16g();
        assert_eq!(
            lowest_bit_of_unique_widest(no6.mapping().bank_funcs()),
            Some(8)
        );
        let no2 = MachineSetting::no2_ivy_bridge_ddr3_8g();
        assert_eq!(
            lowest_bit_of_unique_widest(no2.mapping().bank_funcs()),
            Some(7)
        );
        let no7 = MachineSetting::no7_skylake_ddr4_4g();
        assert_eq!(
            lowest_bit_of_unique_widest(no7.mapping().bank_funcs()),
            None
        );
        let no1 = MachineSetting::no1_sandy_bridge_ddr3_8g();
        assert_eq!(
            lowest_bit_of_unique_widest(no1.mapping().bank_funcs()),
            None
        );
        assert_eq!(lowest_bit_of_unique_widest(&[]), None);
    }

    #[test]
    fn validation_agrees_on_a_correct_classification() {
        let (fine, setting) = refine_setting(6);
        let mut oracle = oracle_for(6);
        let memory = oracle.probe().memory().clone();
        let cfg = DramDigConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        let mapping = dram_model::AddressMapping::new(
            setting.mapping().bank_funcs().to_vec(),
            fine.row_bits.clone(),
            fine.column_bits.clone(),
        )
        .unwrap();
        let report = validate(
            &mut oracle,
            &memory,
            &fine,
            setting.mapping().bank_funcs(),
            &mapping,
            &cfg,
            &mut rng,
        )
        .unwrap();
        assert!(report.bit_checks > 0);
        assert!(report.pair_checks > 0);
        assert!(
            report.agreement() > 0.95,
            "agreement {}",
            report.agreement()
        );
    }

    #[test]
    fn validation_flags_a_wrong_classification() {
        let (mut fine, setting) = refine_setting(6);
        // Swap a shared row bit and a shared column bit: 22 (row) <-> 13 (col).
        fine.row_bits.retain(|&b| b != 22);
        fine.row_bits.push(13);
        fine.row_bits.sort_unstable();
        fine.column_bits.retain(|&b| b != 13);
        fine.column_bits.push(22);
        fine.column_bits.sort_unstable();
        let mut oracle = oracle_for(6);
        let memory = oracle.probe().memory().clone();
        let cfg = DramDigConfig::default();
        let mut rng = StdRng::seed_from_u64(6);
        let mapping = dram_model::AddressMapping::new(
            setting.mapping().bank_funcs().to_vec(),
            fine.row_bits.clone(),
            fine.column_bits.clone(),
        )
        .unwrap();
        let report = validate(
            &mut oracle,
            &memory,
            &fine,
            setting.mapping().bank_funcs(),
            &mapping,
            &cfg,
            &mut rng,
        )
        .unwrap();
        assert!(report.mismatches > 0, "swapped bits must be caught");
    }

    #[test]
    fn refinement_without_spec_still_finds_measured_rows() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let mut oracle = oracle_for(4);
        let memory = oracle.probe().memory().clone();
        let cfg = DramDigConfig::default();
        let mut rng = StdRng::seed_from_u64(8);
        let coarse =
            coarse::detect(&mut oracle, setting.system.address_bits(), &cfg, &mut rng).unwrap();
        let knowledge =
            DomainKnowledge::new(setting.system, Some(setting.microarch)).without_specifications();
        let fine = refine(
            &mut oracle,
            &memory,
            &coarse,
            setting.mapping().bank_funcs(),
            &knowledge,
            &cfg,
            &mut rng,
        )
        .unwrap();
        // The measured shared rows are still found even without the spec.
        assert!(fine.row_bits.contains(&16));
        assert!(fine.row_bits.contains(&17));
        assert!(fine.row_bits.contains(&18));
    }
}
