//! Tunable parameters of the DRAMDig algorithm.

/// Configuration knobs for [`crate::DramDig`].
///
/// The defaults correspond to the values reported in the paper
/// (δ = 0.2, per-threshold = 85%) and to conservative measurement budgets
/// that work across all nine Table-II machine settings.
#[derive(Debug, Clone, PartialEq)]
pub struct DramDigConfig {
    /// Tolerance δ on the expected pile size during Algorithm 2: a pile is
    /// accepted when its size is within `[1-δ, 1+δ] · pool/#banks`.
    pub delta: f64,
    /// Fraction of the selected address pool that must be partitioned before
    /// Algorithm 2 stops (the paper's `per_threshold`, 85%).
    pub per_threshold: f64,
    /// Number of random pairs measured to calibrate the conflict threshold.
    pub calibration_samples: usize,
    /// Majority-vote repetitions per SBDR query (1 = single measurement).
    pub measure_repeat: u32,
    /// How many different base addresses to try when looking for a
    /// single-bit-flip pair inside the available page pool (Step 1).
    pub max_bases_per_bit: u32,
    /// Upper bound on the number of bits per candidate bank function
    /// enumerated by Algorithm 3. The widest function observed on Intel
    /// platforms has 7 bits (Table II), so the default is 7.
    pub max_func_bits: usize,
    /// Maximum number of pivot attempts in Algorithm 2 before giving up.
    pub max_partition_attempts: u32,
    /// Optional cap on the selected address pool size (per-faithful runs use
    /// `None`; tests may cap it to keep runtimes low).
    pub max_pool: Option<usize>,
    /// Whether to run the measurement-based validation pass after Step 3.
    pub validate: bool,
    /// Number of random consistency checks performed during validation.
    pub validation_samples: usize,
    /// Seed for the tool's internal randomness (base-address choices, pivot
    /// selection). Two runs with the same seed and probe behave identically.
    pub rng_seed: u64,
}

impl Default for DramDigConfig {
    fn default() -> Self {
        DramDigConfig {
            delta: 0.2,
            per_threshold: 0.85,
            calibration_samples: 400,
            measure_repeat: 1,
            max_bases_per_bit: 16,
            max_func_bits: 7,
            max_partition_attempts: 4096,
            max_pool: None,
            validate: true,
            validation_samples: 64,
            rng_seed: 0xD16_5EED,
        }
    }
}

impl DramDigConfig {
    /// A configuration tuned for fast unit/integration tests: smaller
    /// calibration and validation budgets. The recovered mapping is
    /// identical; only the measurement budget changes.
    pub fn fast() -> Self {
        DramDigConfig {
            calibration_samples: 200,
            validation_samples: 32,
            ..DramDigConfig::default()
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = DramDigConfig::default();
        assert!((c.delta - 0.2).abs() < 1e-12);
        assert!((c.per_threshold - 0.85).abs() < 1e-12);
        assert_eq!(c.max_func_bits, 7);
        assert!(c.validate);
    }

    #[test]
    fn fast_config_keeps_paper_constants() {
        let c = DramDigConfig::fast();
        assert_eq!(c.max_pool, None);
        assert!(c.calibration_samples < DramDigConfig::default().calibration_samples);
        assert!((c.delta - 0.2).abs() < 1e-12);
    }

    #[test]
    fn with_seed_changes_seed() {
        assert_eq!(DramDigConfig::default().with_seed(9).rng_seed, 9);
    }
}
