//! Tunable parameters of the DRAMDig algorithm.

use crate::codec::{self, CodecError};

/// How Algorithm 2 splits the selected pool into same-bank piles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// The paper's Algorithm 2: draw a pivot, measure it against *every*
    /// remaining address, accept the pile when its size is within tolerance.
    /// Maximal measurement budget, maximal robustness.
    #[default]
    Exhaustive,
    /// GF(2) decomposition: learn a basis of the same-bank difference space
    /// (the kernel of the bank functions over the pool's varying bits) from
    /// a small number of targeted measurements, then assign every pool
    /// address to its coset computationally and spot-check one pair per
    /// pile. An order of magnitude fewer measurements; falls back to
    /// [`PartitionStrategy::Exhaustive`] when the kernel cannot be
    /// completed (excess noise, irregular pools).
    Decompose,
}

/// Configuration knobs for [`crate::DramDig`].
///
/// The defaults correspond to the values reported in the paper
/// (δ = 0.2, per-threshold = 85%) and to conservative measurement budgets
/// that work across all nine Table-II machine settings.
#[derive(Debug, Clone, PartialEq)]
pub struct DramDigConfig {
    /// Tolerance δ on the expected pile size during Algorithm 2: a pile is
    /// accepted when its size is within `[1-δ, 1+δ] · pool/#banks`.
    pub delta: f64,
    /// Fraction of the selected address pool that must be partitioned before
    /// Algorithm 2 stops (the paper's `per_threshold`, 85%).
    pub per_threshold: f64,
    /// Number of random pairs measured to calibrate the conflict threshold.
    pub calibration_samples: usize,
    /// Majority-vote repetitions per SBDR query (1 = single measurement).
    pub measure_repeat: u32,
    /// How many different base addresses to try when looking for a
    /// single-bit-flip pair inside the available page pool (Step 1).
    pub max_bases_per_bit: u32,
    /// Upper bound on the number of bits per candidate bank function
    /// enumerated by Algorithm 3. The widest function observed on Intel
    /// platforms has 7 bits (Table II), so the default is 7.
    pub max_func_bits: usize,
    /// Maximum number of pivot attempts in Algorithm 2 before giving up.
    pub max_partition_attempts: u32,
    /// Optional cap on the selected address pool size (per-faithful runs use
    /// `None`; tests may cap it to keep runtimes low).
    pub max_pool: Option<usize>,
    /// Whether to run the measurement-based validation pass after Step 3.
    pub validate: bool,
    /// Number of random consistency checks performed during validation.
    pub validation_samples: usize,
    /// Seed for the tool's internal randomness (base-address choices, pivot
    /// selection). Two runs with the same seed and probe behave identically.
    pub rng_seed: u64,
    /// Capacity of the pair-keyed SBDR classification cache attached to the
    /// conflict oracle, so no stage ever re-times a pair another stage (or a
    /// rejected pivot attempt) already classified. `None` disables caching.
    pub probe_cache_capacity: Option<usize>,
    /// Which partition strategy Algorithm 2 uses (see [`PartitionStrategy`]).
    pub partition_strategy: PartitionStrategy,
    /// Measurement budget for the [`PartitionStrategy::Decompose`] kernel
    /// search before it gives up and falls back to the exhaustive strategy.
    pub max_decompose_queries: u32,
    /// Calibrate adaptively: stop sampling once the threshold estimate is
    /// stable across two consecutive chunks instead of always spending the
    /// full `calibration_samples` budget.
    pub adaptive_calibration: bool,
    /// Chunk size for adaptive calibration.
    pub calibration_chunk: usize,
    /// Stop a `measure_repeat` majority vote as soon as one side holds a
    /// strict majority (identical verdicts, fewer measurements).
    pub early_exit_votes: bool,
    /// Replay the probe-cache contents as free validation checks and shrink
    /// the fresh random-pair budget accordingly.
    pub validate_from_cache: bool,
}

impl Default for DramDigConfig {
    fn default() -> Self {
        DramDigConfig {
            delta: 0.2,
            per_threshold: 0.85,
            calibration_samples: 400,
            measure_repeat: 1,
            max_bases_per_bit: 16,
            max_func_bits: 7,
            max_partition_attempts: 4096,
            max_pool: None,
            validate: true,
            validation_samples: 64,
            rng_seed: 0xD16_5EED,
            probe_cache_capacity: Some(mem_probe::DEFAULT_CACHE_CAPACITY),
            partition_strategy: PartitionStrategy::Exhaustive,
            max_decompose_queries: 1024,
            adaptive_calibration: false,
            calibration_chunk: 40,
            early_exit_votes: false,
            validate_from_cache: false,
        }
    }
}

impl DramDigConfig {
    /// A configuration tuned for fast unit/integration tests: smaller
    /// calibration and validation budgets. The recovered mapping is
    /// identical; only the measurement budget changes.
    pub fn fast() -> Self {
        DramDigConfig {
            calibration_samples: 200,
            validation_samples: 32,
            ..DramDigConfig::default()
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// The measurement-minimal profile: GF(2) kernel decomposition instead
    /// of the exhaustive pile partition, adaptive calibration, early-exit
    /// majority votes, and cache-backed validation. The recovered mapping is
    /// the same as with [`DramDigConfig::default`] on every Table-II
    /// setting; only the probe budget shrinks (see `BENCH_dramdig.json`).
    pub fn optimized() -> Self {
        DramDigConfig {
            partition_strategy: PartitionStrategy::Decompose,
            adaptive_calibration: true,
            early_exit_votes: true,
            validate_from_cache: true,
            ..DramDigConfig::default()
        }
    }

    /// The seed-faithful baseline with every acceleration disabled — no
    /// probe cache, exhaustive partition, full-budget calibration. Used by
    /// the benchmarks as the naive comparison point.
    pub fn naive() -> Self {
        DramDigConfig {
            probe_cache_capacity: None,
            ..DramDigConfig::default()
        }
    }

    /// Serializes the configuration as `key = value` lines, one per field.
    /// [`DramDigConfig::decode`] is the exact inverse; the campaign journal
    /// stores configurations in this form so a resumed fleet re-runs jobs
    /// with bit-identical settings.
    pub fn encode(&self) -> String {
        let strategy = match self.partition_strategy {
            PartitionStrategy::Exhaustive => "exhaustive",
            PartitionStrategy::Decompose => "decompose",
        };
        format!(
            concat!(
                "delta = {:?}\n",
                "per_threshold = {:?}\n",
                "calibration_samples = {}\n",
                "measure_repeat = {}\n",
                "max_bases_per_bit = {}\n",
                "max_func_bits = {}\n",
                "max_partition_attempts = {}\n",
                "max_pool = {}\n",
                "validate = {}\n",
                "validation_samples = {}\n",
                "rng_seed = {}\n",
                "probe_cache_capacity = {}\n",
                "partition_strategy = {}\n",
                "max_decompose_queries = {}\n",
                "adaptive_calibration = {}\n",
                "calibration_chunk = {}\n",
                "early_exit_votes = {}\n",
                "validate_from_cache = {}\n",
            ),
            self.delta,
            self.per_threshold,
            self.calibration_samples,
            self.measure_repeat,
            self.max_bases_per_bit,
            self.max_func_bits,
            self.max_partition_attempts,
            codec::format_opt_usize(self.max_pool),
            self.validate,
            self.validation_samples,
            self.rng_seed,
            codec::format_opt_usize(self.probe_cache_capacity),
            strategy,
            self.max_decompose_queries,
            self.adaptive_calibration,
            self.calibration_chunk,
            self.early_exit_votes,
            self.validate_from_cache,
        )
    }

    /// Parses a configuration written by [`DramDigConfig::encode`].
    ///
    /// Keys may appear in any order; keys absent from the document keep
    /// their [`DramDigConfig::default`] value, so documents written by older
    /// versions stay readable.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] for malformed lines, unknown keys or
    /// unparseable values.
    pub fn decode(text: &str) -> Result<Self, CodecError> {
        let mut config = DramDigConfig::default();
        for (line, key, value) in codec::parse_kv_lines(text)? {
            match key {
                "delta" => config.delta = codec::parse_f64(line, key, value)?,
                "per_threshold" => config.per_threshold = codec::parse_f64(line, key, value)?,
                "calibration_samples" => {
                    config.calibration_samples = codec::parse_usize(line, key, value)?;
                }
                "measure_repeat" => {
                    config.measure_repeat = codec::parse_u32(line, key, value)?;
                }
                "max_bases_per_bit" => {
                    config.max_bases_per_bit = codec::parse_u32(line, key, value)?;
                }
                "max_func_bits" => config.max_func_bits = codec::parse_usize(line, key, value)?,
                "max_partition_attempts" => {
                    config.max_partition_attempts = codec::parse_u32(line, key, value)?;
                }
                "max_pool" => config.max_pool = codec::parse_opt_usize(line, key, value)?,
                "validate" => config.validate = codec::parse_bool(line, key, value)?,
                "validation_samples" => {
                    config.validation_samples = codec::parse_usize(line, key, value)?;
                }
                "rng_seed" => config.rng_seed = codec::parse_u64(line, key, value)?,
                "probe_cache_capacity" => {
                    config.probe_cache_capacity = codec::parse_opt_usize(line, key, value)?;
                }
                "partition_strategy" => {
                    config.partition_strategy = match value {
                        "exhaustive" => PartitionStrategy::Exhaustive,
                        "decompose" => PartitionStrategy::Decompose,
                        other => {
                            return Err(CodecError::at(
                                line,
                                format!("unknown partition strategy `{other}`"),
                            ))
                        }
                    };
                }
                "max_decompose_queries" => {
                    config.max_decompose_queries = codec::parse_u32(line, key, value)?;
                }
                "adaptive_calibration" => {
                    config.adaptive_calibration = codec::parse_bool(line, key, value)?;
                }
                "calibration_chunk" => {
                    config.calibration_chunk = codec::parse_usize(line, key, value)?;
                }
                "early_exit_votes" => {
                    config.early_exit_votes = codec::parse_bool(line, key, value)?
                }
                "validate_from_cache" => {
                    config.validate_from_cache = codec::parse_bool(line, key, value)?;
                }
                other => {
                    return Err(CodecError::at(
                        line,
                        format!("unknown config key `{other}`"),
                    ))
                }
            }
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = DramDigConfig::default();
        assert!((c.delta - 0.2).abs() < 1e-12);
        assert!((c.per_threshold - 0.85).abs() < 1e-12);
        assert_eq!(c.max_func_bits, 7);
        assert!(c.validate);
    }

    #[test]
    fn fast_config_keeps_paper_constants() {
        let c = DramDigConfig::fast();
        assert_eq!(c.max_pool, None);
        assert!(c.calibration_samples < DramDigConfig::default().calibration_samples);
        assert!((c.delta - 0.2).abs() < 1e-12);
    }

    #[test]
    fn with_seed_changes_seed() {
        assert_eq!(DramDigConfig::default().with_seed(9).rng_seed, 9);
    }

    #[test]
    fn optimized_flips_only_the_accelerators() {
        let c = DramDigConfig::optimized();
        assert_eq!(c.partition_strategy, PartitionStrategy::Decompose);
        assert!(c.adaptive_calibration);
        assert!(c.early_exit_votes);
        assert!(c.validate_from_cache);
        // Paper constants are untouched.
        assert!((c.delta - 0.2).abs() < 1e-12);
        assert!((c.per_threshold - 0.85).abs() < 1e-12);
        assert!(c.validate);
    }

    #[test]
    fn every_profile_round_trips_through_the_text_codec() {
        for config in [
            DramDigConfig::default(),
            DramDigConfig::fast(),
            DramDigConfig::optimized(),
            DramDigConfig::naive(),
            DramDigConfig {
                max_pool: Some(4096),
                delta: 0.12345678901234567,
                rng_seed: u64::MAX,
                ..DramDigConfig::optimized()
            },
        ] {
            let decoded = DramDigConfig::decode(&config.encode()).unwrap();
            assert_eq!(decoded, config);
        }
    }

    #[test]
    fn decode_tolerates_missing_keys_and_rejects_unknown_ones() {
        // A partial document keeps defaults for everything unspecified.
        let partial = DramDigConfig::decode("rng_seed = 99\nmax_pool = none\n").unwrap();
        assert_eq!(partial.rng_seed, 99);
        assert_eq!(partial.delta, DramDigConfig::default().delta);
        // Comments and blank lines are fine.
        assert!(DramDigConfig::decode("# note\n\nvalidate = false\n").is_ok());
        // Unknown keys and malformed values are errors that name the line.
        assert_eq!(
            DramDigConfig::decode("frobnicate = 1\n").unwrap_err().line,
            1
        );
        assert!(DramDigConfig::decode("delta = much\n").is_err());
        assert!(DramDigConfig::decode("partition_strategy = magic\n").is_err());
    }

    #[test]
    fn naive_profile_disables_the_cache() {
        let c = DramDigConfig::naive();
        assert_eq!(c.probe_cache_capacity, None);
        assert_eq!(c.partition_strategy, PartitionStrategy::Exhaustive);
        assert!(!c.adaptive_calibration && !c.early_exit_votes);
    }
}
