//! Tunable parameters of the DRAMDig algorithm.

/// How Algorithm 2 splits the selected pool into same-bank piles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// The paper's Algorithm 2: draw a pivot, measure it against *every*
    /// remaining address, accept the pile when its size is within tolerance.
    /// Maximal measurement budget, maximal robustness.
    #[default]
    Exhaustive,
    /// GF(2) decomposition: learn a basis of the same-bank difference space
    /// (the kernel of the bank functions over the pool's varying bits) from
    /// a small number of targeted measurements, then assign every pool
    /// address to its coset computationally and spot-check one pair per
    /// pile. An order of magnitude fewer measurements; falls back to
    /// [`PartitionStrategy::Exhaustive`] when the kernel cannot be
    /// completed (excess noise, irregular pools).
    Decompose,
}

/// Configuration knobs for [`crate::DramDig`].
///
/// The defaults correspond to the values reported in the paper
/// (δ = 0.2, per-threshold = 85%) and to conservative measurement budgets
/// that work across all nine Table-II machine settings.
#[derive(Debug, Clone, PartialEq)]
pub struct DramDigConfig {
    /// Tolerance δ on the expected pile size during Algorithm 2: a pile is
    /// accepted when its size is within `[1-δ, 1+δ] · pool/#banks`.
    pub delta: f64,
    /// Fraction of the selected address pool that must be partitioned before
    /// Algorithm 2 stops (the paper's `per_threshold`, 85%).
    pub per_threshold: f64,
    /// Number of random pairs measured to calibrate the conflict threshold.
    pub calibration_samples: usize,
    /// Majority-vote repetitions per SBDR query (1 = single measurement).
    pub measure_repeat: u32,
    /// How many different base addresses to try when looking for a
    /// single-bit-flip pair inside the available page pool (Step 1).
    pub max_bases_per_bit: u32,
    /// Upper bound on the number of bits per candidate bank function
    /// enumerated by Algorithm 3. The widest function observed on Intel
    /// platforms has 7 bits (Table II), so the default is 7.
    pub max_func_bits: usize,
    /// Maximum number of pivot attempts in Algorithm 2 before giving up.
    pub max_partition_attempts: u32,
    /// Optional cap on the selected address pool size (per-faithful runs use
    /// `None`; tests may cap it to keep runtimes low).
    pub max_pool: Option<usize>,
    /// Whether to run the measurement-based validation pass after Step 3.
    pub validate: bool,
    /// Number of random consistency checks performed during validation.
    pub validation_samples: usize,
    /// Seed for the tool's internal randomness (base-address choices, pivot
    /// selection). Two runs with the same seed and probe behave identically.
    pub rng_seed: u64,
    /// Capacity of the pair-keyed SBDR classification cache attached to the
    /// conflict oracle, so no stage ever re-times a pair another stage (or a
    /// rejected pivot attempt) already classified. `None` disables caching.
    pub probe_cache_capacity: Option<usize>,
    /// Which partition strategy Algorithm 2 uses (see [`PartitionStrategy`]).
    pub partition_strategy: PartitionStrategy,
    /// Measurement budget for the [`PartitionStrategy::Decompose`] kernel
    /// search before it gives up and falls back to the exhaustive strategy.
    pub max_decompose_queries: u32,
    /// Calibrate adaptively: stop sampling once the threshold estimate is
    /// stable across two consecutive chunks instead of always spending the
    /// full `calibration_samples` budget.
    pub adaptive_calibration: bool,
    /// Chunk size for adaptive calibration.
    pub calibration_chunk: usize,
    /// Stop a `measure_repeat` majority vote as soon as one side holds a
    /// strict majority (identical verdicts, fewer measurements).
    pub early_exit_votes: bool,
    /// Replay the probe-cache contents as free validation checks and shrink
    /// the fresh random-pair budget accordingly.
    pub validate_from_cache: bool,
}

impl Default for DramDigConfig {
    fn default() -> Self {
        DramDigConfig {
            delta: 0.2,
            per_threshold: 0.85,
            calibration_samples: 400,
            measure_repeat: 1,
            max_bases_per_bit: 16,
            max_func_bits: 7,
            max_partition_attempts: 4096,
            max_pool: None,
            validate: true,
            validation_samples: 64,
            rng_seed: 0xD16_5EED,
            probe_cache_capacity: Some(mem_probe::DEFAULT_CACHE_CAPACITY),
            partition_strategy: PartitionStrategy::Exhaustive,
            max_decompose_queries: 1024,
            adaptive_calibration: false,
            calibration_chunk: 40,
            early_exit_votes: false,
            validate_from_cache: false,
        }
    }
}

impl DramDigConfig {
    /// A configuration tuned for fast unit/integration tests: smaller
    /// calibration and validation budgets. The recovered mapping is
    /// identical; only the measurement budget changes.
    pub fn fast() -> Self {
        DramDigConfig {
            calibration_samples: 200,
            validation_samples: 32,
            ..DramDigConfig::default()
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// The measurement-minimal profile: GF(2) kernel decomposition instead
    /// of the exhaustive pile partition, adaptive calibration, early-exit
    /// majority votes, and cache-backed validation. The recovered mapping is
    /// the same as with [`DramDigConfig::default`] on every Table-II
    /// setting; only the probe budget shrinks (see `BENCH_dramdig.json`).
    pub fn optimized() -> Self {
        DramDigConfig {
            partition_strategy: PartitionStrategy::Decompose,
            adaptive_calibration: true,
            early_exit_votes: true,
            validate_from_cache: true,
            ..DramDigConfig::default()
        }
    }

    /// The seed-faithful baseline with every acceleration disabled — no
    /// probe cache, exhaustive partition, full-budget calibration. Used by
    /// the benchmarks as the naive comparison point.
    pub fn naive() -> Self {
        DramDigConfig {
            probe_cache_capacity: None,
            ..DramDigConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = DramDigConfig::default();
        assert!((c.delta - 0.2).abs() < 1e-12);
        assert!((c.per_threshold - 0.85).abs() < 1e-12);
        assert_eq!(c.max_func_bits, 7);
        assert!(c.validate);
    }

    #[test]
    fn fast_config_keeps_paper_constants() {
        let c = DramDigConfig::fast();
        assert_eq!(c.max_pool, None);
        assert!(c.calibration_samples < DramDigConfig::default().calibration_samples);
        assert!((c.delta - 0.2).abs() < 1e-12);
    }

    #[test]
    fn with_seed_changes_seed() {
        assert_eq!(DramDigConfig::default().with_seed(9).rng_seed, 9);
    }

    #[test]
    fn optimized_flips_only_the_accelerators() {
        let c = DramDigConfig::optimized();
        assert_eq!(c.partition_strategy, PartitionStrategy::Decompose);
        assert!(c.adaptive_calibration);
        assert!(c.early_exit_votes);
        assert!(c.validate_from_cache);
        // Paper constants are untouched.
        assert!((c.delta - 0.2).abs() < 1e-12);
        assert!((c.per_threshold - 0.85).abs() < 1e-12);
        assert!(c.validate);
    }

    #[test]
    fn naive_profile_disables_the_cache() {
        let c = DramDigConfig::naive();
        assert_eq!(c.probe_cache_capacity, None);
        assert_eq!(c.partition_strategy, PartitionStrategy::Exhaustive);
        assert!(!c.adaptive_calibration && !c.early_exit_votes);
    }
}
