//! Step 2c — bank address function detection (Algorithm 3 of the paper).
//!
//! Candidate XOR masks over the bank bits are tested against every pile: a
//! mask that evaluates to the same parity for all addresses of every pile is
//! a possible bank address function. Candidates that are GF(2) linear
//! combinations of smaller candidates are redundant and removed
//! (`prioritize` + `remove_redundant`), and finally a set of exactly
//! `log2(#banks)` functions is chosen that numbers the piles `0 .. #banks-1`
//! distinctly (`check_numbering`).

use dram_model::gf2::PileBasis;
use dram_model::{bits, gf2, XorFunc};

use crate::config::DramDigConfig;
use crate::error::DramDigError;
use crate::partition::Pile;

/// Below this many candidate masks the sweep runs on the calling thread:
/// spawning scoped workers costs more than the whole sweep.
const PARALLEL_SWEEP_MIN_MASKS: usize = 2048;

/// Outcome of Algorithm 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectedFunctions {
    /// The selected bank address functions (exactly `log2(#banks)` of them),
    /// in canonical order (fewest bits first).
    pub functions: Vec<XorFunc>,
    /// All masks that were constant on every pile (before redundancy
    /// removal) — exposed for diagnostics and the ablation study.
    pub consistent_masks: Vec<XorFunc>,
}

/// Returns `true` if `mask` evaluates to the same parity for every address in
/// the pile (the paper's `apply_xor_mask_to_pile`).
///
/// This is the naive O(members) scan; the pipeline verifies candidates
/// against a [`PileBasis`] instead (O(rank), same verdicts — the
/// `fast_and_naive_paths_agree` differential tests pin the equivalence).
pub fn mask_constant_on_pile(mask: u64, pile: &Pile) -> bool {
    let mut iter = pile.members.iter();
    let Some(first) = iter.next() else {
        return true;
    };
    let expected = first.masked_parity(mask);
    iter.all(|a| a.masked_parity(mask) == expected)
}

/// Reduces every pile's `member ⊕ pivot` differences into one row-echelon
/// GF(2) basis. A mask is constant on *every* pile exactly when it has even
/// parity against every row of this merged basis, so the candidate sweep
/// costs O(rank ≤ addr_bits) per mask instead of O(total members).
pub fn merged_difference_basis(piles: &[Pile]) -> PileBasis {
    let mut merged = PileBasis::new(0);
    for pile in piles {
        for member in &pile.members {
            merged.insert(member.raw() ^ pile.pivot.raw());
        }
    }
    merged
}

/// Number of sweep workers, resolved once per process: the
/// `available_parallelism` syscall costs more than an entire small sweep.
fn sweep_workers() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(8)
    })
}

/// Filters `masks` down to the ones constant on every pile, verifying each
/// against the merged difference `basis`. Large sweeps are chunked across
/// `std::thread::scope` workers; the result order matches the input order
/// regardless of the worker count.
pub fn consistent_masks(masks: &[u64], basis: &PileBasis) -> Vec<XorFunc> {
    let workers = if masks.len() < PARALLEL_SWEEP_MIN_MASKS {
        1
    } else {
        sweep_workers()
    };
    if workers <= 1 {
        return masks
            .iter()
            .filter(|&&m| basis.mask_constant(m))
            .map(|&m| XorFunc::from_mask(m))
            .collect();
    }
    let chunk = masks.len().div_ceil(workers);
    let per_chunk: Vec<Vec<XorFunc>> = std::thread::scope(|scope| {
        let handles: Vec<_> = masks
            .chunks(chunk)
            .map(|c| {
                scope.spawn(move || {
                    c.iter()
                        .filter(|&&m| basis.mask_constant(m))
                        .map(|&m| XorFunc::from_mask(m))
                        .collect::<Vec<XorFunc>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// Numbers each pile by evaluating the candidate functions on its pivot.
fn pile_numbers(functions: &[XorFunc], piles: &[Pile]) -> Vec<u32> {
    piles
        .iter()
        .map(|pile| {
            let mut value = 0u32;
            for (i, f) in functions.iter().enumerate() {
                if f.evaluate(pile.pivot) {
                    value |= 1 << i;
                }
            }
            value
        })
        .collect()
}

/// Returns `true` if the candidate function set assigns a distinct number to
/// every pile (the paper's `check_numbering`: with `#banks` piles and
/// `log2(#banks)` functions, distinctness is equivalent to counting the piles
/// from `0` to `#banks - 1`).
pub fn numbering_is_valid(functions: &[XorFunc], piles: &[Pile]) -> bool {
    // Up to six functions the numbers fit a u64 bitset, so distinctness
    // needs no allocation or sort — this sits on the hot combination-search
    // path of Algorithm 3.
    if functions.len() <= 6 {
        let mut seen = 0u64;
        for pile in piles {
            let mut value = 0u32;
            for (i, f) in functions.iter().enumerate() {
                if f.evaluate(pile.pivot) {
                    value |= 1 << i;
                }
            }
            if seen >> value & 1 == 1 {
                return false;
            }
            seen |= 1 << value;
        }
        return true;
    }
    let mut numbers = pile_numbers(functions, piles);
    numbers.sort_unstable();
    numbers.windows(2).all(|w| w[0] != w[1])
}

/// Validates the pile/bank inputs shared by every detection entry point and
/// returns `log2(num_banks)`.
fn check_inputs(piles: &[Pile], num_banks: u32) -> Result<usize, DramDigError> {
    if piles.is_empty() {
        return Err(DramDigError::FunctionDetection {
            reason: "no piles to analyse".into(),
        });
    }
    let needed = num_banks.trailing_zeros() as usize;
    if !num_banks.is_power_of_two() || needed == 0 {
        return Err(DramDigError::FunctionDetection {
            reason: format!("bank count {num_banks} is not a power of two greater than one"),
        });
    }
    Ok(needed)
}

/// The shared tail of Algorithm 3: prioritise small functions, drop
/// GF(2)-redundant candidates and pick the combination that numbers the
/// piles distinctly.
fn resolve_functions(
    consistent: Vec<XorFunc>,
    piles: &[Pile],
    needed: usize,
) -> Result<DetectedFunctions, DramDigError> {
    if consistent.is_empty() {
        return Err(DramDigError::FunctionDetection {
            reason: "no XOR mask is constant across all piles".into(),
        });
    }

    // Prioritise small functions and drop GF(2)-redundant ones.
    let independent = gf2::remove_redundant(&consistent);
    if independent.len() < needed {
        return Err(DramDigError::FunctionDetection {
            reason: format!(
                "only {} independent candidate functions but log2(#banks) = {needed}",
                independent.len()
            ),
        });
    }

    // Pick the combination of `needed` functions that numbers the piles
    // distinctly. The canonical order of `remove_redundant` means the first
    // valid combination is also the one built from the smallest functions.
    if independent.len() == needed {
        if !numbering_is_valid(&independent, piles) {
            return Err(DramDigError::FunctionDetection {
                reason: "the independent functions do not number the piles distinctly".into(),
            });
        }
        return Ok(DetectedFunctions {
            functions: independent,
            consistent_masks: consistent,
        });
    }
    for combo in bits::Combinations::new(&independent, needed) {
        if gf2::functions_independent(&combo) && numbering_is_valid(&combo, piles) {
            return Ok(DetectedFunctions {
                functions: combo,
                consistent_masks: consistent,
            });
        }
    }
    Err(DramDigError::FunctionDetection {
        reason: format!(
            "no combination of {needed} candidate functions numbers the {} piles distinctly",
            piles.len()
        ),
    })
}

/// Runs Algorithm 3 over the piles.
///
/// Candidate masks are verified against the merged [`PileBasis`] of all
/// pile differences (built once here; see
/// [`detect_bank_functions_with_basis`] when the partition already learned
/// it) and swept in parallel when the candidate space is large.
///
/// # Errors
///
/// Returns [`DramDigError::FunctionDetection`] when no candidate masks
/// survive, when fewer than `log2(#banks)` independent functions exist, or
/// when no combination of the surviving functions numbers the piles
/// distinctly.
pub fn detect_bank_functions(
    piles: &[Pile],
    bank_bits: &[u8],
    num_banks: u32,
    cfg: &DramDigConfig,
) -> Result<DetectedFunctions, DramDigError> {
    let basis = merged_difference_basis(piles);
    detect_bank_functions_with_basis(&basis, piles, bank_bits, num_banks, cfg)
}

/// Runs Algorithm 3 against a pre-computed merged difference basis (the
/// decomposition partition returns exactly this structure, so the pipeline
/// skips re-deriving it from tens of thousands of member differences).
///
/// # Errors
///
/// Same conditions as [`detect_bank_functions`].
pub fn detect_bank_functions_with_basis(
    basis: &PileBasis,
    piles: &[Pile],
    bank_bits: &[u8],
    num_banks: u32,
    cfg: &DramDigConfig,
) -> Result<DetectedFunctions, DramDigError> {
    let needed = check_inputs(piles, num_banks)?;
    let max_bits = cfg.max_func_bits.min(bank_bits.len());
    // The masks constant on every pile are exactly the span of the
    // orthogonal complement of the difference basis (restricted to the bank
    // bits), so when that complement is small it is enumerated directly by
    // Gray code — candidate count 2^(n - rank) instead of 2^n. Degenerate
    // low-rank bases fall back to materialising the candidate list and
    // chunking it across scoped workers.
    let n = bank_bits.len();
    let gathered: Vec<u64> = basis
        .rows()
        .iter()
        .map(|&row| bits::gather_bits(row, bank_bits))
        .collect();
    let complement = gf2::nullspace_basis(&gathered, n);
    let consistent = if (1u64 << complement.len()) as usize <= PARALLEL_SWEEP_MIN_MASKS {
        // Bitsliced span walk: each 64-lane block tests 64 combinations of
        // the complement basis at once (vertical-counter weight filter),
        // replacing the one-XOR-one-popcount-per-candidate Gray-code walk.
        // The scalar walk survives as the differential twin in
        // `dram_model`'s bitslice proptest suite.
        let mut survivors: Vec<u64> = gf2::bitslice::span_survivors(&complement, max_bits)
            .into_iter()
            .map(|value| bits::scatter_bits(value, bank_bits))
            .collect();
        survivors.sort_unstable_by(|&a, &b| bits::cmp_masks_enumeration_order(a, b));
        survivors.into_iter().map(XorFunc::from_mask).collect()
    } else {
        // Degenerate low-rank bases: materialize the candidate list and
        // parity-test 64 masks per word op against the basis rows. The
        // scalar sweep is kept as `consistent_masks` and pinned to this
        // path by the differential tests.
        let masks = bits::gen_xor_masks(bank_bits, max_bits);
        gf2::bitslice::filter_constant_masks(&masks, basis.rows())
            .into_iter()
            .map(XorFunc::from_mask)
            .collect()
    };
    resolve_functions(consistent, piles, needed)
}

/// The seed implementation of Algorithm 3: verifies every candidate mask by
/// scanning every member of every pile on the calling thread. Kept as the
/// reference the fast path is differentially tested against (and as the
/// baseline the benchmarks measure).
///
/// # Errors
///
/// Same conditions as [`detect_bank_functions`].
pub fn detect_bank_functions_naive(
    piles: &[Pile],
    bank_bits: &[u8],
    num_banks: u32,
    cfg: &DramDigConfig,
) -> Result<DetectedFunctions, DramDigError> {
    let needed = check_inputs(piles, num_banks)?;
    let masks = bits::gen_xor_masks(bank_bits, cfg.max_func_bits.min(bank_bits.len()));
    let mut consistent: Vec<XorFunc> = Vec::new();
    'mask: for mask in masks {
        for pile in piles {
            if !mask_constant_on_pile(mask, pile) {
                continue 'mask;
            }
        }
        consistent.push(XorFunc::from_mask(mask));
    }
    resolve_functions(consistent, piles, needed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::{MachineSetting, PhysAddr};

    use crate::partition::synthetic_piles;

    fn detect_for(setting: &MachineSetting) -> DetectedFunctions {
        let mapping = setting.mapping();
        let piles = synthetic_piles(mapping);
        detect_bank_functions(
            &piles,
            &mapping.bank_function_bits(),
            setting.system.total_banks(),
            &DramDigConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn recovers_equivalent_functions_on_every_table_ii_setting() {
        for setting in MachineSetting::all() {
            let detected = detect_for(&setting);
            let truth = gf2::Gf2Matrix::from_funcs(setting.mapping().bank_funcs());
            let mine = gf2::Gf2Matrix::from_funcs(&detected.functions);
            assert_eq!(
                detected.functions.len(),
                setting.mapping().bank_funcs().len(),
                "{}",
                setting.label()
            );
            for f in &detected.functions {
                assert!(
                    truth.spans(f.mask()),
                    "{}: {f} not in ground-truth span",
                    setting.label()
                );
            }
            for f in setting.mapping().bank_funcs() {
                assert!(
                    mine.spans(f.mask()),
                    "{}: {f} not recovered",
                    setting.label()
                );
            }
        }
    }

    #[test]
    fn two_bit_functions_are_recovered_exactly() {
        // On settings whose functions are all 1- or 2-bit masks the minimal
        // basis is unique, so the recovered set matches the paper verbatim.
        for number in [1u8, 3, 4, 7, 8] {
            let setting = MachineSetting::by_number(number).unwrap();
            let detected = detect_for(&setting);
            let mut expected = setting.mapping().bank_funcs().to_vec();
            dram_model::xor_func::canonical_order(&mut expected);
            assert_eq!(detected.functions, expected, "{}", setting.label());
        }
    }

    #[test]
    fn mask_constant_on_pile_detects_inconsistency() {
        let pile = Pile {
            pivot: PhysAddr::new(0),
            members: vec![PhysAddr::new(0), PhysAddr::new(0b100)],
        };
        assert!(!mask_constant_on_pile(0b100, &pile));
        assert!(mask_constant_on_pile(0b1000, &pile));
        let empty = Pile {
            pivot: PhysAddr::new(0),
            members: vec![],
        };
        assert!(mask_constant_on_pile(0b1, &empty));
    }

    #[test]
    fn fast_and_naive_paths_agree_on_every_table_ii_setting() {
        for setting in MachineSetting::all() {
            let mapping = setting.mapping();
            let piles = synthetic_piles(mapping);
            let bank_bits = mapping.bank_function_bits();
            let banks = setting.system.total_banks();
            let cfg = DramDigConfig::default();
            let fast = detect_bank_functions(&piles, &bank_bits, banks, &cfg).unwrap();
            let naive = detect_bank_functions_naive(&piles, &bank_bits, banks, &cfg).unwrap();
            assert_eq!(fast, naive, "{}", setting.label());
        }
    }

    #[test]
    fn merged_basis_verdicts_match_per_pile_scans() {
        let setting = MachineSetting::no6_skylake_ddr4_16g();
        let piles = synthetic_piles(setting.mapping());
        let basis = merged_difference_basis(&piles);
        let bank_bits = setting.mapping().bank_function_bits();
        for mask in bits::gen_xor_masks(&bank_bits, 7) {
            let naive = piles.iter().all(|p| mask_constant_on_pile(mask, p));
            assert_eq!(basis.mask_constant(mask), naive, "mask {mask:#x}");
        }
    }

    #[test]
    fn parallel_sweep_preserves_order_and_verdicts() {
        // A wide synthetic candidate space (16 bits, up to 5-bit masks:
        // 6885 masks) forces the scoped-thread path; verdicts and order
        // must match the serial filter exactly.
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let piles = synthetic_piles(setting.mapping());
        let basis = merged_difference_basis(&piles);
        let wide_bits: Vec<u8> = (8u8..24).collect();
        let masks = bits::gen_xor_masks(&wide_bits, 5);
        assert!(masks.len() >= 2048, "test must exercise the parallel path");
        let parallel = consistent_masks(&masks, &basis);
        let serial: Vec<XorFunc> = masks
            .iter()
            .filter(|&&m| basis.mask_constant(m))
            .map(|&m| XorFunc::from_mask(m))
            .collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn rejects_impossible_inputs() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let piles = synthetic_piles(setting.mapping());
        let bank_bits = setting.mapping().bank_function_bits();
        let cfg = DramDigConfig::default();
        assert!(matches!(
            detect_bank_functions(&[], &bank_bits, 8, &cfg),
            Err(DramDigError::FunctionDetection { .. })
        ));
        assert!(matches!(
            detect_bank_functions(&piles, &bank_bits, 12, &cfg),
            Err(DramDigError::FunctionDetection { .. })
        ));
        // A mask budget of one bit cannot express the two-bit functions.
        let tiny = DramDigConfig {
            max_func_bits: 1,
            ..DramDigConfig::default()
        };
        assert!(matches!(
            detect_bank_functions(&piles, &bank_bits, 8, &tiny),
            Err(DramDigError::FunctionDetection { .. })
        ));
    }

    #[test]
    fn numbering_check_rejects_dependent_choices() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let piles = synthetic_piles(setting.mapping());
        let funcs = setting.mapping().bank_funcs();
        assert!(numbering_is_valid(funcs, &piles));
        // Replacing one function with a duplicate of another collapses the
        // numbering.
        let bad = vec![funcs[0], funcs[1], funcs[1]];
        assert!(!numbering_is_valid(&bad, &piles));
    }
}
