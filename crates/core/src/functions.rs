//! Step 2c — bank address function detection (Algorithm 3 of the paper).
//!
//! Candidate XOR masks over the bank bits are tested against every pile: a
//! mask that evaluates to the same parity for all addresses of every pile is
//! a possible bank address function. Candidates that are GF(2) linear
//! combinations of smaller candidates are redundant and removed
//! (`prioritize` + `remove_redundant`), and finally a set of exactly
//! `log2(#banks)` functions is chosen that numbers the piles `0 .. #banks-1`
//! distinctly (`check_numbering`).

use dram_model::{bits, gf2, XorFunc};

use crate::config::DramDigConfig;
use crate::error::DramDigError;
use crate::partition::Pile;

/// Outcome of Algorithm 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectedFunctions {
    /// The selected bank address functions (exactly `log2(#banks)` of them),
    /// in canonical order (fewest bits first).
    pub functions: Vec<XorFunc>,
    /// All masks that were constant on every pile (before redundancy
    /// removal) — exposed for diagnostics and the ablation study.
    pub consistent_masks: Vec<XorFunc>,
}

/// Returns `true` if `mask` evaluates to the same parity for every address in
/// the pile (the paper's `apply_xor_mask_to_pile`).
pub fn mask_constant_on_pile(mask: u64, pile: &Pile) -> bool {
    let mut iter = pile.members.iter();
    let Some(first) = iter.next() else {
        return true;
    };
    let expected = first.masked_parity(mask);
    iter.all(|a| a.masked_parity(mask) == expected)
}

/// Numbers each pile by evaluating the candidate functions on its pivot.
fn pile_numbers(functions: &[XorFunc], piles: &[Pile]) -> Vec<u32> {
    piles
        .iter()
        .map(|pile| {
            let mut value = 0u32;
            for (i, f) in functions.iter().enumerate() {
                if f.evaluate(pile.pivot) {
                    value |= 1 << i;
                }
            }
            value
        })
        .collect()
}

/// Returns `true` if the candidate function set assigns a distinct number to
/// every pile (the paper's `check_numbering`: with `#banks` piles and
/// `log2(#banks)` functions, distinctness is equivalent to counting the piles
/// from `0` to `#banks - 1`).
pub fn numbering_is_valid(functions: &[XorFunc], piles: &[Pile]) -> bool {
    let mut numbers = pile_numbers(functions, piles);
    numbers.sort_unstable();
    numbers.windows(2).all(|w| w[0] != w[1])
}

/// Runs Algorithm 3 over the piles.
///
/// # Errors
///
/// Returns [`DramDigError::FunctionDetection`] when no candidate masks
/// survive, when fewer than `log2(#banks)` independent functions exist, or
/// when no combination of the surviving functions numbers the piles
/// distinctly.
pub fn detect_bank_functions(
    piles: &[Pile],
    bank_bits: &[u8],
    num_banks: u32,
    cfg: &DramDigConfig,
) -> Result<DetectedFunctions, DramDigError> {
    if piles.is_empty() {
        return Err(DramDigError::FunctionDetection {
            reason: "no piles to analyse".into(),
        });
    }
    let needed = num_banks.trailing_zeros() as usize;
    if !num_banks.is_power_of_two() || needed == 0 {
        return Err(DramDigError::FunctionDetection {
            reason: format!("bank count {num_banks} is not a power of two greater than one"),
        });
    }

    // Enumerate candidate masks by increasing size and keep those constant on
    // every pile. The intersection over piles is computed incrementally.
    let masks = bits::gen_xor_masks(bank_bits, cfg.max_func_bits.min(bank_bits.len()));
    let mut consistent: Vec<XorFunc> = Vec::new();
    'mask: for mask in masks {
        for pile in piles {
            if !mask_constant_on_pile(mask, pile) {
                continue 'mask;
            }
        }
        consistent.push(XorFunc::from_mask(mask));
    }
    if consistent.is_empty() {
        return Err(DramDigError::FunctionDetection {
            reason: "no XOR mask is constant across all piles".into(),
        });
    }

    // Prioritise small functions and drop GF(2)-redundant ones.
    let independent = gf2::remove_redundant(&consistent);
    if independent.len() < needed {
        return Err(DramDigError::FunctionDetection {
            reason: format!(
                "only {} independent candidate functions but log2(#banks) = {needed}",
                independent.len()
            ),
        });
    }

    // Pick the combination of `needed` functions that numbers the piles
    // distinctly. The canonical order of `remove_redundant` means the first
    // valid combination is also the one built from the smallest functions.
    if independent.len() == needed {
        if !numbering_is_valid(&independent, piles) {
            return Err(DramDigError::FunctionDetection {
                reason: "the independent functions do not number the piles distinctly".into(),
            });
        }
        return Ok(DetectedFunctions {
            functions: independent,
            consistent_masks: consistent,
        });
    }
    for combo in bits::Combinations::new(&independent, needed) {
        if gf2::functions_independent(&combo) && numbering_is_valid(&combo, piles) {
            return Ok(DetectedFunctions {
                functions: combo,
                consistent_masks: consistent,
            });
        }
    }
    Err(DramDigError::FunctionDetection {
        reason: format!(
            "no combination of {needed} candidate functions numbers the {} piles distinctly",
            piles.len()
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::{AddressMapping, MachineSetting, PhysAddr};

    /// Builds noise-free piles directly from a ground-truth mapping: every
    /// combination of the bank bits, grouped by true bank.
    fn synthetic_piles(mapping: &AddressMapping) -> Vec<Pile> {
        let bank_bits = mapping.bank_function_bits();
        let mut piles: std::collections::BTreeMap<u32, Vec<PhysAddr>> = Default::default();
        for combo in 0..(1u64 << bank_bits.len()) {
            let raw = bits::scatter_bits(combo, &bank_bits);
            let addr = PhysAddr::new(raw);
            piles.entry(mapping.bank_of(addr)).or_default().push(addr);
        }
        piles
            .into_values()
            .map(|members| Pile {
                pivot: members[0],
                members,
            })
            .collect()
    }

    fn detect_for(setting: &MachineSetting) -> DetectedFunctions {
        let mapping = setting.mapping();
        let piles = synthetic_piles(mapping);
        detect_bank_functions(
            &piles,
            &mapping.bank_function_bits(),
            setting.system.total_banks(),
            &DramDigConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn recovers_equivalent_functions_on_every_table_ii_setting() {
        for setting in MachineSetting::all() {
            let detected = detect_for(&setting);
            let truth = gf2::Gf2Matrix::from_funcs(setting.mapping().bank_funcs());
            let mine = gf2::Gf2Matrix::from_funcs(&detected.functions);
            assert_eq!(
                detected.functions.len(),
                setting.mapping().bank_funcs().len(),
                "{}",
                setting.label()
            );
            for f in &detected.functions {
                assert!(
                    truth.spans(f.mask()),
                    "{}: {f} not in ground-truth span",
                    setting.label()
                );
            }
            for f in setting.mapping().bank_funcs() {
                assert!(
                    mine.spans(f.mask()),
                    "{}: {f} not recovered",
                    setting.label()
                );
            }
        }
    }

    #[test]
    fn two_bit_functions_are_recovered_exactly() {
        // On settings whose functions are all 1- or 2-bit masks the minimal
        // basis is unique, so the recovered set matches the paper verbatim.
        for number in [1u8, 3, 4, 7, 8] {
            let setting = MachineSetting::by_number(number).unwrap();
            let detected = detect_for(&setting);
            let mut expected = setting.mapping().bank_funcs().to_vec();
            dram_model::xor_func::canonical_order(&mut expected);
            assert_eq!(detected.functions, expected, "{}", setting.label());
        }
    }

    #[test]
    fn mask_constant_on_pile_detects_inconsistency() {
        let pile = Pile {
            pivot: PhysAddr::new(0),
            members: vec![PhysAddr::new(0), PhysAddr::new(0b100)],
        };
        assert!(!mask_constant_on_pile(0b100, &pile));
        assert!(mask_constant_on_pile(0b1000, &pile));
        let empty = Pile {
            pivot: PhysAddr::new(0),
            members: vec![],
        };
        assert!(mask_constant_on_pile(0b1, &empty));
    }

    #[test]
    fn rejects_impossible_inputs() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let piles = synthetic_piles(setting.mapping());
        let bank_bits = setting.mapping().bank_function_bits();
        let cfg = DramDigConfig::default();
        assert!(matches!(
            detect_bank_functions(&[], &bank_bits, 8, &cfg),
            Err(DramDigError::FunctionDetection { .. })
        ));
        assert!(matches!(
            detect_bank_functions(&piles, &bank_bits, 12, &cfg),
            Err(DramDigError::FunctionDetection { .. })
        ));
        // A mask budget of one bit cannot express the two-bit functions.
        let tiny = DramDigConfig {
            max_func_bits: 1,
            ..DramDigConfig::default()
        };
        assert!(matches!(
            detect_bank_functions(&piles, &bank_bits, 8, &tiny),
            Err(DramDigError::FunctionDetection { .. })
        ));
    }

    #[test]
    fn numbering_check_rejects_dependent_choices() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let piles = synthetic_piles(setting.mapping());
        let funcs = setting.mapping().bank_funcs();
        assert!(numbering_is_valid(funcs, &piles));
        // Replacing one function with a duplicate of another collapses the
        // numbering.
        let bad = vec![funcs[0], funcs[1], funcs[1]];
        assert!(!numbering_is_valid(&bad, &piles));
    }
}
