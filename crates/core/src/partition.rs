//! Step 2b — physical-address partition (Algorithm 2 of the paper).
//!
//! The selected addresses are split into `#banks` piles such that all
//! addresses in a pile live in the same DRAM bank. A random pivot is drawn
//! from the remaining pool, every other remaining address is measured against
//! it, and the addresses that conflict (same bank, different row) form the
//! pivot's pile. A pile is only accepted when its size is within `±δ` of the
//! expected `pool / #banks`, which filters out piles corrupted by measurement
//! noise; partitioning stops once `per_threshold` of the pool is assigned.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use dram_model::PhysAddr;
use mem_probe::{ConflictOracle, MemoryProbe};

use crate::config::DramDigConfig;
use crate::error::DramDigError;

/// One same-bank pile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pile {
    /// The pivot address the pile was grown around.
    pub pivot: PhysAddr,
    /// All pool addresses observed to be in the pivot's bank
    /// (including the pivot itself).
    pub members: Vec<PhysAddr>,
}

impl Pile {
    /// Number of addresses in the pile (pivot included).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the pile has no members (never produced by the
    /// partition, but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Outcome of Algorithm 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// The accepted piles, in the order they were found.
    pub piles: Vec<Pile>,
    /// Addresses that were never assigned to an accepted pile.
    pub unassigned: Vec<PhysAddr>,
    /// Number of pivot attempts that produced an out-of-tolerance pile.
    pub rejected_piles: u32,
}

impl Partition {
    /// Fraction of the original pool that ended up in accepted piles.
    pub fn assigned_fraction(&self) -> f64 {
        let assigned: usize = self.piles.iter().map(Pile::len).sum();
        let total = assigned + self.unassigned.len();
        if total == 0 {
            0.0
        } else {
            assigned as f64 / total as f64
        }
    }
}

/// Runs Algorithm 2 over the selected pool.
///
/// # Errors
///
/// Returns [`DramDigError::Partition`] when the pool is too small, when the
/// maximum number of pivot attempts is exhausted before reaching
/// `per_threshold`, or when the number of accepted piles exceeds `num_banks`.
pub fn partition_into_piles<P: MemoryProbe>(
    oracle: &mut ConflictOracle<P>,
    pool: &[PhysAddr],
    num_banks: u32,
    cfg: &DramDigConfig,
    rng: &mut StdRng,
) -> Result<Partition, DramDigError> {
    let pool_sz = pool.len();
    if pool_sz < num_banks as usize {
        return Err(DramDigError::Partition {
            reason: format!("pool of {pool_sz} addresses cannot fill {num_banks} banks"),
        });
    }
    let pile_sz = pool_sz as f64 / f64::from(num_banks);
    let min_sz = ((1.0 - cfg.delta) * pile_sz).floor().max(1.0) as usize;
    let max_sz = ((1.0 + cfg.delta) * pile_sz).ceil() as usize;
    let target_assigned = (cfg.per_threshold * pool_sz as f64).ceil() as usize;

    let mut remaining: Vec<PhysAddr> = pool.to_vec();
    let mut piles: Vec<Pile> = Vec::with_capacity(num_banks as usize);
    let mut assigned = 0usize;
    let mut rejected = 0u32;
    let mut attempts = 0u32;

    while !remaining.is_empty() {
        let target_reached = assigned >= target_assigned;
        // Once the per-threshold is met, keep going only to complete the
        // expected number of piles (so the numbering check sees every bank),
        // never at the price of an error.
        if target_reached && (piles.len() >= num_banks as usize || remaining.len() < min_sz) {
            break;
        }
        attempts += 1;
        if attempts > cfg.max_partition_attempts {
            if target_reached {
                break;
            }
            return Err(DramDigError::Partition {
                reason: format!(
                    "gave up after {attempts} pivot attempts with only {assigned}/{pool_sz} \
                     addresses assigned ({} piles accepted)",
                    piles.len()
                ),
            });
        }
        let pivot = *remaining.choose(rng).expect("remaining is non-empty");
        let mut members = vec![pivot];
        for &other in remaining.iter().filter(|&&a| a != pivot) {
            if oracle.is_sbdr(pivot, other) {
                members.push(other);
            }
        }
        if members.len() >= min_sz && members.len() <= max_sz {
            remaining.retain(|a| !members.contains(a));
            assigned += members.len();
            piles.push(Pile { pivot, members });
            if piles.len() > num_banks as usize {
                return Err(DramDigError::Partition {
                    reason: format!(
                        "found {} piles but the system reports only {num_banks} banks",
                        piles.len()
                    ),
                });
            }
        } else {
            rejected += 1;
        }
    }

    Ok(Partition {
        piles,
        unassigned: remaining,
        rejected_piles: rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::select_addresses;
    use dram_model::MachineSetting;
    use dram_sim::{PhysMemory, SimConfig, SimMachine};
    use mem_probe::{LatencyCalibration, SimProbe};
    use rand::SeedableRng;

    fn oracle_for(number: u8, noisy: bool) -> ConflictOracle<SimProbe> {
        let setting = MachineSetting::by_number(number).unwrap();
        let config = if noisy {
            SimConfig::default()
        } else {
            SimConfig::noiseless()
        };
        let machine = SimMachine::from_setting(&setting, config);
        let threshold = machine.controller().config().timing.oracle_threshold_ns();
        let probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
        ConflictOracle::new(probe, LatencyCalibration::from_threshold(threshold))
    }

    fn run_partition(number: u8, noisy: bool) -> (Partition, MachineSetting) {
        let setting = MachineSetting::by_number(number).unwrap();
        let mut oracle = oracle_for(number, noisy);
        let bank_bits = setting.mapping().bank_function_bits();
        let pool = select_addresses(oracle.probe().memory(), &bank_bits, Some(2048)).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let partition = partition_into_piles(
            &mut oracle,
            &pool.addresses,
            setting.system.total_banks(),
            &DramDigConfig::default(),
            &mut rng,
        )
        .unwrap();
        (partition, setting)
    }

    #[test]
    fn piles_are_pure_same_bank_sets() {
        let (partition, setting) = run_partition(4, false);
        let truth = setting.mapping();
        assert_eq!(partition.piles.len(), setting.system.total_banks() as usize);
        for pile in &partition.piles {
            let bank = truth.bank_of(pile.pivot);
            for &member in &pile.members {
                assert_eq!(truth.bank_of(member), bank, "pile must be single-bank");
            }
        }
        assert!(partition.assigned_fraction() >= 0.85);
    }

    #[test]
    fn piles_cover_all_banks_with_noise() {
        let (partition, setting) = run_partition(7, true);
        let truth = setting.mapping();
        let mut banks: Vec<u32> = partition
            .piles
            .iter()
            .map(|p| truth.bank_of(p.pivot))
            .collect();
        banks.sort_unstable();
        banks.dedup();
        assert_eq!(banks.len(), setting.system.total_banks() as usize);
    }

    #[test]
    fn too_small_pool_is_rejected() {
        let mut oracle = oracle_for(4, false);
        let mut rng = StdRng::seed_from_u64(0);
        let pool: Vec<PhysAddr> = (0..4u64).map(|i| PhysAddr::new(i * 4096)).collect();
        let err = partition_into_piles(&mut oracle, &pool, 8, &DramDigConfig::default(), &mut rng)
            .unwrap_err();
        assert!(matches!(err, DramDigError::Partition { .. }));
    }

    #[test]
    fn attempt_budget_is_enforced() {
        let mut oracle = oracle_for(4, false);
        let mut rng = StdRng::seed_from_u64(0);
        // A pool where every address is in a different bank: piles of size 1
        // are far below the expected pool/#banks, so nothing is ever accepted.
        let truth = oracle.probe().machine().ground_truth().clone();
        let pool: Vec<PhysAddr> = (0..8u32)
            .map(|bank| {
                truth
                    .to_phys(dram_model::DramAddress::new(bank, 0, 0))
                    .unwrap()
            })
            .collect();
        let cfg = DramDigConfig {
            max_partition_attempts: 5,
            ..DramDigConfig::default()
        };
        // pool=8, banks=8 -> pile_sz 1, min 1: piles of size 1 are accepted...
        // use 2 banks so expected pile size is 4 and singletons get rejected.
        let err = partition_into_piles(&mut oracle, &pool, 2, &cfg, &mut rng).unwrap_err();
        assert!(matches!(err, DramDigError::Partition { .. }));
    }

    #[test]
    fn partition_is_deterministic_for_fixed_seed() {
        let (a, _) = run_partition(4, true);
        let (b, _) = run_partition(4, true);
        let pivots_a: Vec<PhysAddr> = a.piles.iter().map(|p| p.pivot).collect();
        let pivots_b: Vec<PhysAddr> = b.piles.iter().map(|p| p.pivot).collect();
        assert_eq!(pivots_a, pivots_b);
    }
}
