//! Step 2b — physical-address partition (Algorithm 2 of the paper).
//!
//! The selected addresses are split into `#banks` piles such that all
//! addresses in a pile live in the same DRAM bank. A random pivot is drawn
//! from the remaining pool, every other remaining address is measured against
//! it, and the addresses that conflict (same bank, different row) form the
//! pivot's pile. A pile is only accepted when its size is within `±δ` of the
//! expected `pool / #banks`, which filters out piles corrupted by measurement
//! noise; partitioning stops once `per_threshold` of the pool is assigned.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use dram_model::gf2::PileBasis;
use dram_model::PhysAddr;
use mem_probe::{ConflictOracle, MemoryProbe};

use crate::config::{DramDigConfig, PartitionStrategy};
use crate::error::DramDigError;

/// One same-bank pile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pile {
    /// The pivot address the pile was grown around.
    pub pivot: PhysAddr,
    /// All pool addresses observed to be in the pivot's bank
    /// (including the pivot itself).
    pub members: Vec<PhysAddr>,
}

impl Pile {
    /// Number of addresses in the pile (pivot included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the pile has no members (never produced by the
    /// partition, but kept for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Builds the row-echelon GF(2) basis of the pile's `member ⊕ pivot`
    /// differences — the structure Algorithm 3 verifies candidate masks
    /// against in O(rank) instead of O(members).
    #[must_use]
    pub fn basis(&self) -> PileBasis {
        PileBasis::from_members(self.pivot.raw(), self.members.iter().map(|a| a.raw()))
    }
}

/// Outcome of Algorithm 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// The accepted piles, in the order they were found.
    pub piles: Vec<Pile>,
    /// Addresses that were never assigned to an accepted pile.
    pub unassigned: Vec<PhysAddr>,
    /// Number of pivot attempts that produced an out-of-tolerance pile.
    pub rejected_piles: u32,
    /// The same-bank difference basis the decomposition strategy learned,
    /// when that strategy produced this partition. Algorithm 3 can verify
    /// candidate masks directly against it without re-deriving it from the
    /// pile members.
    pub kernel: Option<PileBasis>,
}

impl Partition {
    /// Fraction of the original pool that ended up in accepted piles.
    ///
    /// Addresses are counted once even when they appear in several piles
    /// (hand-built partitions may share pivots between piles; the
    /// measurement-driven partitions never produce overlaps).
    #[must_use]
    pub fn assigned_fraction(&self) -> f64 {
        let assigned: std::collections::HashSet<PhysAddr> = self
            .piles
            .iter()
            .flat_map(|p| p.members.iter().copied())
            .collect();
        let unassigned = self
            .unassigned
            .iter()
            .filter(|a| !assigned.contains(a))
            .count();
        let total = assigned.len() + unassigned;
        if total == 0 {
            0.0
        } else {
            assigned.len() as f64 / total as f64
        }
    }
}

/// Runs Algorithm 2 over the selected pool.
///
/// # Errors
///
/// Returns [`DramDigError::Partition`] when the pool is too small, when the
/// maximum number of pivot attempts is exhausted before reaching
/// `per_threshold`, or when the number of accepted piles exceeds `num_banks`.
pub fn partition_into_piles<P: MemoryProbe>(
    oracle: &mut ConflictOracle<P>,
    pool: &[PhysAddr],
    num_banks: u32,
    cfg: &DramDigConfig,
    rng: &mut StdRng,
) -> Result<Partition, DramDigError> {
    let pool_sz = pool.len();
    if pool_sz < num_banks as usize {
        return Err(DramDigError::Partition {
            reason: format!("pool of {pool_sz} addresses cannot fill {num_banks} banks"),
        });
    }
    let pile_sz = pool_sz as f64 / f64::from(num_banks);
    let min_sz = ((1.0 - cfg.delta) * pile_sz).floor().max(1.0) as usize;
    let max_sz = ((1.0 + cfg.delta) * pile_sz).ceil() as usize;
    let target_assigned = (cfg.per_threshold * pool_sz as f64).ceil() as usize;

    let mut remaining: Vec<PhysAddr> = pool.to_vec();
    let mut piles: Vec<Pile> = Vec::with_capacity(num_banks as usize);
    let mut assigned = 0usize;
    let mut rejected = 0u32;
    let mut attempts = 0u32;

    while !remaining.is_empty() {
        let target_reached = assigned >= target_assigned;
        // Once the per-threshold is met, keep going only to complete the
        // expected number of piles (so the numbering check sees every bank),
        // never at the price of an error.
        if target_reached && (piles.len() >= num_banks as usize || remaining.len() < min_sz) {
            break;
        }
        attempts += 1;
        if attempts > cfg.max_partition_attempts {
            if target_reached {
                break;
            }
            return Err(DramDigError::Partition {
                reason: format!(
                    "gave up after {attempts} pivot attempts with only {assigned}/{pool_sz} \
                     addresses assigned ({} piles accepted)",
                    piles.len()
                ),
            });
        }
        let pivot = *remaining.choose(rng).expect("remaining is non-empty");
        let mut members = vec![pivot];
        for &other in remaining.iter().filter(|&&a| a != pivot) {
            if oracle.is_sbdr(pivot, other) {
                members.push(other);
            }
        }
        if members.len() >= min_sz && members.len() <= max_sz {
            remaining.retain(|a| !members.contains(a));
            assigned += members.len();
            piles.push(Pile { pivot, members });
            if piles.len() > num_banks as usize {
                return Err(DramDigError::Partition {
                    reason: format!(
                        "found {} piles but the system reports only {num_banks} banks",
                        piles.len()
                    ),
                });
            }
        } else {
            rejected += 1;
        }
    }

    Ok(Partition {
        piles,
        unassigned: remaining,
        rejected_piles: rejected,
        kernel: None,
    })
}

/// Builds noise-free piles directly from a ground-truth mapping: one
/// address per combination of the mapping's bank-function bits, grouped by
/// true bank, with the lowest address of each bank as the pivot.
///
/// This is the canonical clean input to Algorithm 3, shared by the
/// differential tests and the benchmarks so the pile shape cannot drift
/// between them.
#[must_use]
pub fn synthetic_piles(mapping: &dram_model::AddressMapping) -> Vec<Pile> {
    let bank_bits = mapping.bank_function_bits();
    let addrs: Vec<PhysAddr> = (0..(1u64 << bank_bits.len()))
        .map(|combo| PhysAddr::new(dram_model::bits::scatter_bits(combo, &bank_bits)))
        .collect();
    // Bank numbers come from the bitsliced batch evaluator (64 addresses
    // per block); `bank_of` stays the scalar twin.
    let banks = mapping.banks_of(&addrs);
    let mut piles: std::collections::BTreeMap<u32, Vec<PhysAddr>> = Default::default();
    for (&addr, bank) in addrs.iter().zip(banks) {
        piles.entry(bank).or_default().push(addr);
    }
    piles
        .into_values()
        .map(|members| Pile {
            pivot: members[0],
            members,
        })
        .collect()
}

/// Runs the partition strategy selected by `cfg.partition_strategy`.
///
/// The decomposition strategy is a measurement-budget optimisation, not a
/// robustness improvement, so when it cannot complete (excess noise, a pool
/// whose kernel cannot be learned within `cfg.max_decompose_queries`) this
/// falls back to the exhaustive Algorithm 2 instead of failing the pipeline.
///
/// # Errors
///
/// Same conditions as [`partition_into_piles`].
pub fn partition_with_strategy<P: MemoryProbe>(
    oracle: &mut ConflictOracle<P>,
    pool: &[PhysAddr],
    num_banks: u32,
    cfg: &DramDigConfig,
    rng: &mut StdRng,
) -> Result<Partition, DramDigError> {
    match cfg.partition_strategy {
        PartitionStrategy::Exhaustive => partition_into_piles(oracle, pool, num_banks, cfg, rng),
        PartitionStrategy::Decompose => partition_decompose(oracle, pool, num_banks, cfg, rng)
            .or_else(|_| partition_into_piles(oracle, pool, num_banks, cfg, rng)),
    }
}

/// GF(2) decomposition partition: instead of timing every pool address
/// against every pivot, learn a basis of the *same-bank difference space*
/// (the kernel of the bank functions restricted to the bits the pool varies)
/// from targeted measurements, then place every address into its coset
/// computationally and spot-check one measured pair per pile.
///
/// Two addresses of the pool are in the same bank exactly when their XOR
/// difference lies in that kernel, so `num_banks` piles need only
/// `dim(kernel) = |varying bits| - log2(num_banks)` independent positive
/// observations plus the probing that finds them. Candidate differences are
/// probed in ascending Hamming weight starting at two — the shape Intel
/// bank-function kernels overwhelmingly take (each isolated XOR function
/// contributes its own mask as a weight-2 kernel vector) — then single
/// bits, then random differences from random base addresses. A noisy
/// observation cannot silently corrupt the result: a wrong kernel either
/// changes the coset count or fails a spot check, both of which surface as
/// an error that [`partition_with_strategy`] answers with the exhaustive
/// fallback.
///
/// # Errors
///
/// Returns [`DramDigError::Partition`] when the pool is too small, when the
/// kernel cannot be completed within `cfg.max_decompose_queries`
/// measurements, when the computed cosets do not form exactly `num_banks`
/// piles, or when a spot check fails.
pub fn partition_decompose<P: MemoryProbe>(
    oracle: &mut ConflictOracle<P>,
    pool: &[PhysAddr],
    num_banks: u32,
    cfg: &DramDigConfig,
    rng: &mut StdRng,
) -> Result<Partition, DramDigError> {
    let pool_sz = pool.len();
    if pool_sz < num_banks as usize {
        return Err(DramDigError::Partition {
            reason: format!("pool of {pool_sz} addresses cannot fill {num_banks} banks"),
        });
    }
    if !num_banks.is_power_of_two() || num_banks < 2 {
        return Err(DramDigError::Partition {
            reason: format!("bank count {num_banks} is not a power of two greater than one"),
        });
    }
    let needed = num_banks.trailing_zeros() as usize;

    // The bits the pool actually varies; the kernel lives inside their span.
    let base = pool[0].raw();
    let varying: u64 = pool.iter().fold(0, |m, a| m | (a.raw() ^ base));
    let vbits = dram_model::bits::bit_positions(varying);
    let dim_pool = vbits.len();
    if dim_pool < needed {
        return Err(DramDigError::Partition {
            reason: format!("pool varies only {dim_pool} bits but {num_banks} banks need {needed}"),
        });
    }
    let kernel_rank = dim_pool - needed;

    let pool_set: std::collections::HashSet<u64> = pool.iter().map(|a| a.raw()).collect();
    let pivot = *pool.choose(rng).expect("pool is non-empty");
    let mut kernel = PileBasis::new(pivot.raw());
    let mut queries = 0u32;
    // Same-bank pairs observed while learning; their cosets need no
    // further spot check.
    let mut positives: Vec<PhysAddr> = Vec::new();

    // Deterministic candidates: weight-2 differences, then single bits.
    let mut candidates: Vec<u64> = Vec::new();
    for (i, &a) in vbits.iter().enumerate() {
        for &b in vbits.iter().skip(i + 1) {
            candidates.push((1u64 << a) | (1u64 << b));
        }
    }
    candidates.extend(vbits.iter().map(|&b| 1u64 << b));

    let mut next_candidate = 0usize;
    while kernel.rank() < kernel_rank {
        if queries >= cfg.max_decompose_queries {
            return Err(DramDigError::Partition {
                reason: format!(
                    "kernel rank stalled at {}/{kernel_rank} after {queries} decompose queries",
                    kernel.rank()
                ),
            });
        }
        // Pick the next unspanned difference: deterministic list first, then
        // random base/partner pairs (which also re-measure noise-suspect
        // differences through fresh address pairs). Both phases are bounded:
        // a pool whose pairwise differences cannot complete the kernel (the
        // OR of differences over-estimates their XOR-span) must stall out to
        // the exhaustive fallback, not spin here.
        let mut picked = None;
        while next_candidate < candidates.len() {
            let d = candidates[next_candidate];
            next_candidate += 1;
            if !kernel.spans_difference(d) && pool_set.contains(&(pivot.raw() ^ d)) {
                picked = Some((pivot, d));
                break;
            }
        }
        if picked.is_none() {
            for _ in 0..pool_sz.max(64) {
                let r = *pool.choose(rng).expect("pool is non-empty");
                let c = *pool.choose(rng).expect("pool is non-empty");
                let d = r.raw() ^ c.raw();
                if d != 0 && !kernel.spans_difference(d) {
                    picked = Some((r, d));
                    break;
                }
            }
        }
        let Some((base_addr, diff)) = picked else {
            return Err(DramDigError::Partition {
                reason: format!(
                    "no unspanned pool difference left with kernel rank {}/{kernel_rank}",
                    kernel.rank()
                ),
            });
        };
        queries += 1;
        let partner = PhysAddr::new(base_addr.raw() ^ diff);
        if oracle.is_sbdr(base_addr, partner) {
            kernel.insert(pivot.raw() ^ diff);
            positives.push(base_addr);
        }
    }

    // Assign every pool address to its coset — pure computation, reduced in
    // bitsliced blocks of 64 addresses per basis pass (identical output to
    // the per-address `kernel.reduce`, which remains the differential twin).
    let differences: Vec<u64> = pool.iter().map(|a| a.raw() ^ pivot.raw()).collect();
    let cosets = kernel.reduce_batch(&differences);
    let mut piles_by_coset: std::collections::BTreeMap<u64, Vec<PhysAddr>> = Default::default();
    for (&addr, coset) in pool.iter().zip(cosets) {
        piles_by_coset.entry(coset).or_default().push(addr);
    }
    if piles_by_coset.len() != num_banks as usize {
        return Err(DramDigError::Partition {
            reason: format!(
                "decomposition produced {} cosets for {num_banks} banks",
                piles_by_coset.len()
            ),
        });
    }
    let evidenced: std::collections::HashSet<u64> = positives
        .iter()
        .map(|a| kernel.reduce(a.raw() ^ pivot.raw()))
        .collect();

    // One measured spot check per pile whose purity no learning query
    // already witnessed: a pair of computed same-bank members must conflict.
    let mut piles = Vec::with_capacity(piles_by_coset.len());
    for (coset, members) in piles_by_coset {
        if members.len() >= 2 && !evidenced.contains(&coset) {
            let a = members[0];
            let b = members[members.len() / 2];
            if !oracle.is_sbdr(a, b) {
                return Err(DramDigError::Partition {
                    reason: format!(
                        "spot check failed: {a} and {b} share a computed pile but do not conflict"
                    ),
                });
            }
        }
        piles.push(Pile {
            pivot: members[0],
            members,
        });
    }

    Ok(Partition {
        piles,
        unassigned: Vec::new(),
        rejected_piles: 0,
        kernel: Some(kernel),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::select_addresses;
    use dram_model::MachineSetting;
    use dram_sim::{PhysMemory, SimConfig, SimMachine};
    use mem_probe::{LatencyCalibration, SimProbe};
    use rand::SeedableRng;

    fn oracle_for(number: u8, noisy: bool) -> ConflictOracle<SimProbe> {
        let setting = MachineSetting::by_number(number).unwrap();
        let config = if noisy {
            SimConfig::default()
        } else {
            SimConfig::noiseless()
        };
        let machine = SimMachine::from_setting(&setting, config);
        let threshold = machine.controller().config().timing.oracle_threshold_ns();
        let probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
        ConflictOracle::new(probe, LatencyCalibration::from_threshold(threshold))
    }

    fn run_partition(number: u8, noisy: bool) -> (Partition, MachineSetting) {
        let setting = MachineSetting::by_number(number).unwrap();
        let mut oracle = oracle_for(number, noisy);
        let bank_bits = setting.mapping().bank_function_bits();
        let pool = select_addresses(oracle.probe().memory(), &bank_bits, Some(2048)).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let partition = partition_into_piles(
            &mut oracle,
            &pool.addresses,
            setting.system.total_banks(),
            &DramDigConfig::default(),
            &mut rng,
        )
        .unwrap();
        (partition, setting)
    }

    #[test]
    fn piles_are_pure_same_bank_sets() {
        let (partition, setting) = run_partition(4, false);
        let truth = setting.mapping();
        assert_eq!(partition.piles.len(), setting.system.total_banks() as usize);
        for pile in &partition.piles {
            let bank = truth.bank_of(pile.pivot);
            for &member in &pile.members {
                assert_eq!(truth.bank_of(member), bank, "pile must be single-bank");
            }
        }
        assert!(partition.assigned_fraction() >= 0.85);
    }

    #[test]
    fn piles_cover_all_banks_with_noise() {
        let (partition, setting) = run_partition(7, true);
        let truth = setting.mapping();
        let mut banks: Vec<u32> = partition
            .piles
            .iter()
            .map(|p| truth.bank_of(p.pivot))
            .collect();
        banks.sort_unstable();
        banks.dedup();
        assert_eq!(banks.len(), setting.system.total_banks() as usize);
    }

    #[test]
    fn too_small_pool_is_rejected() {
        let mut oracle = oracle_for(4, false);
        let mut rng = StdRng::seed_from_u64(0);
        let pool: Vec<PhysAddr> = (0..4u64).map(|i| PhysAddr::new(i * 4096)).collect();
        let err = partition_into_piles(&mut oracle, &pool, 8, &DramDigConfig::default(), &mut rng)
            .unwrap_err();
        assert!(matches!(err, DramDigError::Partition { .. }));
    }

    #[test]
    fn attempt_budget_is_enforced() {
        let mut oracle = oracle_for(4, false);
        let mut rng = StdRng::seed_from_u64(0);
        // A pool where every address is in a different bank: piles of size 1
        // are far below the expected pool/#banks, so nothing is ever accepted.
        let truth = oracle.probe().machine().ground_truth().clone();
        let pool: Vec<PhysAddr> = (0..8u32)
            .map(|bank| {
                truth
                    .to_phys(dram_model::DramAddress::new(bank, 0, 0))
                    .unwrap()
            })
            .collect();
        let cfg = DramDigConfig {
            max_partition_attempts: 5,
            ..DramDigConfig::default()
        };
        // pool=8, banks=8 -> pile_sz 1, min 1: piles of size 1 are accepted...
        // use 2 banks so expected pile size is 4 and singletons get rejected.
        let err = partition_into_piles(&mut oracle, &pool, 2, &cfg, &mut rng).unwrap_err();
        assert!(matches!(err, DramDigError::Partition { .. }));
    }

    #[test]
    fn decompose_matches_exhaustive_bank_structure() {
        let setting = MachineSetting::by_number(4).unwrap();
        let mut oracle = oracle_for(4, false);
        let bank_bits = setting.mapping().bank_function_bits();
        let pool = select_addresses(oracle.probe().memory(), &bank_bits, None).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let before = oracle.stats().measurements;
        let partition = partition_decompose(
            &mut oracle,
            &pool.addresses,
            setting.system.total_banks(),
            &DramDigConfig::default(),
            &mut rng,
        )
        .unwrap();
        let spent = oracle.stats().measurements - before;
        let truth = setting.mapping();
        assert_eq!(partition.piles.len(), 8);
        assert!(partition.kernel.is_some());
        assert!((partition.assigned_fraction() - 1.0).abs() < 1e-12);
        for pile in &partition.piles {
            let bank = truth.bank_of(pile.pivot);
            for &member in &pile.members {
                assert_eq!(truth.bank_of(member), bank, "pile must be single-bank");
            }
        }
        // The measurement budget is a small fraction of the exhaustive
        // strategy's (which spends ≥ pool²/banks-ish on this pool).
        assert!(spent < 64, "decompose spent {spent} measurements");
    }

    #[test]
    fn decompose_falls_back_cleanly_via_strategy_dispatch() {
        // A pool with a single varying bit cannot host 8 banks: decompose
        // must fail and partition_with_strategy must fall back to the
        // exhaustive path (which then reports its own pool-size error).
        let mut oracle = oracle_for(4, false);
        let mut rng = StdRng::seed_from_u64(1);
        let pool: Vec<PhysAddr> = (0..4u64).map(|i| PhysAddr::new(i * 4096)).collect();
        let cfg = DramDigConfig {
            partition_strategy: crate::config::PartitionStrategy::Decompose,
            ..DramDigConfig::default()
        };
        let err = partition_with_strategy(&mut oracle, &pool, 8, &cfg, &mut rng).unwrap_err();
        assert!(matches!(err, DramDigError::Partition { .. }));
    }

    #[test]
    fn strategy_dispatch_uses_decompose_when_possible() {
        let setting = MachineSetting::by_number(7).unwrap();
        let mut oracle = oracle_for(7, false);
        let bank_bits = setting.mapping().bank_function_bits();
        let pool = select_addresses(oracle.probe().memory(), &bank_bits, None).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = DramDigConfig {
            partition_strategy: crate::config::PartitionStrategy::Decompose,
            ..DramDigConfig::default()
        };
        let partition = partition_with_strategy(
            &mut oracle,
            &pool.addresses,
            setting.system.total_banks(),
            &cfg,
            &mut rng,
        )
        .unwrap();
        assert!(partition.kernel.is_some(), "decompose path should be taken");
        assert_eq!(partition.piles.len(), setting.system.total_banks() as usize);
    }

    #[test]
    fn assigned_fraction_counts_shared_addresses_once() {
        let a = PhysAddr::new(0x1000);
        let b = PhysAddr::new(0x2000);
        let c = PhysAddr::new(0x3000);
        // Two piles sharing the pivot address `a`: 3 unique assigned, 1
        // unassigned -> 0.75, not (4 assigned / 5 total).
        let partition = Partition {
            piles: vec![
                Pile {
                    pivot: a,
                    members: vec![a, b],
                },
                Pile {
                    pivot: a,
                    members: vec![a, c],
                },
            ],
            unassigned: vec![PhysAddr::new(0x4000)],
            rejected_piles: 0,
            kernel: None,
        };
        assert!((partition.assigned_fraction() - 0.75).abs() < 1e-12);
        // An address listed both assigned and unassigned counts as assigned.
        let overlap = Partition {
            piles: vec![Pile {
                pivot: a,
                members: vec![a, b],
            }],
            unassigned: vec![b],
            rejected_piles: 0,
            kernel: None,
        };
        assert!((overlap.assigned_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pile_basis_spans_member_differences() {
        let pile = Pile {
            pivot: PhysAddr::new(0b0000),
            members: vec![
                PhysAddr::new(0b0000),
                PhysAddr::new(0b0110),
                PhysAddr::new(0b1010),
                PhysAddr::new(0b1100),
            ],
        };
        let basis = pile.basis();
        assert_eq!(basis.rank(), 2);
        for m in &pile.members {
            assert!(basis.spans_difference(m.raw() ^ pile.pivot.raw()));
        }
    }

    #[test]
    fn partition_is_deterministic_for_fixed_seed() {
        let (a, _) = run_partition(4, true);
        let (b, _) = run_partition(4, true);
        let pivots_a: Vec<PhysAddr> = a.piles.iter().map(|p| p.pivot).collect();
        let pivots_b: Vec<PhysAddr> = b.piles.iter().map(|p| p.pivot).collect();
        assert_eq!(pivots_a, pivots_b);
    }
}
