//! A serializable summary of one pipeline run.
//!
//! [`RunReport`] holds everything a run learned, including borrowed-scale
//! intermediate state (piles, candidate masks) that only matters while the
//! run is alive. A campaign journal needs the durable subset — the recovered
//! mapping plus the cost accounting — in a form that survives a plain-text
//! round trip. [`RecoveryReport`] is that subset: built from a [`RunReport`]
//! with [`From`], encoded with [`RecoveryReport::encode`], and restored with
//! [`RecoveryReport::decode`] when a resumed campaign replays its journal.

use std::fmt;

use dram_model::{parse, AddressMapping};

use crate::codec::{self, CodecError};
use crate::driver::{Phase, PhaseCosts, RunReport};

/// The durable outcome of one pipeline run: the recovered mapping plus the
/// per-phase and total measurement costs.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// The recovered physical-address → DRAM mapping.
    pub mapping: AddressMapping,
    /// Size of the selected address pool (Step 2a).
    pub pool_size: usize,
    /// Number of accepted same-bank piles (Step 2b).
    pub pile_count: usize,
    /// The calibrated conflict threshold in nanoseconds.
    pub threshold_ns: u64,
    /// XOR row-remap mask recovered by an extra observable channel
    /// (canonical under reflection), when one was consulted and confirmed.
    pub row_remap: Option<u32>,
    /// Validation agreement in `[0, 1]`, when the validation pass ran.
    pub validation_agreement: Option<f64>,
    /// Per-phase measurement costs, in execution order.
    pub phase_costs: Vec<(Phase, PhaseCosts)>,
    /// Total cost across all phases.
    pub total: PhaseCosts,
}

impl From<&RunReport> for RecoveryReport {
    fn from(run: &RunReport) -> Self {
        RecoveryReport {
            mapping: run.mapping.clone(),
            pool_size: run.pool_size,
            pile_count: run.pile_count,
            threshold_ns: run.threshold_ns,
            row_remap: run.row_remap,
            validation_agreement: run.validation.as_ref().map(|v| v.agreement()),
            phase_costs: run.phase_costs.clone(),
            total: run.total,
        }
    }
}

pub(crate) fn encode_costs(c: &PhaseCosts) -> String {
    format!(
        "{},{},{},{},{}",
        c.measurements, c.accesses, c.elapsed_ns, c.cache_hits, c.cache_misses
    )
}

pub(crate) fn decode_costs(line: usize, key: &str, value: &str) -> Result<PhaseCosts, CodecError> {
    let fields: Vec<&str> = value.split(',').map(str::trim).collect();
    if fields.len() != 5 {
        return Err(CodecError::at(
            line,
            format!("`{key}` expects 5 comma-separated counters, got `{value}`"),
        ));
    }
    Ok(PhaseCosts {
        measurements: codec::parse_u64(line, key, fields[0])?,
        accesses: codec::parse_u64(line, key, fields[1])?,
        elapsed_ns: codec::parse_u64(line, key, fields[2])?,
        cache_hits: codec::parse_u64(line, key, fields[3])?,
        cache_misses: codec::parse_u64(line, key, fields[4])?,
    })
}

impl RecoveryReport {
    /// Total simulated seconds spent across all phases.
    pub fn elapsed_seconds(&self) -> f64 {
        self.total.elapsed_seconds()
    }

    /// Serializes the report as `key = value` lines. Cost counters are
    /// packed as `measurements,accesses,elapsed_ns,cache_hits,cache_misses`;
    /// the mapping uses the paper's Table-II notation, re-parsed by
    /// [`dram_model::parse`]. [`RecoveryReport::decode`] is the inverse.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let (funcs, rows, cols) = parse::render_mapping(&self.mapping);
        out.push_str(&format!("funcs = {funcs}\n"));
        out.push_str(&format!("rows = {rows}\n"));
        out.push_str(&format!("cols = {cols}\n"));
        out.push_str(&format!("pool = {}\n", self.pool_size));
        out.push_str(&format!("piles = {}\n", self.pile_count));
        out.push_str(&format!("threshold_ns = {}\n", self.threshold_ns));
        if let Some(mask) = self.row_remap {
            out.push_str(&format!("row_remap = {mask}\n"));
        }
        if let Some(agreement) = self.validation_agreement {
            out.push_str(&format!("agreement = {agreement:?}\n"));
        }
        for (phase, costs) in &self.phase_costs {
            out.push_str(&format!(
                "phase.{} = {}\n",
                phase.name(),
                encode_costs(costs)
            ));
        }
        out.push_str(&format!("total = {}\n", encode_costs(&self.total)));
        out
    }

    /// Parses a report written by [`RecoveryReport::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] for malformed lines, unknown keys, a missing
    /// mapping or an inconsistent (non-bijective) mapping.
    pub fn decode(text: &str) -> Result<Self, CodecError> {
        let mut funcs = None;
        let mut rows = None;
        let mut cols = None;
        let mut pool_size = None;
        let mut pile_count = None;
        let mut threshold_ns = None;
        let mut row_remap = None;
        let mut validation_agreement = None;
        let mut phase_costs = Vec::new();
        let mut total = None;

        for (line, key, value) in codec::parse_kv_lines(text)? {
            if let Some(name) = key.strip_prefix("phase.") {
                let phase = Phase::from_name(name)
                    .ok_or_else(|| CodecError::at(line, format!("unknown phase `{name}`")))?;
                phase_costs.push((phase, decode_costs(line, key, value)?));
                continue;
            }
            match key {
                "funcs" => funcs = Some(value.to_string()),
                "rows" => rows = Some(value.to_string()),
                "cols" => cols = Some(value.to_string()),
                "pool" => pool_size = Some(codec::parse_usize(line, key, value)?),
                "piles" => pile_count = Some(codec::parse_usize(line, key, value)?),
                "threshold_ns" => threshold_ns = Some(codec::parse_u64(line, key, value)?),
                "row_remap" => {
                    let raw = codec::parse_u64(line, key, value)?;
                    row_remap = Some(u32::try_from(raw).map_err(|_| {
                        CodecError::at(
                            line,
                            format!("`row_remap` {raw} does not fit a 32-bit mask"),
                        )
                    })?);
                }
                "agreement" => validation_agreement = Some(codec::parse_f64(line, key, value)?),
                "total" => total = Some(decode_costs(line, key, value)?),
                other => {
                    return Err(CodecError::at(
                        line,
                        format!("unknown report key `{other}`"),
                    ))
                }
            }
        }

        let missing = |what: &str| CodecError::whole(format!("report is missing `{what}`"));
        let funcs = funcs.ok_or_else(|| missing("funcs"))?;
        let rows = rows.ok_or_else(|| missing("rows"))?;
        let cols = cols.ok_or_else(|| missing("cols"))?;
        let mapping = parse::parse_mapping(&funcs, &rows, &cols)
            .map_err(|e| CodecError::whole(format!("invalid mapping: {e}")))?;
        Ok(RecoveryReport {
            mapping,
            pool_size: pool_size.ok_or_else(|| missing("pool"))?,
            pile_count: pile_count.ok_or_else(|| missing("piles"))?,
            threshold_ns: threshold_ns.ok_or_else(|| missing("threshold_ns"))?,
            row_remap,
            validation_agreement,
            phase_costs,
            total: total.ok_or_else(|| missing("total"))?,
        })
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}; {} measurements, {:.3} s simulated",
            self.mapping,
            self.total.measurements,
            self.elapsed_seconds()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::MachineSetting;
    use dram_sim::{PhysMemory, SimConfig, SimMachine};
    use mem_probe::SimProbe;

    use crate::{DomainKnowledge, DramDig, DramDigConfig};

    fn sample_report() -> RecoveryReport {
        let setting = MachineSetting::by_number(4).unwrap();
        let machine = SimMachine::from_setting(&setting, SimConfig::default());
        let mut probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
        let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
        let run = DramDig::new(knowledge, DramDigConfig::fast())
            .run(&mut probe)
            .unwrap();
        RecoveryReport::from(&run)
    }

    #[test]
    fn real_run_round_trips_through_the_text_codec() {
        let report = sample_report();
        let decoded = RecoveryReport::decode(&report.encode()).unwrap();
        assert_eq!(decoded, report);
        assert!(report.validation_agreement.unwrap() > 0.9);
        assert_eq!(decoded.phase_costs.len(), report.phase_costs.len());
        assert!(decoded.to_string().contains("measurements"));
    }

    #[test]
    fn round_trip_without_validation_pass() {
        let mut report = sample_report();
        report.validation_agreement = None;
        let decoded = RecoveryReport::decode(&report.encode()).unwrap();
        assert_eq!(decoded.validation_agreement, None);
        assert_eq!(decoded, report);
    }

    #[test]
    fn row_remap_is_encoded_only_when_recovered() {
        let mut report = sample_report();
        assert!(!report.encode().contains("row_remap"));
        report.row_remap = Some(0x1bfd69);
        let encoded = report.encode();
        assert!(encoded.contains("row_remap = 1834345\n"));
        let decoded = RecoveryReport::decode(&encoded).unwrap();
        assert_eq!(decoded.row_remap, Some(0x1bfd69));
        assert_eq!(decoded, report);
        // An over-wide mask is rejected instead of silently truncated.
        assert!(RecoveryReport::decode(&format!(
            "{}row_remap = 4294967296\n",
            sample_report().encode()
        ))
        .is_err());
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        let report = sample_report();
        let encoded = report.encode();
        // Dropping the mapping makes the document undecodable.
        let without_funcs: String = encoded
            .lines()
            .filter(|l| !l.starts_with("funcs"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = RecoveryReport::decode(&without_funcs).unwrap_err();
        assert!(err.to_string().contains("funcs"), "{err}");
        // Unknown phases, unknown keys and short counter tuples all fail.
        assert!(RecoveryReport::decode("phase.warp = 1,2,3,4,5\n").is_err());
        assert!(RecoveryReport::decode("wat = 1\n").is_err());
        assert!(RecoveryReport::decode(&format!("{encoded}total = 1,2,3\n")).is_err());
        // An inconsistent mapping is caught by the model layer.
        let bad = "funcs = (13, 16)\nrows = 16~31\ncols = 0~12\npool = 1\npiles = 1\nthreshold_ns = 1\ntotal = 0,0,0,0,0\n";
        assert!(RecoveryReport::decode(bad).is_err());
    }
}
