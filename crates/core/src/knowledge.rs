//! The domain knowledge that makes DRAMDig "knowledge-assisted"
//! (Section III-A of the paper).

use dram_model::{DdrSpec, Microarch, SystemInfo};
use mem_probe::ObservableKind;

use crate::error::DramDigError;

/// The three knowledge groups the paper feeds into the algorithm.
///
/// * **Specifications** — DDR3/DDR4 data sheets give the number of row,
///   column and bank bits ([`DdrSpec`]).
/// * **System information** — `decode-dimms` / `dmidecode` give the total
///   number of banks, memory size and ECC presence ([`SystemInfo`]).
/// * **Empirical observations** — bank functions are XORs of physical
///   address bits, and since Ivy Bridge the lowest bit of the widest bank
///   function is not a column bit.
///
/// Each group can be disabled individually, which the ablation experiment in
/// `dramdig-bench` uses to quantify how much each contributes; with a group
/// disabled the algorithm falls back to weaker heuristics (and may lose the
/// determinism and efficiency the paper advertises).
#[derive(Debug, Clone, PartialEq)]
pub struct DomainKnowledge {
    /// System information (always required to know the address width).
    pub system: SystemInfo,
    /// CPU microarchitecture, if known (decides whether the "widest function"
    /// empirical rule applies; it holds since Ivy Bridge).
    pub microarch: Option<Microarch>,
    /// Whether DDR-specification knowledge (row/column/bank bit counts) may
    /// be used.
    pub use_specifications: bool,
    /// Whether system-information knowledge (total bank count) may be used.
    pub use_system_info: bool,
    /// Whether the empirical observations may be used.
    pub use_empirical: bool,
    /// The observable channels available on this machine, in the order the
    /// engine consults them. Conflict timing is always assumed (it is what
    /// the pipeline itself runs on); declaring
    /// [`ObservableKind::FlipAdjacency`] additionally lets the engine ask a
    /// rowhammer channel for row-bit evidence — such as an XOR row-remap
    /// mask — that timing alone provably cannot see.
    pub observables: Vec<ObservableKind>,
}

impl DomainKnowledge {
    /// Creates fully-enabled domain knowledge for a machine.
    pub fn new(system: SystemInfo, microarch: Option<Microarch>) -> Self {
        DomainKnowledge {
            system,
            microarch,
            use_specifications: true,
            use_system_info: true,
            use_empirical: true,
            observables: vec![ObservableKind::ConflictTiming],
        }
    }

    /// Derives the knowledge an operator would gather on a generated machine
    /// model: the system information comes straight from the model (what
    /// `dmidecode`/`decode-dimms` would report there), and with no Intel
    /// microarchitecture attached the empirical widest-function rule is
    /// assumed to hold, as on every post-Sandy-Bridge CPU.
    pub fn for_generated(machine: &dram_model::GeneratedMachine) -> Self {
        DomainKnowledge::new(machine.system, None)
    }

    /// Declares the observable channels available on this machine (the
    /// conflict-timing channel the pipeline runs on is always implied and
    /// need not be listed). The engine only consults extra channels whose
    /// kind is declared here.
    #[must_use]
    pub fn with_observables(mut self, observables: Vec<ObservableKind>) -> Self {
        self.observables = observables;
        self
    }

    /// Whether a channel of the given kind is declared available.
    pub fn observes(&self, kind: ObservableKind) -> bool {
        self.observables.contains(&kind)
    }

    /// Disables the DDR-specification group (ablation).
    pub fn without_specifications(mut self) -> Self {
        self.use_specifications = false;
        self
    }

    /// Disables the system-information group (ablation).
    pub fn without_system_info(mut self) -> Self {
        self.use_system_info = false;
        self
    }

    /// Disables the empirical-observation group (ablation).
    pub fn without_empirical(mut self) -> Self {
        self.use_empirical = false;
        self
    }

    /// Width of the physical address space in bits.
    pub fn address_bits(&self) -> u8 {
        self.system.address_bits()
    }

    /// Total number of banks, if system information may be used.
    ///
    /// # Errors
    ///
    /// Returns [`DramDigError::MissingKnowledge`] when the system-information
    /// group is disabled.
    pub fn total_banks(&self) -> Result<u32, DramDigError> {
        if self.use_system_info {
            Ok(self.system.total_banks())
        } else {
            Err(DramDigError::MissingKnowledge {
                group: "system information (total banks)",
            })
        }
    }

    /// The DDR specification (row/column/bank bit counts), if the
    /// specification group may be used.
    ///
    /// # Errors
    ///
    /// Returns [`DramDigError::MissingKnowledge`] when disabled, or
    /// [`DramDigError::Model`] if the capacity/geometry are inconsistent.
    pub fn spec(&self) -> Result<DdrSpec, DramDigError> {
        if !self.use_specifications {
            return Err(DramDigError::MissingKnowledge {
                group: "DDR specifications (row/column bit counts)",
            });
        }
        Ok(self.system.spec()?)
    }

    /// Whether the "lowest bit of the widest bank function is not a column
    /// bit" observation applies: requires the empirical group and an Ivy
    /// Bridge or newer microarchitecture (or an unknown one, in which case we
    /// assume a modern CPU).
    pub fn widest_func_rule_applies(&self) -> bool {
        self.use_empirical
            && self
                .microarch
                .is_none_or(|m| m.widest_func_low_bit_not_column())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::{DdrGeneration, DramGeometry, MachineSetting};

    fn knowledge_for(n: u8) -> DomainKnowledge {
        let s = MachineSetting::by_number(n).unwrap();
        DomainKnowledge::new(s.system, Some(s.microarch))
    }

    #[test]
    fn full_knowledge_exposes_everything() {
        let k = knowledge_for(6);
        assert_eq!(k.total_banks().unwrap(), 64);
        let spec = k.spec().unwrap();
        assert_eq!(spec.row_bits, 15);
        assert_eq!(spec.column_bits, 13);
        assert_eq!(k.address_bits(), 34);
        assert!(k.widest_func_rule_applies());
    }

    #[test]
    fn sandy_bridge_disables_widest_func_rule() {
        let k = knowledge_for(1);
        assert!(!k.widest_func_rule_applies());
    }

    #[test]
    fn unknown_microarch_assumes_modern_cpu() {
        let system = SystemInfo::new(4 << 30, DramGeometry::new(1, 1, 1, 8), DdrGeneration::Ddr3);
        let k = DomainKnowledge::new(system, None);
        assert!(k.widest_func_rule_applies());
    }

    #[test]
    fn generated_machine_knowledge_matches_its_model() {
        use dram_model::{MachineClass, MachineGen};
        for seed in 0..20u64 {
            let machine = MachineGen::new(seed).generate(MachineClass::InScope);
            let k = DomainKnowledge::for_generated(&machine);
            assert_eq!(k.total_banks().unwrap(), machine.mapping().num_banks());
            let spec = k.spec().unwrap();
            assert_eq!(spec.row_bits as usize, machine.mapping().row_bits().len());
            assert_eq!(
                spec.column_bits as usize,
                machine.mapping().column_bits().len()
            );
            assert!(k.widest_func_rule_applies());
        }
    }

    #[test]
    fn observables_default_to_timing_and_are_declarable() {
        let k = knowledge_for(4);
        assert!(k.observes(ObservableKind::ConflictTiming));
        assert!(!k.observes(ObservableKind::FlipAdjacency));
        let k = k.with_observables(vec![
            ObservableKind::ConflictTiming,
            ObservableKind::FlipAdjacency,
        ]);
        assert!(k.observes(ObservableKind::FlipAdjacency));
    }

    #[test]
    fn ablation_toggles_report_missing_knowledge() {
        let k = knowledge_for(4).without_system_info();
        assert!(matches!(
            k.total_banks(),
            Err(DramDigError::MissingKnowledge { .. })
        ));
        let k = knowledge_for(4).without_specifications();
        assert!(matches!(
            k.spec(),
            Err(DramDigError::MissingKnowledge { .. })
        ));
        let k = knowledge_for(4).without_empirical();
        assert!(!k.widest_func_rule_applies());
    }
}
