//! Telemetry adapter: [`EngineEvent`]s onto deterministic spans and metrics.
//!
//! [`TelemetryObserver`] is an [`Observer`] that folds the engine's event
//! stream into a [`telemetry::Tracer`] (run → phase → oracle batch /
//! observable query spans) and a [`telemetry::Registry`] (measurement,
//! cache and observable-cost counters). Because the tracer is clocked on
//! the **simulated** per-phase `elapsed_ns` — never a wall clock — the
//! exported bytes are a pure function of the run configuration:
//!
//! * two same-seed runs export byte-identical traces and snapshots, and
//! * a [`EngineEvent::PhaseRestored`] phase writes exactly the bytes its
//!   original execution wrote (checkpoints preserve costs), so a
//!   killed-and-resumed run's trace is byte-identical to an uninterrupted
//!   run's — the engine's report-level resume guarantee, extended to
//!   telemetry. Fine-grained [`EngineEvent::OracleBatch`] events are the
//!   one exception (a restored phase re-measures nothing), which is why
//!   they are opt-in via `EngineOptions::fine_events`.
//!
//! The observer composes with others through the blanket `FnMut` impl:
//!
//! ```
//! use dram_model::MachineSetting;
//! use dram_sim::{PhysMemory, SimConfig, SimMachine};
//! use dramdig::engine::{EngineEvent, EngineOptions, PipelineEngine};
//! use dramdig::trace::TelemetryObserver;
//! use dramdig::{DomainKnowledge, DramDigConfig};
//! use mem_probe::SimProbe;
//!
//! let setting = MachineSetting::no4_haswell_ddr3_4g();
//! let machine = SimMachine::from_setting(&setting, SimConfig::default());
//! let mut probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
//! let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
//!
//! let engine = PipelineEngine::new(knowledge, DramDigConfig::fast());
//! let mut telemetry = TelemetryObserver::new();
//! engine.run(&mut probe, &EngineOptions::default(), &mut telemetry)?;
//! let trace = telemetry.tracer().chrome_trace(); // load this in Perfetto
//! assert!(trace.contains("\"cat\":\"phase\""));
//! # Ok::<(), dramdig::DramDigError>(())
//! ```

use telemetry::{Registry, SpanId, SpanKind, Tracer};

use crate::engine::{EngineEvent, Observer};

/// Adapts one engine run's [`EngineEvent`] stream onto a [`Tracer`] and a
/// [`Registry`]. Attach a fresh observer per run.
#[derive(Debug, Default)]
pub struct TelemetryObserver {
    tracer: Tracer,
    metrics: Registry,
    run: Option<SpanId>,
    phase: Option<SpanId>,
}

impl TelemetryObserver {
    /// A fresh observer at simulated time zero.
    pub fn new() -> Self {
        TelemetryObserver::default()
    }

    /// The recorded span stream (use its exporters for files).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The recorded metrics.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Exclusive access to the metrics, e.g. to merge pool counters in.
    pub fn metrics_mut(&mut self) -> &mut Registry {
        &mut self.metrics
    }

    /// Consumes the observer into its tracer and metrics.
    pub fn into_parts(self) -> (Tracer, Registry) {
        (self.tracer, self.metrics)
    }

    /// Closes an open phase span `elapsed_ns` later and accounts its costs
    /// — shared by the executed and restored paths so both write identical
    /// bytes.
    fn close_phase(&mut self, span: SpanId, name: &str, costs: &crate::PhaseCosts) {
        self.tracer.advance_ns(costs.elapsed_ns);
        self.tracer.end_with(
            span,
            &[
                ("measurements", costs.measurements),
                ("accesses", costs.accesses),
                ("cache_hits", costs.cache_hits),
                ("cache_misses", costs.cache_misses),
            ],
        );
        self.metrics
            .counter_add("measurements_total", costs.measurements);
        self.metrics.counter_add("accesses_total", costs.accesses);
        self.metrics
            .counter_add("conflict_cache_hits", costs.cache_hits);
        self.metrics
            .counter_add("conflict_cache_misses", costs.cache_misses);
        self.metrics
            .counter_add(&format!("phase_measurements_{name}"), costs.measurements);
    }
}

impl Observer for TelemetryObserver {
    fn on_event(&mut self, event: &EngineEvent) {
        match event {
            EngineEvent::RunStarted { phases, .. } => {
                // `resumed` is deliberately left out of the span arguments:
                // restored phases replay their recorded spans below, so a
                // resumed run's trace stays byte-identical to a straight
                // run's. The restore count lives in the metrics instead.
                let span =
                    self.tracer
                        .begin_with(SpanKind::Run, "run", &[("phases", *phases as u64)]);
                self.run = Some(span);
            }
            EngineEvent::PhaseStarted { phase } => {
                self.phase = Some(self.tracer.begin(SpanKind::Phase, phase.name()));
            }
            EngineEvent::PhaseCompleted { phase, costs, .. } => {
                // The `checkpointed` flag is deliberately not recorded: a
                // restored phase could not reproduce it, and leaving it out
                // keeps checkpointed, plain and resumed runs byte-identical.
                if let Some(span) = self.phase.take() {
                    self.close_phase(span, phase.name(), costs);
                }
            }
            EngineEvent::PhaseRestored { phase, costs } => {
                let span = self.tracer.begin(SpanKind::Phase, phase.name());
                self.close_phase(span, phase.name(), costs);
                self.metrics.counter_add("phases_restored", 1);
            }
            EngineEvent::OracleBatch {
                pairs,
                cached,
                measured,
                ..
            } => {
                self.tracer.instant(
                    SpanKind::OracleBatch,
                    "batch",
                    &[
                        ("pairs", u64::from(*pairs)),
                        ("cached", u64::from(*cached)),
                        ("measured", u64::from(*measured)),
                    ],
                );
                self.metrics.counter_add("oracle_batches_total", 1);
                self.metrics.observe(
                    "oracle_batch_pairs",
                    &[1, 4, 16, 64, 256, 1024],
                    u64::from(*pairs),
                );
            }
            EngineEvent::BudgetPressure {
                spent_measurements,
                max_measurements,
                ..
            } => {
                self.tracer.instant(
                    SpanKind::Run,
                    "budget_pressure",
                    &[("spent", *spent_measurements), ("cap", *max_measurements)],
                );
                self.metrics.counter_add("budget_pressure_events", 1);
            }
            EngineEvent::ObservableQueried { kind, cost } => {
                let span = self.tracer.begin(SpanKind::ObservableQuery, kind.as_str());
                self.tracer.advance_ns(cost.elapsed_ns);
                self.tracer.end_with(
                    span,
                    &[
                        ("timing_pairs", cost.timing_pairs),
                        ("hammer_pairs", cost.hammer_pairs),
                    ],
                );
                let name = kind.as_str();
                self.metrics.counter_add(
                    &format!("observable_{name}_timing_pairs"),
                    cost.timing_pairs,
                );
                self.metrics.counter_add(
                    &format!("observable_{name}_hammer_pairs"),
                    cost.hammer_pairs,
                );
                self.metrics
                    .counter_add(&format!("observable_{name}_elapsed_ns"), cost.elapsed_ns);
            }
            EngineEvent::Interrupted { .. } => {
                self.tracer.instant(SpanKind::Run, "interrupted", &[]);
                self.metrics.counter_add("interrupted_total", 1);
            }
            EngineEvent::RunCompleted { total } => {
                if let Some(span) = self.run.take() {
                    self.tracer
                        .end_with(span, &[("measurements", total.measurements)]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Phase;
    use crate::PhaseCosts;
    use mem_probe::{ObservableCost, ObservableKind};

    fn costs(measurements: u64, elapsed_ns: u64) -> PhaseCosts {
        PhaseCosts {
            measurements,
            accesses: measurements * 2,
            elapsed_ns,
            cache_hits: 1,
            cache_misses: 2,
        }
    }

    fn feed(observer: &mut TelemetryObserver, restored: bool) {
        observer.on_event(&EngineEvent::RunStarted {
            phases: 6,
            resumed: usize::from(restored),
        });
        if restored {
            observer.on_event(&EngineEvent::PhaseRestored {
                phase: Phase::Calibration,
                costs: costs(40, 1_000),
            });
        } else {
            observer.on_event(&EngineEvent::PhaseStarted {
                phase: Phase::Calibration,
            });
            observer.on_event(&EngineEvent::PhaseCompleted {
                phase: Phase::Calibration,
                costs: costs(40, 1_000),
                checkpointed: !restored,
            });
        }
        observer.on_event(&EngineEvent::ObservableQueried {
            kind: ObservableKind::ConflictTiming,
            cost: ObservableCost {
                timing_pairs: 8,
                hammer_pairs: 0,
                elapsed_ns: 500,
            },
        });
        observer.on_event(&EngineEvent::RunCompleted {
            total: costs(40, 1_000),
        });
    }

    #[test]
    fn restored_phases_write_executed_phase_bytes() {
        let mut executed = TelemetryObserver::new();
        feed(&mut executed, false);
        let mut restored = TelemetryObserver::new();
        feed(&mut restored, true);
        assert_eq!(
            executed.tracer().chrome_trace(),
            restored.tracer().chrome_trace()
        );
        // Metrics do differ — the restore count is recorded there.
        assert_eq!(restored.metrics().counter("phases_restored"), 1);
        assert_eq!(executed.metrics().counter("phases_restored"), 0);
    }

    #[test]
    fn spans_cover_run_phase_and_observable() {
        let mut observer = TelemetryObserver::new();
        feed(&mut observer, false);
        let trace = observer.tracer().chrome_trace();
        for needle in [
            "\"cat\":\"run\"",
            "\"cat\":\"phase\"",
            "\"cat\":\"observable_query\"",
            "\"name\":\"calibration\"",
            "\"name\":\"timing\"",
        ] {
            assert!(trace.contains(needle), "missing {needle} in {trace}");
        }
        assert_eq!(observer.tracer().now_ns(), 1_500);
        assert_eq!(observer.metrics().counter("measurements_total"), 40);
        assert_eq!(
            observer.metrics().counter("phase_measurements_calibration"),
            40
        );
        assert_eq!(
            observer.metrics().counter("observable_timing_timing_pairs"),
            8
        );
    }

    #[test]
    fn oracle_batches_and_interruptions_are_instants() {
        let mut observer = TelemetryObserver::new();
        observer.on_event(&EngineEvent::RunStarted {
            phases: 6,
            resumed: 0,
        });
        observer.on_event(&EngineEvent::PhaseStarted {
            phase: Phase::Partition,
        });
        observer.on_event(&EngineEvent::OracleBatch {
            phase: Phase::Partition,
            pairs: 12,
            cached: 4,
            measured: 8,
        });
        observer.on_event(&EngineEvent::PhaseCompleted {
            phase: Phase::Partition,
            costs: costs(8, 2_000),
            checkpointed: false,
        });
        observer.on_event(&EngineEvent::BudgetPressure {
            phase: Phase::Partition,
            spent_measurements: 8,
            max_measurements: 10,
        });
        observer.on_event(&EngineEvent::Interrupted {
            phase: Phase::FunctionDetection,
            reason: "budget".into(),
        });
        let trace = observer.tracer().chrome_trace();
        assert!(trace.contains("\"name\":\"batch\""));
        assert!(trace.contains("\"pairs\":12"));
        assert!(trace.contains("\"name\":\"budget_pressure\""));
        assert!(trace.contains("\"name\":\"interrupted\""));
        assert_eq!(observer.metrics().counter("oracle_batches_total"), 1);
        assert_eq!(observer.metrics().histogram_count("oracle_batch_pairs"), 1);
        assert_eq!(observer.metrics().counter("interrupted_total"), 1);
        // The run span is still open — the run never completed.
        assert_eq!(observer.tracer().open_spans(), 1);
    }
}
