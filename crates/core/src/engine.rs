//! The resumable, observable pipeline engine.
//!
//! [`PipelineEngine`] is an explicit state machine over [`Phase::ALL`]: each
//! phase is a [`PhaseRunner`] that consumes the typed artifacts of earlier
//! phases from the [`PipelineState`] and produces exactly one
//! [`PhaseArtifact`] of its own. Around that loop the engine provides what
//! the one-shot [`crate::DramDig`] wrapper cannot:
//!
//! * **Checkpoints** — with [`EngineOptions::checkpoint`] set, every
//!   completed phase is persisted through a [`CheckpointStore`]; a killed
//!   run resumes from its last phase boundary and finishes with a final
//!   report *byte-identical* to an uninterrupted run (the partition phase,
//!   the dominant measurement cost, is never repaid).
//! * **Budgets** — per-run and per-phase measurement/time caps, enforced
//!   cooperatively at phase boundaries ([`Budget`]).
//! * **Cancellation** — a shared [`AtomicBool`] checked between phases.
//! * **Observability** — an [`Observer`] receives structured
//!   [`EngineEvent`]s (phase start/end, costs, restored checkpoints, budget
//!   pressure) for live progress lines and fleet telemetry.
//!
//! Byte-identical resume works because each phase's measurement stream is a
//! pure function of its inputs: the engine derives a fresh RNG per phase
//! from the configured seed and a phase-unique salt, forwards the same salt
//! to [`MemoryProbe::begin_phase`] so the probe re-aligns its noise stream,
//! and snapshots/restores the conflict cache across the boundary.
//!
//! # Example
//!
//! ```
//! use dram_model::MachineSetting;
//! use dram_sim::{PhysMemory, SimConfig, SimMachine};
//! use dramdig::engine::{EngineEvent, EngineOptions, PipelineEngine};
//! use dramdig::{DomainKnowledge, DramDigConfig};
//! use mem_probe::SimProbe;
//!
//! let setting = MachineSetting::no4_haswell_ddr3_4g();
//! let machine = SimMachine::from_setting(&setting, SimConfig::default());
//! let mut probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
//! let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
//!
//! let engine = PipelineEngine::new(knowledge, DramDigConfig::fast());
//! let mut phases_seen = 0usize;
//! let report = engine.run(
//!     &mut probe,
//!     &EngineOptions::default(),
//!     // Any `FnMut(&EngineEvent)` closure is an Observer.
//!     &mut |event: &EngineEvent| {
//!         if let EngineEvent::PhaseCompleted { .. } = event {
//!             phases_seen += 1;
//!         }
//!     },
//! )?;
//! assert!(report.mapping.equivalent_to(setting.mapping()));
//! assert_eq!(phases_seen, report.phase_costs.len());
//! # Ok::<(), dramdig::DramDigError>(())
//! ```

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dram_model::{AddressMapping, DramAddress, PhysAddr};
use dram_sim::PhysMemory;
use mem_probe::{
    ConflictOracle, LatencyCalibration, MemoryProbe, Observable, ObservableCost, ObservableKind,
    ObservableQuery, ProbeError,
};

use crate::artifact::{
    CalibrationArtifact, CheckpointStore, PartitionArtifact, PhaseArtifact, PhaseCheckpoint,
};
use crate::coarse::{self, CoarseBits};
use crate::config::DramDigConfig;
use crate::driver::{Phase, PhaseCosts, RunReport};
use crate::error::DramDigError;
use crate::fine::{self, FineBits, ValidationReport};
use crate::functions::{self, DetectedFunctions};
use crate::knowledge::DomainKnowledge;
use crate::partition::{self, Partition};
use crate::select;

/// Phase-unique salts mixed into the per-phase RNG seed and forwarded to
/// [`MemoryProbe::begin_phase`]. Arbitrary distinct constants; changing one
/// changes (only) the measurement stream of its phase.
const PHASE_SALTS: [u64; 6] = [
    0xD1A6_0001_CA11_B8A7, // calibration
    0xD1A6_0002_C0A2_5E00, // coarse detection
    0xD1A6_0003_9A27_1710, // partition
    0xD1A6_0004_DE7E_C700, // function detection
    0xD1A6_0005_F19E_0000, // fine detection
    0xD1A6_0006_5A11_DA7E, // validation
];

/// Measurement/time caps enforced cooperatively at phase boundaries.
///
/// Total caps count what the **current invocation** spends — costs
/// restored from checkpoints are already paid, so re-running an
/// interrupted command with the same budget always makes fresh progress.
/// They are checked *before* each phase starts; per-phase caps are checked
/// right after the phase completes (a phase is never torn down mid-flight
/// — the completed phase is checkpointed first, so an over-budget phase's
/// work is not lost). All caps default to unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Cap on pair measurements spent by this invocation.
    pub max_measurements: Option<u64>,
    /// Cap on (simulated or wall-clock) nanoseconds spent by this
    /// invocation.
    pub max_elapsed_ns: Option<u64>,
    /// Cap on pair measurements of any single phase. Like every
    /// cooperative stop this fires at the boundary *after* the offending
    /// phase, so an overrun by the final phase (which has no later
    /// boundary) completes normally.
    pub max_phase_measurements: Option<u64>,
    /// Cap on nanoseconds of any single phase (same boundary semantics as
    /// [`Budget::max_phase_measurements`]).
    pub max_phase_elapsed_ns: Option<u64>,
}

impl Budget {
    /// A budget capping only the total measurement count.
    #[must_use]
    pub fn measurements(cap: u64) -> Self {
        Budget {
            max_measurements: Some(cap),
            ..Budget::default()
        }
    }

    /// Returns `true` when no cap is set.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::default()
    }
}

/// Knobs of one engine invocation (checkpointing, budget, cancellation).
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Directory to checkpoint completed phases into (and to resume from
    /// when it already holds checkpoints of the same configuration).
    pub checkpoint: Option<PathBuf>,
    /// Measurement/time budget, enforced at phase boundaries.
    pub budget: Budget,
    /// Stop (with [`DramDigError::Interrupted`]) at the boundary after
    /// completing this phase — a deterministic kill switch for tests,
    /// benchmarks and CI smoke runs exercising the resume path. Like every
    /// cooperative stop, it fires at a phase *boundary*: after the final
    /// phase there is no boundary left, so stopping there is simply a
    /// completed run (`Ok`).
    pub stop_after: Option<Phase>,
    /// Cooperative cancellation flag, checked before every phase.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Emit fine-grained [`EngineEvent::OracleBatch`] events. Off by
    /// default: the oracle's batch log is only attached when this is set,
    /// so a run without fine events takes zero extra measurements and an
    /// identical measurement stream (gated by `bench_json`'s `telemetry`
    /// section).
    pub fine_events: bool,
}

impl EngineOptions {
    /// Options that checkpoint into (and resume from) `dir`.
    pub fn with_checkpoint(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(dir.into());
        self
    }

    /// Sets the budget.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the deterministic stop point.
    #[must_use]
    pub fn with_stop_after(mut self, phase: Phase) -> Self {
        self.stop_after = Some(phase);
        self
    }

    /// Attaches a cancellation flag.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Enables fine-grained [`EngineEvent::OracleBatch`] events.
    #[must_use]
    pub fn with_fine_events(mut self, fine_events: bool) -> Self {
        self.fine_events = fine_events;
        self
    }

    fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }
}

/// A structured progress event emitted by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// The run is starting; `resumed` phases were restored from checkpoints.
    RunStarted {
        /// Total phases the pipeline can execute.
        phases: usize,
        /// Phases restored from the checkpoint directory.
        resumed: usize,
    },
    /// A phase is about to execute.
    PhaseStarted {
        /// The phase.
        phase: Phase,
    },
    /// A phase finished executing.
    PhaseCompleted {
        /// The phase.
        phase: Phase,
        /// What it cost.
        costs: PhaseCosts,
        /// Whether a checkpoint was written for it.
        checkpointed: bool,
    },
    /// A phase was restored from a checkpoint instead of executing.
    PhaseRestored {
        /// The phase.
        phase: Phase,
        /// What it cost when it originally ran.
        costs: PhaseCosts,
    },
    /// Total measurement spend crossed 80% of the budget cap.
    BudgetPressure {
        /// The phase that just completed.
        phase: Phase,
        /// Measurements spent so far.
        spent_measurements: u64,
        /// The configured cap.
        max_measurements: u64,
    },
    /// One batched conflict-oracle majority vote settled (emitted only with
    /// [`EngineOptions::fine_events`] set, between the owning phase's
    /// [`EngineEvent::PhaseStarted`] and [`EngineEvent::PhaseCompleted`]).
    OracleBatch {
        /// The phase that issued the batch.
        phase: Phase,
        /// Pairs the phase asked about.
        pairs: u32,
        /// Pairs answered from the conflict cache.
        cached: u32,
        /// Probe measurements issued for the uncached remainder.
        measured: u32,
    },
    /// An extra [`Observable`] channel was consulted after the phases
    /// (emitted once per consulted channel, before
    /// [`EngineEvent::RunCompleted`]).
    ObservableQueried {
        /// The channel kind.
        kind: ObservableKind,
        /// What the consultation cost.
        cost: ObservableCost,
    },
    /// The engine is stopping cooperatively at a phase boundary.
    Interrupted {
        /// The first phase that will not run.
        phase: Phase,
        /// Why the engine stopped.
        reason: String,
    },
    /// The run completed.
    RunCompleted {
        /// Total cost across all phases (restored ones included).
        total: PhaseCosts,
    },
}

/// Receives [`EngineEvent`]s as the engine progresses.
///
/// Every `FnMut(&EngineEvent)` closure is an observer, so ad-hoc progress
/// lines need no named type:
///
/// ```
/// use dramdig::engine::{EngineEvent, Observer};
///
/// let mut completed = Vec::new();
/// let mut observer = |event: &EngineEvent| {
///     if let EngineEvent::PhaseCompleted { phase, .. } = event {
///         completed.push(*phase);
///     }
/// };
/// Observer::on_event(&mut observer, &EngineEvent::RunStarted { phases: 6, resumed: 0 });
/// ```
pub trait Observer {
    /// Called once per event, in order.
    fn on_event(&mut self, event: &EngineEvent);
}

impl<F: FnMut(&EngineEvent)> Observer for F {
    fn on_event(&mut self, event: &EngineEvent) {
        self(event)
    }
}

/// An [`Observer`] that discards every event (the default for
/// [`crate::DramDig::run`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_event(&mut self, _event: &EngineEvent) {}
}

/// The artifacts accumulated so far, one slot per producing phase.
/// Later phases read their inputs from here; the engine fills slots either
/// by running a [`PhaseRunner`] or by replaying a checkpoint.
#[derive(Debug, Clone, Default)]
pub struct PipelineState {
    /// Calibrated conflict threshold (calibration phase).
    pub threshold_ns: Option<u64>,
    /// Coarse bit classification (step 1).
    pub coarse: Option<CoarseBits>,
    /// Selected pool size (step 2a).
    pub pool_size: Option<usize>,
    /// Pile partition (step 2b).
    pub partition: Option<Partition>,
    /// Detected bank functions (step 2c).
    pub functions: Option<DetectedFunctions>,
    /// Fine-grained bit classification (step 3).
    pub fine: Option<FineBits>,
    /// The assembled mapping (derived when the fine artifact lands).
    pub mapping: Option<AddressMapping>,
    /// Validation tally (optional validation phase).
    pub validation: Option<ValidationReport>,
}

fn state_missing(what: &str) -> DramDigError {
    DramDigError::Checkpoint {
        reason: format!("pipeline state is missing the {what} artifact"),
    }
}

impl PipelineState {
    /// Folds one artifact into the state. Applying the fine artifact also
    /// assembles the [`AddressMapping`] from the detected functions.
    ///
    /// # Errors
    ///
    /// Returns [`DramDigError::Checkpoint`] when an artifact arrives before
    /// its inputs (possible only with corrupt or hand-edited checkpoints)
    /// and [`DramDigError::Model`] when the recovered pieces do not form a
    /// bijective mapping.
    pub fn apply(&mut self, artifact: PhaseArtifact) -> Result<(), DramDigError> {
        match artifact {
            PhaseArtifact::Calibration(c) => self.threshold_ns = Some(c.threshold_ns),
            PhaseArtifact::Coarse(c) => self.coarse = Some(c),
            PhaseArtifact::Partition(p) => {
                self.pool_size = Some(p.pool_size);
                self.partition = Some(p.partition);
            }
            PhaseArtifact::Functions(d) => self.functions = Some(d),
            PhaseArtifact::Fine(f) => {
                let functions = self
                    .functions
                    .as_ref()
                    .ok_or_else(|| state_missing("detected-functions"))?;
                self.mapping = Some(AddressMapping::new(
                    functions.functions.clone(),
                    f.row_bits.clone(),
                    f.column_bits.clone(),
                )?);
                self.fine = Some(f);
            }
            PhaseArtifact::Validation(v) => self.validation = Some(v),
        }
        Ok(())
    }
}

/// Everything a [`PhaseRunner`] may touch while executing its phase.
pub struct PhaseContext<'a, P: MemoryProbe> {
    /// The calibrated conflict oracle over the probe (cost accounting and
    /// the conflict cache live here).
    pub oracle: &'a mut ConflictOracle<P>,
    /// The physical page pool the run measures against.
    pub memory: &'a PhysMemory,
    /// The machine's domain knowledge.
    pub knowledge: &'a DomainKnowledge,
    /// The run configuration.
    pub config: &'a DramDigConfig,
    /// The phase-scoped RNG (freshly derived per phase so a resumed run
    /// replays the identical random choices).
    pub rng: &'a mut StdRng,
    /// Artifacts of the phases that already completed.
    pub state: &'a PipelineState,
}

/// One phase of the pipeline: consumes earlier artifacts from the
/// [`PhaseContext`], issues measurements through its oracle, and returns
/// the typed artifact the engine records (and checkpoints) for the phase.
///
/// The engine owns one runner per [`Phase`]; the trait is public so tests,
/// examples and downstream tools can execute or wrap individual phases.
///
/// ```
/// use dramdig::artifact::PhaseArtifact;
/// use dramdig::engine::{PhaseContext, PhaseRunner};
/// use dramdig::fine::ValidationReport;
/// use dramdig::{DramDigError, Phase};
/// use mem_probe::MemoryProbe;
///
/// /// A stand-in validation phase that measures nothing and agrees with
/// /// everything.
/// struct AlwaysAgree;
///
/// impl<P: MemoryProbe> PhaseRunner<P> for AlwaysAgree {
///     fn phase(&self) -> Phase {
///         Phase::Validation
///     }
///     fn run(&self, _ctx: &mut PhaseContext<'_, P>) -> Result<PhaseArtifact, DramDigError> {
///         Ok(PhaseArtifact::Validation(ValidationReport::default()))
///     }
/// }
///
/// assert_eq!(PhaseRunner::<mem_probe::SimProbe>::phase(&AlwaysAgree), Phase::Validation);
/// ```
pub trait PhaseRunner<P: MemoryProbe> {
    /// Which phase this runner implements.
    fn phase(&self) -> Phase;

    /// Executes the phase.
    ///
    /// # Errors
    ///
    /// Any [`DramDigError`] aborts the run; the engine does not checkpoint
    /// a failed phase.
    fn run(&self, ctx: &mut PhaseContext<'_, P>) -> Result<PhaseArtifact, DramDigError>;
}

struct CalibrationRunner;

impl<P: MemoryProbe> PhaseRunner<P> for CalibrationRunner {
    fn phase(&self) -> Phase {
        Phase::Calibration
    }

    fn run(&self, ctx: &mut PhaseContext<'_, P>) -> Result<PhaseArtifact, DramDigError> {
        let cfg = ctx.config;
        let calibration = if cfg.adaptive_calibration {
            LatencyCalibration::calibrate_adaptive(
                ctx.oracle.probe_mut(),
                cfg.calibration_samples,
                cfg.calibration_chunk,
                cfg.rng_seed ^ 0xCA11,
            )?
        } else {
            LatencyCalibration::calibrate(
                ctx.oracle.probe_mut(),
                cfg.calibration_samples,
                cfg.rng_seed ^ 0xCA11,
            )?
        };
        let threshold_ns = calibration.threshold_ns();
        ctx.oracle.set_calibration(calibration);
        Ok(PhaseArtifact::Calibration(CalibrationArtifact {
            threshold_ns,
        }))
    }
}

struct CoarseRunner;

impl<P: MemoryProbe> PhaseRunner<P> for CoarseRunner {
    fn phase(&self) -> Phase {
        Phase::CoarseDetection
    }

    fn run(&self, ctx: &mut PhaseContext<'_, P>) -> Result<PhaseArtifact, DramDigError> {
        let coarse = coarse::detect(
            ctx.oracle,
            ctx.knowledge.address_bits(),
            ctx.config,
            ctx.rng,
        )?;
        Ok(PhaseArtifact::Coarse(coarse))
    }
}

struct PartitionRunner;

impl<P: MemoryProbe> PhaseRunner<P> for PartitionRunner {
    fn phase(&self) -> Phase {
        Phase::Partition
    }

    fn run(&self, ctx: &mut PhaseContext<'_, P>) -> Result<PhaseArtifact, DramDigError> {
        let coarse = ctx
            .state
            .coarse
            .as_ref()
            .ok_or_else(|| state_missing("coarse"))?;
        let pool = select::select_addresses(ctx.memory, &coarse.bank_bits, ctx.config.max_pool)?;
        let num_banks = ctx.knowledge.total_banks()?;
        let partition: Partition = partition::partition_with_strategy(
            ctx.oracle,
            &pool.addresses,
            num_banks,
            ctx.config,
            ctx.rng,
        )?;
        Ok(PhaseArtifact::Partition(PartitionArtifact {
            pool_size: pool.len(),
            partition,
        }))
    }
}

struct FunctionRunner;

impl<P: MemoryProbe> PhaseRunner<P> for FunctionRunner {
    fn phase(&self) -> Phase {
        Phase::FunctionDetection
    }

    fn run(&self, ctx: &mut PhaseContext<'_, P>) -> Result<PhaseArtifact, DramDigError> {
        let coarse = ctx
            .state
            .coarse
            .as_ref()
            .ok_or_else(|| state_missing("coarse"))?;
        let partition = ctx
            .state
            .partition
            .as_ref()
            .ok_or_else(|| state_missing("partition"))?;
        let num_banks = ctx.knowledge.total_banks()?;
        // The decomposition partition already learned the same-bank
        // difference basis; reuse it instead of re-deriving it from every
        // pile member.
        let detected = match &partition.kernel {
            Some(kernel) => functions::detect_bank_functions_with_basis(
                kernel,
                &partition.piles,
                &coarse.bank_bits,
                num_banks,
                ctx.config,
            )?,
            None => functions::detect_bank_functions(
                &partition.piles,
                &coarse.bank_bits,
                num_banks,
                ctx.config,
            )?,
        };
        Ok(PhaseArtifact::Functions(detected))
    }
}

struct FineRunner;

impl<P: MemoryProbe> PhaseRunner<P> for FineRunner {
    fn phase(&self) -> Phase {
        Phase::FineDetection
    }

    fn run(&self, ctx: &mut PhaseContext<'_, P>) -> Result<PhaseArtifact, DramDigError> {
        let coarse = ctx
            .state
            .coarse
            .as_ref()
            .ok_or_else(|| state_missing("coarse"))?;
        let functions = ctx
            .state
            .functions
            .as_ref()
            .ok_or_else(|| state_missing("detected-functions"))?;
        let fine = fine::refine(
            ctx.oracle,
            ctx.memory,
            coarse,
            &functions.functions,
            ctx.knowledge,
            ctx.config,
            ctx.rng,
        )?;
        Ok(PhaseArtifact::Fine(fine))
    }
}

struct ValidationRunner;

impl<P: MemoryProbe> PhaseRunner<P> for ValidationRunner {
    fn phase(&self) -> Phase {
        Phase::Validation
    }

    fn run(&self, ctx: &mut PhaseContext<'_, P>) -> Result<PhaseArtifact, DramDigError> {
        let fine = ctx
            .state
            .fine
            .as_ref()
            .ok_or_else(|| state_missing("fine"))?;
        let functions = ctx
            .state
            .functions
            .as_ref()
            .ok_or_else(|| state_missing("detected-functions"))?;
        let mapping = ctx
            .state
            .mapping
            .as_ref()
            .ok_or_else(|| state_missing("mapping"))?;
        let report = fine::validate(
            ctx.oracle,
            ctx.memory,
            fine,
            &functions.functions,
            mapping,
            ctx.config,
            ctx.rng,
        )?;
        Ok(PhaseArtifact::Validation(report))
    }
}

fn run_phase<P: MemoryProbe>(
    phase: Phase,
    ctx: &mut PhaseContext<'_, P>,
) -> Result<PhaseArtifact, DramDigError> {
    match phase {
        Phase::Calibration => CalibrationRunner.run(ctx),
        Phase::CoarseDetection => CoarseRunner.run(ctx),
        Phase::Partition => PartitionRunner.run(ctx),
        Phase::FunctionDetection => FunctionRunner.run(ctx),
        Phase::FineDetection => FineRunner.run(ctx),
        Phase::Validation => ValidationRunner.run(ctx),
    }
}

/// The explicit phase-machine behind [`crate::DramDig`]: same knowledge,
/// same configuration, plus checkpoints, budgets, cancellation and
/// progress events (see the [module docs](self) for an example).
#[derive(Debug, Clone)]
pub struct PipelineEngine {
    knowledge: DomainKnowledge,
    config: DramDigConfig,
}

impl PipelineEngine {
    /// Creates an engine for a machine described by `knowledge`.
    pub fn new(knowledge: DomainKnowledge, config: DramDigConfig) -> Self {
        PipelineEngine { knowledge, config }
    }

    /// The domain knowledge this engine uses.
    pub fn knowledge(&self) -> &DomainKnowledge {
        &self.knowledge
    }

    /// The configuration this engine uses.
    pub fn config(&self) -> &DramDigConfig {
        &self.config
    }

    fn interrupted(observer: &mut dyn Observer, phase: Phase, reason: String) -> DramDigError {
        observer.on_event(&EngineEvent::Interrupted {
            phase,
            reason: reason.clone(),
        });
        DramDigError::Interrupted { phase, reason }
    }

    /// Runs the pipeline, phase by phase, against `probe`.
    ///
    /// With [`EngineOptions::checkpoint`] set, completed phases found in the
    /// directory (written by a previous, interrupted invocation with the
    /// *same configuration*) are restored instead of re-measured, and every
    /// freshly completed phase is persisted before the next one starts. The
    /// final [`RunReport`] of a resumed run is byte-identical (through
    /// [`crate::RecoveryReport::encode`]) to that of an uninterrupted run.
    ///
    /// # Errors
    ///
    /// Everything [`crate::DramDig::run`] can return, plus
    /// [`DramDigError::Interrupted`] for cooperative stops (budget,
    /// cancellation, [`EngineOptions::stop_after`]) and
    /// [`DramDigError::Checkpoint`] for unreadable/mismatched checkpoints.
    pub fn run<P: MemoryProbe>(
        &self,
        probe: &mut P,
        options: &EngineOptions,
        observer: &mut dyn Observer,
    ) -> Result<RunReport, DramDigError> {
        self.run_with_observables(probe, options, observer, &mut [])
    }

    /// Runs the pipeline like [`PipelineEngine::run`], then hands the
    /// recovered linear skeleton to each extra [`Observable`] channel whose
    /// [kind](Observable::kind) the [`DomainKnowledge`] declares available
    /// and asks it for row-bit evidence the timing channel cannot produce —
    /// today, an XOR row-remap mask recovered from rowhammer flip adjacency.
    ///
    /// A channel-recovered mask is never trusted blindly: the engine
    /// cross-examines it with its own [`ObservableQuery::RowAdjacency`]
    /// queries (aggressor pairs the mask predicts to sandwich a victim) and
    /// only records it in [`RunReport::row_remap`] when the channel confirms
    /// at least one predicted adjacency. Each consulted channel's spend
    /// lands in [`RunReport::observable_costs`].
    ///
    /// Channels whose kind is not declared in the knowledge are skipped
    /// untouched, and with no extra channels the behaviour — measurement
    /// sequences, checkpoint artifacts, report bytes — is exactly that of
    /// [`PipelineEngine::run`].
    ///
    /// # Errors
    ///
    /// Everything [`PipelineEngine::run`] can return, plus
    /// [`DramDigError::Refinement`] when a consulted channel fails.
    pub fn run_with_observables<P: MemoryProbe>(
        &self,
        probe: &mut P,
        options: &EngineOptions,
        observer: &mut dyn Observer,
        extras: &mut [&mut dyn Observable],
    ) -> Result<RunReport, DramDigError> {
        let store = options.checkpoint.as_ref().map(CheckpointStore::new);
        if let Some(store) = &store {
            match store.load_config()? {
                Some(stored) if stored != self.config => {
                    return Err(DramDigError::Checkpoint {
                        reason: format!(
                            "{} holds checkpoints of a different configuration; \
                             clear it or resume with the recorded configuration",
                            store.dir().display()
                        ),
                    });
                }
                Some(_) => {}
                None => store.save_config(&self.config)?,
            }
        }
        let restored = match &store {
            Some(store) => store.load_phases()?,
            None => Vec::new(),
        };

        let memory = probe.memory().clone();
        let mut oracle = ConflictOracle::new(&mut *probe, LatencyCalibration::from_threshold(0))
            .with_repeat(self.config.measure_repeat)
            .with_early_exit(self.config.early_exit_votes)
            .with_batch_log(options.fine_events);
        if let Some(capacity) = self.config.probe_cache_capacity {
            oracle = oracle.with_cache(capacity);
        }

        observer.on_event(&EngineEvent::RunStarted {
            phases: Phase::ALL.len(),
            resumed: restored.len(),
        });

        let mut state = PipelineState::default();
        let mut phase_costs: Vec<(Phase, PhaseCosts)> = Vec::new();

        // Replay the restored prefix: artifacts into the state, the last
        // cache snapshot into the oracle, costs into the ledger.
        for record in &restored {
            if let PhaseArtifact::Calibration(c) = &record.artifact {
                oracle.set_calibration(LatencyCalibration::from_threshold(c.threshold_ns));
            }
            state.apply(record.artifact.clone())?;
            phase_costs.push((record.phase, record.costs));
            observer.on_event(&EngineEvent::PhaseRestored {
                phase: record.phase,
                costs: record.costs,
            });
        }
        if let Some(last) = restored.last() {
            if let Some(cache) = oracle.cache_mut() {
                for &(a, b, verdict) in &last.cache {
                    cache.record(PhysAddr::new(a), PhysAddr::new(b), verdict);
                }
            }
        }
        // Budgets cap what *this invocation* spends: costs restored from
        // checkpoints are already paid, so re-running an interrupted
        // command with the same budget makes fresh progress every time
        // instead of re-tripping on the recorded spend.
        let restored_spent = total_costs(&phase_costs);

        for (index, phase) in Phase::ALL.into_iter().enumerate() {
            if index < restored.len() {
                continue; // restored from a checkpoint above
            }
            if phase == Phase::Validation && !self.config.validate {
                continue;
            }
            if options.cancelled() {
                return Err(Self::interrupted(
                    observer,
                    phase,
                    "cooperative cancellation requested".into(),
                ));
            }
            let spent = total_costs(&phase_costs);
            let fresh_measurements = spent.measurements - restored_spent.measurements;
            let fresh_elapsed_ns = spent.elapsed_ns - restored_spent.elapsed_ns;
            if let Some(cap) = options.budget.max_measurements {
                if fresh_measurements >= cap {
                    return Err(Self::interrupted(
                        observer,
                        phase,
                        format!(
                            "measurement budget exhausted ({fresh_measurements}/{cap} pair \
                             measurements spent this invocation)",
                        ),
                    ));
                }
            }
            if let Some(cap) = options.budget.max_elapsed_ns {
                if fresh_elapsed_ns >= cap {
                    return Err(Self::interrupted(
                        observer,
                        phase,
                        format!("time budget exhausted ({fresh_elapsed_ns}/{cap} ns spent this invocation)"),
                    ));
                }
            }

            observer.on_event(&EngineEvent::PhaseStarted { phase });
            let salt = PHASE_SALTS[index];
            let mut rng = StdRng::seed_from_u64(self.config.rng_seed ^ salt);
            oracle.probe_mut().begin_phase(salt);
            let before = oracle.stats();
            let artifact = run_phase(
                phase,
                &mut PhaseContext {
                    oracle: &mut oracle,
                    memory: &memory,
                    knowledge: &self.knowledge,
                    config: &self.config,
                    rng: &mut rng,
                    state: &state,
                },
            )?;
            let costs = PhaseCosts::between(before, oracle.stats());
            for record in oracle.take_batch_records() {
                observer.on_event(&EngineEvent::OracleBatch {
                    phase,
                    pairs: record.pairs,
                    cached: record.cached,
                    measured: record.measured,
                });
            }
            state.apply(artifact.clone())?;

            // A validation tally below the agreement gate is a *failure*,
            // not a phase output worth persisting: checkpointing it would
            // wedge every later resume into replaying the same failure.
            if let PhaseArtifact::Validation(report) = &artifact {
                if let Some(error) = agreement_failure(report) {
                    return Err(error);
                }
            }

            let checkpointed = if let Some(store) = &store {
                let cache = oracle
                    .cache()
                    .map(|cache| {
                        cache
                            .entries()
                            .map(|((a, b), verdict)| (a.raw(), b.raw(), verdict))
                            .collect()
                    })
                    .unwrap_or_default();
                store.save_phase(&PhaseCheckpoint {
                    phase,
                    costs,
                    artifact,
                    cache,
                })?;
                true
            } else {
                false
            };
            phase_costs.push((phase, costs));
            observer.on_event(&EngineEvent::PhaseCompleted {
                phase,
                costs,
                checkpointed,
            });

            let spent = total_costs(&phase_costs);
            let fresh_measurements = spent.measurements - restored_spent.measurements;
            if let Some(cap) = options.budget.max_measurements {
                if fresh_measurements.saturating_mul(5) >= cap.saturating_mul(4) {
                    observer.on_event(&EngineEvent::BudgetPressure {
                        phase,
                        spent_measurements: fresh_measurements,
                        max_measurements: cap,
                    });
                }
            }
            // Boundary stops report "the first phase that will not run";
            // that must be the next *enabled* phase. With validation
            // disabled, the boundary after fine detection has no later
            // phase left, so a stop_after/budget trip there is simply a
            // completed run — not an interruption "before validation" that
            // was never going to execute.
            let next_enabled = Phase::ALL
                .into_iter()
                .skip(index + 1)
                .find(|&p| p != Phase::Validation || self.config.validate);
            if let Some(next) = next_enabled {
                if let Some(cap) = options.budget.max_phase_measurements {
                    if costs.measurements > cap {
                        return Err(Self::interrupted(
                            observer,
                            next,
                            format!(
                                "{phase} exceeded its per-phase measurement budget \
                                 ({}/{cap})",
                                costs.measurements
                            ),
                        ));
                    }
                }
                if let Some(cap) = options.budget.max_phase_elapsed_ns {
                    if costs.elapsed_ns > cap {
                        return Err(Self::interrupted(
                            observer,
                            next,
                            format!(
                                "{phase} exceeded its per-phase time budget ({}/{cap} ns)",
                                costs.elapsed_ns
                            ),
                        ));
                    }
                }
                if options.stop_after == Some(phase) {
                    return Err(Self::interrupted(
                        observer,
                        next,
                        format!("stop requested after {phase}"),
                    ));
                }
            }
        }

        // Fresh validation failures error out (without checkpointing)
        // inside the loop; this covers a restored tally, e.g. from a
        // hand-assembled checkpoint directory.
        if let Some(report) = &state.validation {
            if let Some(error) = agreement_failure(report) {
                return Err(error);
            }
        }

        // Consult the declared extra channels: hand each one the recovered
        // linear skeleton, let it hunt for a row remap, and cross-examine
        // any mask it claims before recording it.
        let mapping = state
            .mapping
            .clone()
            .ok_or_else(|| state_missing("mapping"))?;
        let mut row_remap = None;
        let mut observable_costs: Vec<(ObservableKind, ObservableCost)> = Vec::new();
        for channel in extras.iter_mut() {
            let kind = channel.kind();
            if !self.knowledge.observes(kind) {
                continue;
            }
            channel.inform_mapping(&mapping);
            let recovered = channel
                .recover_row_remap()
                .map_err(|e| observable_failure(kind, &e))?;
            if let Some(mask) = recovered {
                if row_remap.is_none()
                    && cross_check_remap(&mapping, mask, &mut **channel)
                        .map_err(|e| observable_failure(kind, &e))?
                {
                    row_remap = Some(mask);
                }
            }
            let cost = channel.cost();
            observer.on_event(&EngineEvent::ObservableQueried { kind, cost });
            observable_costs.push((kind, cost));
        }

        let total = total_costs(&phase_costs);
        observer.on_event(&EngineEvent::RunCompleted { total });
        let partition = state.partition.ok_or_else(|| state_missing("partition"))?;
        Ok(RunReport {
            mapping,
            coarse: state.coarse.ok_or_else(|| state_missing("coarse"))?,
            pool_size: state.pool_size.ok_or_else(|| state_missing("pool"))?,
            pile_count: partition.piles.len(),
            functions: state
                .functions
                .ok_or_else(|| state_missing("detected-functions"))?,
            fine: state.fine.ok_or_else(|| state_missing("fine"))?,
            validation: state.validation,
            threshold_ns: state
                .threshold_ns
                .ok_or_else(|| state_missing("calibration"))?,
            phase_costs,
            total,
            row_remap,
            observable_costs,
        })
    }
}

/// Wraps a failed extra-channel consultation: the remap hunt is an
/// extension of fine-grained row-bit detection, so its failures wear the
/// same label.
fn observable_failure(kind: ObservableKind, error: &ProbeError) -> DramDigError {
    DramDigError::Refinement {
        reason: format!("observable channel {kind} failed: {error}"),
    }
}

/// Cross-examines a channel-recovered remap mask with engine-chosen
/// [`ObservableQuery::RowAdjacency`] queries: for sampled even array rows
/// `r`, the logical rows `r ^ mask` and `(r + 2) ^ mask` must be true
/// double-sided aggressors around the array row `r + 1`. The mask is
/// accepted once the channel confirms one predicted adjacency; a channel
/// that cannot answer the query at all gets no benefit of the doubt.
///
/// Banks and rows vary across attempts so a single invulnerable victim row
/// cannot veto a correct mask.
fn cross_check_remap(
    mapping: &AddressMapping,
    mask: u32,
    channel: &mut dyn Observable,
) -> Result<bool, ProbeError> {
    const ATTEMPTS: u64 = 24;
    let num_rows = u64::from(mapping.num_rows());
    let num_banks = u64::from(mapping.num_banks());
    if num_rows < 8 {
        return Ok(false);
    }
    let stride = ((num_rows - 4) / ATTEMPTS).max(2) & !1;
    let mask = u64::from(mask);
    for attempt in 0..ATTEMPTS {
        let array = 2 + (((attempt * stride) % (num_rows - 4)) & !1);
        let x = (array ^ mask) as u32;
        let y = ((array + 2) ^ mask) as u32;
        let bank = (attempt % num_banks) as u32;
        let (Ok(a), Ok(b)) = (
            mapping.to_phys(DramAddress::new(bank, x, 0)),
            mapping.to_phys(DramAddress::new(bank, y, 0)),
        ) else {
            continue;
        };
        let query = ObservableQuery::RowAdjacency { a, b };
        if !channel.supports(&query) {
            return Ok(false);
        }
        if channel.answer(&query)?.verdict {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Folds per-phase costs into the run total. Phase snapshots are contiguous
/// deltas of one probe, so the saturating merge equals the overall delta.
fn total_costs(phase_costs: &[(Phase, PhaseCosts)]) -> PhaseCosts {
    phase_costs
        .iter()
        .fold(PhaseCosts::default(), |acc, (_, c)| acc.merge(*c))
}

/// The validation agreement gate (< 90% agreement fails the run).
fn agreement_failure(report: &ValidationReport) -> Option<DramDigError> {
    if report.agreement() < 0.90 {
        Some(DramDigError::Validation {
            reason: format!(
                "only {:.1}% of follow-up measurements agree with the recovered mapping",
                report.agreement() * 100.0
            ),
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_salts_are_distinct() {
        let mut salts = PHASE_SALTS.to_vec();
        salts.sort_unstable();
        salts.dedup();
        assert_eq!(salts.len(), Phase::ALL.len());
    }

    #[test]
    fn budget_constructors_and_options_builders() {
        let b = Budget::measurements(100);
        assert_eq!(b.max_measurements, Some(100));
        assert!(!b.is_unlimited());
        assert!(Budget::default().is_unlimited());

        let cancel = Arc::new(AtomicBool::new(false));
        let options = EngineOptions::default()
            .with_checkpoint("/tmp/x")
            .with_budget(b)
            .with_stop_after(Phase::Partition)
            .with_cancel(Arc::clone(&cancel));
        assert_eq!(options.stop_after, Some(Phase::Partition));
        assert!(!options.cancelled());
        cancel.store(true, Ordering::Relaxed);
        assert!(options.cancelled());
    }

    #[test]
    fn null_observer_and_closures_are_observers() {
        let mut seen = 0;
        {
            let mut closure = |_: &EngineEvent| seen += 1;
            Observer::on_event(
                &mut closure,
                &EngineEvent::RunStarted {
                    phases: 6,
                    resumed: 0,
                },
            );
        }
        assert_eq!(seen, 1);
        NullObserver.on_event(&EngineEvent::RunCompleted {
            total: PhaseCosts::default(),
        });
    }
}
