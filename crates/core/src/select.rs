//! Step 2a — physical-address selection (Algorithm 1 of the paper).
//!
//! Given the candidate bank bits `B` from Step 1, the selection picks a set
//! of physical addresses that covers *every combination* of those bits while
//! keeping all other bits fixed, so that the later pile partition exposes all
//! bank address functions. Bits inside the `[b_min, b_max]` range that are
//! not in `B` are forced to 1 through the paper's `miss_mask`, which keeps
//! the pool size at `2^|B|` instead of `2^(b_max - b_min + 1)`.

use dram_model::{PhysAddr, PAGE_SIZE};
use dram_sim::PhysMemory;

use crate::error::DramDigError;

/// Outcome of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectedPool {
    /// The selected physical addresses (deduplicated, ascending).
    pub addresses: Vec<PhysAddr>,
    /// Start of the contiguous physical range the pool was drawn from.
    pub range_start: PhysAddr,
    /// Exclusive end of that range.
    pub range_end: PhysAddr,
    /// The `miss_mask` of Algorithm 1: bits inside the bank-bit span that do
    /// not belong to `B` and were therefore pinned to 1.
    pub miss_mask: u64,
}

impl SelectedPool {
    /// Number of selected addresses.
    pub fn len(&self) -> usize {
        self.addresses.len()
    }

    /// Returns `true` if no addresses were selected.
    pub fn is_empty(&self) -> bool {
        self.addresses.is_empty()
    }
}

/// Runs Algorithm 1: selects physical addresses covering all combinations of
/// the candidate bank bits.
///
/// # Errors
///
/// Returns [`DramDigError::Selection`] when `bank_bits` is empty, when no
/// allocated page has all bank-range bits set (so no suitable range exists),
/// or when the resulting pool is too small to partition.
pub fn select_addresses(
    memory: &PhysMemory,
    bank_bits: &[u8],
    max_pool: Option<usize>,
) -> Result<SelectedPool, DramDigError> {
    if bank_bits.is_empty() {
        return Err(DramDigError::Selection {
            reason: "no candidate bank bits".into(),
        });
    }
    let b_min = *bank_bits.iter().min().expect("non-empty");
    let b_max = *bank_bits.iter().max().expect("non-empty");
    let range_mask = (1u128 << (b_max + 1)) as u64 - (1u64 << b_min);
    let mut miss_mask = 0u64;
    for b in b_min..=b_max {
        if !bank_bits.contains(&b) {
            miss_mask |= 1u64 << b;
        }
    }

    // Find a page whose (page-granular) bank-range bits are all ones and
    // whose preceding range is fully backed by allocated pages (the paper's
    // `page_miss` check). Bits below the page shift are offsets within a
    // page and are always available. Fall back to the last candidate page
    // even if the range has holes — individual addresses are
    // membership-checked below anyway.
    let page_range_mask = range_mask & !(PAGE_SIZE - 1);
    let mut chosen: Option<PhysAddr> = None;
    let mut fallback: Option<PhysAddr> = None;
    for page in memory.page_addresses() {
        if page.raw() & page_range_mask != page_range_mask {
            continue;
        }
        if page.raw() < page_range_mask {
            continue;
        }
        fallback = Some(page);
        let start = page - page_range_mask;
        let end = page + PAGE_SIZE;
        if memory.covers_range(start, end) {
            chosen = Some(page);
            break;
        }
    }
    let anchor = chosen.or(fallback).ok_or_else(|| DramDigError::Selection {
        reason: format!(
            "no allocated page has all bank-range bits [{b_min}, {b_max}] set; \
             the page pool does not cover the required range"
        ),
    })?;
    let range_start = anchor - page_range_mask;
    let range_end = anchor + PAGE_SIZE;

    // Walk the range with a stride of 2^b_min, pin the miss-mask bits to one
    // and keep the addresses whose pages we actually own.
    let stride = 1u64 << b_min;
    let mut addresses = Vec::new();
    let mut p = range_start.raw();
    while p < range_end.raw() {
        let candidate = PhysAddr::new(p | miss_mask);
        if memory.contains(candidate) {
            addresses.push(candidate);
        }
        p += stride;
    }
    addresses.sort_unstable();
    addresses.dedup();

    if let Some(cap) = max_pool {
        if addresses.len() > cap {
            // Keep a seeded random subsample. Every bank bit keeps varying
            // (unlike a strided subsample, which would pin the low bank
            // bits), but pile sizes become less uniform, so capping trades
            // partition robustness for speed — the default configuration
            // therefore does not cap.
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(addresses.len() as u64);
            addresses.shuffle(&mut rng);
            addresses.truncate(cap);
            addresses.sort_unstable();
        }
    }

    if addresses.len() < 2 {
        return Err(DramDigError::Selection {
            reason: format!(
                "only {} addresses selected; the page pool is too sparse over the bank-bit range",
                addresses.len()
            ),
        });
    }

    Ok(SelectedPool {
        addresses,
        range_start,
        range_end,
        miss_mask,
    })
}

/// Expected pool size when the page pool fully covers the bank-bit range:
/// one address per combination of the bank bits at or above the page shift,
/// times one per combination of sub-page bank bits.
pub fn expected_pool_size(bank_bits: &[u8]) -> usize {
    1usize << bank_bits.len()
}

/// Convenience: the span mask `[b_min, b_max]` of a bank-bit set.
pub fn range_mask_of(bank_bits: &[u8]) -> u64 {
    if bank_bits.is_empty() {
        return 0;
    }
    let b_min = *bank_bits.iter().min().expect("non-empty");
    let b_max = *bank_bits.iter().max().expect("non-empty");
    ((1u128 << (b_max + 1)) as u64).wrapping_sub(1u64 << b_min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::{bits, MachineSetting};

    fn coarse_bank_bits(setting: &MachineSetting) -> Vec<u8> {
        setting.mapping().bank_function_bits()
    }

    #[test]
    fn full_pool_covers_every_bank_bit_combination() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let bank_bits = coarse_bank_bits(&setting);
        let memory = PhysMemory::full(setting.system.capacity_bytes);
        let pool = select_addresses(&memory, &bank_bits, None).unwrap();
        assert_eq!(pool.len(), expected_pool_size(&bank_bits));
        // Every combination of the bank bits appears exactly once.
        let mut combos: Vec<u64> = pool
            .addresses
            .iter()
            .map(|a| bits::gather_bits(a.raw(), &bank_bits))
            .collect();
        combos.sort_unstable();
        combos.dedup();
        assert_eq!(combos.len(), pool.len());
    }

    #[test]
    fn miss_mask_pins_non_bank_bits() {
        let setting = MachineSetting::no8_coffee_lake_ddr4_8g();
        let bank_bits = coarse_bank_bits(&setting); // {6, 13..19}
        let memory = PhysMemory::full(setting.system.capacity_bytes);
        let pool = select_addresses(&memory, &bank_bits, None).unwrap();
        assert_ne!(pool.miss_mask, 0);
        for addr in &pool.addresses {
            assert_eq!(addr.raw() & pool.miss_mask, pool.miss_mask);
        }
    }

    #[test]
    fn addresses_differ_only_in_bank_bits_and_low_bits() {
        let setting = MachineSetting::no7_skylake_ddr4_4g();
        let bank_bits = coarse_bank_bits(&setting);
        let memory = PhysMemory::full(setting.system.capacity_bytes);
        let pool = select_addresses(&memory, &bank_bits, None).unwrap();
        let allowed = bits::mask_of(&bank_bits);
        let base = pool.addresses[0].raw() & !allowed;
        for addr in &pool.addresses {
            assert_eq!(addr.raw() & !allowed, base);
        }
    }

    #[test]
    fn pool_cap_subsamples_uniformly() {
        let setting = MachineSetting::no6_skylake_ddr4_16g();
        let bank_bits = coarse_bank_bits(&setting);
        let memory = PhysMemory::full(setting.system.capacity_bytes);
        let capped = select_addresses(&memory, &bank_bits, Some(1000)).unwrap();
        assert!(capped.len() <= 1000);
        assert!(capped.len() >= 900);
    }

    #[test]
    fn empty_bank_bits_is_rejected() {
        let memory = PhysMemory::full(1 << 20);
        assert!(matches!(
            select_addresses(&memory, &[], None),
            Err(DramDigError::Selection { .. })
        ));
    }

    #[test]
    fn sparse_pool_without_required_range_is_rejected() {
        // Only the first 16 pages of a 1 GiB module: bit 25 can never be set.
        let memory = PhysMemory::from_frames((0..16).collect(), (1 << 30) / PAGE_SIZE);
        assert!(matches!(
            select_addresses(&memory, &[13, 25], None),
            Err(DramDigError::Selection { .. })
        ));
    }

    #[test]
    fn range_mask_helper() {
        assert_eq!(range_mask_of(&[6, 13]), (1 << 14) - (1 << 6));
        assert_eq!(range_mask_of(&[]), 0);
    }
}
