//! Line-oriented `key = value` plain-text codec helpers.
//!
//! The campaign journal persists configurations and recovery outcomes as
//! plain text so an interrupted fleet can resume without any serialization
//! dependency (the build environment is offline). The format is the simplest
//! thing that round-trips: one `key = value` pair per line, `#` comments and
//! blank lines ignored. [`crate::config::DramDigConfig`] and
//! [`crate::report::RecoveryReport`] build their encode/decode on these
//! helpers.

use std::fmt;

/// Error produced while decoding a `key = value` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// 1-based line number of the offending line (0 when the problem is the
    /// document as a whole, e.g. a missing required key).
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl CodecError {
    /// Builds an error tied to a specific line.
    pub fn at(line: usize, reason: impl Into<String>) -> Self {
        CodecError {
            line,
            reason: reason.into(),
        }
    }

    /// Builds a document-level error (no specific line).
    pub fn whole(reason: impl Into<String>) -> Self {
        CodecError {
            line: 0,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.reason)
        } else {
            write!(f, "line {}: {}", self.line, self.reason)
        }
    }
}

impl std::error::Error for CodecError {}

/// Splits a document into `(line_number, key, value)` triples, skipping
/// blank lines and `#` comments. Keys and values are trimmed; the value is
/// everything after the **first** `=`, so values may contain `=` and commas.
///
/// # Errors
///
/// Returns [`CodecError`] for a non-comment line without `=` or with an
/// empty key.
pub fn parse_kv_lines(text: &str) -> Result<Vec<(usize, &str, &str)>, CodecError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(CodecError::at(
                line_no,
                format!("expected `key = value`, got `{line}`"),
            ));
        };
        let key = key.trim();
        if key.is_empty() {
            return Err(CodecError::at(line_no, "empty key"));
        }
        out.push((line_no, key, value.trim()));
    }
    Ok(out)
}

/// Parses a `u64` value.
///
/// # Errors
///
/// Returns [`CodecError`] naming the line on malformed input.
pub fn parse_u64(line: usize, key: &str, value: &str) -> Result<u64, CodecError> {
    value.parse().map_err(|_| {
        CodecError::at(
            line,
            format!("`{key}` expects an unsigned integer, got `{value}`"),
        )
    })
}

/// Parses a `u32` value, rejecting anything that does not fit (no silent
/// truncation: `4294967296` must not alias onto `0`).
///
/// # Errors
///
/// Returns [`CodecError`] naming the line on malformed or out-of-range
/// input.
pub fn parse_u32(line: usize, key: &str, value: &str) -> Result<u32, CodecError> {
    value.parse().map_err(|_| {
        CodecError::at(
            line,
            format!("`{key}` expects an unsigned 32-bit integer, got `{value}`"),
        )
    })
}

/// Parses a `usize` value.
///
/// # Errors
///
/// Returns [`CodecError`] naming the line on malformed input.
pub fn parse_usize(line: usize, key: &str, value: &str) -> Result<usize, CodecError> {
    value.parse().map_err(|_| {
        CodecError::at(
            line,
            format!("`{key}` expects an unsigned integer, got `{value}`"),
        )
    })
}

/// Parses an `f64` value (as written by `{:?}`, which round-trips exactly).
///
/// # Errors
///
/// Returns [`CodecError`] naming the line on malformed input.
pub fn parse_f64(line: usize, key: &str, value: &str) -> Result<f64, CodecError> {
    value
        .parse()
        .map_err(|_| CodecError::at(line, format!("`{key}` expects a number, got `{value}`")))
}

/// Parses a `true`/`false` value.
///
/// # Errors
///
/// Returns [`CodecError`] naming the line on malformed input.
pub fn parse_bool(line: usize, key: &str, value: &str) -> Result<bool, CodecError> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(CodecError::at(
            line,
            format!("`{key}` expects true or false, got `{other}`"),
        )),
    }
}

/// Parses an optional `usize`: the literal `none`, or a number.
///
/// # Errors
///
/// Returns [`CodecError`] naming the line on malformed input.
pub fn parse_opt_usize(line: usize, key: &str, value: &str) -> Result<Option<usize>, CodecError> {
    if value == "none" {
        Ok(None)
    } else {
        parse_usize(line, key, value).map(Some)
    }
}

/// Formats an optional `usize` the way [`parse_opt_usize`] reads it.
pub fn format_opt_usize(value: Option<usize>) -> String {
    match value {
        None => "none".to_string(),
        Some(v) => v.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_lines_skip_comments_and_blanks() {
        let doc = "# header\n\n a = 1 \nb=two=three\n";
        let parsed = parse_kv_lines(doc).unwrap();
        assert_eq!(parsed, vec![(3, "a", "1"), (4, "b", "two=three")]);
    }

    #[test]
    fn kv_lines_reject_garbage() {
        let err = parse_kv_lines("just words\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(parse_kv_lines("= value\n").is_err());
    }

    #[test]
    fn scalar_parsers_round_trip_and_report_lines() {
        assert_eq!(parse_u64(3, "k", "42").unwrap(), 42);
        assert_eq!(parse_u64(3, "k", "x").unwrap_err().line, 3);
        assert_eq!(parse_u32(2, "k", "42").unwrap(), 42);
        // 2^32 must be rejected, not truncated to 0.
        assert_eq!(parse_u32(2, "k", "4294967296").unwrap_err().line, 2);
        assert!(parse_bool(1, "k", "true").unwrap());
        assert!(parse_bool(1, "k", "yes").is_err());
        assert_eq!(parse_opt_usize(1, "k", "none").unwrap(), None);
        assert_eq!(parse_opt_usize(1, "k", "7").unwrap(), Some(7));
        assert_eq!(format_opt_usize(None), "none");
        assert_eq!(format_opt_usize(Some(7)), "7");
        // `{:?}` for f64 round-trips through parse exactly.
        let x = 0.1f64 + 0.2f64;
        assert_eq!(parse_f64(1, "k", &format!("{x:?}")).unwrap(), x);
        let e = CodecError::whole("missing key");
        assert_eq!(e.to_string(), "missing key");
        assert_eq!(CodecError::at(4, "boom").to_string(), "line 4: boom");
    }
}
