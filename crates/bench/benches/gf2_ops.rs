//! Micro-benchmarks of the GF(2) linear algebra that backs redundancy
//! removal (Algorithm 3) and mapping inversion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dram_model::gf2::{self, Gf2Matrix};
use dram_model::{MachineSetting, XorFunc};

fn candidate_span(setting: &MachineSetting) -> Vec<XorFunc> {
    // All non-zero linear combinations of the ground-truth functions — the
    // worst-case input remove_redundant sees after Algorithm 3.
    let funcs = setting.mapping().bank_funcs();
    let mut all = Vec::new();
    for combo in 1u64..(1 << funcs.len()) {
        let mut mask = 0u64;
        for (i, f) in funcs.iter().enumerate() {
            if combo >> i & 1 == 1 {
                mask ^= f.mask();
            }
        }
        all.push(XorFunc::from_mask(mask));
    }
    all
}

fn bench_remove_redundant(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf2_remove_redundant");
    group.sample_size(30);
    for number in [4u8, 6] {
        let setting = MachineSetting::by_number(number).unwrap();
        let candidates = candidate_span(&setting);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("no{number}_{}cands", candidates.len())),
            &candidates,
            |b, cands| b.iter(|| gf2::remove_redundant(std::hint::black_box(cands))),
        );
    }
    group.finish();
}

fn bench_rank(c: &mut Criterion) {
    let setting = MachineSetting::no6_skylake_ddr4_16g();
    let rows: Vec<u64> = candidate_span(&setting).iter().map(|f| f.mask()).collect();
    c.bench_function("gf2_rank_63_rows", |b| {
        b.iter(|| Gf2Matrix::from_rows(std::hint::black_box(rows.clone())).rank())
    });
}

fn bench_solve(c: &mut Criterion) {
    let setting = MachineSetting::no6_skylake_ddr4_16g();
    let mapping = setting.mapping();
    let pure = mapping.pure_bank_bits().to_vec();
    let a_rows: Vec<u64> = mapping
        .bank_funcs()
        .iter()
        .map(|f| dram_model::bits::gather_bits(f.mask(), &pure))
        .collect();
    c.bench_function("gf2_solve_square_6x6", |b| {
        b.iter(|| {
            for rhs in 0..64u64 {
                std::hint::black_box(gf2::solve_square(&a_rows, rhs, 6));
            }
        })
    });
}

criterion_group!(benches, bench_remove_redundant, bench_rank, bench_solve);
criterion_main!(benches);
