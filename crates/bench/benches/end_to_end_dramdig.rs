//! End-to-end cost of one DRAMDig run on small machine settings (the larger
//! settings are exercised by the `fig2_time_costs` experiment binary, not by
//! Criterion, to keep `cargo bench` wall-clock time reasonable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dram_model::MachineSetting;
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::{DomainKnowledge, DramDig, DramDigConfig};
use mem_probe::SimProbe;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("dramdig_end_to_end");
    group.sample_size(10);
    for number in [4u8, 7, 8] {
        let setting = MachineSetting::by_number(number).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("no{number}")),
            &setting,
            |b, setting| {
                b.iter(|| {
                    let machine = SimMachine::from_setting(setting, SimConfig::default());
                    let mut probe =
                        SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
                    let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
                    let report = DramDig::new(knowledge, DramDigConfig::fast())
                        .run(&mut probe)
                        .unwrap();
                    assert!(report.mapping.equivalent_to(setting.mapping()));
                    std::hint::black_box(report)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
