//! Micro-benchmarks of the pile-basis GF(2) verification that replaced the
//! naive per-member candidate sweep in Algorithm 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dram_model::gf2::PileBasis;
use dram_model::{bits, MachineSetting};
use dramdig::functions::{
    consistent_masks, detect_bank_functions, detect_bank_functions_naive,
    detect_bank_functions_with_basis, mask_constant_on_pile, merged_difference_basis,
};
use dramdig::partition::synthetic_piles;
use dramdig::DramDigConfig;

fn bench_detect_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect_bank_functions");
    for number in [4u8, 6] {
        let setting = MachineSetting::by_number(number).unwrap();
        let piles = synthetic_piles(setting.mapping());
        let bank_bits = setting.mapping().bank_function_bits();
        let banks = setting.system.total_banks();
        let cfg = DramDigConfig::default();
        let basis = merged_difference_basis(&piles);
        group.bench_with_input(
            BenchmarkId::new("naive", format!("no{number}")),
            &piles,
            |b, piles| {
                b.iter(|| {
                    detect_bank_functions_naive(
                        std::hint::black_box(piles),
                        &bank_bits,
                        banks,
                        &cfg,
                    )
                    .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("basis", format!("no{number}")),
            &piles,
            |b, piles| {
                b.iter(|| {
                    detect_bank_functions_with_basis(
                        std::hint::black_box(&basis),
                        piles,
                        &bank_bits,
                        banks,
                        &cfg,
                    )
                    .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("basis_with_build", format!("no{number}")),
            &piles,
            |b, piles| {
                b.iter(|| {
                    detect_bank_functions(std::hint::black_box(piles), &bank_bits, banks, &cfg)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_mask_verification(c: &mut Criterion) {
    let setting = MachineSetting::no6_skylake_ddr4_16g();
    let piles = synthetic_piles(setting.mapping());
    let basis = merged_difference_basis(&piles);
    let bank_bits = setting.mapping().bank_function_bits();
    let masks = bits::gen_xor_masks(&bank_bits, 7);
    let mut group = c.benchmark_group("mask_verification_no6");
    group.bench_function("naive_member_scan", |b| {
        b.iter(|| {
            masks
                .iter()
                .filter(|&&m| piles.iter().all(|p| mask_constant_on_pile(m, p)))
                .count()
        })
    });
    group.bench_function("pile_basis", |b| {
        b.iter(|| {
            masks
                .iter()
                .filter(|&&m| basis.mask_constant(std::hint::black_box(m)))
                .count()
        })
    });
    group.finish();
}

fn bench_parallel_sweep(c: &mut Criterion) {
    // A wide candidate space (16 bits, masks of up to 5 bits: 6884 masks)
    // exercises the scoped-worker chunking of consistent_masks.
    let mut basis = PileBasis::new(0);
    basis.insert(0b0011 << 8);
    basis.insert(0b0101 << 9);
    basis.insert(0b1001 << 10);
    let wide_bits: Vec<u8> = (8u8..24).collect();
    let masks = bits::gen_xor_masks(&wide_bits, 5);
    c.bench_function("parallel_sweep_6884_masks", |b| {
        b.iter(|| consistent_masks(std::hint::black_box(&masks), &basis))
    });
}

criterion_group!(
    benches,
    bench_detect_paths,
    bench_mask_verification,
    bench_parallel_sweep
);
criterion_main!(benches);
