//! Throughput of the simulated memory controller — the substrate cost every
//! reverse-engineering measurement pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dram_model::{MachineSetting, PhysAddr};
use dram_sim::{MemoryController, SimConfig};

fn bench_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller_access");
    group.sample_size(30);
    for (name, config) in [
        ("noisy", SimConfig::default()),
        ("noiseless", SimConfig::noiseless()),
    ] {
        let setting = MachineSetting::no6_skylake_ddr4_16g();
        let mut controller = MemoryController::new(setting.mapping().clone(), config);
        let addresses: Vec<PhysAddr> = (0..1024u64)
            .map(|i| PhysAddr::new((i * 0x1_3579) & (setting.system.capacity_bytes - 1)))
            .collect();
        group.throughput(Throughput::Elements(addresses.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &addresses, |b, addrs| {
            b.iter(|| {
                let mut total = 0u64;
                for &a in addrs {
                    total += controller.access(a);
                }
                std::hint::black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let setting = MachineSetting::no6_skylake_ddr4_16g();
    let mapping = setting.mapping().clone();
    c.bench_function("mapping_to_dram_and_back", |b| {
        b.iter(|| {
            for i in 0..256u64 {
                let addr = PhysAddr::new(i * 0x00AB_CDEF);
                let dram = mapping.to_dram(std::hint::black_box(addr));
                std::hint::black_box(mapping.to_phys(dram).unwrap());
            }
        })
    });
}

criterion_group!(benches, bench_access, bench_decode);
criterion_main!(benches);
