//! Micro-benchmarks of the bitsliced coset-reduction and RREF kernels
//! against their scalar twins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dram_model::gf2::{bitslice, Gf2Matrix, PileBasis};
use dram_model::MachineSetting;

/// Deterministic pseudo-random values (SplitMix64) below 2^bits.
fn rng_values(seed: u64, count: usize, bits: u32) -> Vec<u64> {
    let mut state = seed;
    (0..count)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) & (u64::MAX >> (64 - bits))
        })
        .collect()
}

fn bench_coset_reduce(c: &mut Criterion) {
    // The Decompose workload: reduce pool-address differences against the
    // difference basis of a same-bank pile (rank = addr bits - bank
    // functions on machine No.6).
    let mapping = MachineSetting::no6_skylake_ddr4_16g().mapping().clone();
    let mut group = c.benchmark_group("bitslice_reduce");
    let pool = rng_values(7, 4096, 34);
    let bank = mapping.bank_of(dram_model::PhysAddr::new(pool[0]));
    let basis = PileBasis::from_members(
        pool[0],
        pool.iter()
            .copied()
            .filter(|&a| mapping.bank_of(dram_model::PhysAddr::new(a)) == bank),
    );
    for count in [256usize, 4096] {
        let values = rng_values(11, count, 34);
        group.throughput(Throughput::Elements(count as u64));
        group.bench_with_input(BenchmarkId::new("scalar", count), &values, |b, values| {
            b.iter(|| {
                values
                    .iter()
                    .map(|&v| basis.reduce(std::hint::black_box(v)))
                    .fold(0u64, |acc, r| acc ^ r)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("bitsliced", count),
            &values,
            |b, values| {
                b.iter(|| {
                    basis
                        .reduce_batch(std::hint::black_box(values))
                        .iter()
                        .fold(0u64, |acc, r| acc ^ r)
                })
            },
        );
    }
    group.finish();
}

fn bench_rref_keys(c: &mut Criterion) {
    // Canonical dedup keys over the Table-II bank-function sets, the
    // MappingStore workload.
    let rows: Vec<Vec<u64>> = (1..=9u8)
        .map(|n| {
            MachineSetting::by_number(n)
                .unwrap()
                .mapping()
                .bank_funcs()
                .iter()
                .map(|f| f.mask())
                .collect()
        })
        .collect();
    let mut group = c.benchmark_group("rref_canonical_key");
    group.bench_function("scalar", |b| {
        b.iter(|| {
            rows.iter()
                .map(|r| {
                    Gf2Matrix::from_rows(std::hint::black_box(r).clone())
                        .reduced_row_basis()
                        .len()
                })
                .sum::<usize>()
        })
    });
    group.bench_function("bitsliced", |b| {
        b.iter(|| {
            rows.iter()
                .map(|r| bitslice::reduced_row_basis(std::hint::black_box(r)).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_coset_reduce, bench_rref_keys);
criterion_main!(benches);
