//! Costs of the two halves of Step 2: the measurement-driven pile partition
//! (Algorithm 2) and the pure-computation XOR-mask search (Algorithm 3).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dram_model::MachineSetting;
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::functions::detect_bank_functions;
use dramdig::partition::{partition_into_piles, synthetic_piles};
use dramdig::select::select_addresses;
use dramdig::DramDigConfig;
use mem_probe::{ConflictOracle, LatencyCalibration, MemoryProbe, SimProbe};

fn bench_partition(c: &mut Criterion) {
    let setting = MachineSetting::no4_haswell_ddr3_4g();
    let cfg = DramDigConfig::default();
    c.bench_function("partition_no4_64_addresses", |b| {
        b.iter(|| {
            let machine = SimMachine::from_setting(&setting, SimConfig::default());
            let threshold = machine.controller().config().timing.oracle_threshold_ns();
            let probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
            let mut oracle =
                ConflictOracle::new(probe, LatencyCalibration::from_threshold(threshold));
            let pool = select_addresses(
                oracle.probe().memory(),
                &setting.mapping().bank_function_bits(),
                None,
            )
            .unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            std::hint::black_box(
                partition_into_piles(&mut oracle, &pool.addresses, 8, &cfg, &mut rng).unwrap(),
            )
        })
    });
}

fn bench_mask_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("bank_function_search");
    group.sample_size(20);
    for number in [4u8, 6] {
        let setting = MachineSetting::by_number(number).unwrap();
        let piles = synthetic_piles(setting.mapping());
        let bank_bits = setting.mapping().bank_function_bits();
        let banks = setting.system.total_banks();
        let cfg = DramDigConfig::default();
        group.bench_function(format!("no{number}_{}bits", bank_bits.len()), |b| {
            b.iter(|| {
                std::hint::black_box(
                    detect_bank_functions(&piles, &bank_bits, banks, &cfg).unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partition, bench_mask_search);
criterion_main!(benches);
