//! Cost of the rowhammer harness: hammering throughput with a correct
//! mapping versus an incomplete (DRAMA-style) one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dram_model::MachineSetting;
use dram_sim::{SimConfig, SimMachine};
use rowhammer::{run_double_sided, AttackerView, HammerConfig};

fn bench_double_sided(c: &mut Criterion) {
    let mut group = c.benchmark_group("rowhammer_double_sided");
    group.sample_size(15);
    let setting = MachineSetting::no1_sandy_bridge_ddr3_8g();
    let truth = setting.mapping();
    let full_view = AttackerView::from_mapping(truth);
    let shared = truth.shared_row_bits();
    let partial_rows: Vec<u8> = truth
        .row_bits()
        .iter()
        .copied()
        .filter(|b| !shared.contains(b))
        .collect();
    let partial_view = AttackerView::new(truth.bank_funcs().to_vec(), partial_rows);
    let cfg = HammerConfig {
        victims: 8,
        iterations_per_pair: 2_000,
        duration_ns: None,
        rng_seed: 3,
    };

    for (name, view) in [
        ("correct_mapping", &full_view),
        ("drama_mapping", &partial_view),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), view, |b, view| {
            b.iter(|| {
                let mut machine = SimMachine::from_setting(&setting, SimConfig::fast_rowhammer());
                std::hint::black_box(run_double_sided(&mut machine, view, &cfg))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_double_sided);
criterion_main!(benches);
