//! Micro-benchmark of the 64-lane Gray-code span enumeration against the
//! scalar one-element-at-a-time walk it replaced in Algorithm 3 and the
//! DRAMA brute force.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dram_model::gf2::{bitslice, Gf2Matrix};

/// Scalar twin: walk the full span one Gray step at a time.
fn span_survivors_scalar(basis: &[u64], max_weight: usize) -> Vec<u64> {
    let mut survivors = Vec::new();
    let mut value = 0u64;
    for j in 1u64..1u64 << basis.len() {
        value ^= basis[j.trailing_zeros() as usize];
        if value != 0 && (value.count_ones() as usize) <= max_weight {
            survivors.push(value);
        }
    }
    survivors.sort_unstable();
    survivors
}

/// Deterministic pseudo-random 34-bit vectors (SplitMix64).
fn rng_vectors(seed: u64, count: usize) -> Vec<u64> {
    let mut state = seed;
    (0..count)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) & (u64::MAX >> 30)
        })
        .collect()
}

fn bench_span_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitslice_span_walk");
    for dim in [10usize, 14, 18] {
        let basis = Gf2Matrix::from_rows(rng_vectors(dim as u64, dim)).row_basis();
        assert_eq!(basis.len(), dim, "random vectors must be independent");
        group.throughput(Throughput::Elements(1u64 << dim));
        group.bench_with_input(BenchmarkId::new("scalar", dim), &basis, |b, basis| {
            b.iter(|| span_survivors_scalar(std::hint::black_box(basis), 6).len())
        });
        group.bench_with_input(BenchmarkId::new("bitsliced", dim), &basis, |b, basis| {
            b.iter(|| bitslice::span_survivors(std::hint::black_box(basis), 6).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_span_walk);
criterion_main!(benches);
