//! Micro-benchmarks of the pair-keyed conflict cache and the batched/cached
//! oracle entry points.

use criterion::{criterion_group, criterion_main, Criterion};

use dram_model::{DramAddress, MachineSetting, PhysAddr};
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use mem_probe::{ConflictCache, ConflictOracle, LatencyCalibration, SimProbe};

fn oracle(cache: bool) -> ConflictOracle<SimProbe> {
    let setting = MachineSetting::no4_haswell_ddr3_4g();
    let machine = SimMachine::from_setting(&setting, SimConfig::noiseless());
    let threshold = machine.controller().config().timing.oracle_threshold_ns();
    let probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
    let o = ConflictOracle::new(probe, LatencyCalibration::from_threshold(threshold));
    if cache {
        o.with_cache(1 << 16)
    } else {
        o
    }
}

fn sample_pairs(o: &ConflictOracle<SimProbe>, n: u64) -> Vec<(PhysAddr, PhysAddr)> {
    let truth = o.probe().machine().ground_truth().clone();
    (0..n)
        .map(|i| {
            (
                truth
                    .to_phys(DramAddress::new((i % 8) as u32, 10, 0))
                    .unwrap(),
                truth
                    .to_phys(DramAddress::new(((i / 8) % 8) as u32, 20 + i as u32, 0))
                    .unwrap(),
            )
        })
        .collect()
}

fn bench_cache_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("conflict_cache");
    group.bench_function("record_and_lookup_1k", |b| {
        b.iter(|| {
            let mut cache = ConflictCache::new(1 << 12);
            for i in 0..1024u64 {
                let (a, bb) = (PhysAddr::new(i * 64), PhysAddr::new(i * 64 + 4096));
                cache.record(a, bb, i % 3 == 0);
            }
            let mut hits = 0u32;
            for i in 0..1024u64 {
                let (a, bb) = (PhysAddr::new(i * 64 + 4096), PhysAddr::new(i * 64));
                if cache.lookup(a, bb).is_some() {
                    hits += 1;
                }
            }
            std::hint::black_box(hits)
        })
    });
    group.bench_function("eviction_pressure_4k_into_1k", |b| {
        b.iter(|| {
            let mut cache = ConflictCache::new(1 << 10);
            for i in 0..4096u64 {
                cache.record(PhysAddr::new(i), PhysAddr::new(i + 1), i % 2 == 0);
            }
            std::hint::black_box(cache.len())
        })
    });
    group.finish();
}

fn bench_oracle_repeat_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_repeated_queries");
    group.sample_size(20);
    for cached in [false, true] {
        let label = if cached { "cached" } else { "uncached" };
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut o = oracle(cached);
                let pairs = sample_pairs(&o, 64);
                // Three passes over the same pair set: the cached oracle
                // measures each pair once, the uncached one three times.
                let mut conflicts = 0u32;
                for _ in 0..3 {
                    for verdict in o.are_sbdr(&pairs) {
                        conflicts += u32::from(verdict);
                    }
                }
                std::hint::black_box(conflicts)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_ops, bench_oracle_repeat_queries);
criterion_main!(benches);
