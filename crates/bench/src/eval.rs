//! Scenario-matrix evaluation: generated machine models, a cross-tool
//! scoreboard and a differential gate.
//!
//! The paper's Tables I/II compare the tools on nine fixed machines. This
//! module opens the workload: a seeded [`EvalGrid`] samples machines from
//! [`MachineGen`] across its declared axes (width, interleaving, function
//! span, window shape, row remapping) and three noise profiles, then drives
//! DRAMDig *and* all three baselines over every scenario through the
//! campaign worker pool ([`campaign::drain_pool`]).
//!
//! The result renders into a plain-text `SCOREBOARD` artifact with a stable
//! codec — everything in it (measurement counts, simulated seconds, pile
//! shapes) is a pure function of the grid seed, so two runs of the same grid
//! are **byte-identical** and CI can `cmp` them. Wall-clock times are
//! deliberately excluded from the artifact; they go to stdout and the
//! benchmark JSON instead.
//!
//! The differential gate encodes DRAMDig's contract on the open workload:
//!
//! * every **in-scope** scenario must be recovered exactly;
//! * every **wide-function** scenario must be *detected* — the pipeline
//!   reports an error instead of inventing a wrong mapping;
//! * every **row-remap** scenario must yield the linear skeleton with the
//!   remap reported as unobservable from timing — unless the grid runs with
//!   the flip-adjacency channel declared
//!   ([`run_grid_with_observables`]), in which case the remap mask itself
//!   must be recovered and the expectation hardens to a full recovery.

use std::fmt;
use std::fmt::Write as _;

use campaign::{drain_pool, MeteredHooks, NoHooks, PoolConfig, PoolHooks};
use dram_baselines::seaborn::SeabornConfig;
use dram_baselines::{BaselineError, Drama, DramaConfig, Seaborn, Xiao, XiaoConfig};
use dram_model::{GeneratedMachine, MachineClass, MachineGen, Microarch, RowRemap};
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::engine::{EngineOptions, NullObserver, PipelineEngine};
use dramdig::{DomainKnowledge, DramDig, DramDigConfig};
use mem_probe::{rounds_for, MemoryProbe, ObservableKind, SimProbe};
use rowhammer::FlipAdjacencyObservable;
use telemetry::{Registry, SpanKind, Tracer};

/// Schema identifier on the first line of every scoreboard.
pub const SCOREBOARD_SCHEMA: &str = "dramdig-scoreboard-v1";

/// Size presets for the scenario grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridKind {
    /// 8 scenarios — unit tests and the benchmark JSON.
    Quick,
    /// 24 scenarios — the CI `scenario-matrix` gate (~seconds).
    Ci,
    /// 48 scenarios — a broader sweep for manual exploration.
    Full,
    /// 1,000 scenarios — the mapreduce-scale grid behind the scheduled
    /// `big-grid` CI job and the `campaign_mapreduce` bench section.
    Big,
}

impl GridKind {
    /// Every kind, in a stable order.
    pub const ALL: [GridKind; 4] = [GridKind::Quick, GridKind::Ci, GridKind::Full, GridKind::Big];

    /// Stable identifier used on the CLI and in the scoreboard.
    pub const fn as_str(self) -> &'static str {
        match self {
            GridKind::Quick => "quick",
            GridKind::Ci => "ci",
            GridKind::Full => "full",
            GridKind::Big => "big",
        }
    }

    /// Parses an identifier produced by [`GridKind::as_str`].
    pub fn from_name(name: &str) -> Option<GridKind> {
        Self::ALL.into_iter().find(|k| k.as_str() == name)
    }

    /// Number of scenarios in this grid.
    pub const fn scenario_count(self) -> usize {
        match self {
            GridKind::Quick => 8,
            GridKind::Ci => 24,
            GridKind::Full => 48,
            GridKind::Big => 1000,
        }
    }
}

impl fmt::Display for GridKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Noise profile a scenario measures under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseKind {
    /// No measurement noise at all.
    Noiseless,
    /// The default Gaussian noise plus rare outliers.
    Default,
    /// Default noise plus the TRR-like periodic sampler spikes.
    Trr,
}

impl NoiseKind {
    /// Stable identifier used in the scoreboard.
    pub const fn as_str(self) -> &'static str {
        match self {
            NoiseKind::Noiseless => "noiseless",
            NoiseKind::Default => "default",
            NoiseKind::Trr => "trr",
        }
    }

    /// The simulator configuration (before seeding) for this profile.
    pub fn sim_config(self) -> SimConfig {
        match self {
            NoiseKind::Noiseless => SimConfig::noiseless(),
            NoiseKind::Default => SimConfig::default(),
            NoiseKind::Trr => SimConfig::trr_noise(),
        }
    }
}

/// One cell of the scenario axis product: a generated machine plus the
/// noise profile it is measured under.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Position in the grid (names the scenario in the scoreboard).
    pub index: usize,
    /// The generated machine model (class included).
    pub machine: GeneratedMachine,
    /// The noise profile of every measurement in this scenario.
    pub noise: NoiseKind,
    /// Simulator noise seed.
    pub sim_seed: u64,
    /// Tool-side RNG seed.
    pub tool_seed: u64,
}

impl Scenario {
    /// Stable scenario identifier, e.g. `s07`.
    pub fn id(&self) -> String {
        format!("s{:02}", self.index)
    }

    /// The seeded simulator configuration for this scenario.
    pub fn sim_config(&self) -> SimConfig {
        self.noise.sim_config().with_seed(self.sim_seed)
    }

    /// A fresh probe over the scenario's machine: every tool observes the
    /// same simulated module through the same noise-matched rounds budget.
    pub fn probe(&self) -> SimProbe {
        let config = self.sim_config();
        let rounds = rounds_for(&config);
        let machine = SimMachine::from_generated(&self.machine, config);
        SimProbe::new(
            machine,
            PhysMemory::full(self.machine.system.capacity_bytes),
        )
        .with_rounds(rounds)
    }
}

fn mix(seed: u64, lane: u64) -> u64 {
    let mut z = seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fully expanded scenario grid.
#[derive(Debug, Clone)]
pub struct EvalGrid {
    /// The size preset the grid was built from.
    pub kind: GridKind,
    /// The grid seed every scenario seed derives from.
    pub seed: u64,
    /// The expanded scenarios, in index order.
    pub scenarios: Vec<Scenario>,
}

impl EvalGrid {
    /// Expands the deterministic grid for `(kind, seed)`: per block of six
    /// scenarios, four in-scope, one wide-function and one row-remap, with
    /// the noise profile cycling through all three kinds.
    pub fn new(kind: GridKind, seed: u64) -> Self {
        let scenarios = (0..kind.scenario_count())
            .map(|index| {
                let class = match index % 6 {
                    4 => MachineClass::WideFunction,
                    5 => MachineClass::RowRemap,
                    _ => MachineClass::InScope,
                };
                let noise = match index % 3 {
                    0 => NoiseKind::Noiseless,
                    1 => NoiseKind::Default,
                    _ => NoiseKind::Trr,
                };
                let gen_seed = mix(seed, index as u64);
                Scenario {
                    index,
                    machine: MachineGen::new(gen_seed).generate(class),
                    noise,
                    sim_seed: mix(seed, 0x5151 ^ (index as u64) << 8),
                    tool_seed: mix(seed, 0x7001 ^ (index as u64) << 8),
                }
            })
            .collect();
        EvalGrid {
            kind,
            seed,
            scenarios,
        }
    }

    /// Scenarios of one class.
    pub fn of_class(&self, class: MachineClass) -> impl Iterator<Item = &Scenario> {
        self.scenarios
            .iter()
            .filter(move |s| s.machine.class == class)
    }
}

/// The tools the scoreboard compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ToolId {
    /// The knowledge-assisted pipeline under test.
    DramDig,
    /// DRAMA (Pessl et al.) — generic but blind and slow.
    Drama,
    /// Xiao et al. — fast but DDR3-only and two-bit functions only.
    Xiao,
    /// Seaborn et al. — the published Sandy Bridge guess.
    Seaborn,
}

impl ToolId {
    /// Every tool, in scoreboard order.
    pub const ALL: [ToolId; 4] = [
        ToolId::DramDig,
        ToolId::Drama,
        ToolId::Xiao,
        ToolId::Seaborn,
    ];

    /// Stable identifier used in the scoreboard.
    pub const fn as_str(self) -> &'static str {
        match self {
            ToolId::DramDig => "dramdig",
            ToolId::Drama => "drama",
            ToolId::Xiao => "xiao",
            ToolId::Seaborn => "seaborn",
        }
    }
}

impl fmt::Display for ToolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// How one tool fared on one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreStatus {
    /// Recovered the full ground-truth mapping.
    Recovered,
    /// Recovered the linear skeleton of a row-remapped machine — everything
    /// the timing channel can possibly observe.
    Skeleton,
    /// Refused to produce a mapping on an out-of-scope machine and said why
    /// (the desired behaviour there).
    Detected,
    /// Recovered the bank partition but not the full mapping.
    PartitionOnly,
    /// Declared itself not applicable to the machine.
    NotApplicable,
    /// Failed (stuck, error) on a scenario it should handle.
    Failed,
    /// Returned a mapping that contradicts the ground truth — the one
    /// outcome the gate never tolerates.
    Wrong,
}

impl ScoreStatus {
    /// Stable identifier used in the scoreboard.
    pub const fn as_str(self) -> &'static str {
        match self {
            ScoreStatus::Recovered => "recovered",
            ScoreStatus::Skeleton => "skeleton",
            ScoreStatus::Detected => "detected",
            ScoreStatus::PartitionOnly => "partition-only",
            ScoreStatus::NotApplicable => "not-applicable",
            ScoreStatus::Failed => "failed",
            ScoreStatus::Wrong => "WRONG",
        }
    }
}

/// One scoreboard cell.
#[derive(Debug, Clone)]
pub struct ToolScore {
    /// The tool that produced the cell.
    pub tool: ToolId,
    /// Outcome classification.
    pub status: ScoreStatus,
    /// Pair measurements the tool spent.
    pub measurements: u64,
    /// Simulated seconds the tool spent (deterministic, unlike wall time).
    pub sim_seconds: f64,
    /// Free-form deterministic detail (error reason, notes).
    pub detail: String,
}

/// One scoreboard row: a scenario and every tool's score on it.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// The scenario.
    pub scenario: Scenario,
    /// Scores in [`ToolId::ALL`] order.
    pub scores: Vec<ToolScore>,
    /// DRAMDig's per-phase measurement counts (empty when it failed).
    pub dramdig_phases: Vec<(String, u64)>,
}

impl ScenarioRow {
    /// The score of one tool.
    pub fn score(&self, tool: ToolId) -> &ToolScore {
        self.scores
            .iter()
            .find(|s| s.tool == tool)
            .expect("every row scores every tool")
    }
}

/// The differential-gate verdict over a finished grid.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// One line per violated expectation; empty means the gate passed.
    pub failures: Vec<String>,
}

impl GateReport {
    /// `true` when every expectation held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// A finished scenario-matrix evaluation.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// The grid preset that ran.
    pub kind: GridKind,
    /// The grid seed.
    pub seed: u64,
    /// The observable channels DRAMDig ran with (the gate's expectations
    /// depend on them).
    pub observables: Vec<ObservableKind>,
    /// One row per scenario, in index order.
    pub rows: Vec<ScenarioRow>,
}

/// Per-tool counts across a finished grid (for summaries and the perf
/// trajectory).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ToolCounts {
    /// Full recoveries.
    pub recovered: usize,
    /// Linear-skeleton recoveries on row-remapped machines.
    pub skeleton: usize,
    /// Loud refusals on out-of-scope machines.
    pub detected: usize,
    /// Bank-partition-only recoveries.
    pub partition_only: usize,
    /// Not-applicable verdicts.
    pub not_applicable: usize,
    /// Failures.
    pub failed: usize,
    /// Wrong mappings (must stay zero for DRAMDig).
    pub wrong: usize,
    /// Total pair measurements across all scenarios.
    pub measurements: u64,
}

impl EvalOutcome {
    /// Counts one tool's outcomes across the grid.
    pub fn counts(&self, tool: ToolId) -> ToolCounts {
        let mut counts = ToolCounts::default();
        for row in &self.rows {
            let score = row.score(tool);
            match score.status {
                ScoreStatus::Recovered => counts.recovered += 1,
                ScoreStatus::Skeleton => counts.skeleton += 1,
                ScoreStatus::Detected => counts.detected += 1,
                ScoreStatus::PartitionOnly => counts.partition_only += 1,
                ScoreStatus::NotApplicable => counts.not_applicable += 1,
                ScoreStatus::Failed => counts.failed += 1,
                ScoreStatus::Wrong => counts.wrong += 1,
            }
            counts.measurements += score.measurements;
        }
        counts
    }

    /// Whether the flip-adjacency channel was active in this evaluation.
    pub fn flip_adjacency_active(&self) -> bool {
        self.observables.contains(&ObservableKind::FlipAdjacency)
    }

    /// The differential gate: DRAMDig must recover every in-scope scenario,
    /// detect every wide-function scenario and produce the skeleton on every
    /// row-remap scenario — or, when the flip-adjacency channel ran, recover
    /// the remap mask itself. No tool may ever score `WRONG` silently — for
    /// DRAMDig it gates, for baselines it is reported.
    pub fn gate(&self) -> GateReport {
        let mut report = GateReport::default();
        let remap_expectation = if self.flip_adjacency_active() {
            ScoreStatus::Recovered
        } else {
            ScoreStatus::Skeleton
        };
        for row in &self.rows {
            let score = row.score(ToolId::DramDig);
            let expected = match row.scenario.machine.class {
                MachineClass::InScope => ScoreStatus::Recovered,
                MachineClass::WideFunction => ScoreStatus::Detected,
                MachineClass::RowRemap => remap_expectation,
            };
            if score.status != expected {
                report.failures.push(format!(
                    "{} [{}]: dramdig scored {} (expected {}): {}",
                    row.scenario.id(),
                    row.scenario.machine.axes_summary(),
                    score.status.as_str(),
                    expected.as_str(),
                    score.detail,
                ));
            }
        }
        report
    }

    /// Renders the deterministic scoreboard artifact.
    pub fn render_scoreboard(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {SCOREBOARD_SCHEMA}");
        let _ = writeln!(out, "grid = {}", self.kind);
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(out, "scenarios = {}", self.rows.len());
        let tools: Vec<&str> = ToolId::ALL.iter().map(|t| t.as_str()).collect();
        let _ = writeln!(out, "tools = {}", tools.join(", "));
        // Printed only for non-default channel sets: the timing-only
        // scoreboard must stay byte-identical to pre-observable artifacts.
        if self.observables.as_slice() != [ObservableKind::ConflictTiming] {
            let names: Vec<&str> = self.observables.iter().map(|k| k.as_str()).collect();
            let _ = writeln!(out, "observables = {}", names.join(", "));
        }
        for row in &self.rows {
            let s = &row.scenario;
            let _ = writeln!(out);
            let _ = writeln!(out, "[scenario {}]", s.id());
            let _ = writeln!(out, "machine = {}", s.machine.label);
            let _ = writeln!(out, "axes = {}", s.machine.axes_summary());
            let _ = writeln!(out, "noise = {}", s.noise.as_str());
            let _ = writeln!(out, "truth = {}", s.machine.mapping());
            for score in &row.scores {
                let _ = writeln!(
                    out,
                    "{} = {} | measurements {} | sim_s {:.6}{}",
                    score.tool,
                    score.status.as_str(),
                    score.measurements,
                    score.sim_seconds,
                    if score.detail.is_empty() {
                        String::new()
                    } else {
                        format!(" | {}", score.detail)
                    },
                );
            }
            if !row.dramdig_phases.is_empty() {
                let phases: Vec<String> = row
                    .dramdig_phases
                    .iter()
                    .map(|(name, m)| format!("{name} {m}"))
                    .collect();
                let _ = writeln!(out, "dramdig_phases = {}", phases.join(", "));
            }
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "[summary]");
        let in_scope = self
            .rows
            .iter()
            .filter(|r| r.scenario.machine.class == MachineClass::InScope)
            .count();
        let _ = writeln!(out, "in_scope = {in_scope}");
        let _ = writeln!(out, "out_of_scope = {}", self.rows.len() - in_scope);
        for tool in ToolId::ALL {
            let c = self.counts(tool);
            let _ = writeln!(
                out,
                "{} = recovered {} | skeleton {} | detected {} | partition-only {} | not-applicable {} | failed {} | wrong {} | measurements {}",
                tool,
                c.recovered,
                c.skeleton,
                c.detected,
                c.partition_only,
                c.not_applicable,
                c.failed,
                c.wrong,
                c.measurements,
            );
        }
        let gate = self.gate();
        for failure in &gate.failures {
            let _ = writeln!(out, "gate_failure = {failure}");
        }
        let _ = writeln!(
            out,
            "gate = {}",
            if gate.passed() { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// FNV-1a 64-bit fingerprint of a rendered scoreboard — the compact hash
/// the longitudinal history stores per run so byte-level drift in a
/// re-rendered board is caught without committing every full artifact.
pub fn board_fingerprint(scoreboard: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in scoreboard.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Encodes a finished evaluation as one stable history line. The part
/// before the first `|` is the run's identity key (grid, seed, observable
/// channels); the rest records the gate verdict, the board fingerprint and
/// per-tool outcome counts. Every field is deterministic for a given tree,
/// so re-running the same key must reproduce the line byte-for-byte.
pub fn history_line(outcome: &EvalOutcome) -> String {
    let names: Vec<&str> = outcome.observables.iter().map(|k| k.as_str()).collect();
    let mut line = format!(
        "grid={} seed={} observables={} | gate={} scenarios={} board=fnv1a:{:016x}",
        outcome.kind,
        outcome.seed,
        names.join("+"),
        if outcome.gate().passed() {
            "PASS"
        } else {
            "FAIL"
        },
        outcome.rows.len(),
        board_fingerprint(&outcome.render_scoreboard()),
    );
    for tool in ToolId::ALL {
        let c = outcome.counts(tool);
        let _ = write!(
            line,
            " | {tool} recovered={} skeleton={} detected={} partition_only={} not_applicable={} failed={} wrong={} measurements={}",
            c.recovered,
            c.skeleton,
            c.detected,
            c.partition_only,
            c.not_applicable,
            c.failed,
            c.wrong,
            c.measurements,
        );
    }
    line
}

/// The identity key of a history line: everything before the first `|`.
pub fn history_key(line: &str) -> &str {
    line.split('|').next().unwrap_or(line).trim()
}

/// The deterministic end-of-run summary printed to stderr by `dramdig
/// eval`. Built entirely from simulated seconds — the sum every row's
/// scoreboard already records — so the line is byte-identical across
/// re-runs and worker counts, unlike the wall-clock line it replaced.
pub fn summary_line(outcome: &EvalOutcome) -> String {
    let sim_seconds: f64 = outcome
        .rows
        .iter()
        .flat_map(|row| row.scores.iter())
        .map(|score| score.sim_seconds)
        .sum();
    format!(
        "[dramdig] eval grid `{}` ({} scenarios x {} tools) spent {:.1} s simulated",
        outcome.kind,
        outcome.rows.len(),
        ToolId::ALL.len(),
        sim_seconds,
    )
}

/// Reassembles a finished evaluation into a span trace: one
/// [`SpanKind::EvalCell`] per (scenario, tool) cell on a virtual serial
/// timeline, inside one [`SpanKind::Run`] span.
///
/// The assembly is **post-hoc** on purpose: cells finish in nondeterministic
/// pool order, so instead of recording during the drain the trace is built
/// from the already-sorted rows, clocked on each cell's simulated seconds.
/// The resulting bytes are a pure function of the outcome — same guarantee
/// as the scoreboard, so CI can `cmp` two same-seed traces.
pub fn outcome_tracer(outcome: &EvalOutcome) -> Tracer {
    let mut tracer = Tracer::new();
    let run = tracer.begin_with(
        SpanKind::Run,
        &format!("eval-{}", outcome.kind),
        &[
            ("seed", outcome.seed),
            ("scenarios", outcome.rows.len() as u64),
        ],
    );
    for row in &outcome.rows {
        for score in &row.scores {
            let span = tracer.begin_with(
                SpanKind::EvalCell,
                &format!("{}/{}", row.scenario.id(), score.tool),
                &[("measurements", score.measurements)],
            );
            // sim_seconds was derived from integer nanoseconds; the
            // round-trip back is exact for any realistic run length.
            tracer.advance_ns((score.sim_seconds * 1e9).round() as u64);
            tracer.end(span);
        }
    }
    tracer.end_with(
        run,
        &[(
            "measurements",
            ToolId::ALL
                .iter()
                .map(|&t| outcome.counts(t).measurements)
                .sum(),
        )],
    );
    tracer
}

/// Folds a finished evaluation into metrics: per-tool outcome counters and
/// measurement totals. Merge with the registry filled by
/// [`run_grid_metered`] to add the worker-pool counters.
pub fn outcome_metrics(outcome: &EvalOutcome) -> Registry {
    let mut metrics = Registry::new();
    metrics.counter_add(
        "eval_cells_total",
        (outcome.rows.len() * ToolId::ALL.len()) as u64,
    );
    for tool in ToolId::ALL {
        let c = outcome.counts(tool);
        let name = tool.as_str();
        metrics.counter_add(&format!("eval_{name}_measurements"), c.measurements);
        for (status, count) in [
            ("recovered", c.recovered),
            ("skeleton", c.skeleton),
            ("detected", c.detected),
            ("partition_only", c.partition_only),
            ("not_applicable", c.not_applicable),
            ("failed", c.failed),
            ("wrong", c.wrong),
        ] {
            metrics.counter_add(&format!("eval_{name}_{status}"), count as u64);
        }
    }
    metrics
}

/// Appends a run to the longitudinal history under the regression gate: a
/// key that was recorded before must reproduce its line byte-for-byte.
/// Returns `Ok(None)` when the history already holds the identical line
/// (nothing to write), `Ok(Some(updated))` with the new file contents when
/// the key is new, and `Err` describing the drift when the same key re-ran
/// to a different board or counts. Blank lines and `#` comments in the
/// existing history are preserved and ignored by the gate.
pub fn append_history(existing: &str, line: &str) -> Result<Option<String>, String> {
    let line = line.trim();
    let key = history_key(line);
    for prior in existing.lines() {
        let prior = prior.trim();
        if prior.is_empty() || prior.starts_with('#') {
            continue;
        }
        if history_key(prior) == key {
            if prior == line {
                return Ok(None);
            }
            return Err(format!(
                "history regression for `{key}`:\n  recorded: {prior}\n  current:  {line}"
            ));
        }
    }
    let mut updated = existing.to_string();
    if !updated.is_empty() && !updated.ends_with('\n') {
        updated.push('\n');
    }
    updated.push_str(line);
    updated.push('\n');
    Ok(Some(updated))
}

/// Parses the `gate = PASS|FAIL` verdict out of a rendered scoreboard (the
/// regression check CI and tests run against stored artifacts).
pub fn parse_gate(scoreboard: &str) -> Option<bool> {
    scoreboard
        .lines()
        .rev()
        .find_map(|line| match line.trim().strip_prefix("gate = ") {
            Some("PASS") => Some(true),
            Some("FAIL") => Some(false),
            _ => None,
        })
}

/// The DRAMDig configuration the evaluation runs: the optimized profile with
/// test-sized calibration/validation budgets.
pub fn eval_dramdig_config(tool_seed: u64) -> DramDigConfig {
    DramDigConfig {
        calibration_samples: 200,
        validation_samples: 32,
        ..DramDigConfig::optimized().with_seed(tool_seed)
    }
}

/// The DRAMA configuration the evaluation runs: the `fast` profile trimmed
/// further so a 24-scenario grid stays within CI seconds.
pub fn eval_drama_config(tool_seed: u64) -> DramaConfig {
    DramaConfig {
        pool_size: 1200,
        sets_to_collect: 128,
        target_coverage: 0.75,
        measurement_budget: 400_000,
        rng_seed: tool_seed,
        ..DramaConfig::fast()
    }
}

/// The seed of the flip-adjacency channel's own simulated module for a
/// scenario (the channel never reuses the timing probe's machine, so the
/// timing measurement stream is untouched by hammering).
pub fn flip_sim_seed(scenario: &Scenario) -> u64 {
    mix(scenario.sim_seed, 0xF11A)
}

fn score_dramdig(
    scenario: &Scenario,
    observables: &[ObservableKind],
) -> (ToolScore, Vec<(String, u64)>) {
    let mut probe = scenario.probe();
    let knowledge = DomainKnowledge::for_generated(&scenario.machine);
    let config = eval_dramdig_config(scenario.tool_seed);
    let result = if observables.contains(&ObservableKind::FlipAdjacency) {
        let knowledge = knowledge.with_observables(observables.to_vec());
        let mut flip =
            FlipAdjacencyObservable::for_generated(&scenario.machine, flip_sim_seed(scenario));
        PipelineEngine::new(knowledge, config).run_with_observables(
            &mut probe,
            &EngineOptions::default(),
            &mut NullObserver,
            &mut [&mut flip],
        )
    } else {
        DramDig::new(knowledge, config).run(&mut probe)
    };
    let stats = probe.stats();
    let truth = scenario.machine.mapping();
    let (status, detail, phases) = match (&result, scenario.machine.class) {
        (Ok(r), MachineClass::InScope) if r.mapping.equivalent_to(truth) => {
            (ScoreStatus::Recovered, String::new(), phase_list(r))
        }
        (Ok(r), MachineClass::RowRemap) if r.mapping.equivalent_to(truth) => {
            score_row_remap(scenario, r)
        }
        (Ok(r), MachineClass::WideFunction) if r.mapping.equivalent_to(truth) => (
            ScoreStatus::Recovered,
            "unexpectedly recovered a wide function".to_string(),
            phase_list(r),
        ),
        (Ok(r), _) => (
            ScoreStatus::Wrong,
            format!("returned {}", r.mapping),
            phase_list(r),
        ),
        (Err(e), MachineClass::WideFunction) => (ScoreStatus::Detected, e.to_string(), Vec::new()),
        (Err(e), _) => (ScoreStatus::Failed, e.to_string(), Vec::new()),
    };
    (
        ToolScore {
            tool: ToolId::DramDig,
            status,
            measurements: stats.measurements,
            sim_seconds: stats.elapsed_ns as f64 / 1e9,
            detail,
        },
        phases,
    )
}

fn phase_list(report: &dramdig::RunReport) -> Vec<(String, u64)> {
    report
        .phase_costs
        .iter()
        .map(|(phase, cost)| (phase.name().to_string(), cost.measurements))
        .collect()
}

/// Scores a row-remap scenario whose linear skeleton already matched the
/// ground truth. Timing alone can only claim the skeleton; when the
/// flip-adjacency channel ran, the recovered mask must equal the
/// generator's (canonical under reflection — a mask and its mirror are
/// physically the same machine).
fn score_row_remap(
    scenario: &Scenario,
    report: &dramdig::RunReport,
) -> (ScoreStatus, String, Vec<(String, u64)>) {
    let phases = phase_list(report);
    let flip_ran = report
        .observable_costs
        .iter()
        .any(|(kind, _)| *kind == ObservableKind::FlipAdjacency);
    if !flip_ran {
        return (
            ScoreStatus::Skeleton,
            "row remap unobservable from timing; linear skeleton recovered".to_string(),
            phases,
        );
    }
    let truth = scenario
        .machine
        .row_remap
        .as_ref()
        .map(|r| RowRemap::canonical_mask(r.xor_mask, scenario.machine.mapping().num_rows()))
        .filter(|&mask| mask != 0);
    let hammer_pairs: u64 = report
        .observable_costs
        .iter()
        .map(|(_, cost)| cost.hammer_pairs)
        .sum();
    match (report.row_remap, truth) {
        (Some(got), Some(want)) if got == want => (
            ScoreStatus::Recovered,
            format!(
                "row remap {got:#x} recovered via flip adjacency ({hammer_pairs} hammer pairs)"
            ),
            phases,
        ),
        (None, None) => (
            ScoreStatus::Recovered,
            "row remap is a pure mirror of the row line; skeleton already exact".to_string(),
            phases,
        ),
        (Some(got), want) => (
            ScoreStatus::Wrong,
            format!(
                "flip adjacency claimed row remap {got:#x}, truth is {}",
                want.map_or("none".to_string(), |w| format!("{w:#x}")),
            ),
            phases,
        ),
        (None, Some(want)) => (
            ScoreStatus::Skeleton,
            format!(
                "flip adjacency failed to recover row remap {want:#x} \
                 ({hammer_pairs} hammer pairs spent)"
            ),
            phases,
        ),
    }
}

/// What a full ground-truth match means on this scenario: a true recovery,
/// or — on a row-remapped machine — only the linear skeleton.
fn full_match_status(scenario: &Scenario) -> (ScoreStatus, String) {
    if scenario.machine.class == MachineClass::RowRemap {
        (
            ScoreStatus::Skeleton,
            "row remap unobservable from timing; linear skeleton recovered".to_string(),
        )
    } else {
        (ScoreStatus::Recovered, String::new())
    }
}

/// Classifies a probe-driven baseline outcome and assembles its scoreboard
/// cell; `partition_detail` names what the tool leaves unrecovered when only
/// the bank partition matches.
fn score_probe_baseline(
    tool: ToolId,
    scenario: &Scenario,
    result: &Result<dram_baselines::ToolOutcome, BaselineError>,
    stats: mem_probe::ProbeStats,
    partition_detail: &str,
) -> ToolScore {
    let truth = scenario.machine.mapping();
    let (status, detail) = match result {
        Ok(o) if o.matches(truth) => full_match_status(scenario),
        Ok(o) if o.bank_partition_matches(truth) => {
            (ScoreStatus::PartitionOnly, partition_detail.to_string())
        }
        Ok(_) => (
            ScoreStatus::Wrong,
            "recovered a wrong partition".to_string(),
        ),
        Err(e) => (baseline_status(e), e.to_string()),
    };
    ToolScore {
        tool,
        status,
        measurements: stats.measurements,
        sim_seconds: stats.elapsed_ns as f64 / 1e9,
        detail,
    }
}

fn score_drama(scenario: &Scenario) -> ToolScore {
    let mut probe = scenario.probe();
    let result = Drama::new(eval_drama_config(scenario.tool_seed))
        .run(&mut probe, scenario.machine.system.address_bits());
    score_probe_baseline(
        ToolId::Drama,
        scenario,
        &result,
        probe.stats(),
        "bank partition correct; shared row/column bits unrecovered",
    )
}

fn score_xiao(scenario: &Scenario) -> ToolScore {
    let mut probe = scenario.probe();
    let result = Xiao::new(XiaoConfig {
        rng_seed: scenario.tool_seed,
        ..XiaoConfig::default()
    })
    .run(&mut probe, &scenario.machine.system);
    score_probe_baseline(
        ToolId::Xiao,
        scenario,
        &result,
        probe.stats(),
        "bank partition correct; bit classification incomplete",
    )
}

fn score_seaborn(scenario: &Scenario) -> ToolScore {
    // A small survey keeps the blind-rowhammer cost bounded; on generated
    // machines the published guess never applies, which is the point the
    // scoreboard makes about machine-specific approaches.
    let mut machine = SimMachine::from_generated(&scenario.machine, scenario.sim_config());
    let result = Seaborn::new(SeabornConfig {
        survey_pairs: 12,
        iterations_per_pair: 400,
        rng_seed: scenario.tool_seed,
    })
    .run(&mut machine, Microarch::Skylake);
    let elapsed_ns = machine.controller().elapsed_ns();
    let truth = scenario.machine.mapping();
    let (status, measurements, detail) = match &result {
        Ok(o) if o.matches(truth) => {
            let (status, detail) = full_match_status(scenario);
            (status, o.measurements, detail)
        }
        Ok(o) => (
            ScoreStatus::Wrong,
            o.measurements,
            "published guess does not match this machine".to_string(),
        ),
        Err(e) => (baseline_status(e), 12, e.to_string()),
    };
    ToolScore {
        tool: ToolId::Seaborn,
        status,
        measurements,
        sim_seconds: elapsed_ns as f64 / 1e9,
        detail,
    }
}

fn baseline_status(error: &BaselineError) -> ScoreStatus {
    match error {
        BaselineError::NotApplicable { .. } => ScoreStatus::NotApplicable,
        _ => ScoreStatus::Failed,
    }
}

/// One finished grid cell: the tool's score plus (for DRAMDig) the
/// per-phase measurement counts.
type Cell = (ToolScore, Vec<(String, u64)>);

fn score(scenario: &Scenario, tool: ToolId, observables: &[ObservableKind]) -> Cell {
    match tool {
        ToolId::DramDig => score_dramdig(scenario, observables),
        ToolId::Drama => (score_drama(scenario), Vec::new()),
        ToolId::Xiao => (score_xiao(scenario), Vec::new()),
        ToolId::Seaborn => (score_seaborn(scenario), Vec::new()),
    }
}

/// Runs the grid on the default (timing-only) channel set. Equivalent to
/// [`run_grid_with_observables`] with `[ObservableKind::ConflictTiming]`,
/// and byte-identical to the pre-observable scoreboard.
pub fn run_grid(grid: &EvalGrid, workers: usize) -> EvalOutcome {
    run_grid_with_observables(grid, workers, &[ObservableKind::ConflictTiming])
}

/// Runs the grid: every (scenario, tool) cell is one job on the campaign
/// worker pool, and the cells are reassembled into deterministic row order
/// afterwards, so the scoreboard is byte-identical at any worker count.
///
/// `observables` is the channel set DRAMDig runs with (the baselines are
/// unaffected). Declaring [`ObservableKind::FlipAdjacency`] gives the
/// pipeline a rowhammer channel over each scenario's machine — seeded from
/// the scenario, so the scoreboard stays deterministic — and hardens the
/// gate's row-remap expectation from skeleton to full recovery.
pub fn run_grid_with_observables(
    grid: &EvalGrid,
    workers: usize,
    observables: &[ObservableKind],
) -> EvalOutcome {
    run_grid_hooked(grid, workers, observables, &mut NoHooks)
}

/// Runs the grid like [`run_grid_with_observables`] while counting worker
/// pool activity (queue depth, dequeues, verdicts) into `metrics` through
/// [`campaign::MeteredHooks`]. The counters are order-independent totals,
/// so the snapshot is deterministic at any worker count even though the
/// drain order is not.
pub fn run_grid_metered(
    grid: &EvalGrid,
    workers: usize,
    observables: &[ObservableKind],
    metrics: &mut Registry,
) -> EvalOutcome {
    let depth = grid.scenarios.len() * ToolId::ALL.len();
    let mut hooks = MeteredHooks::new(NoHooks, metrics, depth);
    run_grid_hooked(grid, workers, observables, &mut hooks)
}

fn run_grid_hooked<H>(
    grid: &EvalGrid,
    workers: usize,
    observables: &[ObservableKind],
    hooks: &mut H,
) -> EvalOutcome
where
    H: PoolHooks<(usize, ToolId), Cell, Error = std::convert::Infallible> + Send,
{
    let jobs: Vec<((usize, ToolId), u32)> = grid
        .scenarios
        .iter()
        .flat_map(|s| ToolId::ALL.map(|tool| ((s.index, tool), 1)))
        .collect();
    let drained = match drain_pool(
        jobs,
        &PoolConfig::workers(workers),
        hooks,
        |&(index, tool), _| Ok::<_, String>(score(&grid.scenarios[index], tool, observables)),
    ) {
        Ok(outcome) => outcome,
        Err(infallible) => match infallible {},
    };

    let mut cells: Vec<((usize, ToolId), Cell)> = drained
        .completed
        .into_iter()
        .map(|(key, _, value)| (key, value))
        .collect();
    cells.sort_by_key(|((index, tool), _)| (*index, *tool));

    let rows = grid
        .scenarios
        .iter()
        .map(|scenario| {
            let mut scores = Vec::with_capacity(ToolId::ALL.len());
            let mut dramdig_phases = Vec::new();
            for ((index, tool), (score, phases)) in &cells {
                if *index == scenario.index {
                    scores.push(score.clone());
                    if *tool == ToolId::DramDig {
                        dramdig_phases = phases.clone();
                    }
                }
            }
            ScenarioRow {
                scenario: scenario.clone(),
                scores,
                dramdig_phases,
            }
        })
        .collect();

    EvalOutcome {
        kind: grid.kind,
        seed: grid.seed,
        observables: observables.to_vec(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_expansion_is_deterministic_and_mixes_classes() {
        let a = EvalGrid::new(GridKind::Ci, 1);
        let b = EvalGrid::new(GridKind::Ci, 1);
        assert_eq!(a.scenarios.len(), 24);
        for (x, y) in a.scenarios.iter().zip(&b.scenarios) {
            assert_eq!(x.machine, y.machine);
            assert_eq!(x.sim_seed, y.sim_seed);
        }
        assert_eq!(a.of_class(MachineClass::InScope).count(), 16);
        assert_eq!(a.of_class(MachineClass::WideFunction).count(), 4);
        assert_eq!(a.of_class(MachineClass::RowRemap).count(), 4);
        // A different seed samples different machines.
        let c = EvalGrid::new(GridKind::Ci, 2);
        assert_ne!(a.scenarios[0].machine, c.scenarios[0].machine);
    }

    #[test]
    fn grid_names_round_trip() {
        for kind in GridKind::ALL {
            assert_eq!(GridKind::from_name(kind.as_str()), Some(kind));
        }
        assert_eq!(GridKind::from_name("huge"), None);
        assert!(GridKind::Quick.scenario_count() < GridKind::Ci.scenario_count());
    }

    #[test]
    fn quick_grid_runs_gates_and_renders_deterministically() {
        let grid = EvalGrid::new(GridKind::Quick, 1);
        let outcome = run_grid(&grid, 4);
        assert_eq!(outcome.rows.len(), 8);
        let gate = outcome.gate();
        assert!(gate.passed(), "gate failures: {:?}", gate.failures);

        let board = outcome.render_scoreboard();
        assert!(board.starts_with(&format!("# {SCOREBOARD_SCHEMA}")));
        assert_eq!(parse_gate(&board), Some(true));
        assert!(board.contains("[scenario s00]"));
        assert!(board.contains("dramdig_phases = calibration"));

        // Byte-identical across runs and worker counts.
        let again = run_grid(&grid, 1);
        assert_eq!(again.render_scoreboard(), board);

        // The telemetry artifacts inherit the same guarantee: the trace,
        // metrics and stderr summary are pure functions of the outcome.
        assert_eq!(
            outcome_tracer(&outcome).chrome_trace(),
            outcome_tracer(&again).chrome_trace()
        );
        assert_eq!(
            outcome_metrics(&outcome).snapshot(),
            outcome_metrics(&again).snapshot()
        );
        assert_eq!(summary_line(&outcome), summary_line(&again));
        assert!(summary_line(&outcome).ends_with("s simulated"));
        let trace = outcome_tracer(&outcome).chrome_trace();
        assert!(trace.contains("\"cat\":\"eval_cell\""));
        assert!(trace.contains("\"name\":\"s00/dramdig\""));
        let metrics = outcome_metrics(&outcome);
        assert_eq!(metrics.counter("eval_cells_total"), 32);
        assert_eq!(
            metrics.counter("eval_dramdig_measurements"),
            outcome.counts(ToolId::DramDig).measurements
        );

        // DRAMDig never scores wrong; its counts line up with the classes.
        let c = outcome.counts(ToolId::DramDig);
        assert_eq!(c.wrong, 0);
        assert_eq!(c.recovered, grid.of_class(MachineClass::InScope).count());
        assert_eq!(
            c.detected,
            grid.of_class(MachineClass::WideFunction).count()
        );
        assert_eq!(c.skeleton, grid.of_class(MachineClass::RowRemap).count());
    }

    #[test]
    fn metered_grid_matches_plain_grid_and_counts_the_pool() {
        let grid = EvalGrid::new(GridKind::Quick, 1);
        let mut metrics = Registry::new();
        let metered = run_grid_metered(&grid, 4, &[ObservableKind::ConflictTiming], &mut metrics);
        // Metering only observes: the scoreboard must be byte-identical to
        // the unmetered run's.
        assert_eq!(
            metered.render_scoreboard(),
            run_grid(&grid, 4).render_scoreboard()
        );
        assert_eq!(metrics.gauge("pool_queue_depth"), 32);
        assert_eq!(metrics.counter("pool_dequeued_total"), 32);
        assert_eq!(metrics.counter("pool_completed_total"), 32);
        assert_eq!(metrics.counter("pool_dead_total"), 0);
    }

    #[test]
    fn history_codec_is_stable_and_gates_regressions() {
        let grid = EvalGrid::new(GridKind::Quick, 1);
        let outcome = run_grid(&grid, 4);
        let line = history_line(&outcome);
        assert!(
            line.starts_with(
                "grid=quick seed=1 observables=timing | gate=PASS scenarios=8 board=fnv1a:"
            ),
            "unexpected codec prefix: {line}"
        );
        assert_eq!(
            line,
            history_line(&run_grid(&grid, 1)),
            "the codec must be deterministic across runs and worker counts"
        );

        // A new key appends below preserved comments; the identical re-run
        // is a no-op; a drifted board for the same key is a regression.
        let history = append_history("# longitudinal scoreboard history\n", &line)
            .unwrap()
            .expect("a new key must append");
        assert!(history.starts_with("# longitudinal"));
        assert!(history.ends_with(&format!("{line}\n")));
        assert_eq!(append_history(&history, &line).unwrap(), None);
        let drifted = line.replace("board=fnv1a:", "board=fnv1a:f");
        let err = append_history(&history, &drifted).unwrap_err();
        assert!(err.contains("history regression"), "got: {err}");
        // A different key coexists with the recorded one.
        let other_seed = line.replace("seed=1", "seed=2");
        assert!(append_history(&history, &other_seed).unwrap().is_some());
    }

    #[test]
    fn every_ci_row_remap_scenario_recovers_via_flip_adjacency() {
        // The tentpole's end-to-end claim: on the CI grid, every machine of
        // the row-remap class — unrecoverable from timing alone — yields its
        // exact remap mask once the flip-adjacency channel is declared,
        // while the timing measurement stream stays untouched.
        let grid = EvalGrid::new(GridKind::Ci, 1);
        let both = [
            ObservableKind::ConflictTiming,
            ObservableKind::FlipAdjacency,
        ];
        let mut checked = 0;
        for scenario in grid.of_class(MachineClass::RowRemap) {
            let (combined, _) = score_dramdig(scenario, &both);
            assert_eq!(
                combined.status,
                ScoreStatus::Recovered,
                "{} [{}]: {}",
                scenario.id(),
                scenario.machine.axes_summary(),
                combined.detail
            );
            let (timing, _) = score_dramdig(scenario, &[ObservableKind::ConflictTiming]);
            assert_eq!(timing.status, ScoreStatus::Skeleton);
            assert_eq!(
                timing.measurements, combined.measurements,
                "hammering must not perturb the timing channel"
            );
            checked += 1;
        }
        assert_eq!(checked, 4);
    }

    #[test]
    fn combined_observables_harden_the_gate_and_mark_the_scoreboard() {
        let grid = EvalGrid::new(GridKind::Quick, 1);
        let timing = run_grid(&grid, 4);
        let both = run_grid_with_observables(
            &grid,
            4,
            &[
                ObservableKind::ConflictTiming,
                ObservableKind::FlipAdjacency,
            ],
        );
        let gate = both.gate();
        assert!(gate.passed(), "gate failures: {:?}", gate.failures);
        let c = both.counts(ToolId::DramDig);
        assert_eq!(c.skeleton, 0, "no scenario may stop at the skeleton");
        assert_eq!(
            c.recovered,
            grid.of_class(MachineClass::InScope).count()
                + grid.of_class(MachineClass::RowRemap).count()
        );

        // The channel set is stamped on the combined scoreboard only; the
        // timing-only artifact is byte-identical to the pre-observable one.
        let board = both.render_scoreboard();
        assert!(board.contains("observables = timing, flip-adjacency"));
        assert!(!timing.render_scoreboard().contains("observables ="));
        for (t, b) in timing.rows.iter().zip(&both.rows) {
            assert_eq!(
                t.score(ToolId::DramDig).measurements,
                b.score(ToolId::DramDig).measurements,
                "scenario {}: timing spend must not change",
                t.scenario.id()
            );
        }

        // Downgrading the recovery back to a skeleton now fails the gate.
        let mut sabotaged = both.clone();
        let row = sabotaged
            .rows
            .iter_mut()
            .find(|r| r.scenario.machine.class == MachineClass::RowRemap)
            .unwrap();
        let score = row
            .scores
            .iter_mut()
            .find(|s| s.tool == ToolId::DramDig)
            .unwrap();
        score.status = ScoreStatus::Skeleton;
        assert!(!sabotaged.gate().passed());
    }

    #[test]
    fn gate_flags_a_missing_recovery() {
        let grid = EvalGrid::new(GridKind::Quick, 1);
        let mut outcome = run_grid(&grid, 4);
        // Sabotage one in-scope row.
        let row = outcome
            .rows
            .iter_mut()
            .find(|r| r.scenario.machine.class == MachineClass::InScope)
            .unwrap();
        let score = row
            .scores
            .iter_mut()
            .find(|s| s.tool == ToolId::DramDig)
            .unwrap();
        score.status = ScoreStatus::Failed;
        score.detail = "injected".into();
        let gate = outcome.gate();
        assert!(!gate.passed());
        assert!(gate.failures[0].contains("injected"));
        let board = outcome.render_scoreboard();
        assert_eq!(parse_gate(&board), Some(false));
        assert!(board.contains("gate_failure"));
    }

    #[test]
    fn parse_gate_handles_garbage() {
        assert_eq!(parse_gate(""), None);
        assert_eq!(parse_gate("gate = MAYBE\n"), None);
        assert_eq!(parse_gate("noise\ngate = PASS\n"), Some(true));
    }
}
