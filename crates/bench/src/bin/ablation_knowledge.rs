//! Ablation study (not in the paper, motivated by its Section III-A): how
//! much does each domain-knowledge group contribute to DRAMDig's efficiency
//! and determinism?
//!
//! Four configurations are compared on a representative subset of machine
//! settings: full knowledge, no DDR specifications, no system information,
//! and no empirical observations.
//!
//! ```text
//! cargo run --release -p dramdig-bench --bin ablation_knowledge
//! ```

use dram_model::MachineSetting;
use dramdig::{DomainKnowledge, DramDig, DramDigConfig};
use dramdig_bench::probe_for;

fn main() {
    let settings: Vec<MachineSetting> = [4u8, 7, 2, 6]
        .iter()
        .map(|&n| MachineSetting::by_number(n).expect("setting exists"))
        .collect();
    println!("Ablation — contribution of each domain-knowledge group");
    println!(
        "{:<22} {:<8} {:>10} {:>14} {:>12}",
        "Knowledge", "Setting", "Correct", "Measurements", "Sim time (s)"
    );

    for setting in &settings {
        let variants: Vec<(&str, DomainKnowledge)> = vec![
            (
                "full",
                DomainKnowledge::new(setting.system, Some(setting.microarch)),
            ),
            (
                "no specifications",
                DomainKnowledge::new(setting.system, Some(setting.microarch))
                    .without_specifications(),
            ),
            (
                "no system info",
                DomainKnowledge::new(setting.system, Some(setting.microarch)).without_system_info(),
            ),
            (
                "no empirical",
                DomainKnowledge::new(setting.system, Some(setting.microarch)).without_empirical(),
            ),
        ];
        for (name, knowledge) in variants {
            let mut probe = probe_for(setting, 0xAB1A);
            let mut config = DramDigConfig::fast();
            // Without the spec the validation pass is the only safety net;
            // keep it enabled everywhere for a fair comparison.
            config.validation_samples = 48;
            let result = DramDig::new(knowledge, config).run(&mut probe);
            match result {
                Ok(report) => println!(
                    "{:<22} {:<8} {:>10} {:>14} {:>12.3}",
                    name,
                    setting.label(),
                    if report.mapping.equivalent_to(setting.mapping()) {
                        "yes"
                    } else {
                        "NO"
                    },
                    report.total.measurements,
                    report.elapsed_seconds()
                ),
                Err(e) => println!(
                    "{:<22} {:<8} {:>10}   failed: {e}",
                    name,
                    setting.label(),
                    "-"
                ),
            }
        }
    }
    println!();
    println!("Reading: dropping the DDR specification loses the shared row/column bits on the");
    println!("dual-channel settings; dropping system information (the bank count) removes the");
    println!("pile-count sanity check and the run fails; dropping the empirical observation");
    println!("mis-assigns the lowest bit of the widest bank function on DDR4 dual-rank parts.");
}
