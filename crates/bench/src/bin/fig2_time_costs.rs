//! Regenerates **Figure 2** of the paper: time costs of DRAMDig and DRAMA on
//! the nine machine settings.
//!
//! The plotted quantity is simulated seconds (the simulator advances its
//! clock by the latency of every memory access the tools issue), together
//! with the raw measurement counts that drive it.
//!
//! ```text
//! cargo run --release -p dramdig-bench --bin fig2_time_costs
//! ```

use dram_baselines::{Drama, DramaConfig};
use dram_model::MachineSetting;
use dramdig::DramDigConfig;
use dramdig_bench::{format_duration, probe_for, run_dramdig};

fn main() {
    println!("Figure 2 — time costs to uncover the DRAM mapping (simulated seconds)");
    println!(
        "{:<6} {:<12} {:>14} {:>14} {:>16} {:>16} {:>8}",
        "No.", "Setting", "DRAMDig (s)", "DRAMA (s)", "DRAMDig meas.", "DRAMA meas.", "ratio"
    );
    let mut dramdig_total = 0.0;
    let mut count = 0usize;
    for setting in MachineSetting::all() {
        let dramdig = run_dramdig(&setting, DramDigConfig::default(), 0xF162);
        let mut drama_probe = probe_for(&setting, 0xF162);
        let drama =
            Drama::new(DramaConfig::default()).run(&mut drama_probe, setting.system.address_bits());

        let (dig_s, dig_m) = match &dramdig {
            Ok(r) => (r.elapsed_seconds(), r.total.measurements),
            Err(_) => (f64::NAN, 0),
        };
        let (drama_s, drama_m, drama_note) = match &drama {
            Ok(o) => (o.elapsed_seconds(), o.measurements, ""),
            Err(dram_baselines::BaselineError::Stuck {
                elapsed_ns,
                measurements,
                ..
            }) => (*elapsed_ns as f64 / 1e9, *measurements, " (stuck)"),
            Err(_) => (f64::NAN, 0, " (failed)"),
        };
        if dig_s.is_finite() {
            dramdig_total += dig_s;
            count += 1;
        }
        println!(
            "{:<6} {:<12} {:>10} ({:>4.1}) {:>10} ({:>5.1}) {:>16} {:>16} {:>7.1}x{}",
            setting.label(),
            format!(
                "{} {}GiB",
                setting.system.generation,
                setting.capacity_gib()
            ),
            format_duration(dig_s),
            dig_s,
            format_duration(drama_s),
            drama_s,
            dig_m,
            drama_m,
            drama_s / dig_s,
            drama_note,
        );
    }
    if count > 0 {
        println!();
        println!(
            "DRAMDig average: {:.1} s simulated ({}) across {count} settings",
            dramdig_total / count as f64,
            format_duration(dramdig_total / count as f64)
        );
        println!("Paper reports a 7.8 minute average on real hardware; the shape to compare is");
        println!(
            "the DRAMDig-vs-DRAMA ratio per setting and the dependence on the selected pool size."
        );
    }
}
