//! Emits `BENCH_dramdig.json`: the machine-readable performance trajectory
//! of the reverse-engineering pipeline, comparing the seed-faithful *naive*
//! profile against the *optimized* profile (GF(2) pile-basis verification,
//! cached/batched probing, kernel-decomposition partition) on the paper's
//! machine No.4 plus a sweep over every Table-II setting.
//!
//! ```text
//! cargo run --release -p dramdig-bench --bin bench_json
//! ```
//!
//! The JSON records, per profile, the probe budget (`measure_pair` calls,
//! memory accesses, simulated seconds) per pipeline phase and end-to-end
//! wall time, plus standalone micro-timings of `detect_bank_functions`
//! (naive member-scan vs pile-basis path) and the two partition strategies.
//! A differential check asserts both profiles recover equivalent mappings
//! that match the simulator's ground truth — the binary exits non-zero
//! otherwise, so CI smoke-runs also act as a regression gate.

use std::fmt::Write as _;
use std::time::Instant;

use dram_model::fingerprint::fnv1a64;
use dram_model::gf2::{self, bitslice, Gf2Matrix, PileBasis};
use dram_model::{bits, MachineClass, MachineGen, MachineSetting, PhysAddr, RowRemap, XorFunc};
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::driver::RunReport;
use dramdig::engine::{EngineOptions, NullObserver, PipelineEngine};
use dramdig::functions::{
    detect_bank_functions_naive, detect_bank_functions_with_basis, merged_difference_basis,
};
use dramdig::partition::{partition_decompose, partition_into_piles};
use dramdig::select::select_addresses;
use dramdig::{
    DomainKnowledge, DramDig, DramDigConfig, DramDigError, Phase, RecoveryReport, TelemetryObserver,
};
use dramdig_bench::eval::{flip_sim_seed, run_grid, EvalGrid, GridKind, ToolId};
use dramdig_bench::run_dramdig;
use mem_probe::{ConflictOracle, LatencyCalibration, MemoryProbe, ObservableKind, SimProbe};
use registry::{DiskRegistry, MemRegistry, Record, SharedRegistry, Source};
use rowhammer::FlipAdjacencyObservable;

/// Simulator seed shared by every run so the two profiles face the same
/// machine (noise stream included).
const SIM_SEED: u64 = 0x7AB1E2;

/// Minimum time spent per micro-timing loop, in nanoseconds.
const MICRO_BUDGET_NS: u128 = 50_000_000;

struct ProfileRun {
    report: RunReport,
    wall_ms: f64,
}

fn run_profile(
    setting: &MachineSetting,
    config: DramDigConfig,
) -> Result<ProfileRun, DramDigError> {
    let start = Instant::now();
    let report = run_dramdig(setting, config, SIM_SEED)?;
    Ok(ProfileRun {
        report,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    })
}

fn oracle_for(setting: &MachineSetting) -> ConflictOracle<SimProbe> {
    let machine = SimMachine::from_setting(setting, SimConfig::default().with_seed(SIM_SEED));
    let threshold = machine.controller().config().timing.oracle_threshold_ns();
    let probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
    ConflictOracle::new(probe, LatencyCalibration::from_threshold(threshold))
}

/// Deterministic pseudo-random values (SplitMix64), masked to `mask`.
fn splitmix_values(seed: u64, count: usize, mask: u64) -> Vec<u64> {
    let mut state = seed;
    (0..count)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) & mask
        })
        .collect()
}

/// Times `f` repeatedly until the budget is spent; returns ns per call.
fn time_per_call<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut reps: u64 = 0;
    let start = Instant::now();
    loop {
        std::hint::black_box(f());
        reps += 1;
        if start.elapsed().as_nanos() >= MICRO_BUDGET_NS && reps >= 10 {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / reps as f64
}

fn profile_json(out: &mut String, indent: &str, run: &ProfileRun) {
    let r = &run.report;
    let _ = writeln!(out, "{indent}\"wall_ms\": {:.3},", run.wall_ms);
    let _ = writeln!(
        out,
        "{indent}\"measure_pair_calls\": {},",
        r.total.measurements
    );
    let _ = writeln!(out, "{indent}\"memory_accesses\": {},", r.total.accesses);
    let _ = writeln!(
        out,
        "{indent}\"simulated_seconds\": {:.6},",
        r.total.elapsed_seconds()
    );
    let _ = writeln!(out, "{indent}\"cache_hits\": {},", r.total.cache_hits);
    let _ = writeln!(out, "{indent}\"cache_misses\": {},", r.total.cache_misses);
    let _ = writeln!(out, "{indent}\"phases\": {{");
    for (i, (phase, cost)) in r.phase_costs.iter().enumerate() {
        let comma = if i + 1 == r.phase_costs.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            out,
            "{indent}  \"{}\": {{\"measure_pair_calls\": {}, \"accesses\": {}, \"simulated_seconds\": {:.6}, \"cache_hits\": {}}}{comma}",
            phase.name(),
            cost.measurements,
            cost.accesses,
            cost.elapsed_seconds(),
            cost.cache_hits,
        );
    }
    let _ = writeln!(out, "{indent}}}");
}

fn main() {
    let setting = MachineSetting::no4_haswell_ddr3_4g();

    // --- End-to-end pipeline, both profiles --------------------------------
    let naive = run_profile(&setting, DramDigConfig::naive()).unwrap_or_else(|e| {
        eprintln!("naive pipeline failed on {}: {e}", setting.label());
        std::process::exit(1);
    });
    let fast = run_profile(&setting, DramDigConfig::optimized()).unwrap_or_else(|e| {
        eprintln!("optimized pipeline failed on {}: {e}", setting.label());
        std::process::exit(1);
    });

    // Differential gate: both profiles must recover the ground-truth mapping
    // and agree with each other.
    let truth_ok = naive.report.mapping.equivalent_to(setting.mapping())
        && fast.report.mapping.equivalent_to(setting.mapping());
    let profiles_agree = naive.report.mapping.equivalent_to(&fast.report.mapping);
    if !truth_ok || !profiles_agree {
        eprintln!(
            "differential check failed: truth_ok={truth_ok} profiles_agree={profiles_agree}\n  naive: {}\n  fast:  {}",
            naive.report.mapping, fast.report.mapping
        );
        std::process::exit(1);
    }
    let measurement_reduction =
        naive.report.total.measurements as f64 / fast.report.total.measurements.max(1) as f64;

    // --- Standalone detect_bank_functions micro-benchmark ------------------
    // Same inputs the two pipelines actually feed to Algorithm 3: the
    // exhaustive piles for the naive scan, the decomposition piles plus the
    // pre-learned kernel basis for the fast path.
    let bank_bits = setting.mapping().bank_function_bits();
    let banks = setting.system.total_banks();
    let cfg = DramDigConfig::default();

    let mut oracle = oracle_for(&setting);
    let pool = select_addresses(oracle.probe().memory(), &bank_bits, None).unwrap();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(cfg.rng_seed);
    let naive_partition =
        partition_into_piles(&mut oracle, &pool.addresses, banks, &cfg, &mut rng).unwrap();
    let naive_partition_measurements = oracle.stats().measurements;

    let mut oracle2 = oracle_for(&setting);
    let mut rng2 = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(cfg.rng_seed);
    let fast_partition =
        partition_decompose(&mut oracle2, &pool.addresses, banks, &cfg, &mut rng2).unwrap();
    let fast_partition_measurements = oracle2.stats().measurements;
    let kernel = fast_partition
        .kernel
        .clone()
        .expect("decompose sets kernel");

    let naive_detect_ns = time_per_call(|| {
        detect_bank_functions_naive(&naive_partition.piles, &bank_bits, banks, &cfg).unwrap()
    });
    let fast_detect_ns = time_per_call(|| {
        detect_bank_functions_with_basis(&kernel, &fast_partition.piles, &bank_bits, banks, &cfg)
            .unwrap()
    });
    // Rebuilding the merged basis from scratch (what detect_bank_functions
    // does when no kernel was learned) is reported separately.
    let fast_detect_with_build_ns = time_per_call(|| {
        let basis = merged_difference_basis(&fast_partition.piles);
        detect_bank_functions_with_basis(&basis, &fast_partition.piles, &bank_bits, banks, &cfg)
            .unwrap()
    });
    let detect_speedup = naive_detect_ns / fast_detect_ns;

    let naive_detected =
        detect_bank_functions_naive(&naive_partition.piles, &bank_bits, banks, &cfg).unwrap();
    let fast_detected =
        detect_bank_functions_with_basis(&kernel, &fast_partition.piles, &bank_bits, banks, &cfg)
            .unwrap();
    if naive_detected.functions != fast_detected.functions {
        eprintln!("differential check failed: detect paths disagree on recovered functions");
        std::process::exit(1);
    }

    // --- Bitsliced GF(2) kernel micro-benchmarks ---------------------------
    // The word-parallel kernels behind the full-grid speedup, timed on the
    // workloads their real call sites feed them and pinned element-wise to
    // the scalar twins they replaced. Both hot kernels carry an 8x
    // throughput floor; a shortfall or any differential mismatch exits
    // non-zero so CI smoke-runs gate the optimisation, not just correctness.
    let kernel_setting = MachineSetting::no6_skylake_ddr4_16g();
    let kernel_mapping = kernel_setting.mapping().clone();
    let address_bits = kernel_setting.system.address_bits();
    let addr_mask = u64::MAX >> (64 - u32::from(address_bits));

    // Coset reduction: the Decompose inner loop — reduce a batch of pool
    // addresses against the difference basis of a same-bank pile.
    let kernel_pool = splitmix_values(0x5EED, 4096, addr_mask);
    let pile_bank = kernel_mapping.bank_of(PhysAddr::new(kernel_pool[0]));
    let pile_basis = PileBasis::from_members(
        kernel_pool[0],
        kernel_pool
            .iter()
            .copied()
            .filter(|&a| kernel_mapping.bank_of(PhysAddr::new(a)) == pile_bank),
    );
    let reduce_values = splitmix_values(0xB17E, 4096, addr_mask);
    let scalar_reduced: Vec<u64> = reduce_values
        .iter()
        .map(|&v| pile_basis.reduce(v))
        .collect();
    if pile_basis.reduce_batch(&reduce_values) != scalar_reduced {
        eprintln!("differential check failed: reduce_batch disagrees with per-value reduce");
        std::process::exit(1);
    }
    let reduce_scalar_ns = time_per_call(|| {
        reduce_values
            .iter()
            .map(|&v| pile_basis.reduce(std::hint::black_box(v)))
            .fold(0u64, |acc, r| acc ^ r)
    });
    let reduce_batch_ns = time_per_call(|| pile_basis.reduce_batch(&reduce_values));
    let reduce_speedup = reduce_scalar_ns / reduce_batch_ns;

    // Low-weight mask search: DRAMA's seed inner loop tested every
    // C(n, <=6) candidate against the set's difference basis one mask at a
    // time; the fast path walks the (tiny) nullspace span instead.
    let candidate_bits: Vec<u8> = (6..address_bits).collect();
    let sweep_masks = bits::gen_xor_masks(&candidate_bits, 6);
    let mut sweep_survivors: Vec<u64> = sweep_masks
        .iter()
        .copied()
        .filter(|&m| pile_basis.mask_constant(m))
        .collect();
    let gathered: Vec<u64> = pile_basis
        .rows()
        .iter()
        .map(|&row| bits::gather_bits(row, &candidate_bits))
        .collect();
    let complement = gf2::nullspace_basis(&gathered, candidate_bits.len());
    let mut walk_survivors: Vec<u64> = bitslice::span_survivors(&complement, 6)
        .into_iter()
        .map(|v| bits::scatter_bits(v, &candidate_bits))
        .collect();
    sweep_survivors.sort_unstable();
    walk_survivors.sort_unstable();
    if sweep_survivors != walk_survivors {
        eprintln!(
            "differential check failed: span walk found {} low-weight masks, full sweep {}",
            walk_survivors.len(),
            sweep_survivors.len()
        );
        std::process::exit(1);
    }
    let span_sweep_ns = time_per_call(|| {
        sweep_masks
            .iter()
            .filter(|&&m| pile_basis.mask_constant(std::hint::black_box(m)))
            .count()
    });
    let span_walk_ns = time_per_call(|| {
        let complement =
            gf2::nullspace_basis(std::hint::black_box(&gathered), candidate_bits.len());
        bitslice::span_survivors(&complement, 6).len()
    });
    let span_speedup = span_sweep_ns / span_walk_ns;

    if reduce_speedup < 8.0 || span_speedup < 8.0 {
        eprintln!(
            "gf2 kernel throughput gate failed: coset reduce {reduce_speedup:.1}x, \
             span walk {span_speedup:.1}x (both must be >= 8x over the scalar twins)"
        );
        std::process::exit(1);
    }

    // RREF dedup keys (MappingStore): cold path, recorded without a
    // throughput floor — the inputs are a handful of tiny matrices.
    let rref_rows: Vec<Vec<u64>> = (1..=9u8)
        .map(|n| {
            MachineSetting::by_number(n)
                .unwrap()
                .mapping()
                .bank_funcs()
                .iter()
                .map(|f| f.mask())
                .collect()
        })
        .collect();
    for rows in &rref_rows {
        if bitslice::reduced_row_basis(rows)
            != Gf2Matrix::from_rows(rows.clone()).reduced_row_basis()
        {
            eprintln!("differential check failed: bitsliced RREF disagrees with scalar matrix");
            std::process::exit(1);
        }
    }
    let rref_scalar_ns = time_per_call(|| {
        rref_rows
            .iter()
            .map(|r| {
                Gf2Matrix::from_rows(std::hint::black_box(r).clone())
                    .reduced_row_basis()
                    .len()
            })
            .sum::<usize>()
    });
    let rref_bitsliced_ns = time_per_call(|| {
        rref_rows
            .iter()
            .map(|r| bitslice::reduced_row_basis(std::hint::black_box(r)).len())
            .sum::<usize>()
    });

    // --- Table-II sweep with the optimized profile -------------------------
    let mut sweep = String::new();
    let all = MachineSetting::all();
    for (i, s) in all.iter().enumerate() {
        let run = run_profile(s, DramDigConfig::optimized()).unwrap_or_else(|e| {
            eprintln!("optimized pipeline failed on {}: {e}", s.label());
            std::process::exit(1);
        });
        if !run.report.mapping.equivalent_to(s.mapping()) {
            eprintln!("optimized profile mis-recovered {}", s.label());
            std::process::exit(1);
        }
        let comma = if i + 1 == all.len() { "" } else { "," };
        let _ = writeln!(
            sweep,
            "    {{\"setting\": \"{}\", \"measure_pair_calls\": {}, \"wall_ms\": {:.3}, \"simulated_seconds\": {:.6}}}{comma}",
            s.label(),
            run.report.total.measurements,
            run.wall_ms,
            run.report.total.elapsed_seconds()
        );
    }

    // --- Campaign throughput at 1/2/4/8 workers ----------------------------
    // The same nine-machine Table-II campaign drained by worker pools of
    // different widths. `wall_ms` is the orchestrating host's real wall time
    // (bounded by its core count); `fleet_makespan_s` is the deterministic
    // simulated makespan where each worker is a separate machine under test
    // probing its own DRAM — the figure that matters for a real fleet.
    let campaign_spec =
        campaign::CampaignSpec::new((1..=9).collect(), 1, campaign::Profile::Optimized);
    let mut campaign_json = String::new();
    let mut store_encodings: Vec<String> = Vec::new();
    let mut wall_by_workers: Vec<(usize, f64, f64)> = Vec::new();
    let worker_counts = [1usize, 2, 4, 8];
    for &workers in &worker_counts {
        let dir = std::env::temp_dir().join(format!(
            "dramdig-bench-campaign-{}-{workers}w",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = campaign::CampaignPaths::new(&dir);
        let options = campaign::CampaignOptions::default().with_workers(workers);
        let start = Instant::now();
        let outcome =
            campaign::run_campaign(&campaign_spec, &paths, &options, |job, attempt, _| {
                campaign::run_job_sim(job, attempt)
            })
            .unwrap_or_else(|e| {
                eprintln!("campaign benchmark failed at {workers} workers: {e}");
                std::process::exit(1);
            });
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if outcome.state.completed.len() != 9 || !outcome.dead.is_empty() {
            eprintln!(
                "campaign benchmark at {workers} workers completed {}/9 jobs ({} dead)",
                outcome.state.completed.len(),
                outcome.dead.len()
            );
            std::process::exit(1);
        }
        store_encodings.push(outcome.store.encode());
        wall_by_workers.push((workers, wall_ms, outcome.simulated_makespan(workers)));
        let _ = std::fs::remove_dir_all(&dir);
    }
    // Differential gate: every worker count must converge on the same store.
    if store_encodings.windows(2).any(|w| w[0] != w[1]) {
        eprintln!("campaign stores differ across worker counts");
        std::process::exit(1);
    }
    let (_, wall_1w, fleet_1w) = wall_by_workers[0];
    for (i, &(workers, wall_ms, fleet_s)) in wall_by_workers.iter().enumerate() {
        let comma = if i + 1 == wall_by_workers.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            campaign_json,
            "    {{\"workers\": {workers}, \"wall_ms\": {wall_ms:.3}, \"fleet_makespan_s\": {fleet_s:.6}, \"wall_speedup_vs_1w\": {:.2}, \"fleet_speedup_vs_1w\": {:.2}}}{comma}",
            wall_1w / wall_ms,
            fleet_1w / fleet_s,
        );
    }
    let fleet_4w = wall_by_workers
        .iter()
        .find(|&&(w, _, _)| w == 4)
        .map(|&(_, _, s)| fleet_1w / s)
        .expect("4-worker sweep ran");

    // --- MapReduce campaign: the big grid under three worker topologies ----
    // The 1,000-scenario generated-machine grid drained by 1, 4 and 8
    // simulated-remote workers; in every multi-worker topology worker 0 is
    // kill -9'd mid-phase on its second lease, so the run exercises a real
    // steal-and-resume. The gates: all topologies converge on byte-identical
    // scoreboard and store artifacts, every multi-worker run records the
    // steal, nothing is left pending, and every wide-function fodder job
    // (index % 100 == 7, whose pipeline always errors) is dead-lettered.
    let grid_spec = campaign::mapreduce::GridSpec::new(
        GridKind::Big.scenario_count() as u32,
        1,
        campaign::Profile::Fast,
    );
    let fodder_dead = (0..grid_spec.scenarios).filter(|i| i % 100 == 7).count();
    let mut mapreduce_json = String::new();
    let mut mapreduce_boards: Vec<String> = Vec::new();
    let mut mapreduce_stores: Vec<String> = Vec::new();
    let mut mapreduce_dead = 0usize;
    let mapreduce_topologies = [1usize, 4, 8];
    for (t, &processes) in mapreduce_topologies.iter().enumerate() {
        let dir = std::env::temp_dir().join(format!(
            "dramdig-bench-mapreduce-{}-{processes}w",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = campaign::CampaignPaths::new(&dir);
        let transports: Vec<Box<dyn campaign::mapreduce::WorkerTransport>> = (0..processes)
            .map(|i| {
                if processes > 1 && i == 0 {
                    Box::new(campaign::mapreduce::SimTransport::killed_at(2))
                        as Box<dyn campaign::mapreduce::WorkerTransport>
                } else {
                    Box::new(campaign::mapreduce::SimTransport::new())
                }
            })
            .collect();
        let mut pool_metrics = telemetry::Registry::new();
        let start = Instant::now();
        let outcome = campaign::mapreduce::run_mapreduce(
            &grid_spec,
            &paths,
            transports,
            Some(&mut pool_metrics),
        )
        .unwrap_or_else(|e| {
            eprintln!("mapreduce benchmark failed at {processes} workers: {e}");
            std::process::exit(1);
        });
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let steals = pool_metrics.counter("pool_steals_total");
        let settled = outcome.state.completed.len() + outcome.state.dead.len();
        let fodder_lettered = outcome
            .state
            .dead
            .keys()
            .filter(|id| {
                campaign::mapreduce::GenJob::index_from_id(id).is_some_and(|i| i % 100 == 7)
            })
            .count();
        if settled != grid_spec.scenarios as usize || fodder_lettered != fodder_dead {
            eprintln!(
                "mapreduce at {processes} workers settled {settled}/{} jobs \
                 ({} dead, {fodder_lettered}/{fodder_dead} fodder dead-lettered)",
                grid_spec.scenarios,
                outcome.state.dead.len(),
            );
            std::process::exit(1);
        }
        if processes > 1 && steals == 0 {
            eprintln!("mapreduce at {processes} workers recorded no steal for the injected kill");
            std::process::exit(1);
        }
        mapreduce_dead = outcome.state.dead.len();
        mapreduce_boards.push(outcome.scoreboard);
        mapreduce_stores.push(outcome.store.encode());
        let comma = if t + 1 == mapreduce_topologies.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            mapreduce_json,
            "    {{\"workers\": {processes}, \"wall_ms\": {wall_ms:.3}, \"steals\": {steals}, \"completed\": {}, \"dead\": {}}}{comma}",
            outcome.state.completed.len(),
            outcome.state.dead.len(),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    // Topology invariance, the tentpole gate: same scoreboard bytes and
    // store bytes no matter the worker count, kill point or steal order.
    if mapreduce_boards.windows(2).any(|w| w[0] != w[1]) {
        eprintln!("mapreduce scoreboards differ across worker topologies");
        std::process::exit(1);
    }
    if mapreduce_stores.windows(2).any(|w| w[0] != w[1]) {
        eprintln!("mapreduce stores differ across worker topologies");
        std::process::exit(1);
    }
    let mapreduce_board_fp = campaign::mapreduce::fingerprint(&mapreduce_boards[0]);
    let mapreduce_store_mappings = mapreduce_stores[0]
        .lines()
        .filter(|l| l.starts_with("[mapping"))
        .count();

    // --- Engine checkpoint/resume: kill mid-FineDetection ------------------
    // The optimized profile on No.4, killed at the FunctionDetection →
    // FineDetection boundary (what a process death mid-FineDetection
    // resumes as), then resumed. Gates: the resumed RecoveryReport must be
    // byte-identical to straight-through, and the resumed invocation must
    // repay zero Partition-phase measurements.
    let engine_probe = |seed: u64| {
        let machine = SimMachine::from_setting(&setting, SimConfig::default().with_seed(seed));
        SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes))
    };
    let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
    let engine = PipelineEngine::new(knowledge, DramDigConfig::optimized());
    let mut probe = engine_probe(SIM_SEED);
    let straight = engine
        .run(&mut probe, &EngineOptions::default(), &mut NullObserver)
        .unwrap_or_else(|e| {
            eprintln!("engine straight-through run failed: {e}");
            std::process::exit(1);
        });
    let straight_encoded = RecoveryReport::from(&straight).encode();

    let ckpt_dir =
        std::env::temp_dir().join(format!("dramdig-bench-engine-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let mut probe = engine_probe(SIM_SEED);
    let killed = engine.run(
        &mut probe,
        &EngineOptions::default()
            .with_checkpoint(&ckpt_dir)
            .with_stop_after(Phase::FunctionDetection),
        &mut NullObserver,
    );
    if killed.is_ok() {
        eprintln!("engine kill at the FunctionDetection boundary did not interrupt");
        std::process::exit(1);
    }
    let mut probe = engine_probe(SIM_SEED);
    let resumed = engine
        .run(
            &mut probe,
            &EngineOptions::default().with_checkpoint(&ckpt_dir),
            &mut NullObserver,
        )
        .unwrap_or_else(|e| {
            eprintln!("engine resume failed: {e}");
            std::process::exit(1);
        });
    let resumed_spent = probe.stats().measurements;
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let resume_equal = RecoveryReport::from(&resumed).encode() == straight_encoded;
    if !resume_equal {
        eprintln!("engine differential check failed: resumed report differs from straight-through");
        std::process::exit(1);
    }
    let partition_measurements = straight
        .cost_of(Phase::Partition)
        .map_or(0, |c| c.measurements);
    let checkpointed_measurements = straight.total.measurements - resumed_spent;
    // The resumed invocation pays only for the phases after the kill — in
    // particular, zero Partition measurements are repaid.
    let expected_repaid: u64 = straight
        .phase_costs
        .iter()
        .filter(|(p, _)| p.index() > Phase::FunctionDetection.index())
        .map(|(_, c)| c.measurements)
        .sum();
    if resumed_spent != expected_repaid {
        eprintln!(
            "engine resume repaid {resumed_spent} measurements, expected {expected_repaid} \
             (partition must not be repaid)"
        );
        std::process::exit(1);
    }
    let resume_savings =
        checkpointed_measurements as f64 / straight.total.measurements.max(1) as f64;

    // --- Telemetry: zero-overhead and byte-determinism gates ---------------
    // The same optimized engine run, repeated with a TelemetryObserver
    // recording spans plus fine-grained oracle-batch events. Gates: the
    // observed run must spend exactly the measurements the unobserved
    // `straight` run spent (telemetry reads costs, it never probes — so a
    // disabled observer costs zero extra measurements a fortiori), and two
    // same-seed runs must export byte-identical Chrome traces and metrics
    // snapshots — the property CI's telemetry-smoke step `cmp`s.
    let telemetry_run = || {
        let mut probe = engine_probe(SIM_SEED);
        let mut observer = TelemetryObserver::new();
        let report = engine
            .run(
                &mut probe,
                &EngineOptions::default().with_fine_events(true),
                &mut observer,
            )
            .unwrap_or_else(|e| {
                eprintln!("telemetry-observed engine run failed: {e}");
                std::process::exit(1);
            });
        let (tracer, metrics) = observer.into_parts();
        (report, tracer.chrome_trace(), metrics.snapshot())
    };
    let (observed, trace_a, metrics_a) = telemetry_run();
    let (_, trace_b, metrics_b) = telemetry_run();
    if observed.total.measurements != straight.total.measurements {
        eprintln!(
            "telemetry overhead gate failed: observed run spent {} measurements, \
             unobserved {} (recording must not probe)",
            observed.total.measurements, straight.total.measurements
        );
        std::process::exit(1);
    }
    if trace_a != trace_b || metrics_a != metrics_b {
        eprintln!(
            "telemetry determinism gate failed: same-seed exports differ \
             (trace identical: {}, metrics identical: {})",
            trace_a == trace_b,
            metrics_a == metrics_b
        );
        std::process::exit(1);
    }
    // Streaming-array form: one event per line between `[` and `]`.
    let trace_events = trace_a.lines().count().saturating_sub(2);

    // --- Scenario-matrix eval on the quick grid ----------------------------
    // The same workload the CI `scenario-matrix` job gates on, at the
    // smaller preset: the JSON tracks per-tool success counts and DRAMDig's
    // measurement advantage over DRAMA so the trajectory covers the open
    // (generated-machine) workload, not just Table II.
    let eval_grid = EvalGrid::new(GridKind::Quick, 1);
    let eval_start = Instant::now();
    let eval_outcome = run_grid(&eval_grid, 4);
    let eval_wall_ms = eval_start.elapsed().as_secs_f64() * 1e3;
    let eval_gate = eval_outcome.gate();
    if !eval_gate.passed() {
        eprintln!(
            "scenario-matrix differential gate failed:\n  {}",
            eval_gate.failures.join("\n  ")
        );
        std::process::exit(1);
    }
    let in_scope_count = eval_grid
        .of_class(dram_model::MachineClass::InScope)
        .count();
    let dramdig_counts = eval_outcome.counts(ToolId::DramDig);
    let drama_counts = eval_outcome.counts(ToolId::Drama);
    let measurement_advantage_vs_drama =
        drama_counts.measurements as f64 / dramdig_counts.measurements.max(1) as f64;
    let mut eval_tools_json = String::new();
    for (i, tool) in ToolId::ALL.iter().enumerate() {
        let c = eval_outcome.counts(*tool);
        let comma = if i + 1 == ToolId::ALL.len() { "" } else { "," };
        let _ = writeln!(
            eval_tools_json,
            "      \"{tool}\": {{\"recovered\": {}, \"skeleton\": {}, \"detected\": {}, \"partition_only\": {}, \"not_applicable\": {}, \"failed\": {}, \"wrong\": {}, \"measure_pair_calls\": {}}}{comma}",
            c.recovered,
            c.skeleton,
            c.detected,
            c.partition_only,
            c.not_applicable,
            c.failed,
            c.wrong,
            c.measurements,
        );
    }

    // --- Per-observable costs on a row-remapped machine --------------------
    // The first row-remap scenario of the same quick grid, run three ways:
    // the seed-faithful driver, the engine behind the observable seam with
    // no extra channels, and the engine with the flip-adjacency channel
    // enabled. Differential gates: the seam run must be byte-identical to
    // the seed path (timing-only budgets unchanged from the seed), and the
    // combined run must leave the timing stream untouched while recovering
    // the generator's row-remap mask with hammer pairs only.
    let remap_scenario = eval_grid
        .of_class(MachineClass::RowRemap)
        .next()
        .expect("quick grid has a row-remap scenario");
    let remap_config = DramDigConfig {
        rng_seed: remap_scenario.tool_seed,
        ..DramDigConfig::optimized()
    };
    let remap_knowledge = DomainKnowledge::for_generated(&remap_scenario.machine);

    let mut probe = remap_scenario.probe();
    let seed_path = DramDig::new(remap_knowledge.clone(), remap_config.clone())
        .run(&mut probe)
        .unwrap_or_else(|e| {
            eprintln!("seed path failed on row-remap scenario: {e}");
            std::process::exit(1);
        });
    let seed_path_stats = probe.stats();

    let mut probe = remap_scenario.probe();
    let seam_run = PipelineEngine::new(remap_knowledge.clone(), remap_config.clone())
        .run_with_observables(
            &mut probe,
            &EngineOptions::default(),
            &mut NullObserver,
            &mut [],
        )
        .unwrap_or_else(|e| {
            eprintln!("observable seam (no channels) failed on row-remap scenario: {e}");
            std::process::exit(1);
        });
    let seam_identical = RecoveryReport::from(&seam_run).encode()
        == RecoveryReport::from(&seed_path).encode()
        && probe.stats() == seed_path_stats;
    if !seam_identical {
        eprintln!(
            "differential check failed: the observable seam perturbed the timing-only run \
             (budgets must be unchanged from the seed path)"
        );
        std::process::exit(1);
    }

    let mut probe = remap_scenario.probe();
    let mut flip = FlipAdjacencyObservable::for_generated(
        &remap_scenario.machine,
        flip_sim_seed(remap_scenario),
    );
    let combined_knowledge = remap_knowledge.with_observables(vec![
        ObservableKind::ConflictTiming,
        ObservableKind::FlipAdjacency,
    ]);
    let combined = PipelineEngine::new(combined_knowledge, remap_config)
        .run_with_observables(
            &mut probe,
            &EngineOptions::default(),
            &mut NullObserver,
            &mut [&mut flip],
        )
        .unwrap_or_else(|e| {
            eprintln!("combined-observable run failed on row-remap scenario: {e}");
            std::process::exit(1);
        });
    let combined_stats = probe.stats();
    if combined_stats.measurements != seed_path_stats.measurements {
        eprintln!(
            "differential check failed: flip-adjacency channel changed the timing budget \
             ({} pairs vs {} on the seed path)",
            combined_stats.measurements, seed_path_stats.measurements
        );
        std::process::exit(1);
    }
    let remap_truth = remap_scenario
        .machine
        .row_remap
        .as_ref()
        .map(|r| RowRemap::canonical_mask(r.xor_mask, remap_scenario.machine.mapping().num_rows()))
        .filter(|&mask| mask != 0);
    if combined.row_remap != remap_truth {
        eprintln!(
            "differential check failed: combined run recovered row remap {:?}, truth is {:?}",
            combined.row_remap, remap_truth
        );
        std::process::exit(1);
    }
    let flip_hammer_pairs: u64 = combined
        .observable_costs
        .iter()
        .filter(|(kind, _)| *kind == ObservableKind::FlipAdjacency)
        .map(|(_, cost)| cost.hammer_pairs)
        .sum();
    if !seed_path.observable_costs.is_empty() || flip_hammer_pairs == 0 {
        eprintln!(
            "differential check failed: expected hammer pairs only on the combined run \
             (seed path consulted {} channels, combined spent {flip_hammer_pairs} hammer pairs)",
            seed_path.observable_costs.len()
        );
        std::process::exit(1);
    }
    let mut observable_channels_json = String::new();
    for (i, (kind, cost)) in combined.observable_costs.iter().enumerate() {
        let comma = if i + 1 == combined.observable_costs.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            observable_channels_json,
            "      {{\"kind\": \"{kind}\", \"hammer_pairs\": {}, \"timing_pairs\": {}, \"simulated_seconds\": {:.6}}}{comma}",
            cost.hammer_pairs,
            cost.timing_pairs,
            cost.elapsed_ns as f64 / 1e9,
        );
    }
    let json_mask = |mask: Option<u32>| mask.map_or("null".to_string(), |m| m.to_string());

    // --- Registry: sharded store and the lock-free query path --------------
    // A 1,000-machine generated corpus goes through the full registry
    // subsystem: in-memory insert, differential check of every indexed
    // query against its linear-scan twin, sharded disk round trip, the
    // >= 10x indexed-speedup gate on `machines_sharing`, and sustained
    // queries/sec over `Arc` snapshots with one and four reader threads.
    let registry_corpus: u64 = 1_000;
    let registry_seed: u64 = 0xC0FFEE;
    let registry_shards: u32 = 8;
    let mut registry_records: Vec<Record> = Vec::with_capacity(registry_corpus as usize);
    let mut registry_mem = MemRegistry::new();
    for i in 0..registry_corpus {
        let machine =
            MachineGen::new(registry_seed.wrapping_add(i)).generate(MachineClass::InScope);
        let record = Record::new(
            machine.mapping(),
            Source::new(machine.label.clone(), "bench-gen".to_string()),
        );
        registry_mem.insert(&record.mapping, record.source.clone());
        registry_records.push(record);
    }
    let registry_entries = registry_mem.len();

    // Query workload: the first bank function of every 23rd entry (hit
    // path, spread over the whole corpus) plus two functions over low
    // column bits no stored basis spans (miss path).
    let mut registry_queries: Vec<XorFunc> = registry_mem
        .entries()
        .step_by(23)
        .map(|e| e.mapping.bank_funcs()[0])
        .collect();
    registry_queries.push(XorFunc::from_bits(&[2, 3]));
    registry_queries.push(XorFunc::from_bits(&[0, 1, 2]));

    // Differential gate: the inverted index answers byte-identically to
    // the linear-scan twin, on sharing and nearest queries alike.
    for func in &registry_queries {
        if registry_mem.machines_sharing(*func) != registry_mem.machines_sharing_scan(*func) {
            eprintln!(
                "registry differential gate failed: indexed machines_sharing({func}) \
                 disagrees with the linear-scan twin"
            );
            std::process::exit(1);
        }
    }
    for entry in registry_mem.entries().step_by(101) {
        let partial: Vec<XorFunc> = entry.mapping.bank_funcs().iter().copied().take(2).collect();
        if registry_mem.nearest(&partial, 3).0 != registry_mem.nearest_scan(&partial, 3) {
            eprintln!(
                "registry differential gate failed: indexed nearest for a partial of {:016x} \
                 disagrees with the linear-scan twin",
                entry.fingerprint
            );
            std::process::exit(1);
        }
    }

    // Sharded disk round trip: publish the corpus, reload from segments,
    // and require the reloaded registry to equal the in-memory one.
    let registry_dir =
        std::env::temp_dir().join(format!("dramdig-bench-registry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&registry_dir);
    let registry_shared =
        SharedRegistry::create(&registry_dir, registry_shards).unwrap_or_else(|e| {
            eprintln!(
                "cannot create bench registry at {}: {e}",
                registry_dir.display()
            );
            std::process::exit(1);
        });
    registry_shared
        .publish(&registry_records)
        .unwrap_or_else(|e| {
            eprintln!("cannot publish bench corpus: {e}");
            std::process::exit(1);
        });
    let registry_reloaded = DiskRegistry::open(&registry_dir)
        .and_then(|disk| disk.load())
        .unwrap_or_else(|e| {
            eprintln!("cannot reload bench registry: {e}");
            std::process::exit(1);
        });
    let registry_load_matches = registry_reloaded == registry_mem;
    if !registry_load_matches {
        eprintln!(
            "registry differential gate failed: sharded disk round trip does not \
             reproduce the in-memory registry"
        );
        std::process::exit(1);
    }
    let registry_disk = registry_shared.stats().unwrap_or_else(|e| {
        eprintln!("cannot stat bench registry: {e}");
        std::process::exit(1);
    });

    // Speedup gate: per-query cost of the indexed path vs the scan twin.
    let registry_query_count = registry_queries.len() as f64;
    let registry_scan_ns = time_per_call(|| {
        registry_queries
            .iter()
            .map(|f| registry_mem.machines_sharing_scan(*f).len())
            .sum::<usize>()
    }) / registry_query_count;
    let registry_indexed_ns = time_per_call(|| {
        registry_queries
            .iter()
            .map(|f| registry_mem.machines_sharing(*f).len())
            .sum::<usize>()
    }) / registry_query_count;
    let registry_speedup = registry_scan_ns / registry_indexed_ns;
    if registry_speedup < 10.0 {
        eprintln!(
            "registry speedup gate failed: indexed machines_sharing is only \
             {registry_speedup:.1}x faster than the scan at {registry_entries} entries \
             ({registry_indexed_ns:.0} ns vs {registry_scan_ns:.0} ns per query, gate 10x)"
        );
        std::process::exit(1);
    }

    // Sustained queries/sec over Arc snapshots. Each reader clones the
    // snapshot once and then queries lock-free; the gate only requires
    // that fanning readers out does not collapse aggregate throughput
    // (a contended lock would), not that it scales — CI may be 1-core.
    let registry_qps = |threads: usize| -> f64 {
        let served = std::sync::atomic::AtomicU64::new(0);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let (served, shared, queries) = (&served, &registry_shared, &registry_queries);
                scope.spawn(move || {
                    let snapshot = shared.snapshot();
                    let mut local = 0u64;
                    while start.elapsed().as_nanos() < 200_000_000 {
                        for func in queries {
                            std::hint::black_box(snapshot.mem.machines_sharing(*func));
                            local += 1;
                        }
                    }
                    served.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        served.into_inner() as f64 / start.elapsed().as_secs_f64()
    };
    let registry_single_qps = registry_qps(1);
    let registry_threads = 4usize;
    let registry_multi_qps = registry_qps(registry_threads);
    let registry_throughput_ok = registry_multi_qps >= 0.5 * registry_single_qps;
    if !registry_throughput_ok {
        eprintln!(
            "registry throughput gate failed: {registry_threads} readers collapsed to \
             {registry_multi_qps:.0} queries/s aggregate vs {registry_single_qps:.0} \
             single-threaded"
        );
        std::process::exit(1);
    }
    let _ = std::fs::remove_dir_all(&registry_dir);

    // Longitudinal history: one line per run in REGISTRY_HISTORY.txt.
    // Everything before `||` is deterministic for a given tree and acts
    // as a regression gate against every prior line with the same key;
    // the wall-clock tail after `||` is recorded for trend-watching only.
    let mut registry_codec = String::new();
    for entry in registry_mem.entries() {
        let _ = writeln!(registry_codec, "{:016x}", entry.fingerprint);
    }
    let registry_corpus_fnv = fnv1a64(registry_codec.as_bytes());
    let registry_key = format!(
        "registry corpus={registry_corpus} seed={registry_seed:#x} shards={registry_shards}"
    );
    let registry_determ = format!(
        "entries={registry_entries} segments={} records={} queries={} \
         corpus=fnv1a:{registry_corpus_fnv:016x} gates=PASS",
        registry_disk.segments,
        registry_disk.records,
        registry_queries.len(),
    );
    let registry_line = format!(
        "{registry_key} | {registry_determ} || speedup={registry_speedup:.1}x \
         single_qps={registry_single_qps:.0} multi_qps={registry_multi_qps:.0} \
         threads={registry_threads}"
    );
    let registry_history = std::fs::read_to_string("REGISTRY_HISTORY.txt").unwrap_or_default();
    for prior in registry_history.lines() {
        let Some((key, rest)) = prior.trim().split_once(" | ") else {
            continue;
        };
        if key != registry_key {
            continue;
        }
        let recorded = rest.split(" || ").next().unwrap_or(rest).trim();
        if recorded != registry_determ {
            eprintln!(
                "registry history regression for `{registry_key}`:\n  recorded: {recorded}\n  \
                 current:  {registry_determ}"
            );
            std::process::exit(1);
        }
    }
    let mut registry_history_out = if registry_history.is_empty() {
        String::from(
            "# Longitudinal registry bench history: one line per `bench_json` run.\n\
             # Fields before `||` are deterministic for a given tree and gate\n\
             # regressions against prior runs with the same key; the wall-clock\n\
             # tail after `||` is recorded for trend-watching only.\n",
        )
    } else {
        registry_history
    };
    if !registry_history_out.ends_with('\n') {
        registry_history_out.push('\n');
    }
    registry_history_out.push_str(&registry_line);
    registry_history_out.push('\n');
    std::fs::write("REGISTRY_HISTORY.txt", registry_history_out).unwrap_or_else(|e| {
        eprintln!("cannot write REGISTRY_HISTORY.txt: {e}");
        std::process::exit(1);
    });

    // --- Assemble the JSON -------------------------------------------------
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"dramdig-bench-v1\",");
    let _ = writeln!(out, "  \"setting\": \"{}\",", setting.label());
    let _ = writeln!(out, "  \"sim_seed\": {SIM_SEED},");
    let _ = writeln!(out, "  \"profiles\": {{");
    let _ = writeln!(out, "    \"naive\": {{");
    profile_json(&mut out, "      ", &naive);
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"optimized\": {{");
    profile_json(&mut out, "      ", &fast);
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"partition\": {{");
    let _ = writeln!(
        out,
        "    \"exhaustive_measure_pair_calls\": {naive_partition_measurements},"
    );
    let _ = writeln!(
        out,
        "    \"decompose_measure_pair_calls\": {fast_partition_measurements},"
    );
    let _ = writeln!(
        out,
        "    \"measurement_reduction\": {:.2}",
        naive_partition_measurements as f64 / fast_partition_measurements.max(1) as f64
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"detect_bank_functions\": {{");
    let _ = writeln!(out, "    \"naive_ns_per_call\": {naive_detect_ns:.1},");
    let _ = writeln!(out, "    \"basis_ns_per_call\": {fast_detect_ns:.1},");
    let _ = writeln!(
        out,
        "    \"basis_with_build_ns_per_call\": {fast_detect_with_build_ns:.1},"
    );
    let _ = writeln!(out, "    \"speedup\": {detect_speedup:.2}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"gf2_kernels\": {{");
    let _ = writeln!(out, "    \"setting\": \"{}\",", kernel_setting.label());
    let _ = writeln!(out, "    \"coset_reduce\": {{");
    let _ = writeln!(out, "      \"batch\": {},", reduce_values.len());
    let _ = writeln!(out, "      \"basis_rank\": {},", pile_basis.rank());
    let _ = writeln!(out, "      \"scalar_ns_per_batch\": {reduce_scalar_ns:.1},");
    let _ = writeln!(
        out,
        "      \"bitsliced_ns_per_batch\": {reduce_batch_ns:.1},"
    );
    let _ = writeln!(out, "      \"speedup\": {reduce_speedup:.2}");
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"span_walk\": {{");
    let _ = writeln!(out, "      \"candidate_bits\": {},", candidate_bits.len());
    let _ = writeln!(out, "      \"masks_swept\": {},", sweep_masks.len());
    let _ = writeln!(out, "      \"complement_dim\": {},", complement.len());
    let _ = writeln!(out, "      \"survivors\": {},", walk_survivors.len());
    let _ = writeln!(
        out,
        "      \"scalar_sweep_ns_per_call\": {span_sweep_ns:.1},"
    );
    let _ = writeln!(out, "      \"bitsliced_ns_per_call\": {span_walk_ns:.1},");
    let _ = writeln!(out, "      \"speedup\": {span_speedup:.2}");
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"rref_keys\": {{");
    let _ = writeln!(out, "      \"matrices\": {},", rref_rows.len());
    let _ = writeln!(out, "      \"scalar_ns_per_call\": {rref_scalar_ns:.1},");
    let _ = writeln!(
        out,
        "      \"bitsliced_ns_per_call\": {rref_bitsliced_ns:.1}"
    );
    let _ = writeln!(out, "    }},");
    let _ = writeln!(
        out,
        "    \"throughput_gate\": \">= 8x on coset_reduce and span_walk\""
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"end_to_end\": {{");
    let _ = writeln!(
        out,
        "    \"measurement_reduction\": {measurement_reduction:.2},"
    );
    let _ = writeln!(out, "    \"mappings_equivalent\": {profiles_agree},");
    let _ = writeln!(out, "    \"ground_truth_recovered\": {truth_ok}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"table2_optimized_sweep\": [");
    out.push_str(&sweep);
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"engine\": {{");
    let _ = writeln!(
        out,
        "    \"kill_boundary\": \"{}\",",
        Phase::FunctionDetection.name()
    );
    let _ = writeln!(out, "    \"resume_report_identical\": {resume_equal},");
    let _ = writeln!(
        out,
        "    \"straight_measure_pair_calls\": {},",
        straight.total.measurements
    );
    let _ = writeln!(out, "    \"resumed_measure_pair_calls\": {resumed_spent},");
    let _ = writeln!(
        out,
        "    \"partition_measure_pair_calls\": {partition_measurements},"
    );
    let _ = writeln!(out, "    \"partition_repaid_measure_pair_calls\": 0,");
    let _ = writeln!(
        out,
        "    \"measurement_savings_fraction\": {resume_savings:.4}"
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"campaign\": {{");
    let _ = writeln!(out, "    \"jobs\": 9,");
    let _ = writeln!(out, "    \"profile\": \"optimized\",");
    let _ = writeln!(out, "    \"stores_identical\": true,");
    let _ = writeln!(out, "    \"fleet_speedup_4w\": {fleet_4w:.2},");
    let _ = writeln!(out, "    \"sweeps\": [");
    out.push_str(&campaign_json);
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"campaign_mapreduce\": {{");
    let _ = writeln!(out, "    \"grid\": \"big\",");
    let _ = writeln!(out, "    \"scenarios\": {},", grid_spec.scenarios);
    let _ = writeln!(out, "    \"profile\": \"fast\",");
    let _ = writeln!(
        out,
        "    \"injected_kill\": \"worker 0 on its 2nd lease (multi-worker topologies)\","
    );
    let _ = writeln!(out, "    \"scoreboards_identical\": true,");
    let _ = writeln!(out, "    \"stores_identical\": true,");
    let _ = writeln!(
        out,
        "    \"scoreboard_fnv1a\": \"{mapreduce_board_fp:016x}\","
    );
    let _ = writeln!(out, "    \"dead_letters\": {mapreduce_dead},");
    let _ = writeln!(
        out,
        "    \"distinct_mappings\": {mapreduce_store_mappings},"
    );
    let _ = writeln!(out, "    \"topologies\": [");
    out.push_str(&mapreduce_json);
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"eval\": {{");
    let _ = writeln!(out, "    \"grid\": \"{}\",", eval_grid.kind);
    let _ = writeln!(out, "    \"seed\": {},", eval_grid.seed);
    let _ = writeln!(out, "    \"scenarios\": {},", eval_grid.scenarios.len());
    let _ = writeln!(out, "    \"in_scope\": {in_scope_count},");
    let _ = writeln!(out, "    \"wall_ms\": {eval_wall_ms:.3},");
    let _ = writeln!(out, "    \"gate_pass\": true,");
    let _ = writeln!(
        out,
        "    \"measurement_advantage_vs_drama\": {measurement_advantage_vs_drama:.2},"
    );
    let _ = writeln!(out, "    \"tools\": {{");
    out.push_str(&eval_tools_json);
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"observables\": {{");
    let _ = writeln!(out, "    \"scenario\": \"{}\",", remap_scenario.id());
    let _ = writeln!(out, "    \"machine_class\": \"row-remap\",");
    let _ = writeln!(
        out,
        "    \"row_remap_truth_mask\": {},",
        json_mask(remap_truth)
    );
    let _ = writeln!(
        out,
        "    \"row_remap_recovered_mask\": {},",
        json_mask(combined.row_remap)
    );
    let _ = writeln!(
        out,
        "    \"timing_only_identical_to_seed_path\": {seam_identical},"
    );
    let _ = writeln!(
        out,
        "    \"timing_only_measure_pair_calls\": {},",
        seed_path_stats.measurements
    );
    let _ = writeln!(
        out,
        "    \"combined_timing_measure_pair_calls\": {},",
        combined_stats.measurements
    );
    let _ = writeln!(out, "    \"channels\": [");
    out.push_str(&observable_channels_json);
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"telemetry\": {{");
    let _ = writeln!(
        out,
        "    \"observed_measure_pair_calls\": {},",
        observed.total.measurements
    );
    let _ = writeln!(
        out,
        "    \"unobserved_measure_pair_calls\": {},",
        straight.total.measurements
    );
    let _ = writeln!(out, "    \"zero_measurement_overhead\": true,");
    let _ = writeln!(out, "    \"trace_events\": {trace_events},");
    let _ = writeln!(out, "    \"trace_bytes\": {},", trace_a.len());
    let _ = writeln!(out, "    \"metrics_bytes\": {},", metrics_a.len());
    let _ = writeln!(out, "    \"same_seed_trace_identical\": true,");
    let _ = writeln!(out, "    \"same_seed_metrics_identical\": true");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"registry\": {{");
    let _ = writeln!(out, "    \"corpus_mappings\": {registry_corpus},");
    let _ = writeln!(out, "    \"distinct_mappings\": {registry_entries},");
    let _ = writeln!(out, "    \"shards\": {registry_shards},");
    let _ = writeln!(out, "    \"segments\": {},", registry_disk.segments);
    let _ = writeln!(out, "    \"queries\": {},", registry_queries.len());
    let _ = writeln!(out, "    \"indexed_answers_match_scan\": true,");
    let _ = writeln!(
        out,
        "    \"sharded_load_matches_mem\": {registry_load_matches},"
    );
    let _ = writeln!(out, "    \"scan_ns_per_query\": {registry_scan_ns:.1},");
    let _ = writeln!(
        out,
        "    \"indexed_ns_per_query\": {registry_indexed_ns:.1},"
    );
    let _ = writeln!(out, "    \"indexed_speedup\": {registry_speedup:.2},");
    let _ = writeln!(out, "    \"speedup_gate\": 10.0,");
    let _ = writeln!(out, "    \"single_thread_qps\": {registry_single_qps:.0},");
    let _ = writeln!(out, "    \"multi_thread_qps\": {registry_multi_qps:.0},");
    let _ = writeln!(out, "    \"threads\": {registry_threads},");
    let _ = writeln!(out, "    \"throughput_gate\": {registry_throughput_ok}");
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");

    std::fs::write("BENCH_dramdig.json", &out).unwrap_or_else(|e| {
        eprintln!("cannot write BENCH_dramdig.json: {e}");
        std::process::exit(1);
    });

    println!("wrote BENCH_dramdig.json");
    println!(
        "end-to-end measure_pair calls: naive {} -> optimized {} ({measurement_reduction:.1}x fewer)",
        naive.report.total.measurements, fast.report.total.measurements
    );
    println!(
        "partition measure_pair calls: exhaustive {naive_partition_measurements} -> decompose {fast_partition_measurements} ({:.1}x fewer)",
        naive_partition_measurements as f64 / fast_partition_measurements.max(1) as f64
    );
    println!(
        "detect_bank_functions: naive {naive_detect_ns:.0} ns -> basis {fast_detect_ns:.0} ns ({detect_speedup:.1}x faster)"
    );
    println!(
        "gf2 kernels: coset reduce {reduce_scalar_ns:.0} ns -> {reduce_batch_ns:.0} ns per 4096-batch \
         ({reduce_speedup:.1}x), span walk {span_sweep_ns:.0} ns -> {span_walk_ns:.0} ns per set \
         ({span_speedup:.1}x, {} masks swept -> {}-dim span)",
        sweep_masks.len(),
        complement.len(),
    );
    println!(
        "campaign (9 machines): fleet makespan {:.1} ms at 1 worker -> {:.1} ms at 4 workers ({fleet_4w:.1}x)",
        fleet_1w * 1e3,
        fleet_1w * 1e3 / fleet_4w
    );
    println!(
        "mapreduce ({} scenarios): byte-identical scoreboard fnv1a:{mapreduce_board_fp:016x} \
         at 1/4/8 workers with a mid-phase kill, {mapreduce_dead} dead-lettered, \
         {mapreduce_store_mappings} distinct mappings",
        grid_spec.scenarios,
    );
    println!(
        "engine resume after mid-FineDetection kill: {resumed_spent} of {} measurements repaid \
         ({:.1}% saved, partition repaid 0), report byte-identical: {resume_equal}",
        straight.total.measurements,
        resume_savings * 100.0,
    );
    println!(
        "scenario eval ({} scenarios): dramdig recovered {}/{in_scope_count} in-scope, \
         detected {} out-of-scope, {measurement_advantage_vs_drama:.0}x fewer measurements than DRAMA",
        eval_grid.scenarios.len(),
        dramdig_counts.recovered,
        dramdig_counts.detected + dramdig_counts.skeleton,
    );
    println!(
        "telemetry: {trace_events} trace events over {} measurements, zero probe overhead, \
         same-seed exports byte-identical",
        observed.total.measurements,
    );
    println!(
        "registry ({registry_entries} entries from {registry_corpus} machines, \
         {registry_shards} shards): machines_sharing scan {registry_scan_ns:.0} ns -> \
         indexed {registry_indexed_ns:.0} ns per query ({registry_speedup:.1}x, gate 10x), \
         {registry_single_qps:.0} qps single -> {registry_multi_qps:.0} qps aggregate \
         at {registry_threads} readers"
    );
    println!(
        "observables on {}: timing-only {} pairs (identical to seed path), flip adjacency \
         spent {flip_hammer_pairs} hammer pairs to recover row remap {}",
        remap_scenario.id(),
        seed_path_stats.measurements,
        combined
            .row_remap
            .map_or("(pure mirror; skeleton exact)".to_string(), |m| format!(
                "{m:#x}"
            )),
    );
}
