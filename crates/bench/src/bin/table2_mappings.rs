//! Regenerates **Table II** of the paper: the DRAM address mappings DRAMDig
//! uncovers on the nine machine settings, checked against the simulator's
//! ground truth.
//!
//! ```text
//! cargo run --release -p dramdig-bench --bin table2_mappings
//! ```

use dram_model::MachineSetting;
use dramdig::DramDigConfig;
use dramdig_bench::{format_mapping, run_dramdig};

fn main() {
    println!("Table II — reverse-engineered DRAM mappings (DRAMDig, simulated machines)");
    println!(
        "{:<6} {:<14} {:<12} {:<10} {:<75} Matches ground truth",
        "No.", "Microarch", "DRAM", "Config", "Recovered mapping"
    );
    for setting in MachineSetting::all() {
        let result = run_dramdig(&setting, DramDigConfig::default(), 0x7AB1E2);
        match result {
            Ok(report) => {
                let equivalent = report.mapping.equivalent_to(setting.mapping());
                println!(
                    "{:<6} {:<14} {:<12} {:<10} {:<75} {}",
                    setting.label(),
                    setting.microarch.to_string(),
                    format!(
                        "{}, {}GiB",
                        setting.system.generation,
                        setting.capacity_gib()
                    ),
                    setting.system.geometry.to_string(),
                    format_mapping(&report.mapping),
                    if equivalent { "yes" } else { "NO" }
                );
            }
            Err(e) => println!(
                "{:<6} {:<14} FAILED: {e}",
                setting.label(),
                setting.microarch.to_string()
            ),
        }
    }
    println!();
    println!("Note: bank functions are reported up to GF(2) linear combinations; \"matches ground");
    println!(
        "truth\" means the recovered functions span the same space and the row/column bits are"
    );
    println!("identical to the mapping the simulated memory controller uses.");
}
