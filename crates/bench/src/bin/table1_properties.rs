//! Regenerates **Table I** of the paper: whether each uncovering tool is
//! generic, efficient and deterministic.
//!
//! * **Generic** — the tool produces a usable result on every one of the nine
//!   machine settings.
//! * **Efficient** — its mean simulated time (over the settings it handles)
//!   stays within an order of magnitude of DRAMDig's.
//! * **Deterministic** — repeated runs with different seeds produce the same
//!   complete mapping.
//!
//! ```text
//! cargo run --release -p dramdig-bench --bin table1_properties
//! ```

use dram_baselines::{Drama, DramaConfig, Seaborn, Xiao};
use dram_model::MachineSetting;
use dram_sim::{SimConfig, SimMachine};
use dramdig::DramDigConfig;
use dramdig_bench::{check_mark, probe_for, run_dramdig};

const TRIALS: u64 = 2;

#[derive(Default)]
struct Tally {
    settings_ok: usize,
    total_seconds: f64,
    deterministic: bool,
}

fn main() {
    let settings = MachineSetting::all();
    println!(
        "Table I — properties of the uncovering tools ({} settings, {TRIALS} trials each)",
        settings.len()
    );

    let mut seaborn = Tally {
        deterministic: true,
        ..Tally::default()
    };
    let mut xiao = Tally {
        deterministic: true,
        ..Tally::default()
    };
    let mut drama = Tally {
        deterministic: true,
        ..Tally::default()
    };
    let mut dramdig = Tally {
        deterministic: true,
        ..Tally::default()
    };

    for setting in &settings {
        // Seaborn et al. — blind rowhammer plus an educated Sandy Bridge guess.
        let mut outcomes = Vec::new();
        for trial in 0..TRIALS {
            let mut machine =
                SimMachine::from_setting(setting, SimConfig::fast_rowhammer().with_seed(trial));
            let r = Seaborn::with_defaults().run(&mut machine, setting.microarch);
            outcomes.push(r.ok().map(|o| (o.mapping, o.elapsed_ns)));
        }
        if outcomes
            .iter()
            .all(|o| o.as_ref().is_some_and(|(m, _)| m.is_some()))
        {
            seaborn.settings_ok += 1;
            seaborn.total_seconds += outcomes[0]
                .as_ref()
                .map(|(_, ns)| *ns as f64 / 1e9)
                .unwrap_or(0.0);
            if outcomes.windows(2).any(|w| {
                w[0].as_ref().map(|(m, _)| m.clone()) != w[1].as_ref().map(|(m, _)| m.clone())
            }) {
                seaborn.deterministic = false;
            }
        }

        // Xiao et al.
        let mut outcomes = Vec::new();
        for trial in 0..TRIALS {
            let mut probe = probe_for(setting, trial);
            let r = Xiao::with_defaults().run(&mut probe, &setting.system);
            outcomes.push(r.ok().and_then(|o| o.mapping.map(|m| (m, o.elapsed_ns))));
        }
        if outcomes.iter().all(Option::is_some) {
            xiao.settings_ok += 1;
            xiao.total_seconds += outcomes[0]
                .as_ref()
                .map(|(_, ns)| *ns as f64 / 1e9)
                .unwrap();
            if outcomes
                .windows(2)
                .any(|w| w[0].as_ref().map(|(m, _)| m) != w[1].as_ref().map(|(m, _)| m))
            {
                xiao.deterministic = false;
            }
        }

        // DRAMA — its output counts as usable only when it assembles a full
        // bijective mapping; incomplete function sets are the paper's
        // "fails to output a deterministic DRAM address mapping".
        let mut outcomes = Vec::new();
        for trial in 0..TRIALS {
            let mut probe = probe_for(setting, trial);
            let mut config = DramaConfig::fast();
            config.rng_seed ^= trial;
            let r = Drama::new(config).run(&mut probe, setting.system.address_bits());
            outcomes.push(r.ok().map(|o| (o.mapping, o.functions, o.elapsed_ns)));
        }
        let all_complete = outcomes
            .iter()
            .all(|o| o.as_ref().is_some_and(|(m, _, _)| m.is_some()));
        if all_complete {
            drama.settings_ok += 1;
        }
        if let Some(Some((_, _, ns))) = outcomes.first().map(Option::as_ref) {
            drama.total_seconds += *ns as f64 / 1e9;
        }
        if outcomes.windows(2).any(|w| {
            w[0].as_ref().map(|(m, f, _)| (m.clone(), f.clone()))
                != w[1].as_ref().map(|(m, f, _)| (m.clone(), f.clone()))
        }) || !all_complete
        {
            drama.deterministic = false;
        }

        // DRAMDig.
        let mut outcomes = Vec::new();
        for trial in 0..TRIALS {
            let config = DramDigConfig::fast().with_seed(0xD16 + trial);
            let r = run_dramdig(setting, config, trial);
            outcomes.push(
                r.ok()
                    .map(|rep| (rep.mapping.clone(), rep.elapsed_seconds())),
            );
        }
        if outcomes.iter().all(|o| {
            o.as_ref()
                .is_some_and(|(m, _)| m.equivalent_to(setting.mapping()))
        }) {
            dramdig.settings_ok += 1;
            dramdig.total_seconds += outcomes[0].as_ref().unwrap().1;
        } else {
            dramdig.deterministic = false;
        }
        if outcomes
            .windows(2)
            .any(|w| w[0].as_ref().map(|(m, _)| m) != w[1].as_ref().map(|(m, _)| m))
        {
            dramdig.deterministic = false;
        }
    }

    let total = settings.len();
    let dramdig_mean = if dramdig.settings_ok > 0 {
        dramdig.total_seconds / dramdig.settings_ok as f64
    } else {
        f64::INFINITY
    };
    println!(
        "{:<18} {:<10} {:<12} {:<22} {:<15}",
        "Tool", "Generic", "Efficient", "Mean time (handled)", "Deterministic"
    );
    for (name, tally) in [
        ("Seaborn et al.", &seaborn),
        ("Xiao et al.", &xiao),
        ("DRAMA", &drama),
        ("DRAMDig", &dramdig),
    ] {
        let generic = tally.settings_ok == total;
        let mean = if tally.settings_ok > 0 {
            tally.total_seconds / tally.settings_ok as f64
        } else {
            f64::INFINITY
        };
        // "Efficient" in the paper's sense: the tool finishes within the same
        // order of magnitude as DRAMDig on the settings it can handle at all.
        let efficient = tally.settings_ok > 0 && mean <= dramdig_mean * 10.0;
        println!(
            "{:<18} {:<10} {:<12} {:<22} {:<15}   ({}/{} settings)",
            name,
            check_mark(generic),
            check_mark(efficient),
            if mean.is_finite() {
                format!("{mean:.1} s simulated")
            } else {
                "n/a".to_string()
            },
            check_mark(tally.deterministic && tally.settings_ok > 0),
            tally.settings_ok,
            total
        );
    }
    println!();
    println!(
        "Notes: Seaborn's blind rowhammer survey is truncated to {} pairs here; at the",
        200
    );
    println!(
        "survey sizes the published attack needed, its time cost is hours, i.e. not efficient."
    );
    println!("DRAMA counts as handling a setting only when it assembles a complete bijective");
    println!("mapping, which it never does because it cannot classify row bits shared with bank");
    println!("functions — this is the paper's \"fails to output a deterministic mapping\".");
}
