//! Regenerates **Table III** of the paper: double-sided rowhammer bit flips
//! induced with the mapping uncovered by DRAMDig versus the one uncovered by
//! DRAMA, on machine settings No.1, No.2 and No.5 — five tests per setting.
//!
//! Each test hammers for a fixed simulated duration (the paper uses five
//! wall-clock minutes; we use the scaled `fast_rowhammer` refresh window so
//! the same number of refresh cycles elapse in seconds of host time).
//!
//! ```text
//! cargo run --release -p dramdig-bench --bin table3_rowhammer
//! ```

use dram_baselines::{Drama, DramaConfig};
use dram_model::MachineSetting;
use dram_sim::{SimConfig, SimMachine};
use dramdig::DramDigConfig;
use dramdig_bench::{probe_for, run_dramdig};
use rowhammer::{run_double_sided, AttackerView, HammerConfig};

const TESTS: u64 = 5;
/// Simulated duration of one test: 300 refresh windows of the scaled
/// configuration, standing in for the paper's 5-minute wall-clock tests.
const TEST_DURATION_NS: u64 = 300 * 2_000_000;

fn main() {
    println!(
        "Table III — double-sided rowhammer bit flips (DRAMDig / DRAMA), {TESTS} tests per setting"
    );
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>16}",
        "No.", "T1", "T2", "T3", "T4", "T5", "Total"
    );

    for number in [1u8, 2, 5] {
        let setting = MachineSetting::by_number(number).expect("settings 1, 2 and 5 exist");

        // Uncover the mapping once per tool, as the paper does.
        let dramdig_view = run_dramdig(&setting, DramDigConfig::default(), 0x7AB3)
            .map(|r| AttackerView::from_mapping(&r.mapping))
            .expect("DRAMDig uncovers every Table II setting");
        let mut drama_probe = probe_for(&setting, 0x7AB3);
        let drama_outcome =
            Drama::new(DramaConfig::default()).run(&mut drama_probe, setting.system.address_bits());
        let drama_view = drama_outcome
            .ok()
            .map(|o| AttackerView::new(o.functions, o.row_bits));

        let mut totals = (0usize, 0usize);
        let mut cells = Vec::new();
        for test in 0..TESTS {
            let cfg = HammerConfig::timed(TEST_DURATION_NS, 0x1000 + test);
            let mut machine = SimMachine::from_setting(
                &setting,
                SimConfig::fast_rowhammer().with_seed(0xBEEF + test),
            );
            let dig = run_double_sided(&mut machine, &dramdig_view, &cfg);

            let drama_flips = match &drama_view {
                Some(view) => {
                    let mut machine = SimMachine::from_setting(
                        &setting,
                        SimConfig::fast_rowhammer().with_seed(0xBEEF + test),
                    );
                    run_double_sided(&mut machine, view, &cfg).flips
                }
                None => 0,
            };
            totals.0 += dig.flips;
            totals.1 += drama_flips;
            cells.push(format!("{}/{}", dig.flips, drama_flips));
        }
        println!(
            "{:<6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>16}",
            setting.label(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4],
            format!("{}/{}", totals.0, totals.1)
        );
    }
    println!();
    println!("Each cell is DRAMDig-flips/DRAMA-flips for one test. A correct mapping places both");
    println!(
        "aggressors exactly one row from the victim; DRAMA's mapping misses the row bits that"
    );
    println!("are shared with bank functions (and the 7-bit channel hash on No.2/No.5), so its");
    println!("\"double-sided\" pairs rarely sandwich a victim and induce far fewer flips.");
}
