//! The concurrent registry handle: an `Arc`-swapped snapshot read path.
//!
//! The current state lives in an immutable [`Snapshot`] behind an
//! `Arc`. A reader takes one brief, uncontended lock to **clone the
//! `Arc`** — nothing else — and then evaluates any number of queries on
//! its snapshot without synchronization, because a snapshot is never
//! mutated after publication. Writers serialize on their own lock, append
//! to disk, build the next snapshot on the side, and swap the `Arc` in one
//! assignment (the RCU pattern, built from `std` only — the workspace
//! denies `unsafe` and vendors no atomics crate). A reader that grabbed
//! the old snapshot keeps a fully consistent view for as long as it holds
//! the `Arc`; it simply does not see writes published after its clone.

use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::disk::{AppendReport, DiskRegistry, DiskStats};
use crate::mem::MemRegistry;
use crate::segment::Record;
use crate::RegistryError;

/// One immutable, published registry state.
#[derive(Debug)]
pub struct Snapshot {
    /// The registry contents, index included.
    pub mem: MemRegistry,
    /// Publication counter: 0 for the state loaded at open, +1 per
    /// publish.
    pub generation: u64,
}

/// A registry opened for concurrent readers and serialized writers.
#[derive(Debug)]
pub struct SharedRegistry {
    /// Writer lock: owns the disk state; publishes never race.
    disk: Mutex<DiskRegistry>,
    /// The current snapshot. Held only long enough to clone or swap the
    /// `Arc`; queries run outside the lock.
    current: Mutex<Arc<Snapshot>>,
}

impl SharedRegistry {
    /// Opens an existing registry directory and loads its published state.
    ///
    /// # Errors
    ///
    /// Propagates [`DiskRegistry::open`] and segment-load failures.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, RegistryError> {
        let disk = DiskRegistry::open(dir.as_ref())?;
        let mem = disk.load()?;
        Ok(SharedRegistry {
            disk: Mutex::new(disk),
            current: Mutex::new(Arc::new(Snapshot { mem, generation: 0 })),
        })
    }

    /// Creates a new registry with `shards` shards and an empty snapshot.
    ///
    /// # Errors
    ///
    /// Propagates [`DiskRegistry::create`] failures.
    pub fn create(dir: impl AsRef<Path>, shards: u32) -> Result<Self, RegistryError> {
        let disk = DiskRegistry::create(dir.as_ref(), shards)?;
        Ok(SharedRegistry {
            disk: Mutex::new(disk),
            current: Mutex::new(Arc::new(Snapshot {
                mem: MemRegistry::new(),
                generation: 0,
            })),
        })
    }

    /// The current snapshot. Cheap: clones an `Arc` under a momentary
    /// lock; every query on the returned snapshot is lock-free.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.current.lock().expect("snapshot lock poisoned").clone()
    }

    /// Appends `records` to disk and publishes a new snapshot containing
    /// them. Readers holding older snapshots are unaffected.
    ///
    /// # Errors
    ///
    /// On disk failure nothing is published and the current snapshot is
    /// unchanged.
    pub fn publish(&self, records: &[Record]) -> Result<AppendReport, RegistryError> {
        let mut disk = self.disk.lock().expect("writer lock poisoned");
        let report = disk.append(records)?;
        let previous = self.snapshot();
        let mut mem = previous.mem.clone();
        for record in records {
            mem.insert(&record.mapping, record.source.clone());
        }
        let next = Arc::new(Snapshot {
            mem,
            generation: previous.generation + 1,
        });
        *self.current.lock().expect("snapshot lock poisoned") = next;
        Ok(report)
    }

    /// Disk-level counters (shards, segments, records, orphans).
    ///
    /// # Errors
    ///
    /// Propagates orphan-scan I/O failures.
    pub fn stats(&self) -> Result<DiskStats, RegistryError> {
        self.disk.lock().expect("writer lock poisoned").stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Source;
    use dram_model::{MachineSetting, XorFunc};
    use std::fs;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dramdig-registry-shared-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record(n: u8) -> Record {
        Record::new(
            MachineSetting::by_number(n).unwrap().mapping(),
            Source::new(format!("No.{n}"), format!("m{n}-s1-optimized")),
        )
    }

    #[test]
    fn publish_swaps_snapshots_and_readers_keep_old_views() {
        let dir = temp_dir("swap");
        let shared = SharedRegistry::create(&dir, 2).unwrap();
        let empty = shared.snapshot();
        assert_eq!(empty.generation, 0);
        assert!(empty.mem.is_empty());

        shared.publish(&[record(4)]).unwrap();
        let one = shared.snapshot();
        assert_eq!(one.generation, 1);
        assert_eq!(one.mem.len(), 1);
        // The old snapshot is untouched by the publish.
        assert!(empty.mem.is_empty());

        shared.publish(&[record(7)]).unwrap();
        assert_eq!(shared.snapshot().mem.len(), 2);
        assert_eq!(one.mem.len(), 1);

        // Reopening sees the published state.
        drop(shared);
        let reopened = SharedRegistry::open(&dir).unwrap();
        assert_eq!(reopened.snapshot().mem.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_readers_see_consistent_snapshots() {
        let dir = temp_dir("readers");
        let shared = Arc::new(SharedRegistry::create(&dir, 4).unwrap());
        let stop = Arc::new(Mutex::new(false));
        let query = XorFunc::from_bits(&[14, 18]);

        std::thread::scope(|scope| {
            let mut readers = Vec::new();
            for _ in 0..3 {
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&stop);
                readers.push(scope.spawn(move || {
                    let mut snapshots_seen = 0u64;
                    loop {
                        let snap = shared.snapshot();
                        // Internal consistency of whatever snapshot we got:
                        // the indexed answer equals the scan twin, and every
                        // entry resolves through the fingerprint index.
                        assert_eq!(
                            snap.mem.machines_sharing(query),
                            snap.mem.machines_sharing_scan(query)
                        );
                        for entry in snap.mem.entries() {
                            let found = snap.mem.lookup(entry.fingerprint).unwrap();
                            assert_eq!(found.fingerprint, entry.fingerprint);
                        }
                        snapshots_seen += 1;
                        if *stop.lock().unwrap() {
                            return snapshots_seen;
                        }
                    }
                }));
            }
            for n in 1..=9u8 {
                shared.publish(&[record(n)]).unwrap();
            }
            *stop.lock().unwrap() = true;
            for reader in readers {
                assert!(reader.join().unwrap() > 0);
            }
        });
        assert_eq!(shared.snapshot().mem.len(), {
            let mut mem = MemRegistry::new();
            for n in 1..=9u8 {
                let r = record(n);
                mem.insert(&r.mapping, r.source);
            }
            mem.len()
        });
        fs::remove_dir_all(&dir).unwrap();
    }
}
