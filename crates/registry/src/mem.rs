//! The in-memory registry core: content-addressed entries plus the
//! function-level inverted index.
//!
//! Every entry is keyed by its [`CanonicalKey`] — the unique reduced
//! row-echelon basis of its bank functions plus the row/column bit sets —
//! and addressed by the FNV-1a fingerprint of that key's codec. The
//! inverted index maps each physical-address bit to the fingerprints whose
//! basis touches that bit: a function `f` can only lie in an entry's span
//! if every bit of `f` is covered by the entry's basis support, so a span
//! query intersects the posting lists of `f`'s bits and verifies just the
//! survivors with one `O(rank)` GF(2) reduction each. The pre-index linear
//! scan survives as [`MemRegistry::machines_sharing_scan`], the
//! differential twin the tests and the bench gate compare against.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use dram_model::fingerprint::{canonical_encoding_of, fnv1a64};
use dram_model::gf2::{self, Gf2Matrix};
use dram_model::{AddressMapping, XorFunc};

use crate::source::Source;

/// Canonical identity of a mapping: reduced bank-function basis plus the
/// row/column bit sets. The derived ordering (basis, then rows, then
/// columns) fixes the registry's deterministic iteration order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CanonicalKey {
    /// Reduced row-echelon basis of the bank-function masks.
    pub basis: Vec<u64>,
    /// Row address bits.
    pub row_bits: Vec<u8>,
    /// Column address bits.
    pub column_bits: Vec<u8>,
}

impl CanonicalKey {
    /// Canonicalizes a mapping with the bitsliced batch RREF.
    pub fn of(mapping: &AddressMapping) -> Self {
        let masks: Vec<u64> = mapping.bank_funcs().iter().map(|f| f.mask()).collect();
        CanonicalKey {
            basis: gf2::bitslice::reduced_row_basis(&masks),
            row_bits: mapping.row_bits().to_vec(),
            column_bits: mapping.column_bits().to_vec(),
        }
    }

    /// FNV-1a fingerprint over this key's canonical codec
    /// ([`dram_model::fingerprint::canonical_encoding_of`]).
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(canonical_encoding_of(&self.basis, &self.row_bits, &self.column_bits).as_bytes())
    }

    /// Union of the basis masks: the address bits this mapping's bank
    /// functions touch.
    pub fn support(&self) -> u64 {
        self.basis.iter().fold(0, |acc, &mask| acc | mask)
    }
}

/// One distinct mapping plus every source that recovered it.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Content-addressed identity (FNV-1a over the canonical codec).
    pub fingerprint: u64,
    /// The mapping, with its bank functions in canonical (reduced-basis)
    /// form.
    pub mapping: AddressMapping,
    /// Every source that recovered this mapping.
    pub sources: BTreeSet<Source>,
}

impl Entry {
    /// The distinct machine labels that recovered this mapping.
    pub fn machines(&self) -> BTreeSet<&str> {
        self.sources.iter().map(|s| s.machine.as_str()).collect()
    }
}

/// Work a query actually did, as deterministic integers (no clocks): how
/// many index candidates were examined and how many survived exact
/// verification. Feeds the byte-deterministic telemetry histograms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Entries the inverted index nominated for exact verification.
    pub candidates: u64,
    /// Candidates that passed the exact GF(2) check.
    pub matched: u64,
}

/// One ranked answer to a nearest-mapping-to-partial-recovery query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NearestHit {
    /// Fingerprint of the candidate entry.
    pub fingerprint: u64,
    /// Dimension of the intersection of the partial span with the
    /// candidate's span — how much of the partial recovery the candidate
    /// explains.
    pub contained: u8,
    /// Rank of the (reduced) partial basis, the ceiling for `contained`.
    pub partial_rank: u8,
    /// Rank of the candidate entry's basis.
    pub rank: u8,
}

type RawShape = (Vec<u64>, Vec<u8>, Vec<u8>);

/// The deduplicating, content-addressed in-memory registry.
#[derive(Debug, Clone, Default)]
pub struct MemRegistry {
    /// Entries with their canonical keys, in dense insertion order — the
    /// id space every index below refers to. Query hits index straight
    /// into this vector instead of probing a tree per hit.
    store: Vec<(CanonicalKey, Entry)>,
    /// Dense ids in canonical-key order (the deterministic encode and
    /// iteration order).
    canonical_ids: Vec<u32>,
    /// Canonical rank of each dense id (the inverse permutation of
    /// `canonical_ids`): lets a query sort its hits into canonical order
    /// with plain `u32` comparisons.
    rank_of: Vec<u32>,
    /// Exact-lookup index: fingerprint → dense id.
    by_fingerprint: BTreeMap<u64, u32>,
    /// Interned machine labels, in first-seen order (the machine-id
    /// space). Machine labels share long prefixes, so queries dedup and
    /// sort interned ids instead of comparing strings.
    machine_names: Vec<String>,
    /// Interning map: machine label → machine id.
    machine_ids: HashMap<String, u32>,
    /// Lexicographic rank of each machine id (inverse of
    /// `machines_by_rank`), maintained on intern like `rank_of`.
    machine_rank: Vec<u32>,
    /// Machine ids in lexicographic label order.
    machines_by_rank: Vec<u32>,
    /// Per dense entry id: the deduplicated interned machine ids of the
    /// entry's sources.
    entry_machines: Vec<Vec<u32>>,
    /// Inverted index: address bit → bitmap over dense entry ids whose
    /// basis support contains that bit, 64 ids per `u64` block. Candidate
    /// nomination is bitmap AND/OR — a couple of word ops per 64 entries —
    /// instead of a tree probe per candidate. A bitmap may be shorter than
    /// the id space; missing blocks mean "no ids".
    postings: BTreeMap<u8, Vec<u64>>,
    /// Second inverted index: basis-row *lead* bit → bitmap over dense
    /// ids. A mask reduces to zero only against a basis with a row whose
    /// lead bit equals the mask's top bit, so AND-ing this bitmap into
    /// the candidate set prunes entries the support filter cannot.
    lead_postings: BTreeMap<u8, Vec<u64>>,
    /// Transposed basis: lead bit → column of basis rows, indexed by dense
    /// id (0 where the entry has no row with that lead; a column may be
    /// shorter than the id space, missing tail meaning 0). Because the
    /// canonical basis is full Gauss-Jordan RREF, `mask` lies in an
    /// entry's span iff the XOR of its rows whose lead bit is set in
    /// `mask` equals `mask` — a branchless gather over these columns.
    row_by_lead: BTreeMap<u8, Vec<u64>>,
    /// Raw-shape memo: the exact (masks, rows, cols) a caller presented,
    /// mapped to its canonical key, so replaying a journal over an already
    /// populated registry never re-runs RREF for a mapping it has seen in
    /// that exact shape before.
    memo: HashMap<RawShape, CanonicalKey>,
    /// How many RREF canonicalizations were actually performed (memo
    /// misses). Exposed so tests can assert the replay cache works.
    canonicalizations: u64,
}

impl PartialEq for MemRegistry {
    /// Registries are equal when they hold the same entries; the memo and
    /// its counter are caches, not content.
    fn eq(&self, other: &Self) -> bool {
        self.store.len() == other.store.len()
            && self
                .pairs()
                .zip(other.pairs())
                .all(|(mine, theirs)| mine == theirs)
    }
}

impl MemRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MemRegistry::default()
    }

    /// Records that `source` recovered `mapping`. Returns `true` when this
    /// mapping was not present yet (up to bank-function basis choice).
    pub fn insert(&mut self, mapping: &AddressMapping, source: Source) -> bool {
        let raw: RawShape = (
            mapping.bank_funcs().iter().map(|f| f.mask()).collect(),
            mapping.row_bits().to_vec(),
            mapping.column_bits().to_vec(),
        );
        let key = match self.memo.get(&raw) {
            Some(key) => key.clone(),
            None => {
                self.canonicalizations += 1;
                let key = CanonicalKey {
                    basis: gf2::bitslice::reduced_row_basis(&raw.0),
                    row_bits: raw.1.clone(),
                    column_bits: raw.2.clone(),
                };
                self.memo.insert(raw, key.clone());
                key
            }
        };
        let fingerprint = key.fingerprint();
        let machine = self.intern_machine(source.machine.as_str());
        if let Some(&id) = self.by_fingerprint.get(&fingerprint) {
            let (existing, entry) = &mut self.store[id as usize];
            // FNV-1a is 64 bits over a short codec; a collision between
            // *different* canonical keys would silently merge two distinct
            // mappings, so refuse loudly instead.
            assert_eq!(
                *existing, key,
                "fingerprint collision: {fingerprint:016x} already names a different mapping"
            );
            entry.sources.insert(source);
            let known = &mut self.entry_machines[id as usize];
            if !known.contains(&machine) {
                known.push(machine);
            }
            return false;
        }
        let canonical_funcs: Vec<XorFunc> =
            key.basis.iter().map(|&m| XorFunc::from_mask(m)).collect();
        let canonical = AddressMapping::new(
            canonical_funcs,
            key.row_bits.clone(),
            key.column_bits.clone(),
        )
        .expect("canonical basis spans the same space as a valid mapping");
        let id = self.store.len();
        let (block, slot) = (id / 64, id % 64);
        let set = |bitmap: &mut Vec<u64>| {
            if bitmap.len() <= block {
                bitmap.resize(block + 1, 0);
            }
            bitmap[block] |= 1u64 << slot;
        };
        for bit in 0..64u8 {
            if key.support() & (1 << bit) != 0 {
                set(self.postings.entry(bit).or_default());
            }
        }
        for &row in &key.basis {
            if row != 0 {
                let lead = (63 - row.leading_zeros()) as u8;
                set(self.lead_postings.entry(lead).or_default());
                let column = self.row_by_lead.entry(lead).or_default();
                column.resize(id, 0);
                column.push(row);
            }
        }
        // Splice the new id into the canonical permutation; every id at or
        // after its rank shifts up by one. O(n) per new entry, paid once
        // at insert so queries sort hits with plain integer keys.
        let rank = self
            .canonical_ids
            .partition_point(|&i| self.store[i as usize].0 < key) as u32;
        for &shifted in &self.canonical_ids[rank as usize..] {
            self.rank_of[shifted as usize] += 1;
        }
        self.canonical_ids.insert(rank as usize, id as u32);
        self.rank_of.push(rank);
        self.by_fingerprint.insert(fingerprint, id as u32);
        self.entry_machines.push(vec![machine]);
        self.store.push((
            key,
            Entry {
                fingerprint,
                mapping: canonical,
                sources: BTreeSet::from([source]),
            },
        ));
        true
    }

    /// Interns a machine label, maintaining the lexicographic rank
    /// permutation over machine ids.
    fn intern_machine(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.machine_ids.get(name) {
            return id;
        }
        let id = self.machine_names.len() as u32;
        let rank = self
            .machines_by_rank
            .partition_point(|&m| self.machine_names[m as usize].as_str() < name)
            as u32;
        for &shifted in &self.machines_by_rank[rank as usize..] {
            self.machine_rank[shifted as usize] += 1;
        }
        self.machines_by_rank.insert(rank as usize, id);
        self.machine_rank.push(rank);
        self.machine_names.push(name.to_string());
        self.machine_ids.insert(name.to_string(), id);
        id
    }

    /// The stored `(canonical key, entry)` pairs in canonical-key order.
    fn pairs(&self) -> impl Iterator<Item = &(CanonicalKey, Entry)> {
        self.canonical_ids
            .iter()
            .map(|&id| &self.store[id as usize])
    }

    /// Merges another registry's entries (and their sources) into this one.
    pub fn merge(&mut self, other: &MemRegistry) {
        for entry in other.entries() {
            for source in &entry.sources {
                self.insert(&entry.mapping, source.clone());
            }
        }
    }

    /// Number of distinct mappings stored.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Returns `true` when no mapping is stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The stored entries, in canonical-key order.
    pub fn entries(&self) -> impl Iterator<Item = &Entry> {
        self.pairs().map(|(_, entry)| entry)
    }

    /// Exact-fingerprint lookup.
    pub fn lookup(&self, fingerprint: u64) -> Option<&Entry> {
        let id = *self.by_fingerprint.get(&fingerprint)?;
        Some(&self.store[id as usize].1)
    }

    /// RREF canonicalizations performed so far (memo misses). Replaying a
    /// journal into an already-populated registry should not move this.
    pub fn canonicalizations(&self) -> u64 {
        self.canonicalizations
    }

    /// Dense ids the inverted index nominates for `mask`: entries whose
    /// basis support covers every set bit. An entry outside this set
    /// cannot span `mask` (any GF(2) combination of basis rows has support
    /// inside the basis union), so verifying only these is exact. The
    /// intersection is a bitmap AND over the per-bit postings.
    fn span_candidates(&self, mask: u64) -> Vec<u32> {
        if mask == 0 {
            // The zero function lies in every span.
            return (0..self.store.len() as u32).collect();
        }
        // Start from the lead-bit bitmap for the mask's top bit: without
        // a basis row leading there, the reduction can never clear it.
        let top = (63 - mask.leading_zeros()) as u8;
        let Some(lead) = self.lead_postings.get(&top) else {
            return Vec::new();
        };
        let mut acc: Vec<u64> = lead.clone();
        for bit in 0..64u8 {
            if mask & (1 << bit) != 0 {
                let Some(bitmap) = self.postings.get(&bit) else {
                    return Vec::new();
                };
                // Ids past a shorter bitmap's end are absent from it, so
                // they drop out of the intersection.
                acc.truncate(bitmap.len());
                for (a, b) in acc.iter_mut().zip(bitmap) {
                    *a &= b;
                }
            }
        }
        let mut ids = Vec::new();
        for (i, mut block) in acc.into_iter().enumerate() {
            while block != 0 {
                ids.push(i as u32 * 64 + block.trailing_zeros());
                block &= block - 1;
            }
        }
        ids
    }

    /// The machines whose recovered mapping *uses* `func` (the function
    /// lies in the GF(2) span of the entry's bank functions), answered from
    /// the inverted index.
    pub fn machines_sharing(&self, func: XorFunc) -> BTreeSet<&str> {
        self.machines_sharing_costed(func).0
    }

    /// The row-by-lead columns for `mask`'s set bits (bits that lead no
    /// stored row have no column and contribute 0 to every entry).
    fn lead_columns(&self, mask: u64) -> Vec<&[u64]> {
        let mut columns = Vec::new();
        let mut rem = mask;
        while rem != 0 {
            let bit = rem.trailing_zeros() as u8;
            rem &= rem - 1;
            if let Some(column) = self.row_by_lead.get(&bit) {
                columns.push(column.as_slice());
            }
        }
        columns
    }

    /// Exact span check for entry `id`: the XOR of its basis rows whose
    /// lead bit is set in `mask` must reproduce `mask` (full Gauss-Jordan
    /// RREF makes this selection the whole reduction).
    fn xor_select(columns: &[&[u64]], id: usize, mask: u64) -> bool {
        columns.iter().fold(0u64, |acc, column| {
            acc ^ column.get(id).copied().unwrap_or(0)
        }) == mask
    }

    /// [`MemRegistry::machines_sharing`] plus the deterministic work
    /// counters for telemetry.
    pub fn machines_sharing_costed(&self, func: XorFunc) -> (BTreeSet<&str>, QueryCost) {
        let mask = func.mask();
        let mut matched = self.span_candidates(mask);
        let candidates = matched.len() as u64;
        let columns = self.lead_columns(mask);
        matched.retain(|&id| Self::xor_select(&columns, id as usize, mask));
        // Dedup and order the answer on interned machine *ranks* — plain
        // integer ops — and only materialize label strings at the end.
        let mut ranks: Vec<u32> = Vec::new();
        for &id in &matched {
            ranks.extend(
                self.entry_machines[id as usize]
                    .iter()
                    .map(|&m| self.machine_rank[m as usize]),
            );
        }
        ranks.sort_unstable();
        ranks.dedup();
        let machines: BTreeSet<&str> = ranks
            .iter()
            .map(|&r| self.machine_names[self.machines_by_rank[r as usize] as usize].as_str())
            .collect();
        let cost = QueryCost {
            candidates,
            matched: matched.len() as u64,
        };
        (machines, cost)
    }

    /// The entries whose bank-function span contains `func`, answered from
    /// the inverted index, in canonical-key order.
    pub fn entries_sharing(&self, func: XorFunc) -> Vec<&Entry> {
        self.entries_sharing_costed(func).0
    }

    /// [`MemRegistry::entries_sharing`] plus the work counters.
    pub fn entries_sharing_costed(&self, func: XorFunc) -> (Vec<&Entry>, QueryCost) {
        let mask = func.mask();
        let mut matched = self.span_candidates(mask);
        let candidates = matched.len() as u64;
        let columns = self.lead_columns(mask);
        matched.retain(|&id| Self::xor_select(&columns, id as usize, mask));
        // Candidates come out in insertion order; present them in the
        // registry's canonical order like the scan twin does. The rank
        // permutation makes this an integer sort, not a key comparison.
        matched.sort_unstable_by_key(|&id| self.rank_of[id as usize]);
        let hits: Vec<&Entry> = matched
            .iter()
            .map(|&id| &self.store[id as usize].1)
            .collect();
        let cost = QueryCost {
            candidates,
            matched: hits.len() as u64,
        };
        (hits, cost)
    }

    /// Differential twin of [`MemRegistry::machines_sharing`]: the original
    /// full linear scan. Kept for tests and the bench gate; never used on
    /// the query path.
    pub fn machines_sharing_scan(&self, func: XorFunc) -> BTreeSet<&str> {
        let mut machines = BTreeSet::new();
        for entry in self.entries_sharing_scan(func) {
            machines.extend(entry.machines());
        }
        machines
    }

    /// Differential twin of [`MemRegistry::entries_sharing`]: linear scan
    /// with a fresh `Gf2Matrix` span check per entry.
    pub fn entries_sharing_scan(&self, func: XorFunc) -> Vec<&Entry> {
        self.entries()
            .filter(|e| Gf2Matrix::from_funcs(e.mapping.bank_funcs()).spans(func.mask()))
            .collect()
    }

    /// Nearest stored mappings to a partial recovery: the rank-deficient
    /// basis a mid-run black-box tool has so far. Candidates are ranked by
    /// how much of the partial span they contain —
    /// `dim(partial ∩ candidate) = rank(P) + rank(B) − rank(P ∪ B)` —
    /// with ties broken by smaller candidate rank (tighter explanation),
    /// then fingerprint. Entries sharing nothing with the partial basis are
    /// omitted. Returns at most `k` hits plus the work counters.
    pub fn nearest(&self, partial: &[XorFunc], k: usize) -> (Vec<NearestHit>, QueryCost) {
        let masks: Vec<u64> = partial.iter().map(|f| f.mask()).collect();
        let reduced = gf2::bitslice::reduced_row_basis(&masks);
        let partial_rank = reduced.len() as u8;
        if reduced.is_empty() || k == 0 {
            return (Vec::new(), QueryCost::default());
        }
        // Union of postings bitmaps over the partial support: an entry
        // whose basis support is disjoint from the partial support
        // intersects it only in {0}.
        let support = reduced.iter().fold(0u64, |acc, &m| acc | m);
        let mut union_blocks: Vec<u64> = Vec::new();
        for bit in 0..64u8 {
            if support & (1 << bit) != 0 {
                if let Some(bitmap) = self.postings.get(&bit) {
                    if union_blocks.len() < bitmap.len() {
                        union_blocks.resize(bitmap.len(), 0);
                    }
                    for (a, b) in union_blocks.iter_mut().zip(bitmap) {
                        *a |= b;
                    }
                }
            }
        }
        let mut cost = QueryCost::default();
        let mut hits: Vec<NearestHit> = Vec::new();
        for (i, mut block) in union_blocks.into_iter().enumerate() {
            while block != 0 {
                let id = i * 64 + block.trailing_zeros() as usize;
                block &= block - 1;
                cost.candidates += 1;
                let (key, entry) = &self.store[id];
                let rank = key.basis.len() as u8;
                let mut union: Vec<u64> = key.basis.clone();
                union.extend_from_slice(&reduced);
                let union_rank = gf2::bitslice::reduced_row_basis(&union).len() as u8;
                let contained = partial_rank + rank - union_rank;
                if contained == 0 {
                    continue;
                }
                hits.push(NearestHit {
                    fingerprint: entry.fingerprint,
                    contained,
                    partial_rank,
                    rank,
                });
            }
        }
        hits.sort_by(|a, b| {
            b.contained
                .cmp(&a.contained)
                .then(a.rank.cmp(&b.rank))
                .then(a.fingerprint.cmp(&b.fingerprint))
        });
        hits.truncate(k);
        cost.matched = hits.len() as u64;
        (hits, cost)
    }

    /// Differential twin of [`MemRegistry::nearest`]: scores every entry by
    /// linear scan instead of going through the posting lists.
    pub fn nearest_scan(&self, partial: &[XorFunc], k: usize) -> Vec<NearestHit> {
        let masks: Vec<u64> = partial.iter().map(|f| f.mask()).collect();
        let reduced = gf2::bitslice::reduced_row_basis(&masks);
        let partial_rank = reduced.len() as u8;
        if reduced.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut hits: Vec<NearestHit> = Vec::new();
        for (key, entry) in self.pairs() {
            let rank = key.basis.len() as u8;
            let mut union: Vec<u64> = key.basis.clone();
            union.extend_from_slice(&reduced);
            let union_rank = gf2::bitslice::reduced_row_basis(&union).len() as u8;
            let contained = partial_rank + rank - union_rank;
            if contained == 0 {
                continue;
            }
            hits.push(NearestHit {
                fingerprint: entry.fingerprint,
                contained,
                partial_rank,
                rank,
            });
        }
        hits.sort_by(|a, b| {
            b.contained
                .cmp(&a.contained)
                .then(a.rank.cmp(&b.rank))
                .then(a.fingerprint.cmp(&b.fingerprint))
        });
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::MachineSetting;

    fn source(machine: u8, job: &str) -> Source {
        Source::new(format!("No.{machine}"), job)
    }

    fn table2_registry() -> MemRegistry {
        let mut registry = MemRegistry::new();
        for n in 1..=9u8 {
            let setting = MachineSetting::by_number(n).unwrap();
            registry.insert(setting.mapping(), source(n, &format!("m{n}-s1-optimized")));
        }
        registry
    }

    #[test]
    fn indexed_sharing_matches_scan_twin_on_table2() {
        let registry = table2_registry();
        // Every single-function query that appears in any stored basis,
        // plus a few misses.
        let mut queries: Vec<XorFunc> = registry
            .entries()
            .flat_map(|e| e.mapping.bank_funcs().to_vec())
            .collect();
        queries.push(XorFunc::from_bits(&[2, 3]));
        queries.push(XorFunc::from_bits(&[14, 18]));
        queries.push(XorFunc::from_bits(&[63]));
        for func in queries {
            assert_eq!(
                registry.machines_sharing(func),
                registry.machines_sharing_scan(func),
                "query {func}"
            );
            let indexed: Vec<u64> = registry
                .entries_sharing(func)
                .iter()
                .map(|e| e.fingerprint)
                .collect();
            let scanned: Vec<u64> = registry
                .entries_sharing_scan(func)
                .iter()
                .map(|e| e.fingerprint)
                .collect();
            assert_eq!(indexed, scanned, "query {func}");
        }
    }

    #[test]
    fn sharing_answers_span_queries() {
        let registry = table2_registry();
        let sharing = registry.machines_sharing(XorFunc::from_bits(&[14, 18]));
        assert_eq!(
            sharing.iter().copied().collect::<Vec<_>>(),
            vec!["No.2", "No.3", "No.5"]
        );
        let (_, cost) = registry.machines_sharing_costed(XorFunc::from_bits(&[14, 18]));
        assert!(cost.candidates >= cost.matched);
        assert!(
            cost.candidates < registry.len() as u64,
            "the index must prune at least some of the 9 mappings"
        );
        assert!(registry
            .machines_sharing(XorFunc::from_bits(&[2, 3]))
            .is_empty());
    }

    #[test]
    fn lookup_by_fingerprint() {
        let registry = table2_registry();
        for entry in registry.entries() {
            let found = registry.lookup(entry.fingerprint).unwrap();
            assert_eq!(found.fingerprint, entry.fingerprint);
        }
        assert!(registry.lookup(0).is_none());
    }

    #[test]
    fn memo_skips_recanonicalization_on_replay() {
        let no4 = MachineSetting::by_number(4).unwrap();
        let mut registry = MemRegistry::new();
        registry.insert(no4.mapping(), source(4, "m4-s1-optimized"));
        assert_eq!(registry.canonicalizations(), 1);
        // A journal replay re-presents the same raw shape: no new RREF.
        for _ in 0..10 {
            registry.insert(no4.mapping(), source(4, "m4-s1-optimized"));
        }
        assert_eq!(registry.canonicalizations(), 1);
        // A different raw basis of the same space is a genuine memo miss
        // but still dedups into the same entry.
        let variant = AddressMapping::new(
            vec![
                XorFunc::from_bits(&[13, 16]),
                XorFunc::from_bits(&[14, 15, 17, 18]),
                XorFunc::from_bits(&[15, 18]),
            ],
            no4.mapping().row_bits().to_vec(),
            no4.mapping().column_bits().to_vec(),
        )
        .unwrap();
        assert!(!registry.insert(&variant, source(4, "m4-s2-optimized")));
        assert_eq!(registry.canonicalizations(), 2);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn nearest_ranks_by_subspace_containment() {
        let registry = table2_registry();
        let no4 = MachineSetting::by_number(4).unwrap();
        // A rank-deficient partial recovery: two of No.4's three functions.
        let partial: Vec<XorFunc> = no4.mapping().bank_funcs()[..2].to_vec();
        let (hits, cost) = registry.nearest(&partial, 3);
        assert!(!hits.is_empty());
        let top = hits[0];
        assert_eq!(top.partial_rank, 2);
        assert_eq!(
            top.contained, 2,
            "some stored mapping fully contains the partial basis"
        );
        let top_entry = registry.lookup(top.fingerprint).unwrap();
        assert!(
            top_entry.machines().contains("No.4"),
            "No.4 itself explains its own partial recovery: {top_entry:?}"
        );
        assert!(cost.candidates >= hits.len() as u64);
        // The twin agrees.
        assert_eq!(hits, registry.nearest_scan(&partial, 3));
    }

    #[test]
    fn nearest_of_empty_partial_is_empty() {
        let registry = table2_registry();
        assert!(registry.nearest(&[], 3).0.is_empty());
        assert!(registry
            .nearest(&[XorFunc::from_bits(&[13, 16])], 0)
            .0
            .is_empty());
    }

    #[test]
    fn merge_unions_entries_and_sources() {
        let no4 = MachineSetting::by_number(4).unwrap();
        let no7 = MachineSetting::by_number(7).unwrap();
        let mut a = MemRegistry::new();
        a.insert(no4.mapping(), source(4, "m4-s1-fast"));
        let mut b = MemRegistry::new();
        b.insert(no4.mapping(), source(4, "m4-s2-fast"));
        b.insert(no7.mapping(), source(7, "m7-s1-fast"));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        let entry = a
            .entries()
            .find(|e| e.mapping.equivalent_to(no4.mapping()))
            .unwrap();
        assert_eq!(entry.sources.len(), 2);
    }
}
