//! The sharded on-disk registry: append-only segments, per-shard
//! exact-lookup indexes, and an atomic manifest.
//!
//! ```text
//! registry/
//! ├── MANIFEST              # the single publish point (tmp+rename)
//! └── shards/
//!     ├── 00/
//!     │   ├── seg-0001.seg  # immutable record batch (tmp+rename, then
//!     │   ├── seg-0002.seg  #   never touched again)
//!     │   └── index.idx     # fingerprint → segment file, for exact
//!     │                     #   lookup without a full load
//!     └── 01/ …
//! ```
//!
//! Records are routed to shard `fingerprint % shards`. A commit writes the
//! new segment files first, then the refreshed shard indexes, and publishes
//! by rewriting `MANIFEST` last — each step with the write-tmp-then-rename
//! discipline the engine's `CheckpointStore` uses. A crash anywhere before
//! the manifest rename leaves the previous manifest intact: the new files
//! are **orphans** that `open` ignores, `stats` reports, and the retried
//! import simply overwrites (same shard routing ⇒ same segment numbers).
//! Readers resolve every index reference against the manifest, so an index
//! written just before a crash can never leak an unpublished segment.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use dram_model::fingerprint::fnv1a64;

use crate::mem::MemRegistry;
use crate::segment::{decode_segment, encode_segment, Record};
use crate::RegistryError;

/// Magic first line of the manifest.
pub const MANIFEST_HEADER: &str = "# dramdig registry manifest";
const MANIFEST_VERSION: u32 = 1;
const MANIFEST_FILE: &str = "MANIFEST";
const INDEX_FILE: &str = "index.idx";

/// One sealed segment, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Shard the segment belongs to.
    pub shard: u32,
    /// File name inside the shard directory, e.g. `seg-0001.seg`.
    pub file: String,
    /// Number of records in the segment.
    pub records: u64,
    /// FNV-1a checksum of the segment file bytes.
    pub checksum: u64,
}

/// The published state of a registry directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Number of shards records are routed across.
    pub shards: u32,
    /// Every sealed segment, in publish order.
    pub segments: Vec<SegmentMeta>,
}

impl Manifest {
    /// Total records across all sealed segments.
    pub fn total_records(&self) -> u64 {
        self.segments.iter().map(|s| s.records).sum()
    }

    fn encode(&self) -> String {
        let mut out = format!("{MANIFEST_HEADER}\nversion = {MANIFEST_VERSION}\n");
        out.push_str(&format!("shards = {}\n", self.shards));
        for seg in &self.segments {
            out.push_str(&format!(
                "segment = {:02}/{} records={} fnv={:016x}\n",
                seg.shard, seg.file, seg.records, seg.checksum
            ));
        }
        out
    }

    fn decode(text: &str) -> Result<Self, RegistryError> {
        let mut shards: Option<u32> = None;
        let mut version: Option<u32> = None;
        let mut segments = Vec::new();
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(RegistryError::corrupt(format!(
                    "manifest: expected `key = value`, got `{line}`"
                )));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "version" => {
                    version = Some(value.parse().map_err(|e| {
                        RegistryError::corrupt(format!("manifest version `{value}`: {e}"))
                    })?)
                }
                "shards" => {
                    shards = Some(value.parse().map_err(|e| {
                        RegistryError::corrupt(format!("manifest shards `{value}`: {e}"))
                    })?)
                }
                "segment" => segments.push(Self::decode_segment_line(value)?),
                other => {
                    return Err(RegistryError::corrupt(format!(
                        "unknown manifest key `{other}`"
                    )))
                }
            }
        }
        match version {
            Some(MANIFEST_VERSION) => {}
            Some(v) => {
                return Err(RegistryError::corrupt(format!(
                    "unsupported manifest version {v}"
                )))
            }
            None => return Err(RegistryError::corrupt("manifest missing version")),
        }
        let shards = shards.ok_or_else(|| RegistryError::corrupt("manifest missing shards"))?;
        if shards == 0 || shards > 99 {
            return Err(RegistryError::corrupt(format!(
                "shard count {shards} outside 1..=99"
            )));
        }
        Ok(Manifest { shards, segments })
    }

    fn decode_segment_line(value: &str) -> Result<SegmentMeta, RegistryError> {
        let corrupt = |detail: &str| {
            RegistryError::corrupt(format!("manifest segment line `{value}`: {detail}"))
        };
        let mut parts = value.split_whitespace();
        let path = parts.next().ok_or_else(|| corrupt("missing path"))?;
        let (shard, file) = path
            .split_once('/')
            .ok_or_else(|| corrupt("path is not `shard/file`"))?;
        let shard: u32 = shard.parse().map_err(|_| corrupt("bad shard number"))?;
        let mut records: Option<u64> = None;
        let mut checksum: Option<u64> = None;
        for part in parts {
            if let Some(v) = part.strip_prefix("records=") {
                records = Some(v.parse().map_err(|_| corrupt("bad records count"))?);
            } else if let Some(v) = part.strip_prefix("fnv=") {
                checksum = Some(u64::from_str_radix(v, 16).map_err(|_| corrupt("bad checksum"))?);
            } else {
                return Err(corrupt("unknown attribute"));
            }
        }
        Ok(SegmentMeta {
            shard,
            file: file.to_string(),
            records: records.ok_or_else(|| corrupt("missing records="))?,
            checksum: checksum.ok_or_else(|| corrupt("missing fnv="))?,
        })
    }
}

/// What one append actually published.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReport {
    /// Segment files written (one per shard that received records).
    pub segments_written: u32,
    /// Records appended across those segments.
    pub records_appended: u64,
}

/// Summary counters for `registry stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskStats {
    /// Configured shard count.
    pub shards: u32,
    /// Sealed segments in the manifest.
    pub segments: u64,
    /// Records across sealed segments.
    pub records: u64,
    /// Segment files on disk the manifest does not know about (crash
    /// leftovers; the next import overwrites them).
    pub orphans: Vec<String>,
}

/// A registry directory opened for reading and appending.
#[derive(Debug)]
pub struct DiskRegistry {
    dir: PathBuf,
    manifest: Manifest,
}

fn write_atomic(path: &Path, contents: &str) -> Result<(), RegistryError> {
    let staged = path.with_extension("tmp");
    fs::write(&staged, contents)
        .and_then(|()| fs::rename(&staged, path))
        .map_err(|e| RegistryError::io(path, e))
}

impl DiskRegistry {
    /// Initializes an empty registry with `shards` shards (1..=99) in
    /// `dir`, creating the directory tree and publishing an empty manifest.
    ///
    /// # Errors
    ///
    /// Fails when a manifest already exists in `dir`, when `shards` is out
    /// of range, or on I/O errors.
    pub fn create(dir: impl Into<PathBuf>, shards: u32) -> Result<Self, RegistryError> {
        let dir = dir.into();
        if !(1..=99).contains(&shards) {
            return Err(RegistryError::corrupt(format!(
                "shard count {shards} outside 1..=99"
            )));
        }
        if dir.join(MANIFEST_FILE).exists() {
            return Err(RegistryError::corrupt(format!(
                "registry already initialized at {}",
                dir.display()
            )));
        }
        for shard in 0..shards {
            let shard_dir = dir.join("shards").join(format!("{shard:02}"));
            fs::create_dir_all(&shard_dir).map_err(|e| RegistryError::io(&shard_dir, e))?;
        }
        let manifest = Manifest {
            shards,
            segments: Vec::new(),
        };
        write_atomic(&dir.join(MANIFEST_FILE), &manifest.encode())?;
        Ok(DiskRegistry { dir, manifest })
    }

    /// Opens an existing registry directory by reading its manifest.
    ///
    /// # Errors
    ///
    /// Fails when the manifest is missing or malformed.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let dir = dir.into();
        let manifest_path = dir.join(MANIFEST_FILE);
        let text =
            fs::read_to_string(&manifest_path).map_err(|e| RegistryError::io(&manifest_path, e))?;
        let manifest = Manifest::decode(&text)?;
        Ok(DiskRegistry { dir, manifest })
    }

    /// Opens `dir` if initialized, otherwise creates it with `shards`.
    ///
    /// # Errors
    ///
    /// Propagates [`DiskRegistry::open`] / [`DiskRegistry::create`] errors.
    pub fn open_or_create(dir: impl Into<PathBuf>, shards: u32) -> Result<Self, RegistryError> {
        let dir = dir.into();
        if dir.join(MANIFEST_FILE).exists() {
            DiskRegistry::open(dir)
        } else {
            DiskRegistry::create(dir, shards)
        }
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The published manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Configured shard count.
    pub fn shards(&self) -> u32 {
        self.manifest.shards
    }

    fn shard_of(&self, fingerprint: u64) -> u32 {
        (fingerprint % u64::from(self.manifest.shards)) as u32
    }

    fn shard_dir(&self, shard: u32) -> PathBuf {
        self.dir.join("shards").join(format!("{shard:02}"))
    }

    /// Appends `records` and publishes them atomically.
    ///
    /// # Errors
    ///
    /// On I/O failure nothing is published: the previous manifest stays in
    /// force and any files already written are orphans.
    pub fn append(&mut self, records: &[Record]) -> Result<AppendReport, RegistryError> {
        self.append_with_fault(records, None)
    }

    /// [`DiskRegistry::append`] with deterministic fault injection: when
    /// `crash_after` is `Some(n)`, the append stops with an error after
    /// writing `n` segment files and **before** publishing the manifest —
    /// exactly the window a real crash would hit. CI uses this to verify
    /// manifest recovery.
    ///
    /// # Errors
    ///
    /// As [`DiskRegistry::append`], plus the injected fault.
    pub fn append_with_fault(
        &mut self,
        records: &[Record],
        crash_after: Option<usize>,
    ) -> Result<AppendReport, RegistryError> {
        if records.is_empty() {
            return Ok(AppendReport {
                segments_written: 0,
                records_appended: 0,
            });
        }
        // Route records to shards, preserving input order within a shard.
        let mut by_shard: BTreeMap<u32, Vec<&Record>> = BTreeMap::new();
        for record in records {
            by_shard
                .entry(self.shard_of(record.fingerprint))
                .or_default()
                .push(record);
        }
        // 1. Write the new segment files (invisible until the manifest
        //    rename below).
        let mut pending: Vec<SegmentMeta> = Vec::new();
        let mut written = 0usize;
        for (&shard, shard_records) in &by_shard {
            let existing = self
                .manifest
                .segments
                .iter()
                .filter(|s| s.shard == shard)
                .count();
            let file = format!("seg-{:04}.seg", existing + 1);
            let body = encode_segment(
                &shard_records
                    .iter()
                    .map(|r| (*r).clone())
                    .collect::<Vec<_>>(),
            );
            write_atomic(&self.shard_dir(shard).join(&file), &body)?;
            pending.push(SegmentMeta {
                shard,
                file,
                records: shard_records.len() as u64,
                checksum: fnv1a64(body.as_bytes()),
            });
            written += 1;
            if crash_after == Some(written) {
                return Err(RegistryError::corrupt(format!(
                    "fault injection: crashed after {written} segment file(s), before manifest publish"
                )));
            }
        }
        // 2. Refresh the per-shard exact-lookup indexes. An index may now
        //    reference not-yet-published segments; readers filter index
        //    entries against the manifest, so this is harmless if we crash
        //    here.
        for (&shard, shard_records) in &by_shard {
            let meta = pending.iter().find(|m| m.shard == shard).expect("written");
            let mut pairs = self.read_index(shard)?;
            for record in shard_records {
                pairs.insert((record.fingerprint, meta.file.clone()));
            }
            let mut body = String::from("# dramdig registry shard index\n");
            for (fp, file) in &pairs {
                body.push_str(&format!("{fp:016x} {file}\n"));
            }
            write_atomic(&self.shard_dir(shard).join(INDEX_FILE), &body)?;
        }
        // 3. Publish: the manifest rename is the commit point.
        let mut next = self.manifest.clone();
        next.segments.extend(pending);
        write_atomic(&self.dir.join(MANIFEST_FILE), &next.encode())?;
        self.manifest = next;
        Ok(AppendReport {
            segments_written: written as u32,
            records_appended: records.len() as u64,
        })
    }

    fn read_index(
        &self,
        shard: u32,
    ) -> Result<std::collections::BTreeSet<(u64, String)>, RegistryError> {
        let path = self.shard_dir(shard).join(INDEX_FILE);
        let mut pairs = std::collections::BTreeSet::new();
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(pairs),
            Err(e) => return Err(RegistryError::io(&path, e)),
        };
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((fp, file)) = line.split_once(' ') else {
                return Err(RegistryError::corrupt(format!(
                    "shard {shard} index line `{line}`"
                )));
            };
            let fp = u64::from_str_radix(fp, 16).map_err(|e| {
                RegistryError::corrupt(format!("shard {shard} index fingerprint `{fp}`: {e}"))
            })?;
            pairs.insert((fp, file.to_string()));
        }
        Ok(pairs)
    }

    fn read_segment(&self, meta: &SegmentMeta) -> Result<Vec<Record>, RegistryError> {
        let path = self.shard_dir(meta.shard).join(&meta.file);
        let body = fs::read_to_string(&path).map_err(|e| RegistryError::io(&path, e))?;
        let checksum = fnv1a64(body.as_bytes());
        if checksum != meta.checksum {
            return Err(RegistryError::corrupt(format!(
                "segment {:02}/{} checksum {checksum:016x} != manifest {:016x}",
                meta.shard, meta.file, meta.checksum
            )));
        }
        let records = decode_segment(&body)?;
        if records.len() as u64 != meta.records {
            return Err(RegistryError::corrupt(format!(
                "segment {:02}/{} holds {} records, manifest says {}",
                meta.shard,
                meta.file,
                records.len(),
                meta.records
            )));
        }
        Ok(records)
    }

    /// Folds every published segment into an in-memory registry, verifying
    /// checksums and record counts along the way.
    ///
    /// # Errors
    ///
    /// Fails on unreadable, corrupt or miscounted segments.
    pub fn load(&self) -> Result<MemRegistry, RegistryError> {
        let mut mem = MemRegistry::new();
        for meta in &self.manifest.segments {
            for record in self.read_segment(meta)? {
                mem.insert(&record.mapping, record.source);
            }
        }
        Ok(mem)
    }

    /// Exact-fingerprint lookup through the per-shard index: decodes only
    /// the published segments the index names for this fingerprint.
    ///
    /// # Errors
    ///
    /// Fails on unreadable or corrupt index/segment files.
    pub fn lookup(&self, fingerprint: u64) -> Result<Vec<Record>, RegistryError> {
        let shard = self.shard_of(fingerprint);
        let pairs = self.read_index(shard)?;
        let mut out = Vec::new();
        for (fp, file) in pairs {
            if fp != fingerprint {
                continue;
            }
            // Resolve against the manifest: ignore index entries pointing
            // at unpublished (orphan) segments.
            let Some(meta) = self
                .manifest
                .segments
                .iter()
                .find(|m| m.shard == shard && m.file == file)
            else {
                continue;
            };
            out.extend(
                self.read_segment(meta)?
                    .into_iter()
                    .filter(|r| r.fingerprint == fingerprint),
            );
        }
        Ok(out)
    }

    /// Segment files present on disk but absent from the manifest — the
    /// residue of a crashed import. Reported as `shard/file` strings in
    /// sorted order.
    ///
    /// # Errors
    ///
    /// Fails when a shard directory cannot be read.
    pub fn orphan_segments(&self) -> Result<Vec<String>, RegistryError> {
        let mut orphans = Vec::new();
        for shard in 0..self.manifest.shards {
            let shard_dir = self.shard_dir(shard);
            let entries = match fs::read_dir(&shard_dir) {
                Ok(entries) => entries,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(RegistryError::io(&shard_dir, e)),
            };
            for entry in entries {
                let entry = entry.map_err(|e| RegistryError::io(&shard_dir, e))?;
                let name = entry.file_name().to_string_lossy().into_owned();
                if !name.ends_with(".seg") {
                    continue;
                }
                let published = self
                    .manifest
                    .segments
                    .iter()
                    .any(|m| m.shard == shard && m.file == name);
                if !published {
                    orphans.push(format!("{shard:02}/{name}"));
                }
            }
        }
        orphans.sort();
        Ok(orphans)
    }

    /// Summary counters for `registry stats`.
    ///
    /// # Errors
    ///
    /// Fails when shard directories cannot be scanned for orphans.
    pub fn stats(&self) -> Result<DiskStats, RegistryError> {
        Ok(DiskStats {
            shards: self.manifest.shards,
            segments: self.manifest.segments.len() as u64,
            records: self.manifest.total_records(),
            orphans: self.orphan_segments()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Source;
    use dram_model::MachineSetting;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dramdig-registry-disk-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn table2_records() -> Vec<Record> {
        (1..=9u8)
            .map(|n| {
                Record::new(
                    MachineSetting::by_number(n).unwrap().mapping(),
                    Source::new(format!("No.{n}"), format!("m{n}-s1-optimized")),
                )
            })
            .collect()
    }

    #[test]
    fn create_append_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let mut disk = DiskRegistry::create(&dir, 4).unwrap();
        let records = table2_records();
        let report = disk.append(&records).unwrap();
        assert_eq!(report.records_appended, records.len() as u64);
        assert!(report.segments_written >= 1);

        let mut expected = MemRegistry::new();
        for r in &records {
            expected.insert(&r.mapping, r.source.clone());
        }
        let loaded = DiskRegistry::open(&dir).unwrap().load().unwrap();
        assert_eq!(loaded, expected);
        // Exact lookup goes through the per-shard index.
        for r in &records {
            let found = disk.lookup(r.fingerprint).unwrap();
            assert!(found.iter().any(|f| f.source == r.source));
        }
        assert!(disk.lookup(0).unwrap().is_empty());
        let stats = disk.stats().unwrap();
        assert_eq!(stats.records, records.len() as u64);
        assert!(stats.orphans.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashed_import_leaves_orphans_and_recovers() {
        let dir = temp_dir("crash");
        let mut disk = DiskRegistry::create(&dir, 4).unwrap();
        let records = table2_records();
        let err = disk.append_with_fault(&records, Some(1)).unwrap_err();
        assert!(err.to_string().contains("fault injection"), "{err}");

        // The manifest still publishes nothing; the written file is an
        // orphan that load() ignores.
        let reopened = DiskRegistry::open(&dir).unwrap();
        assert!(reopened.manifest().segments.is_empty());
        assert!(reopened.load().unwrap().is_empty());
        let orphans = reopened.orphan_segments().unwrap();
        assert_eq!(orphans.len(), 1, "{orphans:?}");

        // Retrying the import overwrites the orphan and publishes.
        let mut retried = DiskRegistry::open(&dir).unwrap();
        retried.append(&records).unwrap();
        assert!(retried.orphan_segments().unwrap().is_empty());
        assert_eq!(retried.load().unwrap().len(), {
            let mut mem = MemRegistry::new();
            for r in &records {
                mem.insert(&r.mapping, r.source.clone());
            }
            mem.len()
        });
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_detects_tampered_segments() {
        let dir = temp_dir("tamper");
        let mut disk = DiskRegistry::create(&dir, 1).unwrap();
        disk.append(&table2_records()).unwrap();
        let seg = dir.join("shards").join("00").join("seg-0001.seg");
        let mut body = fs::read_to_string(&seg).unwrap();
        body.push_str("# trailing tamper\n");
        fs::write(&seg, body).unwrap();
        let err = DiskRegistry::open(&dir).unwrap().load().unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_count_invariance_on_answers() {
        let records = table2_records();
        let mut loads = Vec::new();
        for shards in [1u32, 3, 8] {
            let dir = temp_dir(&format!("inv{shards}"));
            let mut disk = DiskRegistry::create(&dir, shards).unwrap();
            disk.append(&records).unwrap();
            loads.push(disk.load().unwrap());
            fs::remove_dir_all(&dir).unwrap();
        }
        assert_eq!(loads[0], loads[1]);
        assert_eq!(loads[1], loads[2]);
    }

    #[test]
    fn create_rejects_double_init_and_bad_shards() {
        let dir = temp_dir("double");
        DiskRegistry::create(&dir, 2).unwrap();
        assert!(DiskRegistry::create(&dir, 2).is_err());
        assert!(DiskRegistry::open_or_create(&dir, 7).unwrap().shards() == 2);
        assert!(DiskRegistry::create(temp_dir("zero"), 0).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
