//! The line-oriented query protocol behind `dramdig serve`.
//!
//! Requests are single lines; responses are short `key = value` blocks
//! terminated by a lone `.` line, so a caller can stream many requests
//! over one pipe and split responses without framing metadata. Every
//! response byte is a pure function of the snapshot contents and the
//! request — no clocks, no iteration-order dependence — which is what
//! lets CI run the same query file twice and `cmp` the outputs.
//!
//! Grammar (one request per line, `#` comments and blank lines ignored):
//!
//! ```text
//! sharing <func>                 e.g.  sharing (13, 16)
//! lookup <fingerprint>           e.g.  lookup 21883b63ac0a9714
//! nearest [k=N] <funcs>          e.g.  nearest k=2 (13, 16), (14, 17)
//! stats
//! quit
//! ```

use std::fmt::Write as _;

use dram_model::{parse, XorFunc};
use telemetry::Registry;

use crate::disk::DiskStats;
use crate::shared::{SharedRegistry, Snapshot};

/// Histogram bounds for the deterministic per-query work counter
/// (candidates the inverted index nominated).
pub const CANDIDATE_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// Histogram bounds for wall-clock query latency in nanoseconds. Latency
/// is genuinely nondeterministic, so it is reported only through the
/// metrics sidecar — never in protocol responses.
pub const LATENCY_BOUNDS_NS: &[u64] = &[1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Which machines share this bank function (span membership)?
    Sharing(XorFunc),
    /// Exact content-addressed lookup.
    Lookup(u64),
    /// Nearest stored mappings to a partial (rank-deficient) recovery.
    Nearest {
        /// The partial bank-function basis recovered so far.
        funcs: Vec<XorFunc>,
        /// Maximum hits to return.
        k: usize,
    },
    /// Registry summary counters.
    Stats,
    /// End the session.
    Quit,
}

/// Parses one request line. Returns `Ok(None)` for blank and comment
/// lines.
///
/// # Errors
///
/// Returns a protocol error message (the caller renders it as an `err`
/// response, it is not fatal to the session).
pub fn parse_request(line: &str) -> Result<Option<Request>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((verb, rest)) => (verb, rest.trim()),
        None => (line, ""),
    };
    match verb {
        "sharing" => {
            let funcs =
                parse::parse_functions(rest).map_err(|e| format!("bad function list: {e}"))?;
            if funcs.len() != 1 {
                return Err(format!(
                    "sharing takes exactly one function, got {}",
                    funcs.len()
                ));
            }
            Ok(Some(Request::Sharing(funcs[0])))
        }
        "lookup" => {
            let fingerprint = u64::from_str_radix(rest, 16)
                .map_err(|e| format!("bad fingerprint `{rest}`: {e}"))?;
            Ok(Some(Request::Lookup(fingerprint)))
        }
        "nearest" => {
            let (k, funcs_text) = match rest.strip_prefix("k=") {
                Some(tail) => {
                    let (k, funcs_text) = tail
                        .split_once(char::is_whitespace)
                        .ok_or_else(|| "nearest k=N needs a function list".to_string())?;
                    let k: usize = k.parse().map_err(|e| format!("bad k `{k}`: {e}"))?;
                    (k, funcs_text.trim())
                }
                None => (3, rest),
            };
            let funcs = parse::parse_functions(funcs_text)
                .map_err(|e| format!("bad function list: {e}"))?;
            if funcs.is_empty() {
                return Err("nearest needs at least one function".to_string());
            }
            Ok(Some(Request::Nearest { funcs, k }))
        }
        "stats" if rest.is_empty() => Ok(Some(Request::Stats)),
        "quit" if rest.is_empty() => Ok(Some(Request::Quit)),
        other => Err(format!("unknown verb `{other}`")),
    }
}

fn render_funcs(funcs: &[XorFunc]) -> String {
    funcs
        .iter()
        .map(XorFunc::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Answers one request against a snapshot. The response is terminated by
/// a `.` line and is byte-deterministic for a given snapshot and request.
/// Deterministic work counters go into `metrics`.
pub fn respond(
    snapshot: &Snapshot,
    stats: &DiskStats,
    request: &Request,
    metrics: &mut Registry,
) -> String {
    metrics.counter_add("registry_requests_total", 1);
    let mut out = String::new();
    match request {
        Request::Sharing(func) => {
            metrics.counter_add("registry_requests_sharing", 1);
            let (entries, cost) = snapshot.mem.entries_sharing_costed(*func);
            metrics.observe(
                "registry_query_candidates",
                CANDIDATE_BOUNDS,
                cost.candidates,
            );
            let mut machines = std::collections::BTreeSet::new();
            for entry in &entries {
                machines.extend(entry.machines());
            }
            let _ = writeln!(out, "ok sharing {func}");
            let _ = writeln!(
                out,
                "machines = {}",
                machines.iter().copied().collect::<Vec<_>>().join(", ")
            );
            let _ = writeln!(out, "entries = {}", entries.len());
            let _ = writeln!(out, "candidates = {}", cost.candidates);
        }
        Request::Lookup(fingerprint) => {
            metrics.counter_add("registry_requests_lookup", 1);
            let _ = writeln!(out, "ok lookup {fingerprint:016x}");
            match snapshot.mem.lookup(*fingerprint) {
                Some(entry) => {
                    let (funcs, rows, cols) = parse::render_mapping(&entry.mapping);
                    let _ = writeln!(out, "funcs = {funcs}");
                    let _ = writeln!(out, "rows = {rows}");
                    let _ = writeln!(out, "cols = {cols}");
                    let sources: Vec<String> =
                        entry.sources.iter().map(|s| s.to_string()).collect();
                    let _ = writeln!(out, "sources = {}", sources.join(", "));
                }
                None => {
                    let _ = writeln!(out, "not-found");
                }
            }
        }
        Request::Nearest { funcs, k } => {
            metrics.counter_add("registry_requests_nearest", 1);
            let (hits, cost) = snapshot.mem.nearest(funcs, *k);
            metrics.observe(
                "registry_query_candidates",
                CANDIDATE_BOUNDS,
                cost.candidates,
            );
            let partial_rank = hits.first().map_or_else(
                || {
                    let masks: Vec<u64> = funcs.iter().map(|f| f.mask()).collect();
                    dram_model::gf2::bitslice::reduced_row_basis(&masks).len() as u8
                },
                |h| h.partial_rank,
            );
            let _ = writeln!(
                out,
                "ok nearest k={k} partial=[{}] rank={partial_rank}",
                render_funcs(funcs)
            );
            for hit in &hits {
                let machines = snapshot
                    .mem
                    .lookup(hit.fingerprint)
                    .map(|e| e.machines().iter().copied().collect::<Vec<_>>().join(","))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "hit = {:016x} contained={}/{} rank={} machines={machines}",
                    hit.fingerprint, hit.contained, hit.partial_rank, hit.rank
                );
            }
            let _ = writeln!(out, "hits = {}", hits.len());
        }
        Request::Stats => {
            metrics.counter_add("registry_requests_stats", 1);
            let _ = writeln!(out, "ok stats");
            let _ = writeln!(out, "entries = {}", snapshot.mem.len());
            let _ = writeln!(out, "shards = {}", stats.shards);
            let _ = writeln!(out, "segments = {}", stats.segments);
            let _ = writeln!(out, "records = {}", stats.records);
            let _ = writeln!(out, "orphans = {}", stats.orphans.len());
            let _ = writeln!(out, "generation = {}", snapshot.generation);
        }
        Request::Quit => {
            let _ = writeln!(out, "ok quit");
        }
    }
    out.push_str(".\n");
    out
}

/// Runs a whole serve session over a text input: one request per line,
/// responses concatenated in order, stopping after `quit`. The snapshot is
/// taken **once** — every response in a session answers against the same
/// consistent view, and the session output is byte-deterministic.
///
/// # Errors
///
/// Fails only when disk stats cannot be gathered; per-request problems
/// become in-band `err` responses.
pub fn serve_text(
    input: &str,
    shared: &SharedRegistry,
    metrics: &mut Registry,
) -> Result<String, crate::RegistryError> {
    let snapshot = shared.snapshot();
    let stats = shared.stats()?;
    metrics.gauge_set("registry_shards", i64::from(stats.shards));
    metrics.gauge_set("registry_entries", snapshot.mem.len() as i64);
    metrics.gauge_set("registry_segments", stats.segments as i64);
    metrics.gauge_set("registry_records", stats.records as i64);
    let mut out = String::new();
    for line in input.lines() {
        let started = std::time::Instant::now();
        match parse_request(line) {
            Ok(None) => continue,
            Ok(Some(request)) => {
                let quit = request == Request::Quit;
                out.push_str(&respond(&snapshot, &stats, &request, metrics));
                metrics.observe(
                    "registry_query_latency_ns",
                    LATENCY_BOUNDS_NS,
                    started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                );
                if quit {
                    break;
                }
            }
            Err(message) => {
                metrics.counter_add("registry_requests_err", 1);
                out.push_str(&format!("err {message}\n.\n"));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::Record;
    use crate::source::Source;
    use dram_model::MachineSetting;
    use std::fs;

    fn temp_registry(name: &str) -> (std::path::PathBuf, SharedRegistry) {
        let dir = std::env::temp_dir().join(format!(
            "dramdig-registry-query-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let shared = SharedRegistry::create(&dir, 3).unwrap();
        let records: Vec<Record> = (1..=9u8)
            .map(|n| {
                Record::new(
                    MachineSetting::by_number(n).unwrap().mapping(),
                    Source::new(format!("No.{n}"), format!("m{n}-s1-optimized")),
                )
            })
            .collect();
        shared.publish(&records).unwrap();
        (dir, shared)
    }

    #[test]
    fn parses_the_grammar() {
        assert_eq!(parse_request("").unwrap(), None);
        assert_eq!(parse_request("# comment").unwrap(), None);
        assert_eq!(
            parse_request("sharing (13, 16)").unwrap(),
            Some(Request::Sharing(XorFunc::from_bits(&[13, 16])))
        );
        assert_eq!(
            parse_request("lookup 00ff").unwrap(),
            Some(Request::Lookup(0xff))
        );
        assert_eq!(
            parse_request("nearest k=2 (13, 16), (14, 17)").unwrap(),
            Some(Request::Nearest {
                funcs: vec![XorFunc::from_bits(&[13, 16]), XorFunc::from_bits(&[14, 17])],
                k: 2
            })
        );
        assert_eq!(parse_request("stats").unwrap(), Some(Request::Stats));
        assert_eq!(parse_request("quit").unwrap(), Some(Request::Quit));
        assert!(parse_request("sharing").is_err());
        assert!(parse_request("sharing (1), (2)").is_err());
        assert!(parse_request("lookup zz").is_err());
        assert!(parse_request("nearest k=2").is_err());
        assert!(parse_request("frobnicate").is_err());
        assert!(parse_request("stats now").is_err());
    }

    #[test]
    fn serve_session_is_byte_deterministic() {
        let (dir, shared) = temp_registry("determinism");
        let session = "\
# a comment
sharing (14, 18)
sharing (2, 3)
nearest k=2 (13, 16), (14, 17)
lookup 0000000000000000
stats
bogus verb
quit
sharing (14, 18)
";
        let mut m1 = Registry::new();
        let mut m2 = Registry::new();
        let out1 = serve_text(session, &shared, &mut m1).unwrap();
        let out2 = serve_text(session, &shared, &mut m2).unwrap();
        assert_eq!(out1, out2, "responses must be byte-deterministic");
        // The `quit` ends the session: the trailing request is unanswered.
        assert_eq!(out1.matches("ok sharing").count(), 2);
        assert!(out1.contains("machines = No.2, No.3, No.5"));
        assert!(out1.contains("machines = \n"), "empty result renders");
        assert!(out1.contains("not-found"));
        assert!(out1.contains("err unknown verb `bogus`"));
        assert!(out1.contains("ok quit"));
        // Every response block is dot-terminated.
        assert_eq!(
            out1.matches("\n.\n").count(),
            7,
            "7 answered requests: {out1}"
        );
        assert_eq!(m1.counter("registry_requests_total"), 6);
        assert_eq!(m1.counter("registry_requests_err"), 1);
        assert!(m1.histogram_count("registry_query_candidates") >= 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lookup_round_trips_through_the_protocol() {
        let (dir, shared) = temp_registry("lookup");
        let snap = shared.snapshot();
        let entry = snap.mem.entries().next().unwrap();
        let mut metrics = Registry::new();
        let out = serve_text(
            &format!("lookup {:016x}\n", entry.fingerprint),
            &shared,
            &mut metrics,
        )
        .unwrap();
        let (funcs, rows, cols) = parse::render_mapping(&entry.mapping);
        assert!(out.contains(&format!("funcs = {funcs}")));
        assert!(out.contains(&format!("rows = {rows}")));
        assert!(out.contains(&format!("cols = {cols}")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nearest_answers_rank_deficient_queries() {
        let (dir, shared) = temp_registry("nearest");
        let no4 = MachineSetting::by_number(4).unwrap();
        let partial = render_funcs(&no4.mapping().bank_funcs()[..2]);
        let mut metrics = Registry::new();
        let out = serve_text(&format!("nearest k=1 {partial}\n"), &shared, &mut metrics).unwrap();
        assert!(out.contains("contained=2/2"), "{out}");
        assert!(out.contains("machines=No.4"), "{out}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
