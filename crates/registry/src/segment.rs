//! The append-only segment codec.
//!
//! A segment is an immutable plain-text file holding a batch of records.
//! Each record is one `(mapping, source)` attribution — a new source for an
//! already-known mapping appends a new record rather than rewriting an old
//! segment, which is what keeps segments immutable and the read path
//! snapshot-friendly. Deduplication happens when segments are folded into a
//! [`crate::MemRegistry`]. Every record carries its fingerprint
//! redundantly; the decoder recomputes it from the mapping and rejects the
//! segment on mismatch, so silent corruption cannot re-key an entry.

use std::collections::BTreeSet;

use dram_model::fingerprint::{canonicalize, mapping_fingerprint};
use dram_model::{parse, AddressMapping};

use crate::source::Source;
use crate::RegistryError;

/// Magic first line of every segment file.
pub const SEGMENT_HEADER: &str = "# dramdig registry segment";

/// One `(mapping, source)` attribution, with the mapping already in
/// canonical (reduced-basis) form.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Content-addressed identity of the mapping.
    pub fingerprint: u64,
    /// The canonical mapping.
    pub mapping: AddressMapping,
    /// The source attributing this mapping.
    pub source: Source,
}

impl Record {
    /// Builds a record, canonicalizing `mapping` and fingerprinting it.
    pub fn new(mapping: &AddressMapping, source: Source) -> Self {
        Record {
            fingerprint: mapping_fingerprint(mapping),
            mapping: canonicalize(mapping),
            source,
        }
    }
}

/// Serializes a batch of records into one segment file body.
pub fn encode_segment(records: &[Record]) -> String {
    let mut out = String::from(SEGMENT_HEADER);
    out.push('\n');
    for record in records {
        let (funcs, rows, cols) = parse::render_mapping(&record.mapping);
        out.push_str("\n[record]\n");
        out.push_str(&format!("fingerprint = {:016x}\n", record.fingerprint));
        out.push_str(&format!("funcs = {funcs}\n"));
        out.push_str(&format!("rows = {rows}\n"));
        out.push_str(&format!("cols = {cols}\n"));
        out.push_str(&format!("source = {}\n", record.source));
    }
    out
}

/// Parses a segment file body written by [`encode_segment`], verifying the
/// stored fingerprint of every record against the mapping it claims to
/// name.
///
/// # Errors
///
/// Returns [`RegistryError::Corrupt`] on malformed sections or on a
/// fingerprint that does not match its mapping.
pub fn decode_segment(text: &str) -> Result<Vec<Record>, RegistryError> {
    let mut records = Vec::new();
    let mut fingerprint: Option<String> = None;
    let mut funcs: Option<String> = None;
    let mut rows: Option<String> = None;
    let mut cols: Option<String> = None;
    let mut source: Option<String> = None;

    let flush = |fingerprint: &mut Option<String>,
                 funcs: &mut Option<String>,
                 rows: &mut Option<String>,
                 cols: &mut Option<String>,
                 source: &mut Option<String>|
     -> Result<Option<Record>, RegistryError> {
        let started = fingerprint.is_some()
            || funcs.is_some()
            || rows.is_some()
            || cols.is_some()
            || source.is_some();
        if !started {
            return Ok(None);
        }
        let (Some(fp), Some(f), Some(r), Some(c), Some(s)) = (
            fingerprint.take(),
            funcs.take(),
            rows.take(),
            cols.take(),
            source.take(),
        ) else {
            return Err(RegistryError::corrupt("incomplete [record] section"));
        };
        let fp = u64::from_str_radix(&fp, 16)
            .map_err(|e| RegistryError::corrupt(format!("bad fingerprint `{fp}`: {e}")))?;
        let mapping = parse::parse_mapping(&f, &r, &c)
            .map_err(|e| RegistryError::corrupt(format!("invalid stored mapping: {e}")))?;
        let expected = mapping_fingerprint(&mapping);
        if expected != fp {
            return Err(RegistryError::corrupt(format!(
                "fingerprint {fp:016x} does not match its mapping (expected {expected:016x})"
            )));
        }
        let source = Source::parse(&s).map_err(RegistryError::corrupt)?;
        Ok(Some(Record {
            fingerprint: fp,
            mapping: canonicalize(&mapping),
            source,
        }))
    };

    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[record]" {
            if let Some(record) = flush(
                &mut fingerprint,
                &mut funcs,
                &mut rows,
                &mut cols,
                &mut source,
            )? {
                records.push(record);
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(RegistryError::corrupt(format!(
                "expected `key = value`, got `{line}`"
            )));
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "fingerprint" => fingerprint = Some(value.to_string()),
            "funcs" => funcs = Some(value.to_string()),
            "rows" => rows = Some(value.to_string()),
            "cols" => cols = Some(value.to_string()),
            "source" => source = Some(value.to_string()),
            other => {
                return Err(RegistryError::corrupt(format!(
                    "unknown segment key `{other}`"
                )))
            }
        }
    }
    if let Some(record) = flush(
        &mut fingerprint,
        &mut funcs,
        &mut rows,
        &mut cols,
        &mut source,
    )? {
        records.push(record);
    }
    Ok(records)
}

/// Deduplicates records that name the same `(fingerprint, source)` pair,
/// preserving first-seen order. Used by importers so a retried import does
/// not write byte-for-byte duplicate attributions.
pub fn dedup_records(records: Vec<Record>) -> Vec<Record> {
    let mut seen: BTreeSet<(u64, Source)> = BTreeSet::new();
    records
        .into_iter()
        .filter(|r| seen.insert((r.fingerprint, r.source.clone())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::MachineSetting;

    fn records() -> Vec<Record> {
        (1..=4u8)
            .map(|n| {
                Record::new(
                    MachineSetting::by_number(n).unwrap().mapping(),
                    Source::new(format!("No.{n}"), format!("m{n}-s1-optimized")),
                )
            })
            .collect()
    }

    #[test]
    fn segment_round_trips() {
        let records = records();
        let encoded = encode_segment(&records);
        assert!(encoded.starts_with(SEGMENT_HEADER));
        let decoded = decode_segment(&encoded).unwrap();
        assert_eq!(decoded, records);
        // The empty segment round-trips too.
        assert!(decode_segment(&encode_segment(&[])).unwrap().is_empty());
    }

    #[test]
    fn decode_rejects_fingerprint_mismatch() {
        let records = records();
        let encoded = encode_segment(&records);
        // Flip one hex digit of the first fingerprint.
        let line = encoded
            .lines()
            .find(|l| l.starts_with("fingerprint"))
            .unwrap()
            .to_string();
        let digit = line.chars().last().unwrap();
        let flipped = if digit == '0' { '1' } else { '0' };
        let mut tampered_line = line.clone();
        tampered_line.pop();
        tampered_line.push(flipped);
        let tampered = encoded.replacen(&line, &tampered_line, 1);
        let err = decode_segment(&tampered).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
    }

    #[test]
    fn decode_rejects_malformed_segments() {
        assert!(decode_segment("[record]\nfuncs = (13, 16)\n").is_err());
        assert!(decode_segment("garbage\n").is_err());
        assert!(decode_segment("wat = 1\n").is_err());
    }

    #[test]
    fn dedup_drops_repeat_attributions() {
        let mut twice = records();
        twice.extend(records());
        assert_eq!(dedup_records(twice), records());
    }
}
