//! Where a registered mapping came from.

use std::fmt;

/// One attribution of a mapping: a machine label and the job (or import)
/// that recovered it. Rendered as `machine:job`, e.g. `No.4:m4-s1-optimized`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Source {
    /// Machine label, e.g. `No.4`.
    pub machine: String,
    /// Job id, e.g. `m4-s1-optimized`.
    pub job: String,
}

impl Source {
    /// Builds a source from its two components.
    pub fn new(machine: impl Into<String>, job: impl Into<String>) -> Self {
        Source {
            machine: machine.into(),
            job: job.into(),
        }
    }

    /// Parses the `machine:job` rendering.
    ///
    /// # Errors
    ///
    /// Returns a message when `text` is not two non-empty components
    /// separated by `:`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let Some((machine, job)) = text.split_once(':') else {
            return Err(format!("source `{text}` is not `machine:job`"));
        };
        if machine.is_empty() || job.is_empty() {
            return Err(format!("empty source component in `{text}`"));
        }
        Ok(Source::new(machine, job))
    }
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.machine, self.job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_rejects_malformed() {
        let source = Source::new("No.4", "m4-s1-optimized");
        assert_eq!(source.to_string(), "No.4:m4-s1-optimized");
        assert_eq!(Source::parse("No.4:m4-s1-optimized").unwrap(), source);
        assert!(Source::parse("No.4").is_err());
        assert!(Source::parse(":job").is_err());
        assert!(Source::parse("No.4:").is_err());
    }
}
