//! # Sharded content-addressed mapping registry
//!
//! The campaign layer's `MappingStore` answers fleet-level questions —
//! *which machines share bank function `(13, 16)`?* — but it is a flat
//! in-memory set rebuilt from one journal, and every query is a linear
//! scan. This crate promotes it into a standalone registry subsystem built
//! for many campaigns and many concurrent readers:
//!
//! * **Content-addressed keys** ([`mem`]): a mapping's identity is its
//!   unique reduced row-echelon bank-function basis plus its row/column
//!   bits, fingerprinted with FNV-1a over a fixed codec
//!   ([`dram_model::fingerprint`]). Equivalent recoveries dedup to one
//!   entry no matter which basis a tool reported.
//! * **Function-level inverted index** ([`MemRegistry`]): per-address-bit
//!   bitmaps over dense entry ids — one for basis *support* and one for
//!   basis-row *lead* bits. A span query ANDs the bitmaps of the query's
//!   bits (plus the lead bitmap of its top bit) and verifies survivors
//!   with a branchless XOR-select over a transposed row-by-lead table,
//!   exact because the canonical basis is full Gauss-Jordan RREF; the old
//!   linear scan survives as a differential twin.
//! * **Append-only sharded segments** ([`disk`]): records are routed to
//!   `fingerprint % shards`, written as immutable segment files with a
//!   per-shard exact-lookup index, and published by an atomic
//!   (write-tmp-then-rename) manifest — the same discipline as the
//!   engine's `CheckpointStore`. A crash mid-import leaves orphan segment
//!   files the next open ignores and the next import overwrites.
//! * **Lock-free read path** ([`shared`]): the current state is an
//!   immutable [`Snapshot`] behind an `Arc`. Readers clone the `Arc` once
//!   and evaluate every query without taking the writer lock; writers
//!   build the next snapshot on the side and swap it in.
//! * **A line-oriented query protocol** ([`query`]) with byte-deterministic
//!   responses, serving `sharing` / `lookup` / `nearest` / `stats` for the
//!   `dramdig serve` front end.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;
use std::io;
use std::path::PathBuf;

pub mod disk;
pub mod mem;
pub mod query;
pub mod segment;
pub mod shared;
pub mod source;

pub use disk::{AppendReport, DiskRegistry, DiskStats, Manifest, SegmentMeta};
pub use mem::{CanonicalKey, Entry, MemRegistry, NearestHit, QueryCost};
pub use query::{parse_request, respond, serve_text, Request};
pub use segment::Record;
pub use shared::{SharedRegistry, Snapshot};
pub use source::Source;

/// Errors from the registry's disk layer and codecs.
#[derive(Debug)]
pub enum RegistryError {
    /// An I/O operation failed on `path`.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// On-disk data failed to parse or an integrity check failed.
    Corrupt(String),
}

impl RegistryError {
    pub(crate) fn io(path: impl Into<PathBuf>, source: io::Error) -> Self {
        RegistryError::Io {
            path: path.into(),
            source,
        }
    }

    pub(crate) fn corrupt(message: impl Into<String>) -> Self {
        RegistryError::Corrupt(message.into())
    }
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io { path, source } => {
                write!(f, "registry i/o error on {}: {source}", path.display())
            }
            RegistryError::Corrupt(message) => write!(f, "registry corrupt: {message}"),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Io { source, .. } => Some(source),
            RegistryError::Corrupt(_) => None,
        }
    }
}
