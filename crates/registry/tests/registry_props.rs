//! Property tests of the registry subsystem: the segment codec round-trips
//! any corpus, query answers are invariant under the shard count (sharding
//! is a layout choice, never a semantic one), and concurrent readers always
//! observe internally consistent snapshots while a writer publishes.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use proptest::prelude::*;

use dram_model::{AddressMapping, MachineSetting, XorFunc};
use registry::segment::{decode_segment, encode_segment};
use registry::{DiskRegistry, MemRegistry, Record, SharedRegistry, Source};

/// Distinguishes the temp directories of concurrently running proptest
/// cases (proptest may shrink in-process while other cases' dirs exist).
static CASE: AtomicU64 = AtomicU64::new(0);

fn case_dir(tag: &str, shards: u32) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "dramdig-registry-props-{tag}-{}-{}-{shards}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed),
    ))
}

/// A machine's Table-II mapping presented under a basis variant: XOR-folds
/// adjacent bank functions, which changes the presented rows but never the
/// GF(2) span, so every variant must dedup onto one canonical entry.
fn variant_mapping(machine: u8, v: u8) -> AddressMapping {
    let mapping = MachineSetting::by_number(machine)
        .unwrap()
        .mapping()
        .clone();
    let mut funcs: Vec<XorFunc> = mapping.bank_funcs().to_vec();
    for i in 0..usize::from(v).min(funcs.len().saturating_sub(1)) {
        funcs[i] = funcs[i].combine(funcs[i + 1]);
    }
    AddressMapping::new(
        funcs,
        mapping.row_bits().to_vec(),
        mapping.column_bits().to_vec(),
    )
    .expect("basis change keeps the mapping valid")
}

fn record(machine: u8, v: u8, i: usize) -> Record {
    Record::new(
        &variant_mapping(machine, v),
        Source::new(format!("No.{machine}"), format!("m{machine}-s{i}-fast")),
    )
}

fn corpus(jobs: &[(u8, u8)]) -> Vec<Record> {
    jobs.iter()
        .enumerate()
        .map(|(i, (machine, v))| record(*machine, *v, i))
        .collect()
}

fn query_func(bits: &[u8]) -> XorFunc {
    let bits: Vec<u8> = bits
        .iter()
        .copied()
        .collect::<BTreeSet<u8>>()
        .into_iter()
        .collect();
    XorFunc::from_bits(&bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn segments_round_trip_any_corpus(
        jobs in proptest::collection::vec((1u8..=9, 0u8..4), 0..12),
    ) {
        let records = corpus(&jobs);
        let encoded = encode_segment(&records);
        let decoded = decode_segment(&encoded).unwrap();
        // `Record::new` already canonicalized, so decode is exact ...
        prop_assert_eq!(&decoded, &records);
        // ... and the encoding is a fixed point: re-encoding the decode is
        // byte-identical, the invariant the segment checksum relies on.
        prop_assert_eq!(encode_segment(&decoded), encoded);
    }

    #[test]
    fn query_answers_are_shard_count_invariant(
        jobs in proptest::collection::vec((1u8..=9, 0u8..4), 1..10),
        query_bits in proptest::collection::vec(0u8..22, 1..4),
    ) {
        let records = corpus(&jobs);
        let func = query_func(&query_bits);
        let mut loaded: Vec<MemRegistry> = Vec::new();
        for shards in [1u32, 2, 4, 7] {
            let dir = case_dir("shards", shards);
            let _ = std::fs::remove_dir_all(&dir);
            let mut disk = DiskRegistry::create(&dir, shards).unwrap();
            disk.append(&records).unwrap();
            // Reopen so the state under test comes purely from disk.
            let mem = DiskRegistry::open(&dir).unwrap().load().unwrap();
            std::fs::remove_dir_all(&dir).unwrap();
            loaded.push(mem);
        }
        let base = &loaded[0];
        // The indexed answer and its linear-scan twin agree ...
        prop_assert_eq!(base.machines_sharing(func), base.machines_sharing_scan(func));
        for mem in &loaded[1..] {
            // ... and neither the contents nor any query depend on how the
            // records were sharded.
            prop_assert_eq!(mem, base);
            prop_assert_eq!(mem.machines_sharing(func), base.machines_sharing(func));
            prop_assert_eq!(
                mem.entries_sharing(func).len(),
                base.entries_sharing(func).len()
            );
        }
    }

    #[test]
    fn concurrent_readers_see_consistent_snapshots_under_any_batching(
        jobs in proptest::collection::vec((1u8..=9, 0u8..3), 1..8),
        batch in 1usize..4,
    ) {
        let records = corpus(&jobs);
        let dir = case_dir("readers", 3);
        let _ = std::fs::remove_dir_all(&dir);
        let shared = SharedRegistry::create(&dir, 3).unwrap();
        let func = XorFunc::from_bits(&[14, 18]);
        let stop = AtomicBool::new(false);
        let panicked: Result<(), String> = std::thread::scope(|scope| {
            let mut readers = Vec::new();
            for _ in 0..2 {
                let (shared, stop) = (&shared, &stop);
                readers.push(scope.spawn(move || {
                    let mut last_generation = 0u64;
                    loop {
                        let snap = shared.snapshot();
                        // Generations never move backwards for a reader.
                        if snap.generation < last_generation {
                            return Err("generation went backwards".to_string());
                        }
                        last_generation = snap.generation;
                        // Whatever snapshot we got is internally consistent:
                        // index and scan agree, and the fingerprint index
                        // resolves every entry.
                        if snap.mem.machines_sharing(func) != snap.mem.machines_sharing_scan(func) {
                            return Err("index/scan disagreement".to_string());
                        }
                        for entry in snap.mem.entries() {
                            if snap.mem.lookup(entry.fingerprint).is_none() {
                                return Err(format!("entry {:016x} unresolvable", entry.fingerprint));
                            }
                        }
                        if stop.load(Ordering::Relaxed) {
                            return Ok(());
                        }
                    }
                }));
            }
            for chunk in records.chunks(batch) {
                shared.publish(chunk).unwrap();
            }
            stop.store(true, Ordering::Relaxed);
            for reader in readers {
                reader.join().expect("reader thread")?;
            }
            Ok(())
        });
        prop_assert!(panicked.is_ok(), "{:?}", panicked);
        // The final snapshot equals a registry built by direct insertion.
        let mut direct = MemRegistry::new();
        for r in &records {
            direct.insert(&r.mapping, r.source.clone());
        }
        prop_assert_eq!(&shared.snapshot().mem, &direct);
        // And a reopen from disk agrees with the published snapshot.
        drop(shared);
        let reopened = SharedRegistry::open(&dir).unwrap();
        prop_assert_eq!(&reopened.snapshot().mem, &direct);
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
