//! Property-based tests of the [`ConflictCache`]: symmetry of the pair key
//! and the guarantee that bounded FIFO eviction only ever *forgets* a
//! classification, never corrupts one.

use proptest::prelude::*;

use dram_model::PhysAddr;
use mem_probe::ConflictCache;

/// The deterministic "ground truth" classification of an unordered pair,
/// standing in for what a probe would measure.
fn truth(a: u64, b: u64) -> bool {
    (a ^ b).count_ones().is_multiple_of(2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lookup_is_symmetric_in_the_pair_order(
        pairs in proptest::collection::vec((0u64..1 << 20, 0u64..1 << 20), 1..64),
    ) {
        let mut cache = ConflictCache::new(1 << 12);
        for &(a, b) in &pairs {
            cache.record(PhysAddr::new(a), PhysAddr::new(b), truth(a, b));
        }
        for &(a, b) in &pairs {
            let fwd = cache.lookup(PhysAddr::new(a), PhysAddr::new(b));
            let rev = cache.lookup(PhysAddr::new(b), PhysAddr::new(a));
            prop_assert_eq!(fwd, rev);
            prop_assert_eq!(fwd, Some(truth(a, b)));
        }
    }

    #[test]
    fn eviction_never_changes_a_classification(
        ops in proptest::collection::vec((0u64..256, 0u64..256, any::<bool>()), 1..512),
        capacity in 1usize..32,
    ) {
        // Record classifications drawn from a fixed ground truth through a
        // deliberately tiny cache. However hard eviction churns, a lookup
        // must return either nothing (forgotten, would be re-measured) or
        // the exact ground-truth verdict — never a wrong classification.
        let mut cache = ConflictCache::new(capacity);
        for &(a, b, query) in &ops {
            let (pa, pb) = (PhysAddr::new(a), PhysAddr::new(b));
            if query {
                if let Some(v) = cache.lookup(pa, pb) {
                    prop_assert_eq!(v, truth(a, b), "a={} b={}", a, b);
                }
            } else {
                cache.record(pa, pb, truth(a, b));
            }
            prop_assert!(cache.len() <= capacity);
        }
        // Every surviving entry still matches the ground truth.
        for ((pa, pb), v) in cache.entries() {
            prop_assert_eq!(v, truth(pa.raw(), pb.raw()));
        }
    }

    #[test]
    fn hit_and_miss_counters_partition_all_lookups(
        keys in proptest::collection::vec((0u64..64, 0u64..64), 1..128),
    ) {
        let mut cache = ConflictCache::new(1 << 10);
        let mut lookups = 0u64;
        for &(a, b) in &keys {
            let (pa, pb) = (PhysAddr::new(a), PhysAddr::new(b));
            if cache.lookup(pa, pb).is_none() {
                cache.record(pa, pb, truth(a, b));
            }
            lookups += 1;
        }
        prop_assert_eq!(cache.hits() + cache.misses(), lookups);
    }
}
