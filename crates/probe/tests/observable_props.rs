//! Property-based equivalence of the observable seam: on every Table-II
//! machine, driving queries through [`ConflictTimingObservable`] must be
//! *bit-identical* to calling the wrapped [`ConflictOracle`] directly —
//! same verdicts, same measurement count, same access count, same simulated
//! nanoseconds. This is the guarantee that lets the pipeline engine sit
//! behind the [`Observable`] trait without perturbing any checkpoint,
//! scoreboard or resume artifact.

use proptest::prelude::*;

use dram_model::{MachineSetting, PhysAddr};
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use mem_probe::{
    ConflictOracle, ConflictTimingObservable, LatencyCalibration, MemoryProbe, Observable,
    ObservableQuery, SimProbe,
};

/// Two independently constructed but identically seeded oracle stacks for
/// one Table-II machine: measurement streams diverge only if the callers
/// issue different sequences.
fn oracle_pair(number: u8, sim_seed: u64) -> (ConflictOracle<SimProbe>, ConflictOracle<SimProbe>) {
    let stack = || {
        let setting = MachineSetting::by_number(number).unwrap();
        let machine = SimMachine::from_setting(&setting, SimConfig::default().with_seed(sim_seed));
        let threshold = machine.controller().config().timing.oracle_threshold_ns();
        let probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
        ConflictOracle::new(probe, LatencyCalibration::from_threshold(threshold))
    };
    (stack(), stack())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For a random Table-II machine, noise seed and pair workload, the
    /// channel's verdict sequence and probe statistics equal the direct
    /// oracle path exactly.
    #[test]
    fn timing_channel_is_bit_identical_to_the_direct_oracle(
        number in 1u8..=9,
        sim_seed in 0u64..10_000,
        raw_pairs in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<bool>()),
            1..24,
        ),
    ) {
        let (direct, channel) = oracle_pair(number, sim_seed);
        let capacity = MachineSetting::by_number(number)
            .unwrap()
            .system
            .capacity_bytes;
        // Cache-line-aligned addresses inside the module.
        let pairs: Vec<(PhysAddr, PhysAddr, bool)> = raw_pairs
            .iter()
            .map(|&(a, b, eq)| {
                (
                    PhysAddr::new((a % capacity) & !63),
                    PhysAddr::new((b % capacity) & !63),
                    eq,
                )
            })
            .collect();

        let mut direct = direct;
        let direct_verdicts: Vec<bool> = pairs
            .iter()
            .map(|&(a, b, as_row_equality)| {
                let sbdr = direct.is_sbdr(a, b);
                if as_row_equality { !sbdr } else { sbdr }
            })
            .collect();

        let mut channel = ConflictTimingObservable::new(channel);
        let channel_verdicts: Vec<bool> = pairs
            .iter()
            .map(|&(a, b, as_row_equality)| {
                let query = if as_row_equality {
                    ObservableQuery::RowEquality { a, b }
                } else {
                    ObservableQuery::SameBankDifferentRow { a, b }
                };
                prop_assert!(channel.supports(&query));
                let answer = channel.answer(&query).unwrap();
                prop_assert!(answer.confidence > 0.5 && answer.confidence <= 1.0);
                Ok(answer.verdict)
            })
            .collect::<Result<_, _>>()?;

        prop_assert_eq!(&channel_verdicts, &direct_verdicts);

        // Identical statistics, down to the simulated nanosecond: the seam
        // added no measurement, reordered nothing and repriced nothing.
        let direct_stats = direct.probe().stats();
        let channel_stats = channel.oracle().probe().stats();
        prop_assert_eq!(channel_stats, direct_stats);
        prop_assert_eq!(channel_stats.measurements, pairs.len() as u64);

        // The channel's cost accounting is exactly those probe stats.
        let cost = channel.cost();
        prop_assert_eq!(cost.timing_pairs, direct_stats.measurements);
        prop_assert_eq!(cost.elapsed_ns, direct_stats.elapsed_ns);
        prop_assert_eq!(cost.hammer_pairs, 0);
    }
}
