//! A bounded, pair-keyed cache of SBDR classifications.
//!
//! The DRAMDig pipeline asks the same binary question — *are these two
//! addresses in the same bank but different rows?* — about overlapping pair
//! sets across Algorithm 2, the coarse stage and the fine stage, and again
//! whenever a pivot attempt is rejected and retried. Re-timing a pair the
//! probe has already classified buys no new information, so the
//! [`ConflictOracle`](crate::ConflictOracle) can consult a [`ConflictCache`]
//! before touching the memory bus.
//!
//! The cache is **symmetric** (the pair `(a, b)` and the pair `(b, a)` hit
//! the same entry, because the alternating access pattern is order-blind) and
//! **bounded**: once `capacity` entries are stored, the oldest entry is
//! evicted FIFO. Eviction only ever *forgets* a classification — a later
//! lookup misses and the pair is re-measured — it can never return a wrong
//! answer for a different pair.

use std::collections::{HashMap, VecDeque};

use dram_model::PhysAddr;

/// Default number of pair classifications kept (≈ 48 MiB worst case, far
/// beyond what one pipeline run produces).
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 20;

/// Symmetric canonical key of an unordered address pair.
fn key(a: PhysAddr, b: PhysAddr) -> (u64, u64) {
    let (x, y) = (a.raw(), b.raw());
    if x <= y {
        (x, y)
    } else {
        (y, x)
    }
}

/// A bounded FIFO cache mapping unordered address pairs to their SBDR
/// classification, with hit/miss accounting.
///
/// ```
/// use dram_model::PhysAddr;
/// use mem_probe::ConflictCache;
///
/// let mut cache = ConflictCache::new(16);
/// let (a, b) = (PhysAddr::new(0x1000), PhysAddr::new(0x2000));
/// assert_eq!(cache.lookup(a, b), None);
/// cache.record(a, b, true);
/// assert_eq!(cache.lookup(b, a), Some(true)); // symmetric
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConflictCache {
    map: HashMap<(u64, u64), bool>,
    order: VecDeque<(u64, u64)>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl ConflictCache {
    /// Creates a cache holding at most `capacity` pair classifications.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        ConflictCache {
            map: HashMap::with_capacity(capacity.min(4096)),
            order: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up the classification of an unordered pair, counting the access
    /// as a hit or miss.
    pub fn lookup(&mut self, a: PhysAddr, b: PhysAddr) -> Option<bool> {
        let found = self.map.get(&key(a, b)).copied();
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        found
    }

    /// Looks up the classification without touching the hit/miss counters
    /// (used by read-only consumers such as the validation pass).
    #[must_use]
    pub fn peek(&self, a: PhysAddr, b: PhysAddr) -> Option<bool> {
        self.map.get(&key(a, b)).copied()
    }

    /// Records the classification of an unordered pair, evicting the oldest
    /// entry when the cache is full.
    pub fn record(&mut self, a: PhysAddr, b: PhysAddr, is_conflict: bool) {
        let k = key(a, b);
        if self.map.insert(k, is_conflict).is_none() {
            if self.map.len() > self.capacity {
                if let Some(oldest) = self.order.pop_front() {
                    self.map.remove(&oldest);
                }
            }
            self.order.push_back(k);
        }
    }

    /// Iterates over the cached classifications as
    /// `((low_addr, high_addr), is_conflict)` triples, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = ((PhysAddr, PhysAddr), bool)> + '_ {
        self.order.iter().filter_map(|k| {
            self.map
                .get(k)
                .map(|&v| ((PhysAddr::new(k.0), PhysAddr::new(k.1)), v))
        })
    }

    /// Number of pairs currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no pair is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The maximum number of pairs the cache retains.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lookups answered from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that required a fresh measurement.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every cached classification (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pa(raw: u64) -> PhysAddr {
        PhysAddr::new(raw)
    }

    #[test]
    fn symmetric_lookup_and_record() {
        let mut c = ConflictCache::new(8);
        c.record(pa(10), pa(20), true);
        assert_eq!(c.lookup(pa(20), pa(10)), Some(true));
        c.record(pa(30), pa(5), false);
        assert_eq!(c.peek(pa(5), pa(30)), Some(false));
        assert_eq!(c.len(), 2);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn fifo_eviction_forgets_oldest() {
        let mut c = ConflictCache::new(2);
        c.record(pa(1), pa(2), true);
        c.record(pa(3), pa(4), true);
        c.record(pa(5), pa(6), false); // evicts (1, 2)
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(pa(1), pa(2)), None);
        assert_eq!(c.peek(pa(3), pa(4)), Some(true));
        assert_eq!(c.peek(pa(5), pa(6)), Some(false));
    }

    #[test]
    fn re_recording_does_not_duplicate_or_evict() {
        let mut c = ConflictCache::new(2);
        c.record(pa(1), pa(2), true);
        c.record(pa(2), pa(1), true); // same unordered pair
        c.record(pa(3), pa(4), false);
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(pa(1), pa(2)), Some(true));
        assert_eq!(c.peek(pa(3), pa(4)), Some(false));
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut c = ConflictCache::new(4);
        assert_eq!(c.lookup(pa(7), pa(8)), None);
        c.record(pa(7), pa(8), true);
        assert_eq!(c.lookup(pa(7), pa(8)), Some(true));
        assert_eq!(c.lookup(pa(8), pa(7)), Some(true));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
        assert!(!c.is_empty());
        assert_eq!(c.capacity(), 4);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 2, "clear keeps the counters");
    }

    #[test]
    fn entries_iterates_in_insertion_order() {
        let mut c = ConflictCache::new(8);
        c.record(pa(1), pa(2), true);
        c.record(pa(9), pa(3), false);
        let got: Vec<_> = c.entries().collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], ((pa(1), pa(2)), true));
        assert_eq!(got[1], ((pa(3), pa(9)), false));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = ConflictCache::new(0);
    }
}
