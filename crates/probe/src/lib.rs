//! The row-buffer-conflict timing primitive.
//!
//! All DRAM-mapping reverse-engineering tools in this workspace observe the
//! memory system exclusively through the [`MemoryProbe`] trait: "how long
//! does it take to access these two physical addresses alternately?". If the
//! two addresses lie in the same bank but different rows (SBDR), the bank's
//! row buffer is re-loaded on every access and the latency is measurably
//! higher (Section III-B of the paper).
//!
//! Two implementations are provided:
//!
//! * [`SimProbe`] drives the [`dram_sim`] substrate and is what the tests,
//!   examples and experiments use.
//! * [`HwProbe`](hw) is the real-hardware path (x86_64 Linux only): it uses
//!   `clflush`/`rdtscp` and translates virtual to physical addresses through
//!   `/proc/self/pagemap`, exactly like the original tool. It requires root
//!   (for pagemap physical frame numbers) and is therefore exercised only by
//!   the `hardware_probe` example, never by the test-suite.
//!
//! [`LatencyCalibration`] turns raw latencies into a binary
//! conflict/no-conflict decision by clustering a sample of measurements.
//!
//! # Example
//!
//! ```
//! use dram_model::MachineSetting;
//! use dram_sim::{SimConfig, SimMachine, PhysMemory};
//! use mem_probe::{MemoryProbe, SimProbe, LatencyCalibration};
//!
//! let setting = MachineSetting::no4_haswell_ddr3_4g();
//! let machine = SimMachine::from_setting(&setting, SimConfig::default());
//! let memory = PhysMemory::full(64 << 20);
//! let mut probe = SimProbe::new(machine, memory);
//! let calibration = LatencyCalibration::calibrate(&mut probe, 300, 7)?;
//! assert!(calibration.threshold_ns() > 0);
//! # Ok::<(), mem_probe::ProbeError>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod calibrate;
pub mod error;
pub mod hw;
pub mod observable;
pub mod oracle;
pub mod probe;
pub mod sim_probe;

pub use cache::{ConflictCache, DEFAULT_CACHE_CAPACITY};
pub use calibrate::LatencyCalibration;
pub use error::ProbeError;
pub use observable::{
    ConflictTimingObservable, Observable, ObservableAnswer, ObservableCost, ObservableKind,
    ObservableQuery,
};
pub use oracle::{BatchRecord, ConflictOracle};
pub use probe::{MemoryProbe, ProbeStats};
pub use sim_probe::{rounds_for, SimProbe, DEFAULT_ROUNDS, NOISY_ROUNDS};

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub use hw::HwProbe;
