//! Real-hardware probe using `clflush` + `rdtscp` and `/proc/self/pagemap`.
//!
//! This is the path the original DRAMDig tool uses on a physical machine:
//! allocate a large buffer, learn the physical frame behind every virtual
//! page from the pagemap interface (root required), and time uncached
//! alternating accesses with the timestamp counter. It compiles only on
//! x86_64 Linux; on every other target this module is empty and the
//! simulator-backed [`crate::SimProbe`] is the only probe available.
//!
//! The workspace's tests never construct a [`HwProbe`] because container
//! and CI timing is not trustworthy; the `hardware_probe` example shows how
//! to use it on a bare-metal machine.

#![allow(unsafe_code)]

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub use imp::HwProbe;

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod imp {
    use std::collections::HashMap;
    use std::fs::File;
    use std::io::{Read, Seek, SeekFrom};
    use std::time::Instant;

    use dram_model::{PhysAddr, PAGE_SIZE};
    use dram_sim::PhysMemory;

    use crate::error::ProbeError;
    use crate::probe::{MemoryProbe, ProbeStats};

    /// Bit 63 of a pagemap entry: page present.
    const PAGEMAP_PRESENT: u64 = 1 << 63;
    /// Low 55 bits of a pagemap entry: page frame number.
    const PAGEMAP_PFN_MASK: u64 = (1 << 55) - 1;

    /// A [`MemoryProbe`] measuring real DRAM access latencies.
    pub struct HwProbe {
        buffer: Vec<u8>,
        phys_to_virt: HashMap<u64, usize>,
        memory: PhysMemory,
        rounds: u32,
        measurements: u64,
        accesses: u64,
        started: Instant,
    }

    impl std::fmt::Debug for HwProbe {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("HwProbe")
                .field("buffer_bytes", &self.buffer.len())
                .field("mapped_pages", &self.phys_to_virt.len())
                .field("rounds", &self.rounds)
                .finish()
        }
    }

    impl HwProbe {
        /// Allocates `buffer_bytes` of memory, resolves the physical frame of
        /// every page through `/proc/self/pagemap`, and returns a probe whose
        /// page pool contains exactly those frames.
        ///
        /// # Errors
        ///
        /// * [`ProbeError::Io`] if the pagemap cannot be read.
        /// * [`ProbeError::Hardware`] if the pagemap reports no physical
        ///   frames (typically: the process lacks `CAP_SYS_ADMIN`).
        pub fn new(buffer_bytes: usize) -> Result<Self, ProbeError> {
            let pages = (buffer_bytes / PAGE_SIZE as usize).max(1);
            let mut buffer = vec![0u8; pages * PAGE_SIZE as usize];
            // Touch every page so it is resident before consulting pagemap.
            for i in (0..buffer.len()).step_by(PAGE_SIZE as usize) {
                buffer[i] = 1;
            }

            let mut pagemap = File::open("/proc/self/pagemap")?;
            let mut phys_to_virt = HashMap::with_capacity(pages);
            let mut frames = Vec::with_capacity(pages);
            let base = buffer.as_ptr() as usize;
            let mut max_frame = 0u64;
            for page in 0..pages {
                let virt = base + page * PAGE_SIZE as usize;
                let vpn = virt as u64 / PAGE_SIZE;
                pagemap.seek(SeekFrom::Start(vpn * 8))?;
                let mut entry = [0u8; 8];
                pagemap.read_exact(&mut entry)?;
                let entry = u64::from_le_bytes(entry);
                if entry & PAGEMAP_PRESENT == 0 {
                    continue;
                }
                let pfn = entry & PAGEMAP_PFN_MASK;
                if pfn == 0 {
                    continue;
                }
                phys_to_virt.insert(pfn, virt);
                frames.push(pfn);
                max_frame = max_frame.max(pfn);
            }
            if frames.is_empty() {
                return Err(ProbeError::Hardware {
                    reason: "pagemap reported no physical frames; run as root".into(),
                });
            }
            let memory = PhysMemory::from_frames(frames, max_frame + 1);
            Ok(HwProbe {
                buffer,
                phys_to_virt,
                memory,
                rounds: 32,
                measurements: 0,
                accesses: 0,
                started: Instant::now(),
            })
        }

        /// Sets the number of alternating rounds per measurement.
        pub fn with_rounds(mut self, rounds: u32) -> Self {
            assert!(rounds >= 1, "at least one round is required");
            self.rounds = rounds;
            self
        }

        fn virt_of(&self, addr: PhysAddr) -> Option<*const u8> {
            let base = *self.phys_to_virt.get(&addr.page_frame())?;
            Some((base + addr.page_offset() as usize) as *const u8)
        }

        /// Times one round trip over the two virtual addresses with caches
        /// flushed, returning elapsed TSC cycles.
        fn time_round(a: *const u8, b: *const u8) -> u64 {
            use core::arch::x86_64::{__rdtscp, _mm_clflush, _mm_lfence, _mm_mfence};
            let mut aux = 0u32;
            // SAFETY: both pointers point into the probe's own live buffer;
            // clflush/rdtscp have no memory-safety requirements beyond valid
            // pointers for the flush.
            unsafe {
                _mm_clflush(a);
                _mm_clflush(b);
                _mm_mfence();
                let start = __rdtscp(&mut aux);
                _mm_lfence();
                std::ptr::read_volatile(a);
                std::ptr::read_volatile(b);
                _mm_lfence();
                let end = __rdtscp(&mut aux);
                end.saturating_sub(start)
            }
        }
    }

    impl MemoryProbe for HwProbe {
        /// # Panics
        ///
        /// Panics if either address does not belong to the probe's page pool;
        /// tools must only measure addresses drawn from
        /// [`MemoryProbe::memory`].
        fn measure_pair(&mut self, a: PhysAddr, b: PhysAddr) -> u64 {
            let va = self
                .virt_of(a)
                .expect("address a is not backed by the probe's buffer");
            let vb = self
                .virt_of(b)
                .expect("address b is not backed by the probe's buffer");
            let mut samples: Vec<u64> =
                (0..self.rounds).map(|_| Self::time_round(va, vb)).collect();
            self.measurements += 1;
            self.accesses += u64::from(self.rounds) * 2;
            samples.sort_unstable();
            // Median TSC cycles for the two accesses; report per-access.
            samples[samples.len() / 2] / 2
        }

        fn memory(&self) -> &PhysMemory {
            &self.memory
        }

        fn stats(&self) -> ProbeStats {
            ProbeStats {
                measurements: self.measurements,
                accesses: self.accesses,
                elapsed_ns: self.started.elapsed().as_nanos() as u64,
                ..ProbeStats::default()
            }
        }

        fn rounds(&self) -> u32 {
            self.rounds
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn construction_does_not_panic() {
            // On CI/containers this may fail with a Hardware or Io error
            // (no CAP_SYS_ADMIN); on bare metal as root it succeeds. Either
            // way it must not panic, and on success the pool is non-empty.
            match HwProbe::new(1 << 20) {
                Ok(probe) => {
                    assert!(!probe.memory().is_empty());
                    assert!(probe.rounds() >= 1);
                }
                Err(ProbeError::Hardware { .. }) | Err(ProbeError::Io(_)) => {}
                Err(other) => panic!("unexpected error kind: {other}"),
            }
        }

        #[test]
        fn buffer_is_page_backed() {
            if let Ok(probe) = HwProbe::new(1 << 20) {
                // Every pooled frame translates back to a pointer inside the
                // buffer.
                let first = probe.memory().frames()[0];
                let ptr = probe.virt_of(PhysAddr::new(first * PAGE_SIZE)).unwrap();
                let start = probe.buffer.as_ptr() as usize;
                let end = start + probe.buffer.len();
                assert!((ptr as usize) >= start && (ptr as usize) < end);
            }
        }
    }
}
