//! The [`MemoryProbe`] trait.

use dram_model::PhysAddr;
use dram_sim::PhysMemory;

/// Cost accounting for a probe: how much work the reverse-engineering tool
/// has asked for so far. The experiment harness uses the elapsed simulated
/// time to reproduce Figure 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Number of pair-latency measurements performed.
    pub measurements: u64,
    /// Number of individual memory accesses issued.
    pub accesses: u64,
    /// Time spent measuring, in (simulated or real) nanoseconds.
    pub elapsed_ns: u64,
    /// SBDR queries answered from the [`crate::ConflictCache`] without a
    /// measurement (zero when no cache is attached to the oracle).
    pub cache_hits: u64,
    /// SBDR queries that missed the cache and paid for a measurement (zero
    /// when no cache is attached to the oracle).
    pub cache_misses: u64,
}

impl ProbeStats {
    /// Elapsed time in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_ns as f64 / 1e9
    }

    /// Sums two stat snapshots field by field (saturating), for aggregating
    /// the costs of *independent* probes — e.g. the per-job totals of a
    /// campaign, where every job owns its own probe and cache.
    ///
    /// Do **not** merge two snapshots of the *same* probe (a later snapshot
    /// already contains the earlier one; merging would double count every
    /// measurement and cache hit). Because each job's cache is private, the
    /// merged `cache_hits`/`cache_misses` remain an exact partition of the
    /// merged cached-query count.
    #[must_use]
    pub fn merge(self, other: ProbeStats) -> ProbeStats {
        ProbeStats {
            measurements: self.measurements.saturating_add(other.measurements),
            accesses: self.accesses.saturating_add(other.accesses),
            elapsed_ns: self.elapsed_ns.saturating_add(other.elapsed_ns),
            cache_hits: self.cache_hits.saturating_add(other.cache_hits),
            cache_misses: self.cache_misses.saturating_add(other.cache_misses),
        }
    }

    /// Fraction of cached SBDR queries answered without a measurement
    /// (`0.0` when no query went through a cache).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The timing side channel available to reverse-engineering tools.
///
/// Implementations measure the average latency of alternately accessing two
/// physical addresses with caches bypassed. Tools combine this with a
/// [`crate::LatencyCalibration`] threshold to decide whether two addresses
/// are in the same bank but different rows.
pub trait MemoryProbe {
    /// Measures the representative per-access latency (in nanoseconds) of an
    /// alternating access pattern over the two addresses.
    fn measure_pair(&mut self, a: PhysAddr, b: PhysAddr) -> u64;

    /// Measures a batch of pairs in one call, returning one latency per pair
    /// in input order.
    ///
    /// The default implementation simply loops over [`measure_pair`]
    /// (bit-identical results); probes with per-measurement setup cost
    /// (serialising fences, pagemap lookups, row-buffer resets) can override
    /// it to amortise that cost across the batch.
    ///
    /// [`measure_pair`]: MemoryProbe::measure_pair
    fn measure_pairs(&mut self, pairs: &[(PhysAddr, PhysAddr)]) -> Vec<u64> {
        pairs
            .iter()
            .map(|&(a, b)| self.measure_pair(a, b))
            .collect()
    }

    /// The pool of physical pages the tool is allowed to use.
    fn memory(&self) -> &PhysMemory;

    /// Cost accounting so far.
    fn stats(&self) -> ProbeStats;

    /// Number of alternating rounds used per measurement.
    fn rounds(&self) -> u32;

    /// Hook invoked by the pipeline engine at every phase boundary with a
    /// phase-unique salt, both on straight-through runs and when a run
    /// resumes from a checkpoint.
    ///
    /// Implementations should re-align any internal stochastic state (noise
    /// streams, refresh schedules) so the measurement sequence of the
    /// upcoming phase is a pure function of `(probe configuration, salt)`
    /// rather than of everything measured before the boundary — the
    /// property that makes a checkpoint-resumed run byte-identical to an
    /// uninterrupted one. Probes without such state (e.g. real hardware,
    /// whose noise cannot be replayed either way) keep the default no-op.
    fn begin_phase(&mut self, salt: u64) {
        let _ = salt;
    }
}

impl<P: MemoryProbe + ?Sized> MemoryProbe for &mut P {
    fn measure_pair(&mut self, a: PhysAddr, b: PhysAddr) -> u64 {
        (**self).measure_pair(a, b)
    }
    fn measure_pairs(&mut self, pairs: &[(PhysAddr, PhysAddr)]) -> Vec<u64> {
        (**self).measure_pairs(pairs)
    }
    fn memory(&self) -> &PhysMemory {
        (**self).memory()
    }
    fn stats(&self) -> ProbeStats {
        (**self).stats()
    }
    fn rounds(&self) -> u32 {
        (**self).rounds()
    }
    fn begin_phase(&mut self, salt: u64) {
        (**self).begin_phase(salt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_elapsed_seconds() {
        let s = ProbeStats {
            measurements: 1,
            accesses: 2,
            elapsed_ns: 2_500_000_000,
            ..ProbeStats::default()
        };
        assert!((s.elapsed_seconds() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_fields_and_saturates() {
        let a = ProbeStats {
            measurements: 10,
            accesses: 20,
            elapsed_ns: 30,
            cache_hits: 4,
            cache_misses: 6,
        };
        let b = ProbeStats {
            measurements: 1,
            accesses: 2,
            elapsed_ns: 3,
            cache_hits: 5,
            cache_misses: 5,
        };
        let m = a.merge(b);
        assert_eq!(m.measurements, 11);
        assert_eq!(m.accesses, 22);
        assert_eq!(m.elapsed_ns, 33);
        assert_eq!(m.cache_hits, 9);
        assert_eq!(m.cache_misses, 11);
        // Hits and misses still partition the merged cached-query count.
        assert_eq!(m.cache_hits + m.cache_misses, 4 + 6 + 5 + 5);
        let sat = ProbeStats {
            measurements: u64::MAX,
            ..ProbeStats::default()
        };
        assert_eq!(sat.merge(sat).measurements, u64::MAX);
        // Identity: merging with a default snapshot changes nothing.
        assert_eq!(a.merge(ProbeStats::default()), a);
    }

    #[test]
    fn cache_hit_rate_handles_zero_and_mixed() {
        assert_eq!(ProbeStats::default().cache_hit_rate(), 0.0);
        let s = ProbeStats {
            cache_hits: 3,
            cache_misses: 1,
            ..ProbeStats::default()
        };
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mut_ref_forwarding_compiles() {
        // Compile-time check that &mut P implements the trait; exercised via
        // the simulator-backed probe in sim_probe tests.
        fn _check<P: MemoryProbe>(p: &mut P) {
            fn takes_probe<Q: MemoryProbe>(_p: Q) {}
            takes_probe(p);
        }
    }
}
