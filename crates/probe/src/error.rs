//! Error type for probe construction and calibration.

use std::fmt;

/// Errors produced by probes and calibration.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProbeError {
    /// The physical page pool is too small for the requested operation.
    PoolTooSmall {
        /// Pages available.
        available: usize,
        /// Pages required.
        required: usize,
    },
    /// Calibration could not separate hit and conflict latencies.
    CalibrationFailed {
        /// Explanation of the failure.
        reason: String,
    },
    /// The hardware probe could not be constructed (not root, missing
    /// pagemap, unsupported platform, allocation failure…).
    Hardware {
        /// Explanation of the failure.
        reason: String,
    },
    /// An underlying I/O error (pagemap access).
    Io(std::io::Error),
    /// An observable channel was asked a query it cannot answer.
    Unsupported {
        /// Explanation of what the channel is missing.
        reason: String,
    },
}

impl fmt::Display for ProbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeError::PoolTooSmall {
                available,
                required,
            } => write!(
                f,
                "physical page pool too small: {available} pages available, {required} required"
            ),
            ProbeError::CalibrationFailed { reason } => {
                write!(f, "latency calibration failed: {reason}")
            }
            ProbeError::Hardware { reason } => write!(f, "hardware probe unavailable: {reason}"),
            ProbeError::Io(e) => write!(f, "i/o error: {e}"),
            ProbeError::Unsupported { reason } => {
                write!(f, "unsupported observable query: {reason}")
            }
        }
    }
}

impl std::error::Error for ProbeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProbeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProbeError {
    fn from(e: std::io::Error) -> Self {
        ProbeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ProbeError::PoolTooSmall {
            available: 1,
            required: 10,
        };
        assert!(e.to_string().contains("1 pages"));
        let e = ProbeError::CalibrationFailed {
            reason: "flat histogram".into(),
        };
        assert!(e.to_string().contains("flat histogram"));
        let e = ProbeError::Hardware {
            reason: "not root".into(),
        };
        assert!(e.to_string().contains("not root"));
        let e: ProbeError = std::io::Error::other("x").into();
        assert!(e.to_string().contains("i/o"));
        let e = ProbeError::Unsupported {
            reason: "no adjacency".into(),
        };
        assert!(e.to_string().contains("no adjacency"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProbeError>();
    }
}
