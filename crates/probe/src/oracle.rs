//! A probe + calibration bundle answering the SBDR question directly.

use dram_model::PhysAddr;

use crate::calibrate::LatencyCalibration;
use crate::probe::{MemoryProbe, ProbeStats};

/// Combines a [`MemoryProbe`] with a [`LatencyCalibration`] so that callers
/// can ask the binary question the algorithms actually need: *are these two
/// addresses in the same bank but different rows?*
///
/// Every reverse-engineering tool in this workspace (DRAMDig and the
/// baselines) is written against this type, which keeps their measurement
/// budget accounting in one place.
#[derive(Debug)]
pub struct ConflictOracle<P> {
    probe: P,
    calibration: LatencyCalibration,
    repeat: u32,
}

impl<P: MemoryProbe> ConflictOracle<P> {
    /// Creates an oracle from a probe and its calibration.
    pub fn new(probe: P, calibration: LatencyCalibration) -> Self {
        ConflictOracle {
            probe,
            calibration,
            repeat: 1,
        }
    }

    /// Repeats each query `repeat` times and takes a majority vote — used by
    /// tools that want extra robustness at the cost of more measurements.
    pub fn with_repeat(mut self, repeat: u32) -> Self {
        assert!(repeat >= 1, "repeat must be at least 1");
        self.repeat = repeat;
        self
    }

    /// The calibration in use.
    pub fn calibration(&self) -> &LatencyCalibration {
        &self.calibration
    }

    /// The underlying probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Exclusive access to the underlying probe.
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Consumes the oracle and returns the probe.
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// Cost accounting so far (delegates to the probe).
    pub fn stats(&self) -> ProbeStats {
        self.probe.stats()
    }

    /// Measures a pair once and returns the raw latency.
    pub fn latency(&mut self, a: PhysAddr, b: PhysAddr) -> u64 {
        self.probe.measure_pair(a, b)
    }

    /// Returns `true` if `a` and `b` are observed to be in the same bank but
    /// different rows (high latency / row-buffer conflict).
    pub fn is_sbdr(&mut self, a: PhysAddr, b: PhysAddr) -> bool {
        if self.repeat == 1 {
            let lat = self.probe.measure_pair(a, b);
            return self.calibration.is_conflict(lat);
        }
        let mut votes = 0u32;
        for _ in 0..self.repeat {
            if self.calibration.is_conflict(self.probe.measure_pair(a, b)) {
                votes += 1;
            }
        }
        votes * 2 > self.repeat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_probe::SimProbe;
    use dram_model::{DramAddress, MachineSetting};
    use dram_sim::{PhysMemory, SimConfig, SimMachine};

    fn oracle(noise: bool) -> ConflictOracle<SimProbe> {
        let setting = MachineSetting::no7_skylake_ddr4_4g();
        let config = if noise {
            SimConfig::default()
        } else {
            SimConfig::noiseless()
        };
        let machine = SimMachine::from_setting(&setting, config);
        let timing = machine.controller().config().timing;
        let probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
        ConflictOracle::new(
            probe,
            LatencyCalibration::from_threshold(timing.oracle_threshold_ns()),
        )
    }

    #[test]
    fn oracle_agrees_with_ground_truth() {
        let mut o = oracle(false);
        let truth = o.probe().machine().ground_truth().clone();
        let a = truth.to_phys(DramAddress::new(3, 50, 0)).unwrap();
        let sbdr = truth.to_phys(DramAddress::new(3, 70, 0)).unwrap();
        let same_row = truth.to_phys(DramAddress::new(3, 50, 128)).unwrap();
        let other_bank = truth.to_phys(DramAddress::new(6, 50, 0)).unwrap();
        assert!(o.is_sbdr(a, sbdr));
        assert!(!o.is_sbdr(a, same_row));
        assert!(!o.is_sbdr(a, other_bank));
    }

    #[test]
    fn majority_vote_with_noise_is_stable() {
        let mut o = oracle(true).with_repeat(3);
        let truth = o.probe().machine().ground_truth().clone();
        let a = truth.to_phys(DramAddress::new(1, 10, 0)).unwrap();
        let b = truth.to_phys(DramAddress::new(1, 4000, 0)).unwrap();
        let c = truth.to_phys(DramAddress::new(2, 10, 0)).unwrap();
        for _ in 0..25 {
            assert!(o.is_sbdr(a, b));
            assert!(!o.is_sbdr(a, c));
        }
    }

    #[test]
    fn stats_accumulate_through_oracle() {
        let mut o = oracle(false);
        let truth = o.probe().machine().ground_truth().clone();
        let a = truth.to_phys(DramAddress::new(0, 1, 0)).unwrap();
        let b = truth.to_phys(DramAddress::new(0, 2, 0)).unwrap();
        let before = o.stats().measurements;
        o.is_sbdr(a, b);
        o.latency(a, b);
        assert_eq!(o.stats().measurements, before + 2);
    }

    #[test]
    #[should_panic(expected = "repeat")]
    fn zero_repeat_rejected() {
        let _ = oracle(false).with_repeat(0);
    }
}
